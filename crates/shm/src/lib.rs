#![warn(missing_docs)]

//! # ts-shm — a file-backed shared-memory payload arena
//!
//! TensorSocket's headline scenario is *collocated training processes*
//! sharing one data-loading pipeline: metadata (batch announcements, acks)
//! crosses a socket while the batch bytes themselves move through shared
//! memory — the producer writes a batch once, every consumer process maps
//! the same physical pages and reads it zero-copy (§3.2.4 of the paper;
//! "RPC Considered Harmful" makes the same metadata/bulk-path split).
//!
//! The [`ShmArena`] is that bulk path. It is a single file mapped with
//! `MAP_SHARED` into every participating process, carved into fixed-size
//! **slots**. Each slot carries a header with:
//!
//! * a **generation** counter — bumped on every (re)allocation, so a stale
//!   [`ShmHandle`] from a previous occupant can never read the wrong data
//!   (the moral equivalent of a use-after-free surfaces as
//!   [`ShmError::Stale`], not garbage bytes);
//! * a cross-process **refcount** — the producer holds one reference from
//!   allocation until release, and every consumer [`ShmArena::attach`]
//!   takes another for as long as it reads. A slot is reusable only when
//!   the count returns to zero, mirroring the paper's "tensors are kept in
//!   memory as long as any of the producers or consumers hold a
//!   reference".
//!
//! Handles are 16-byte POD ([`ShmHandle::encode`]) and ride inside the
//! announce metadata on the socket; the payload bytes never do.
//!
//! ```no_run
//! use ts_shm::ShmArena;
//!
//! // producer process
//! let arena = ShmArena::create("/dev/shm/ts-demo.arena", 8, 1 << 20).unwrap();
//! let handle = arena.alloc(b"batch bytes").unwrap();
//! // ... send handle.encode() over a socket ...
//!
//! // consumer process
//! let arena = ShmArena::open("/dev/shm/ts-demo.arena").unwrap();
//! let view = arena.attach(handle).unwrap();
//! assert_eq!(&view[..], b"batch bytes");
//! drop(view);            // consumer reference released
//! arena.release(handle); // producer reference released -> slot reusable
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

mod coord;
mod mmap;

pub use coord::{CoordDecision, ShmCoordCell, MAX_COORD_SHARDS};
use mmap::SharedMapping;

/// Arena file magic: `b"TSARENA1"` little-endian.
const MAGIC: u64 = u64::from_le_bytes(*b"TSARENA1");
/// On-disk format version.
const VERSION: u32 = 1;
/// Byte offset of the slot-header table (one page reserved for the arena
/// header).
const HEADER_BYTES: usize = 4096;
/// Bytes per slot header (one cache line, keeps slot atomics unshared).
const SLOT_HEADER_BYTES: usize = 64;

/// Errors from arena operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmError {
    /// Every slot is currently referenced.
    Full,
    /// The payload exceeds the arena's slot size.
    TooLarge {
        /// Requested bytes.
        requested: usize,
        /// Slot capacity in bytes.
        slot_size: usize,
    },
    /// The handle's generation no longer matches the slot (the slot was
    /// released and possibly reused) — the shared-memory analogue of a
    /// dangling pointer.
    Stale {
        /// Slot index of the handle.
        slot: u32,
        /// Generation the handle carried.
        generation: u32,
    },
    /// The slot cannot be recycled in place because readers other than the
    /// producer still reference it.
    Busy {
        /// Slot index of the handle.
        slot: u32,
        /// References currently held (including the producer's).
        refs: u32,
    },
    /// The handle's slot index is out of range for this arena.
    BadSlot(u32),
    /// Underlying file/mapping error.
    Io(String),
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmError::Full => write!(f, "arena full: all slots referenced"),
            ShmError::TooLarge {
                requested,
                slot_size,
            } => write!(
                f,
                "payload of {requested} B exceeds slot size {slot_size} B"
            ),
            ShmError::Stale { slot, generation } => {
                write!(f, "stale handle: slot {slot} generation {generation}")
            }
            ShmError::Busy { slot, refs } => {
                write!(f, "slot {slot} still referenced by {refs} readers")
            }
            ShmError::BadSlot(slot) => write!(f, "slot {slot} out of range"),
            ShmError::Io(e) => write!(f, "arena io: {e}"),
        }
    }
}

impl std::error::Error for ShmError {}

impl From<std::io::Error> for ShmError {
    fn from(e: std::io::Error) -> Self {
        ShmError::Io(e.to_string())
    }
}

/// A compact, POD reference to bytes in a [`ShmArena`]: slot index,
/// generation tag and payload length. 16 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShmHandle {
    /// Slot index.
    pub slot: u32,
    /// Generation of the slot at allocation time.
    pub generation: u32,
    /// Payload length in bytes.
    pub len: u64,
}

/// Encoded size of a [`ShmHandle`].
pub const HANDLE_BYTES: usize = 16;

impl ShmHandle {
    /// Packs the handle into its 16-byte wire form.
    pub fn encode(&self) -> [u8; HANDLE_BYTES] {
        let mut out = [0u8; HANDLE_BYTES];
        out[0..4].copy_from_slice(&self.slot.to_le_bytes());
        out[4..8].copy_from_slice(&self.generation.to_le_bytes());
        out[8..16].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Unpacks a handle from its wire form; `None` when truncated.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < HANDLE_BYTES {
            return None;
        }
        Some(Self {
            slot: u32::from_le_bytes(buf[0..4].try_into().ok()?),
            generation: u32::from_le_bytes(buf[4..8].try_into().ok()?),
            len: u64::from_le_bytes(buf[8..16].try_into().ok()?),
        })
    }
}

/// Raw slot header view over the mapping.
///
/// Generation and refcount live in one atomic word
/// (`generation << 32 | refs`) so every lifecycle transition is a single
/// CAS — there is no window where a stale handle can observe a matching
/// generation with someone else's refcount (including double-release
/// underflow, which a split representation would allow).
struct SlotHeader<'a> {
    state: &'a AtomicU64,
    len: &'a AtomicU64,
}

fn state_generation(state: u64) -> u32 {
    (state >> 32) as u32
}

fn state_refs(state: u64) -> u32 {
    state as u32
}

fn make_state(generation: u32, refs: u32) -> u64 {
    ((generation as u64) << 32) | refs as u64
}

/// An arena's self-description: the backing file path plus the slot
/// geometry. This is what a producer advertises over its attach
/// handshake so a consumer process can [`ShmArena::open`] the same arena
/// with zero out-of-band configuration (the geometry fields are
/// informational — `open` reads the authoritative copy from the file
/// header — but let peers validate capacity before mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaGeometry {
    /// Path of the backing file.
    pub path: PathBuf,
    /// Number of slots.
    pub nslots: usize,
    /// Capacity of each slot in bytes.
    pub slot_size: usize,
}

/// A file-backed shared-memory arena. See the crate docs for the protocol.
///
/// All methods take `&self`; the arena is `Send + Sync` and is normally
/// held in an `Arc` shared by every socket/consumer in the process.
pub struct ShmArena {
    map: SharedMapping,
    path: PathBuf,
    nslots: usize,
    slot_size: usize,
    /// Round-robin allocation cursor (process-local hint only).
    next_slot: AtomicUsize,
    /// Whether this process created (and on drop unlinks) the file.
    owner: bool,
}

impl std::fmt::Debug for ShmArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmArena")
            .field("path", &self.path)
            .field("nslots", &self.nslots)
            .field("slot_size", &self.slot_size)
            .field("in_use", &self.slots_in_use())
            .finish()
    }
}

impl ShmArena {
    /// Creates (or truncates) the arena file at `path` with `nslots` slots
    /// of `slot_size` bytes each and maps it. The creating process owns
    /// the file and unlinks it when the arena drops.
    pub fn create(
        path: impl AsRef<Path>,
        nslots: usize,
        slot_size: usize,
    ) -> Result<Arc<Self>, ShmError> {
        let path = path.as_ref().to_path_buf();
        assert!(nslots > 0, "arena needs at least one slot");
        assert!(slot_size > 0, "slot size must be positive");
        let total = HEADER_BYTES + nslots * SLOT_HEADER_BYTES + nslots * slot_size;
        let map = SharedMapping::create(&path, total)?;
        let arena = Self {
            map,
            path,
            nslots,
            slot_size,
            next_slot: AtomicUsize::new(0),
            owner: true,
        };
        // Header: magic, version, geometry.
        arena.header_u64(0).store(MAGIC, Ordering::SeqCst);
        arena.header_u64(8).store(VERSION as u64, Ordering::SeqCst);
        arena
            .header_u64(16)
            .store(slot_size as u64, Ordering::SeqCst);
        arena.header_u64(24).store(nslots as u64, Ordering::SeqCst);
        Ok(Arc::new(arena))
    }

    /// Maps an existing arena file created by another process.
    pub fn open(path: impl AsRef<Path>) -> Result<Arc<Self>, ShmError> {
        let path = path.as_ref().to_path_buf();
        let map = SharedMapping::open(&path)?;
        if map.len() < HEADER_BYTES {
            return Err(ShmError::Io("arena file too small".into()));
        }
        // Safety: offsets are within the (>= HEADER_BYTES) mapping and
        // 8-aligned.
        let read_u64 = |offset: usize| unsafe {
            (*(map.ptr().add(offset) as *const AtomicU64)).load(Ordering::SeqCst)
        };
        if read_u64(0) != MAGIC {
            return Err(ShmError::Io(format!(
                "{} is not an arena file",
                path.display()
            )));
        }
        if read_u64(8) != VERSION as u64 {
            return Err(ShmError::Io("arena version mismatch".into()));
        }
        let slot_size = read_u64(16) as usize;
        let nslots = read_u64(24) as usize;
        let need = HEADER_BYTES + nslots * SLOT_HEADER_BYTES + nslots * slot_size;
        if map.len() < need {
            return Err(ShmError::Io("arena file truncated".into()));
        }
        Ok(Arc::new(Self {
            map,
            path,
            nslots,
            slot_size,
            next_slot: AtomicUsize::new(0),
            owner: false,
        }))
    }

    /// Number of slots.
    pub fn nslots(&self) -> usize {
        self.nslots
    }

    /// Capacity of each slot in bytes.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The arena's geometry advertisement: everything a peer process
    /// needs to open (or recreate a compatible view of) this arena. The
    /// producer embeds it in the attach handshake so consumers map the
    /// arena without any out-of-band configuration.
    pub fn geometry(&self) -> ArenaGeometry {
        ArenaGeometry {
            path: self.path.clone(),
            nslots: self.nslots,
            slot_size: self.slot_size,
        }
    }

    /// Slots whose refcount is non-zero right now.
    pub fn slots_in_use(&self) -> usize {
        (0..self.nslots)
            .filter(|&i| state_refs(self.slot(i).state.load(Ordering::SeqCst)) > 0)
            .count()
    }

    fn header_u64(&self, offset: usize) -> &AtomicU64 {
        // Safety: offset is within the always-mapped header page and
        // 8-aligned by construction.
        unsafe { &*(self.map.ptr().add(offset) as *const AtomicU64) }
    }

    fn slot(&self, i: usize) -> SlotHeader<'_> {
        debug_assert!(i < self.nslots);
        let base = HEADER_BYTES + i * SLOT_HEADER_BYTES;
        // Safety: the slot-header table is within the mapping and each
        // field offset is naturally aligned (64-byte records).
        unsafe {
            SlotHeader {
                state: &*(self.map.ptr().add(base) as *const AtomicU64),
                len: &*(self.map.ptr().add(base + 8) as *const AtomicU64),
            }
        }
    }

    fn slot_data_ptr(&self, i: usize) -> *mut u8 {
        let off = HEADER_BYTES + self.nslots * SLOT_HEADER_BYTES + i * self.slot_size;
        // Safety: in range by construction.
        unsafe { self.map.ptr().add(off) }
    }

    /// Copies `bytes` into a free slot and returns its handle. The caller
    /// (the producer) holds one reference until [`ShmArena::release`].
    ///
    /// Fails with [`ShmError::Full`] when every slot is referenced and
    /// [`ShmError::TooLarge`] when the payload exceeds the slot size.
    pub fn alloc(&self, bytes: &[u8]) -> Result<ShmHandle, ShmError> {
        let handle = self.reserve(bytes.len())?;
        // Safety: the reservation's claim CAS (free -> new generation,
        // refs = 1) gave us exclusive access to the slot body.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                self.slot_data_ptr(handle.slot as usize),
                bytes.len(),
            );
        }
        Ok(handle)
    }

    /// Claims a free slot for `len` bytes without writing anything — the
    /// reservation half of the recycling protocol. The caller holds the
    /// producer reference and exclusive write access; fill the slot later
    /// with [`ShmArena::try_recycle`] (which also stamps a fresh
    /// generation, so a reserved-but-never-written slot can never serve a
    /// forged read).
    ///
    /// The slot contents are unspecified until written; the handle is
    /// attachable (it reads `len` bytes of whatever the slot held before),
    /// so only hand it out after writing.
    pub fn reserve(&self, len: usize) -> Result<ShmHandle, ShmError> {
        if len > self.slot_size {
            return Err(ShmError::TooLarge {
                requested: len,
                slot_size: self.slot_size,
            });
        }
        let start = self.next_slot.load(Ordering::Relaxed);
        for probe in 0..self.nslots {
            let i = (start + probe) % self.nslots;
            let hdr = self.slot(i);
            let current = hdr.state.load(Ordering::SeqCst);
            if state_refs(current) != 0 {
                continue;
            }
            let mut generation = state_generation(current).wrapping_add(1);
            if generation == 0 {
                generation = 1;
            }
            if hdr
                .state
                .compare_exchange(
                    current,
                    make_state(generation, 1),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                continue;
            }
            self.next_slot.store(i + 1, Ordering::Relaxed);
            hdr.len.store(len as u64, Ordering::SeqCst);
            return Ok(ShmHandle {
                slot: i as u32,
                generation,
                len: len as u64,
            });
        }
        Err(ShmError::Full)
    }

    /// Rewrites a slot the caller already owns (sole producer reference)
    /// with new `bytes`, bumping the generation so every previously issued
    /// handle to the slot goes stale. Returns the slot's new handle; the
    /// caller's reference carries over — no release/alloc pair, no probe
    /// loop, no free-list race.
    ///
    /// This is the steady-state path of the producer's slot pool: a batch
    /// slot whose consumers have all acked is recycled in place for the
    /// next batch.
    ///
    /// Fails with [`ShmError::Busy`] while consumers still hold views on
    /// the old contents (the caller should release the slot and take a
    /// fresh one instead), [`ShmError::Stale`] when `handle` is not the
    /// slot's live generation, and [`ShmError::TooLarge`] when `bytes`
    /// exceeds the slot size (the slot is left untouched and still owned).
    pub fn try_recycle(&self, handle: ShmHandle, bytes: &[u8]) -> Result<ShmHandle, ShmError> {
        let i = handle.slot as usize;
        if i >= self.nslots {
            return Err(ShmError::BadSlot(handle.slot));
        }
        if bytes.len() > self.slot_size {
            return Err(ShmError::TooLarge {
                requested: bytes.len(),
                slot_size: self.slot_size,
            });
        }
        let hdr = self.slot(i);
        let current = hdr.state.load(Ordering::SeqCst);
        if state_generation(current) != handle.generation || state_refs(current) == 0 {
            return Err(ShmError::Stale {
                slot: handle.slot,
                generation: handle.generation,
            });
        }
        if state_refs(current) != 1 {
            return Err(ShmError::Busy {
                slot: handle.slot,
                refs: state_refs(current),
            });
        }
        let mut generation = handle.generation.wrapping_add(1);
        if generation == 0 {
            generation = 1;
        }
        // (gen, 1) -> (gen+1, 1) in one CAS: readers racing `attach` with
        // the old handle either increment before us (we observe refs == 2
        // and fail Busy above or here) or fail their generation check
        // after us. Either way nobody reads half-written bytes.
        if hdr
            .state
            .compare_exchange(
                current,
                make_state(generation, 1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            let raced = hdr.state.load(Ordering::SeqCst);
            return Err(ShmError::Busy {
                slot: handle.slot,
                refs: state_refs(raced),
            });
        }
        hdr.len.store(bytes.len() as u64, Ordering::SeqCst);
        // Safety: refs == 1 under the new generation — we are the only
        // writer and no view can attach the old generation any more.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.slot_data_ptr(i), bytes.len());
        }
        Ok(ShmHandle {
            slot: handle.slot,
            generation,
            len: bytes.len() as u64,
        })
    }

    /// The reservation half of [`ShmArena::try_recycle`]: rewrites a slot
    /// the caller already owns (sole producer reference) for `len` bytes
    /// and bumps the generation — but moves **no bytes**. The caller gets
    /// back a [`ShmLease`] granting exclusive write access to the slot
    /// body; filling it is the caller's job ([`ShmLease::bytes_mut`]).
    ///
    /// This is the zero-copy producer path: the feeder collates *directly
    /// into* the leased slot, so the publish stage never copies payload
    /// bytes. Error conditions mirror [`ShmArena::try_recycle`]
    /// ([`ShmError::Busy`] / [`ShmError::Stale`] / [`ShmError::TooLarge`];
    /// on error the slot is untouched and still owned via `handle`).
    pub fn try_recycle_in_place(
        self: &Arc<Self>,
        handle: ShmHandle,
        len: usize,
    ) -> Result<ShmLease, ShmError> {
        let i = handle.slot as usize;
        if i >= self.nslots {
            return Err(ShmError::BadSlot(handle.slot));
        }
        if len > self.slot_size {
            return Err(ShmError::TooLarge {
                requested: len,
                slot_size: self.slot_size,
            });
        }
        let hdr = self.slot(i);
        let current = hdr.state.load(Ordering::SeqCst);
        if state_generation(current) != handle.generation || state_refs(current) == 0 {
            return Err(ShmError::Stale {
                slot: handle.slot,
                generation: handle.generation,
            });
        }
        if state_refs(current) != 1 {
            return Err(ShmError::Busy {
                slot: handle.slot,
                refs: state_refs(current),
            });
        }
        let mut generation = handle.generation.wrapping_add(1);
        if generation == 0 {
            generation = 1;
        }
        // Same CAS discipline as `try_recycle`: a reader racing `attach`
        // with the old handle either bumps refs before us (we fail Busy)
        // or fails its generation check after us.
        if hdr
            .state
            .compare_exchange(
                current,
                make_state(generation, 1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            let raced = hdr.state.load(Ordering::SeqCst);
            return Err(ShmError::Busy {
                slot: handle.slot,
                refs: state_refs(raced),
            });
        }
        hdr.len.store(len as u64, Ordering::SeqCst);
        Ok(ShmLease {
            arena: Arc::clone(self),
            handle: ShmHandle {
                slot: handle.slot,
                generation,
                len: len as u64,
            },
            armed: true,
        })
    }

    /// Claims a *fresh* slot for `len` bytes as a writable [`ShmLease`] —
    /// [`ShmArena::reserve`] wrapped in the lease guard, for the arena-miss
    /// path of a recycling pool. The lease's generation is already final
    /// (unlike a bare `reserve` handle, which [`ShmArena::try_recycle`]
    /// re-stamps), so [`ShmLease::into_handle`] is directly publishable
    /// once the bytes are written.
    pub fn lease(self: &Arc<Self>, len: usize) -> Result<ShmLease, ShmError> {
        let handle = self.reserve(len)?;
        Ok(ShmLease {
            arena: Arc::clone(self),
            handle,
            armed: true,
        })
    }

    /// References currently held on the slot behind `handle`, or `None`
    /// when the handle is stale or out of range.
    pub fn ref_count(&self, handle: ShmHandle) -> Option<u32> {
        let i = handle.slot as usize;
        if i >= self.nslots {
            return None;
        }
        let state = self.slot(i).state.load(Ordering::SeqCst);
        if state_generation(state) != handle.generation || state_refs(state) == 0 {
            return None;
        }
        Some(state_refs(state))
    }

    /// [`ShmArena::alloc`], retrying while the arena is full for up to
    /// `timeout` (consumers still hold references; backpressure).
    pub fn alloc_wait(&self, bytes: &[u8], timeout: Duration) -> Result<ShmHandle, ShmError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.alloc(bytes) {
                Err(ShmError::Full) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                other => return other,
            }
        }
    }

    /// Takes a read reference on the slot behind `handle`, validating the
    /// generation tag. The returned guard derefs to the payload bytes and
    /// drops its reference when dropped.
    pub fn attach(self: &Arc<Self>, handle: ShmHandle) -> Result<ShmView, ShmError> {
        let i = handle.slot as usize;
        if i >= self.nslots {
            return Err(ShmError::BadSlot(handle.slot));
        }
        // A forged/corrupt handle must not produce a view past the slot:
        // the view derefs to `len` raw bytes of the mapping.
        if handle.len as usize > self.slot_size {
            return Err(ShmError::TooLarge {
                requested: handle.len as usize,
                slot_size: self.slot_size,
            });
        }
        let hdr = self.slot(i);
        // Take a reference only while the handle's generation is the live
        // one: a single CAS on the combined word makes generation check
        // and refcount increment atomic.
        loop {
            let current = hdr.state.load(Ordering::SeqCst);
            if state_generation(current) != handle.generation || state_refs(current) == 0 {
                return Err(ShmError::Stale {
                    slot: handle.slot,
                    generation: handle.generation,
                });
            }
            if hdr
                .state
                .compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        Ok(ShmView {
            arena: Arc::clone(self),
            slot: i,
            len: handle.len as usize,
        })
    }

    /// Drops the producer's (allocation-time) reference. Returns `true`
    /// when the slot became free, `false` while consumers still read it.
    ///
    /// Releasing a stale handle is a no-op returning `false`.
    pub fn release(&self, handle: ShmHandle) -> bool {
        let i = handle.slot as usize;
        if i >= self.nslots {
            return false;
        }
        let hdr = self.slot(i);
        loop {
            let current = hdr.state.load(Ordering::SeqCst);
            // Wrong generation or already free (double release): no-op.
            // The atomic word makes this check-and-decrement race-free —
            // a split refcount would underflow here and resurrect the
            // slot for stale handles.
            if state_generation(current) != handle.generation || state_refs(current) == 0 {
                return false;
            }
            if hdr
                .state
                .compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return state_refs(current) == 1;
            }
        }
    }

    fn drop_ref(&self, slot: usize) {
        // A live view pins refs > 0 and the generation cannot move while
        // it does, so a plain decrement is safe here.
        self.slot(slot).state.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Drop for ShmArena {
    fn drop(&mut self) {
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A pinned, zero-copy view of one allocation. Holds a reference on the
/// slot (and on the mapping) until dropped.
pub struct ShmView {
    arena: Arc<ShmArena>,
    slot: usize,
    len: usize,
}

impl ShmView {
    /// The arena this view pins.
    pub fn arena(&self) -> &Arc<ShmArena> {
        &self.arena
    }
}

impl std::ops::Deref for ShmView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: the refcount held by this view keeps the slot from being
        // reallocated, so the bytes are stable for the view's lifetime.
        unsafe { std::slice::from_raw_parts(self.arena.slot_data_ptr(self.slot), self.len) }
    }
}

impl std::fmt::Debug for ShmView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmView")
            .field("slot", &self.slot)
            .field("len", &self.len)
            .finish()
    }
}

impl Drop for ShmView {
    fn drop(&mut self) {
        self.arena.drop_ref(self.slot);
    }
}

/// Exclusive write access to one leased slot, before publication.
///
/// Produced by [`ShmArena::lease`] / [`ShmArena::try_recycle_in_place`].
/// The lease holds the slot at `refs == 1` under a generation that has
/// never been handed out, so nothing can [`ShmArena::attach`] it — the
/// writer side of the producer's zero-copy collate path owns the byte
/// range outright until it either:
///
/// * [`ShmLease::into_handle`]s the lease — transferring the producer
///   reference to the returned [`ShmHandle`], which the caller then
///   publishes and eventually [`ShmArena::release`]s; or
/// * drops it — releasing the reference, freeing the slot (the abort
///   path; a leased-but-never-published slot must not leak).
///
/// **Contract:** write all `len` bytes before `into_handle`; the slot
/// contents are unspecified (the previous occupant's bytes) until
/// overwritten, and the handle is attachable the moment it is announced.
pub struct ShmLease {
    arena: Arc<ShmArena>,
    handle: ShmHandle,
    /// True while this lease still owns the producer reference.
    armed: bool,
}

impl ShmLease {
    /// The handle this lease will publish as. Attaching it before the
    /// bytes are written reads the previous occupant's bytes — hand it
    /// out only via [`ShmLease::into_handle`].
    pub fn handle(&self) -> ShmHandle {
        self.handle
    }

    /// Payload length in bytes (what was requested at lease time).
    pub fn len(&self) -> usize {
        self.handle.len as usize
    }

    /// True when the lease covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.handle.len == 0
    }

    /// The arena the leased slot lives in.
    pub fn arena(&self) -> &Arc<ShmArena> {
        &self.arena
    }

    /// The writable byte range of the leased slot.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        // Safety: the lease pins refs == 1 under a generation no other
        // party has seen, so no view can alias this range; the mapping
        // outlives the lease via the held Arc.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.arena.slot_data_ptr(self.handle.slot as usize),
                self.handle.len as usize,
            )
        }
    }

    /// Consumes the lease, transferring the producer reference to the
    /// returned handle. The caller is now responsible for the eventual
    /// [`ShmArena::release`] (directly or through a slot pool).
    pub fn into_handle(mut self) -> ShmHandle {
        self.armed = false;
        self.handle
    }
}

impl std::fmt::Debug for ShmLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmLease")
            .field("slot", &self.handle.slot)
            .field("generation", &self.handle.generation)
            .field("len", &self.handle.len)
            .finish()
    }
}

impl Drop for ShmLease {
    fn drop(&mut self) {
        if self.armed {
            self.arena.release(self.handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ts-shm-test-{}-{}-{tag}.arena",
            std::process::id(),
            fresh_id()
        ))
    }

    fn fresh_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    #[test]
    fn alloc_attach_release_round_trip() {
        let arena = ShmArena::create(temp_path("rt"), 4, 256).unwrap();
        let h = arena.alloc(b"hello world").unwrap();
        assert_eq!(h.len, 11);
        let view = arena.attach(h).unwrap();
        assert_eq!(&view[..], b"hello world");
        assert_eq!(arena.slots_in_use(), 1);
        assert!(!arena.release(h), "consumer still attached");
        drop(view);
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn stale_handle_after_release_fails() {
        let arena = ShmArena::create(temp_path("stale"), 2, 64).unwrap();
        let h = arena.alloc(b"abc").unwrap();
        assert!(arena.release(h));
        assert!(matches!(arena.attach(h), Err(ShmError::Stale { .. })));
        // Reuse the slot: the old handle must still fail.
        let h2 = arena.alloc(b"def").unwrap();
        assert!(matches!(arena.attach(h), Err(ShmError::Stale { .. })));
        let v = arena.attach(h2).unwrap();
        assert_eq!(&v[..], b"def");
    }

    #[test]
    fn full_and_too_large() {
        let arena = ShmArena::create(temp_path("full"), 2, 16).unwrap();
        let a = arena.alloc(&[1u8; 16]).unwrap();
        let _b = arena.alloc(&[2u8; 8]).unwrap();
        assert_eq!(arena.alloc(&[3u8; 1]).unwrap_err(), ShmError::Full);
        assert!(matches!(
            arena.alloc(&[0u8; 17]).unwrap_err(),
            ShmError::TooLarge { .. }
        ));
        arena.release(a);
        assert!(arena.alloc(&[4u8; 4]).is_ok());
    }

    #[test]
    fn cross_mapping_visibility() {
        // Two mappings of the same file in one process stand in for two
        // processes (the integration test covers real fork/exec).
        let path = temp_path("cross");
        let producer = ShmArena::create(&path, 4, 128).unwrap();
        let consumer = ShmArena::open(&path).unwrap();
        let h = producer.alloc(b"shared-bytes").unwrap();
        let view = consumer.attach(h).unwrap();
        assert_eq!(&view[..], b"shared-bytes");
        // Refcounts are shared through the file: producer sees the
        // consumer's reference.
        assert!(!producer.release(h));
        drop(view);
        assert_eq!(producer.slots_in_use(), 0);
    }

    #[test]
    fn attach_rejects_oversized_len() {
        let arena = ShmArena::create(temp_path("oversz"), 2, 64).unwrap();
        let mut h = arena.alloc(b"ok").unwrap();
        // A forged/corrupt length beyond the slot must not produce a view.
        h.len = 65;
        assert!(matches!(
            arena.attach(h),
            Err(ShmError::TooLarge { requested: 65, .. })
        ));
        h.len = 64; // at the slot boundary is fine
        assert!(arena.attach(h).is_ok());
    }

    #[test]
    fn reserve_then_recycle_round_trip() {
        let arena = ShmArena::create(temp_path("reserve"), 2, 64).unwrap();
        let h = arena.reserve(16).unwrap();
        assert_eq!(h.len, 16);
        assert_eq!(arena.ref_count(h), Some(1));
        assert_eq!(arena.slots_in_use(), 1);
        // Filling the reserved slot stamps a fresh generation: the bare
        // reservation handle goes stale, the returned one reads the bytes.
        let filled = arena.try_recycle(h, b"first").unwrap();
        assert_eq!(filled.slot, h.slot);
        assert_ne!(filled.generation, h.generation);
        assert!(matches!(arena.attach(h), Err(ShmError::Stale { .. })));
        assert_eq!(&arena.attach(filled).unwrap()[..], b"first");
    }

    #[test]
    fn recycle_in_place_invalidates_old_handle() {
        let arena = ShmArena::create(temp_path("recycle"), 2, 64).unwrap();
        let first = arena.alloc(b"aaaa").unwrap();
        let second = arena.try_recycle(first, b"bb").unwrap();
        assert_eq!(second.slot, first.slot);
        assert_eq!(second.len, 2);
        assert!(matches!(arena.attach(first), Err(ShmError::Stale { .. })));
        assert_eq!(&arena.attach(second).unwrap()[..], b"bb");
        // Only one slot was ever used; the producer reference carried over.
        assert_eq!(arena.slots_in_use(), 1);
        assert!(arena.release(second));
    }

    #[test]
    fn recycle_refuses_while_reader_attached() {
        let arena = ShmArena::create(temp_path("busy"), 2, 64).unwrap();
        let h = arena.alloc(b"shared").unwrap();
        let view = arena.attach(h).unwrap();
        assert_eq!(arena.ref_count(h), Some(2));
        assert!(matches!(
            arena.try_recycle(h, b"next"),
            Err(ShmError::Busy { refs: 2, .. })
        ));
        // The reader's bytes were never touched.
        assert_eq!(&view[..], b"shared");
        drop(view);
        assert!(arena.try_recycle(h, b"next").is_ok());
    }

    #[test]
    fn recycle_rejects_stale_and_oversized() {
        let arena = ShmArena::create(temp_path("recycle-err"), 2, 16).unwrap();
        let h = arena.alloc(b"x").unwrap();
        assert!(matches!(
            arena.try_recycle(h, &[0u8; 17]),
            Err(ShmError::TooLarge { .. })
        ));
        // A failed oversized recycle leaves the slot owned and readable.
        assert_eq!(&arena.attach(h).unwrap()[..], b"x");
        let newer = arena.try_recycle(h, b"y").unwrap();
        assert!(matches!(
            arena.try_recycle(h, b"z"),
            Err(ShmError::Stale { .. })
        ));
        assert!(arena.release(newer));
        assert_eq!(arena.ref_count(newer), None);
    }

    #[test]
    fn lease_writes_in_place_without_copy() {
        let arena = ShmArena::create(temp_path("lease"), 2, 64).unwrap();
        let mut lease = arena.lease(5).unwrap();
        lease.bytes_mut().copy_from_slice(b"fresh");
        let h = lease.into_handle();
        assert_eq!(&arena.attach(h).unwrap()[..], b"fresh");
        // Recycle the published slot in place: generation bumps, old
        // handle goes stale, and the new lease writes the same slot body.
        let mut lease2 = arena.try_recycle_in_place(h, 6).unwrap();
        assert_eq!(lease2.handle().slot, h.slot);
        assert_ne!(lease2.handle().generation, h.generation);
        assert!(matches!(arena.attach(h), Err(ShmError::Stale { .. })));
        lease2.bytes_mut().copy_from_slice(b"second");
        let h2 = lease2.into_handle();
        assert_eq!(&arena.attach(h2).unwrap()[..], b"second");
        assert_eq!(arena.slots_in_use(), 1);
        assert!(arena.release(h2));
    }

    #[test]
    fn dropped_lease_frees_the_slot() {
        let arena = ShmArena::create(temp_path("lease-drop"), 2, 64).unwrap();
        let lease = arena.lease(8).unwrap();
        let h = lease.handle();
        assert_eq!(arena.slots_in_use(), 1);
        drop(lease); // abort path: never published
        assert_eq!(arena.slots_in_use(), 0);
        assert!(matches!(arena.attach(h), Err(ShmError::Stale { .. })));
    }

    #[test]
    fn recycle_in_place_refuses_while_reader_attached() {
        let arena = ShmArena::create(temp_path("lease-busy"), 2, 64).unwrap();
        let h = arena.alloc(b"shared").unwrap();
        let view = arena.attach(h).unwrap();
        assert!(matches!(
            arena.try_recycle_in_place(h, 4),
            Err(ShmError::Busy { refs: 2, .. })
        ));
        // The reader's bytes were never touched and the slot is still
        // owned by the original handle.
        assert_eq!(&view[..], b"shared");
        drop(view);
        let lease = arena.try_recycle_in_place(h, 4).unwrap();
        assert_eq!(lease.len(), 4);
    }

    #[test]
    fn handle_wire_round_trip() {
        let h = ShmHandle {
            slot: 7,
            generation: 0xDEAD_BEEF,
            len: 1 << 33,
        };
        assert_eq!(ShmHandle::decode(&h.encode()), Some(h));
        assert_eq!(ShmHandle::decode(&[0u8; 8]), None);
    }

    use std::sync::atomic::AtomicU64;
}
