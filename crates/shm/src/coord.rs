//! A file-backed, cross-process epoch-barrier cell.
//!
//! The in-process `EpochCoordinator` (in the core crate) keeps a sharded
//! producer group's epoch boundaries, join decisions and rubberband pin
//! set consistent behind one `Mutex`. That works only while every shard
//! pipeline lives in one process. Multi-host-era deployments run shard
//! pipelines in *separate* producer processes on one node, so the same
//! state machine needs a home every process can map: this module is that
//! home — the coordinator's word set mirrored into a `MAP_SHARED` file,
//! guarded by a shared-memory spinlock.
//!
//! The cell stores only plain `u64` words (no pointers, no host-local
//! `Instant`s): per-shard progress arrays plus a fixed table of decision
//! entries keyed by consumer id. Times are milliseconds on a
//! **cooperative monotonic clock** — a shared high-water mark that every
//! participant advances from its own `Instant` — so the apply-timeout
//! expiry (the guard against a dead consumer wedging the barrier) works
//! across processes without trusting wall clocks: an NTP step backwards
//! cannot make a stale admission immortal, and a step forwards cannot
//! expire a fresh one instantly. Decision memos are stamped with the
//! barrier generation they were made in and expire implicitly when the
//! next barrier opens, exactly like the local coordinator's
//! `decisions.clear()`.
//!
//! Lock discipline: one word holds a spinlock acquired with a CAS and a
//! `yield_now` backoff. Every operation is short (bounded scans over
//! fixed arrays), mirroring the local coordinator's mutex critical
//! sections; the barrier itself stays poll-based, so nothing sleeps while
//! holding the lock.

use crate::mmap::SharedMapping;
use crate::ShmError;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Coord file magic: `b"TSCOORD1"` little-endian.
const MAGIC: u64 = u64::from_le_bytes(*b"TSCOORD1");
/// On-disk format version. v2 added the shared monotonic-clock word
/// (`W_MONO`) that admission expiry is measured against.
const VERSION: u64 = 2;

/// Most shards a shared cell can coordinate (one bit per shard in each
/// decision entry's unapplied mask).
pub const MAX_COORD_SHARDS: usize = 64;
/// Decision-table capacity: distinct consumers with a live memo or a
/// pending (unapplied) admission at one time.
const MAX_DECISIONS: usize = 128;

// Word-indexed layout. Everything is a u64 so the whole file is one
// naturally-aligned atomic array.
const W_MAGIC: usize = 0;
const W_VERSION: usize = 1;
const W_LOCK: usize = 2;
const W_SHARDS: usize = 3;
const W_GENERATION: usize = 4;
const W_ARRIVED: usize = 5;
const W_PENDING_EPOCH: usize = 6;
const W_EPOCH: usize = 7;
const W_STOPPED: usize = 8;
/// The cooperative monotonic clock (ms): the high-water mark of every
/// participant's `Instant`-derived elapsed time. Admission expiry is
/// measured on this timeline, never on wall clocks — an NTP step
/// (backwards *or* forwards) in any participating process cannot make
/// admissions immortal or expire them instantly.
const W_MONO: usize = 9;
const W_ACTIVE: usize = 10;
const W_PUBLISHED: usize = W_ACTIVE + MAX_COORD_SHARDS;
const W_PIN_LIMIT: usize = W_PUBLISHED + MAX_COORD_SHARDS;
const W_ENTRIES: usize = W_PIN_LIMIT + MAX_COORD_SHARDS;

// Decision entry fields (per-entry word offsets).
const E_ID: usize = 0; // consumer id; 0 = free slot
const E_DECISION: usize = 1; // wire code of the memoized decision
const E_GENERATION: usize = 2; // barrier generation the memo belongs to
const E_DECIDED_MS: usize = 3; // shared-monotonic ms, for cross-process expiry
const E_UNAPPLIED: usize = 4; // bitmask of shards yet to apply
const ENTRY_WORDS: usize = 5;

const TOTAL_WORDS: usize = W_ENTRIES + MAX_DECISIONS * ENTRY_WORDS;

/// The group-level outcome of a consumer's join, as stored in a shared
/// cell. The core crate maps this 1:1 onto its `GroupJoin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordDecision {
    /// Admit now; each shard replays its pinned epoch prefix.
    AdmitReplay,
    /// Admit at each shard's current position.
    AdmitAtCurrent,
    /// Defer to the next coordinated epoch boundary.
    WaitNextEpoch,
}

impl CoordDecision {
    fn code(self) -> u64 {
        match self {
            CoordDecision::AdmitReplay => 1,
            CoordDecision::AdmitAtCurrent => 2,
            CoordDecision::WaitNextEpoch => 3,
        }
    }

    fn from_code(code: u64) -> Self {
        match code {
            1 => CoordDecision::AdmitReplay,
            2 => CoordDecision::AdmitAtCurrent,
            _ => CoordDecision::WaitNextEpoch,
        }
    }
}

/// A shared-memory epoch-coordinator cell: the cross-process backing for
/// the core crate's `EpochCoordinator`. One process [`ShmCoordCell::create`]s
/// the file (and unlinks it on drop); every other shard process
/// [`ShmCoordCell::open`]s it. All methods take `&self` and synchronize
/// through the in-file spinlock, so one cell can also be shared by
/// threads within a process.
pub struct ShmCoordCell {
    map: SharedMapping,
    path: PathBuf,
    shards: usize,
    apply_timeout_ms: u64,
    owner: bool,
    /// This mapping's monotonic reference point.
    clock_base: Instant,
    /// The shared clock's value when this mapping joined; the local
    /// contribution to `W_MONO` is `clock_base_ms + clock_base.elapsed()`,
    /// continuing the shared timeline instead of restarting it.
    clock_base_ms: u64,
    /// Test-only injected skew, to prove expiry is immune to it.
    clock_skew_ms: AtomicI64,
}

// Safety: all mutation goes through atomics under the in-file spinlock.
unsafe impl Send for ShmCoordCell {}
unsafe impl Sync for ShmCoordCell {}

impl std::fmt::Debug for ShmCoordCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmCoordCell")
            .field("path", &self.path)
            .field("shards", &self.shards)
            .finish()
    }
}

impl ShmCoordCell {
    /// Creates (or truncates) the coordination file at `path` for a group
    /// of `shards` pipelines. `apply_timeout` bounds how long a decided
    /// admission may stay unapplied before it is abandoned.
    pub fn create(
        path: impl AsRef<Path>,
        shards: usize,
        apply_timeout: Duration,
    ) -> Result<Self, ShmError> {
        if shards == 0 || shards > MAX_COORD_SHARDS {
            return Err(ShmError::Io(format!(
                "coordinator cell supports 1..={MAX_COORD_SHARDS} shards, got {shards}"
            )));
        }
        let path = path.as_ref().to_path_buf();
        let map = SharedMapping::create(&path, TOTAL_WORDS * 8)?;
        let cell = Self {
            map,
            path,
            shards,
            apply_timeout_ms: apply_timeout.as_millis().max(1) as u64,
            owner: true,
            clock_base: Instant::now(),
            clock_base_ms: 0,
            clock_skew_ms: AtomicI64::new(0),
        };
        for shard in 0..shards {
            cell.word(W_ACTIVE + shard).store(1, Ordering::SeqCst);
        }
        cell.word(W_SHARDS).store(shards as u64, Ordering::SeqCst);
        cell.word(W_VERSION).store(VERSION, Ordering::SeqCst);
        // Magic last: an `open` racing the create never sees a
        // half-initialized header as valid.
        cell.word(W_MAGIC).store(MAGIC, Ordering::SeqCst);
        Ok(cell)
    }

    /// Maps a coordination file created by another process. The shard
    /// count comes from the file header.
    pub fn open(path: impl AsRef<Path>, apply_timeout: Duration) -> Result<Self, ShmError> {
        let path = path.as_ref().to_path_buf();
        let map = SharedMapping::open(&path)?;
        if map.len() < TOTAL_WORDS * 8 {
            return Err(ShmError::Io("coordinator file too small".into()));
        }
        // Safety: offsets are within the (validated-length) mapping and
        // 8-aligned.
        let read = |idx: usize| unsafe {
            (*(map.ptr().add(idx * 8) as *const AtomicU64)).load(Ordering::SeqCst)
        };
        if read(W_MAGIC) != MAGIC {
            return Err(ShmError::Io(format!(
                "{} is not a coordinator file",
                path.display()
            )));
        }
        if read(W_VERSION) != VERSION {
            return Err(ShmError::Io("coordinator version mismatch".into()));
        }
        let shards = read(W_SHARDS) as usize;
        if shards == 0 || shards > MAX_COORD_SHARDS {
            return Err(ShmError::Io(format!(
                "coordinator file advertises {shards} shards"
            )));
        }
        let clock_base_ms = read(W_MONO);
        Ok(Self {
            map,
            path,
            shards,
            apply_timeout_ms: apply_timeout.as_millis().max(1) as u64,
            owner: false,
            clock_base: Instant::now(),
            clock_base_ms,
            clock_skew_ms: AtomicI64::new(0),
        })
    }

    /// Number of shards the cell was created for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn word(&self, idx: usize) -> &AtomicU64 {
        debug_assert!(idx < TOTAL_WORDS);
        // Safety: idx is within the mapping (checked at create/open) and
        // every word is 8-aligned.
        unsafe { &*(self.map.ptr().add(idx * 8) as *const AtomicU64) }
    }

    fn entry(&self, slot: usize, field: usize) -> &AtomicU64 {
        self.word(W_ENTRIES + slot * ENTRY_WORDS + field)
    }

    /// Runs `f` with the in-file spinlock held.
    fn locked<R>(&self, f: impl FnOnce() -> R) -> R {
        let lock = self.word(W_LOCK);
        loop {
            if lock
                .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let out = f();
        lock.store(0, Ordering::Release);
        out
    }

    /// Lock held: reads and advances the cooperative monotonic clock.
    ///
    /// Each call folds this mapping's `Instant`-derived elapsed time into
    /// the shared high-water mark, so the returned value never decreases
    /// across any sequence of calls by any participant — even when their
    /// wall clocks step in either direction. A participant whose local
    /// monotonic clock lags simply reads the high-water mark; one that
    /// leads advances it. Decision stamps and expiry checks both read
    /// this clock, so they live on one timeline.
    fn mono_ms_locked(&self) -> u64 {
        let shared = self.word(W_MONO).load(Ordering::SeqCst);
        let local = (self.clock_base_ms + self.clock_base.elapsed().as_millis() as u64)
            .saturating_add_signed(self.clock_skew_ms.load(Ordering::Relaxed));
        let now = shared.max(local);
        self.word(W_MONO).store(now, Ordering::SeqCst);
        now
    }

    /// Test hook: skews this mapping's *local* clock contribution by `ms`
    /// (either sign), standing in for a host whose time source misbehaves.
    /// Expiry regression tests use it to prove admissions neither become
    /// immortal (backwards skew) nor expire instantly (forwards skew
    /// present before the decision).
    #[doc(hidden)]
    pub fn inject_clock_skew_ms(&self, ms: i64) {
        self.clock_skew_ms.store(ms, Ordering::Relaxed);
    }

    fn active_mask(&self) -> u64 {
        let mut mask = 0u64;
        for shard in 0..self.shards {
            if self.word(W_ACTIVE + shard).load(Ordering::SeqCst) != 0 {
                mask |= 1 << shard;
            }
        }
        mask
    }

    /// Lock held: expire stale admissions, then open the barrier when
    /// every active shard arrived and every decided admission was applied
    /// (or abandoned) everywhere.
    fn try_open_locked(&self) {
        let now = self.mono_ms_locked();
        let active_mask = self.active_mask();
        let mut pending = false;
        for slot in 0..MAX_DECISIONS {
            if self.entry(slot, E_ID).load(Ordering::SeqCst) == 0 {
                continue;
            }
            let mask = self.entry(slot, E_UNAPPLIED).load(Ordering::SeqCst);
            if mask != 0 {
                let decided = self.entry(slot, E_DECIDED_MS).load(Ordering::SeqCst);
                if now.saturating_sub(decided) >= self.apply_timeout_ms {
                    self.entry(slot, E_UNAPPLIED).store(0, Ordering::SeqCst);
                } else if mask & active_mask != 0 {
                    pending = true;
                }
            }
        }
        let active = active_mask.count_ones() as u64;
        let arrived = self.word(W_ARRIVED).load(Ordering::SeqCst);
        if active > 0 && arrived >= active && !pending {
            let generation = self.word(W_GENERATION).load(Ordering::SeqCst) + 1;
            self.word(W_GENERATION).store(generation, Ordering::SeqCst);
            self.word(W_ARRIVED).store(0, Ordering::SeqCst);
            let epoch = self.word(W_PENDING_EPOCH).load(Ordering::SeqCst);
            self.word(W_EPOCH).store(epoch, Ordering::SeqCst);
            for shard in 0..self.shards {
                self.word(W_PUBLISHED + shard).store(0, Ordering::SeqCst);
            }
            // Memos from the closed epoch died with the generation bump;
            // reclaim every entry with nothing left to apply.
            for slot in 0..MAX_DECISIONS {
                if self.entry(slot, E_ID).load(Ordering::SeqCst) != 0
                    && self.entry(slot, E_UNAPPLIED).load(Ordering::SeqCst) == 0
                {
                    self.entry(slot, E_ID).store(0, Ordering::SeqCst);
                }
            }
        }
    }

    /// A shard announces it finished the previous epoch and is ready to
    /// publish `epoch`. Returns the barrier generation to wait for via
    /// [`ShmCoordCell::reached`].
    pub fn arrive(&self, shard: u32, epoch: u64, pin_limit: u64) -> u64 {
        self.locked(|| {
            self.word(W_PIN_LIMIT + shard as usize)
                .store(pin_limit, Ordering::SeqCst);
            self.word(W_PUBLISHED + shard as usize)
                .store(0, Ordering::SeqCst);
            self.word(W_PENDING_EPOCH).store(epoch, Ordering::SeqCst);
            let arrived = self.word(W_ARRIVED).load(Ordering::SeqCst) + 1;
            self.word(W_ARRIVED).store(arrived, Ordering::SeqCst);
            let target = self.word(W_GENERATION).load(Ordering::SeqCst) + 1;
            self.try_open_locked();
            target
        })
    }

    /// True once barrier generation `target` has opened.
    pub fn reached(&self, target: u64) -> bool {
        self.locked(|| {
            if self.word(W_GENERATION).load(Ordering::SeqCst) < target {
                self.try_open_locked();
            }
            self.word(W_GENERATION).load(Ordering::SeqCst) >= target
        })
    }

    /// The epoch most recently announced to the barrier.
    pub fn pending_epoch(&self) -> u64 {
        self.locked(|| self.word(W_PENDING_EPOCH).load(Ordering::SeqCst))
    }

    /// A shard reports its publish progress within the current epoch.
    pub fn note_published(&self, shard: u32, published_in_epoch: u64) {
        self.locked(|| {
            self.word(W_PUBLISHED + shard as usize)
                .store(published_in_epoch, Ordering::SeqCst);
        })
    }

    /// Lock held: no shard crossed into the next boundary and every
    /// active shard is still within its rubberband pin window.
    fn group_window_open_locked(&self) -> bool {
        if self.word(W_ARRIVED).load(Ordering::SeqCst) != 0 {
            return false;
        }
        for shard in 0..self.shards {
            if self.word(W_ACTIVE + shard).load(Ordering::SeqCst) == 0 {
                continue;
            }
            let published = self.word(W_PUBLISHED + shard).load(Ordering::SeqCst);
            let limit = self.word(W_PIN_LIMIT + shard).load(Ordering::SeqCst);
            if published > limit {
                return false;
            }
        }
        true
    }

    /// True while shard `shard` must keep its epoch prefix pinned.
    pub fn pin_window_open(&self, shard: u32) -> bool {
        self.locked(|| {
            if self.group_window_open_locked() {
                return true;
            }
            let bit = 1u64 << shard;
            (0..MAX_DECISIONS).any(|slot| {
                self.entry(slot, E_ID).load(Ordering::SeqCst) != 0
                    && self.entry(slot, E_UNAPPLIED).load(Ordering::SeqCst) & bit != 0
            })
        })
    }

    /// Decides (or recalls) the group outcome for consumer `id`'s join,
    /// returning the decision and the epoch it was made for. Mirrors the
    /// local coordinator's policy exactly; the memo lives in the decision
    /// table and is keyed by (consumer id, barrier generation).
    pub fn decide_join(&self, id: u64, no_consumers_locally: bool) -> (CoordDecision, u64) {
        self.locked(|| {
            let generation = self.word(W_GENERATION).load(Ordering::SeqCst);
            let epoch = self.word(W_EPOCH).load(Ordering::SeqCst);
            let mut free = None;
            for slot in 0..MAX_DECISIONS {
                let slot_id = self.entry(slot, E_ID).load(Ordering::SeqCst);
                if slot_id == id
                    && self.entry(slot, E_GENERATION).load(Ordering::SeqCst) == generation
                {
                    let code = self.entry(slot, E_DECISION).load(Ordering::SeqCst);
                    return (CoordDecision::from_code(code), epoch);
                }
                // A slot is reusable when empty, or when it holds only a
                // stale memo with nothing left to apply.
                if free.is_none()
                    && (slot_id == 0
                        || (self.entry(slot, E_UNAPPLIED).load(Ordering::SeqCst) == 0
                            && self.entry(slot, E_GENERATION).load(Ordering::SeqCst) != generation))
                {
                    free = Some(slot);
                }
            }
            let stopped = self.word(W_STOPPED).load(Ordering::SeqCst) != 0;
            let arrived = self.word(W_ARRIVED).load(Ordering::SeqCst);
            let active_mask = self.active_mask();
            let all_at_zero = (0..self.shards)
                .filter(|&s| active_mask & (1 << s) != 0)
                .all(|s| self.word(W_PUBLISHED + s).load(Ordering::SeqCst) == 0);
            let decision = if stopped || arrived > 0 {
                CoordDecision::WaitNextEpoch
            } else if all_at_zero {
                CoordDecision::AdmitReplay
            } else if no_consumers_locally {
                CoordDecision::AdmitAtCurrent
            } else if self.group_window_open_locked() {
                CoordDecision::AdmitReplay
            } else {
                CoordDecision::WaitNextEpoch
            };
            let Some(slot) = free else {
                // Table full: answer conservatively without a memo. Safe
                // (WaitNextEpoch never pins anything) but only reachable
                // with > MAX_DECISIONS simultaneous joiners.
                return (CoordDecision::WaitNextEpoch, epoch);
            };
            self.entry(slot, E_ID).store(id, Ordering::SeqCst);
            self.entry(slot, E_DECISION)
                .store(decision.code(), Ordering::SeqCst);
            self.entry(slot, E_GENERATION)
                .store(generation, Ordering::SeqCst);
            self.entry(slot, E_DECIDED_MS)
                .store(self.mono_ms_locked(), Ordering::SeqCst);
            let mask = match decision {
                CoordDecision::AdmitReplay | CoordDecision::AdmitAtCurrent => active_mask,
                CoordDecision::WaitNextEpoch => 0,
            };
            self.entry(slot, E_UNAPPLIED).store(mask, Ordering::SeqCst);
            (decision, epoch)
        })
    }

    /// Shard `shard` applied consumer `id`'s admission.
    pub fn applied(&self, shard: u32, id: u64) {
        self.locked(|| {
            let bit = 1u64 << shard;
            for slot in 0..MAX_DECISIONS {
                if self.entry(slot, E_ID).load(Ordering::SeqCst) == id {
                    let mask = self.entry(slot, E_UNAPPLIED).load(Ordering::SeqCst);
                    self.entry(slot, E_UNAPPLIED)
                        .store(mask & !bit, Ordering::SeqCst);
                }
            }
            self.try_open_locked();
        })
    }

    /// Consumer `id` left or was detached: forget any admission still
    /// waiting to be applied for it.
    pub fn abandon(&self, id: u64) {
        self.locked(|| {
            for slot in 0..MAX_DECISIONS {
                if self.entry(slot, E_ID).load(Ordering::SeqCst) == id {
                    self.entry(slot, E_UNAPPLIED).store(0, Ordering::SeqCst);
                }
            }
            self.try_open_locked();
        })
    }

    /// Shard `shard`'s producer loop exited; it no longer counts toward
    /// barriers or admission decisions.
    pub fn retire(&self, shard: u32) {
        self.locked(|| {
            if self.word(W_ACTIVE + shard as usize).load(Ordering::SeqCst) == 0 {
                return;
            }
            self.word(W_ACTIVE + shard as usize)
                .store(0, Ordering::SeqCst);
            let bit = 1u64 << shard;
            for slot in 0..MAX_DECISIONS {
                if self.entry(slot, E_ID).load(Ordering::SeqCst) != 0 {
                    let mask = self.entry(slot, E_UNAPPLIED).load(Ordering::SeqCst);
                    self.entry(slot, E_UNAPPLIED)
                        .store(mask & !bit, Ordering::SeqCst);
                }
            }
            self.try_open_locked();
        })
    }

    /// Asks every shard to wind down.
    pub fn stop(&self) {
        self.locked(|| self.word(W_STOPPED).store(1, Ordering::SeqCst))
    }

    /// True once [`ShmCoordCell::stop`] was called (by any process).
    pub fn is_stopped(&self) -> bool {
        self.locked(|| self.word(W_STOPPED).load(Ordering::SeqCst) != 0)
    }
}

impl Drop for ShmCoordCell {
    fn drop(&mut self) {
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ts-coord-test-{}-{}-{tag}.coord",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn barrier_across_two_mappings() {
        // Two mappings of one file stand in for two shard processes (the
        // integration suite covers real fork/exec).
        let path = temp_path("cross");
        let a = ShmCoordCell::create(&path, 2, T).unwrap();
        let b = ShmCoordCell::open(&path, T).unwrap();
        assert_eq!(b.shards(), 2);
        let g = a.arrive(0, 0, 1);
        assert!(!a.reached(g), "one of two shards arrived");
        assert_eq!(b.arrive(1, 0, 1), g);
        assert!(a.reached(g), "barrier opened for the creator's mapping");
        assert!(b.reached(g), "…and for the opener's mapping");
        // The next epoch needs a fresh round of arrivals.
        let g2 = b.arrive(1, 1, 1);
        assert!(!a.reached(g2));
    }

    #[test]
    fn decisions_memoized_across_mappings() {
        let path = temp_path("memo");
        let a = ShmCoordCell::create(&path, 2, T).unwrap();
        let b = ShmCoordCell::open(&path, T).unwrap();
        let g = a.arrive(0, 0, 2);
        let _ = b.arrive(1, 0, 2);
        assert!(a.reached(g));
        a.note_published(0, 1);
        b.note_published(1, 1);
        assert_eq!(a.decide_join(7, false).0, CoordDecision::AdmitReplay);
        // The other process races past its pin boundary…
        b.note_published(1, 5);
        // …but recalls the same memo and keeps pinning until applied.
        assert_eq!(b.decide_join(7, false).0, CoordDecision::AdmitReplay);
        assert!(b.pin_window_open(1));
        a.applied(0, 7);
        b.applied(1, 7);
        assert!(!b.pin_window_open(1));
        // A fresh joiner now waits: shard 1 is past its window.
        assert_eq!(b.decide_join(8, false).0, CoordDecision::WaitNextEpoch);
    }

    #[test]
    fn expired_admissions_release_the_barrier() {
        let path = temp_path("expire");
        let a = ShmCoordCell::create(&path, 2, Duration::from_millis(40)).unwrap();
        let b = ShmCoordCell::open(&path, Duration::from_millis(40)).unwrap();
        let g = a.arrive(0, 0, 5);
        let _ = b.arrive(1, 0, 5);
        assert!(a.reached(g));
        a.note_published(0, 1);
        assert_eq!(a.decide_join(3, false).0, CoordDecision::AdmitReplay);
        a.applied(0, 3); // shard 1's process never applies
        let g2 = a.arrive(0, 1, 5);
        let _ = b.arrive(1, 1, 5);
        assert!(!b.reached(g2), "barrier waits on the unapplied admission");
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.reached(g2), "expired admission abandoned");
    }

    #[test]
    fn expiry_survives_backwards_clock_skew() {
        // Regression: with unix-ms stamps, a wall clock stepping backwards
        // after the decision made `now.saturating_sub(decided)` stick at 0
        // forever — the admission never expired and the barrier deadlocked.
        // On the shared monotonic clock a skewed participant cannot drag
        // time backwards (it just reads the high-water mark), so expiry
        // still happens on schedule.
        let path = temp_path("skew-back");
        let a = ShmCoordCell::create(&path, 2, Duration::from_millis(40)).unwrap();
        let b = ShmCoordCell::open(&path, Duration::from_millis(40)).unwrap();
        let g = a.arrive(0, 0, 5);
        let _ = b.arrive(1, 0, 5);
        assert!(a.reached(g));
        a.note_published(0, 1);
        assert_eq!(a.decide_join(3, false).0, CoordDecision::AdmitReplay);
        a.applied(0, 3); // shard 1's process never applies
                         // Shard 1's host "steps back" by a day.
        b.inject_clock_skew_ms(-86_400_000);
        let g2 = a.arrive(0, 1, 5);
        let _ = b.arrive(1, 1, 5);
        assert!(!b.reached(g2), "barrier waits on the unapplied admission");
        std::thread::sleep(Duration::from_millis(60));
        // The healthy participant advances the shared clock past the
        // timeout; the skewed one reads the high-water mark. (A skewed
        // mapping alone never *advances* time — it defers to the
        // healthiest clock in the group, which is the point.)
        assert!(a.reached(g2), "healthy participant expires the admission");
        assert!(
            b.reached(g2),
            "skewed participant observes the expiry via the shared clock"
        );
    }

    #[test]
    fn fresh_admissions_survive_forwards_clock_skew() {
        // Regression: with unix-ms stamps, a wall clock stepping forwards
        // between two participants expired admissions the moment they were
        // decided (double-admit / lost replay). On the shared clock the
        // decision stamp and the expiry check read the same timeline, so
        // a decision made *after* a huge forward step is still fresh.
        let path = temp_path("skew-fwd");
        let a = ShmCoordCell::create(&path, 2, Duration::from_secs(5)).unwrap();
        let b = ShmCoordCell::open(&path, Duration::from_secs(5)).unwrap();
        // Shard 1's host is a day "ahead"; touching the barrier propagates
        // the skew into the shared clock before anything is decided.
        b.inject_clock_skew_ms(86_400_000);
        let g = a.arrive(0, 0, 5);
        let _ = b.arrive(1, 0, 5);
        assert!(b.reached(g));
        a.note_published(0, 1);
        assert_eq!(a.decide_join(3, false).0, CoordDecision::AdmitReplay);
        a.applied(0, 3); // b has not applied yet
        let g2 = a.arrive(0, 1, 5);
        let _ = b.arrive(1, 1, 5);
        // Neither mapping may treat the fresh admission as expired, no
        // matter whose clock answers the check.
        assert!(!a.reached(g2), "fresh admission must not expire instantly");
        assert!(!b.reached(g2), "fresh admission must not expire instantly");
        b.applied(1, 3);
        assert!(a.reached(g2), "barrier opens once actually applied");
    }

    #[test]
    fn retire_stop_and_abandon_are_shared() {
        let path = temp_path("retire");
        let a = ShmCoordCell::create(&path, 2, T).unwrap();
        let b = ShmCoordCell::open(&path, T).unwrap();
        let g = a.arrive(0, 0, 5);
        assert!(!a.reached(g));
        b.retire(1);
        assert!(a.reached(g), "lone survivor proceeds");
        a.note_published(0, 1);
        assert_eq!(a.decide_join(11, false).0, CoordDecision::AdmitReplay);
        assert!(a.pin_window_open(0));
        b.abandon(11);
        a.note_published(0, 6); // past the pin limit, nothing unapplied
        assert!(!a.pin_window_open(0));
        b.stop();
        assert!(a.is_stopped());
        assert_eq!(a.decide_join(12, false).0, CoordDecision::WaitNextEpoch);
    }

    #[test]
    fn create_and_open_validate_the_header() {
        assert!(matches!(
            ShmCoordCell::create(temp_path("zero"), 0, T),
            Err(ShmError::Io(_))
        ));
        assert!(matches!(
            ShmCoordCell::create(temp_path("many"), MAX_COORD_SHARDS + 1, T),
            Err(ShmError::Io(_))
        ));
        // An arena file is not a coordinator file.
        let arena_path = temp_path("notcoord");
        let _arena = crate::ShmArena::create(&arena_path, 2, 4096).unwrap();
        assert!(matches!(
            ShmCoordCell::open(&arena_path, T),
            Err(ShmError::Io(_))
        ));
    }

    use std::sync::atomic::AtomicU64;
}
