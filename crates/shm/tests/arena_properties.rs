//! Property tests of arena slot reuse: arbitrary alloc/attach/release
//! interleavings never confuse generations — a handle either reads exactly
//! the bytes written for it or fails `Stale`, never another occupant's
//! data.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use ts_shm::{ShmArena, ShmError, ShmHandle};

fn temp_arena(nslots: usize, slot_size: usize) -> std::sync::Arc<ShmArena> {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "ts-shm-prop-{}-{}.arena",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    ShmArena::create(path, nslots, slot_size).unwrap()
}

/// Deterministic, distinctive content for the `k`-th allocation.
fn content(k: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (k.wrapping_mul(31).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

proptest! {
    /// Model-checked slot reuse. Ops: 0 = alloc, 1 = release a live
    /// handle, 2 = attach+verify a live handle, 3 = attach a released
    /// (stale) handle and expect failure.
    #[test]
    fn no_generation_confusion(
        nslots in 1usize..6,
        ops in prop::collection::vec((0u8..4, 0usize..32, 1usize..48), 1..120)
    ) {
        let arena = temp_arena(nslots, 64);
        let mut live: Vec<(ShmHandle, Vec<u8>)> = Vec::new();
        let mut released: Vec<ShmHandle> = Vec::new();
        let mut counter = 0u64;
        for (op, pick, len) in ops {
            match op {
                0 => {
                    counter += 1;
                    let bytes = content(counter, len);
                    match arena.alloc(&bytes) {
                        Ok(h) => {
                            prop_assert_eq!(h.len as usize, len);
                            live.push((h, bytes));
                        }
                        Err(ShmError::Full) => {
                            // Full is only legal when every slot is held.
                            prop_assert_eq!(live.len(), nslots);
                        }
                        Err(e) => prop_assert!(false, "unexpected alloc error {e:?}"),
                    }
                }
                1 if !live.is_empty() => {
                    let (h, _) = live.remove(pick % live.len());
                    prop_assert!(arena.release(h), "releasing a live handle frees it");
                    released.push(h);
                }
                2 if !live.is_empty() => {
                    let (h, expected) = &live[pick % live.len()];
                    let view = arena.attach(*h).expect("live handle attaches");
                    prop_assert_eq!(&view[..], &expected[..]);
                }
                3 if !released.is_empty() => {
                    let h = released[pick % released.len()];
                    // A released handle must never resolve — even after its
                    // slot was reallocated to different bytes.
                    prop_assert!(matches!(arena.attach(h), Err(ShmError::Stale { .. })));
                    prop_assert!(!arena.release(h), "double release is a no-op");
                }
                _ => {}
            }
            prop_assert_eq!(arena.slots_in_use(), live.len());
        }
        // Drain: every slot frees, every stale handle stays dead.
        for (h, _) in live.drain(..) {
            arena.release(h);
        }
        prop_assert_eq!(arena.slots_in_use(), 0);
        for h in released {
            prop_assert!(arena.attach(h).is_err());
        }
    }

    /// Attach pins: released-while-attached slots keep their bytes until
    /// the view drops, then recycle.
    #[test]
    fn attach_pins_bytes_across_release(len in 1usize..48, reuse in 1usize..6) {
        let arena = temp_arena(1, 64); // single slot: maximal reuse pressure
        let bytes = content(7, len);
        let h = arena.alloc(&bytes).unwrap();
        let view = arena.attach(h).unwrap();
        arena.release(h);
        // The consumer still pins the only slot: allocation must fail Full,
        // and the bytes must be intact.
        prop_assert_eq!(arena.alloc(&[1]).unwrap_err(), ShmError::Full);
        prop_assert_eq!(&view[..], &bytes[..]);
        drop(view);
        // Now the slot recycles as many times as we like.
        for k in 0..reuse {
            let fresh = content(100 + k as u64, len);
            let h2 = arena.alloc(&fresh).unwrap();
            prop_assert!(matches!(arena.attach(h), Err(ShmError::Stale { .. })));
            let v2 = arena.attach(h2).unwrap();
            prop_assert_eq!(&v2[..], &fresh[..]);
            drop(v2);
            arena.release(h2);
        }
        prop_assert_eq!(arena.slots_in_use(), 0);
    }
}
