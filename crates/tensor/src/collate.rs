//! Collation: building batches (and producer batches) from samples.
//!
//! The producer "collates the data it receives from the data loader into
//! producer batch sizes" (§3.2.6, step 1 in Figure 5). [`stack0`] stacks
//! equally shaped samples into a batch with a new leading dimension;
//! [`cat0`] concatenates batches along the existing leading dimension —
//! that is how several loader batches fuse into one contiguous producer
//! batch slab (optionally in a pooled buffer via [`cat0_pooled`]).

use crate::pool::{MemoryPool, SlotPool};
use crate::shape::contiguous_strides;
use crate::storage::{fresh_storage_id, Storage};
use crate::{Result, Tensor, TensorError};
use std::sync::Arc;
use ts_device::DeviceId;
use ts_shm::ShmLease;

fn check_same_meta(tensors: &[Tensor], same_all_dims: bool) -> Result<()> {
    let first = &tensors[0];
    for t in &tensors[1..] {
        if t.dtype() != first.dtype() {
            return Err(TensorError::DType {
                expected: first.dtype(),
                got: t.dtype(),
            });
        }
        let (a, b) = if same_all_dims {
            (t.shape(), first.shape())
        } else {
            (&t.shape()[1..], &first.shape()[1..])
        };
        if a != b {
            return Err(TensorError::Shape(format!(
                "collate shape mismatch: {:?} vs {:?}",
                t.shape(),
                first.shape()
            )));
        }
        if t.device() != first.device() {
            return Err(TensorError::Device(format!(
                "collate device mismatch: {} vs {}",
                t.device(),
                first.device()
            )));
        }
    }
    Ok(())
}

/// Stacks equally shaped tensors into a new leading dimension.
pub fn stack0(tensors: &[Tensor]) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Shape("stack0 of zero tensors".to_string()));
    }
    check_same_meta(tensors, true)?;
    let first = &tensors[0];
    let mut shape = Vec::with_capacity(first.ndim() + 1);
    shape.push(tensors.len());
    shape.extend_from_slice(first.shape());
    let mut data = Vec::with_capacity(tensors.len() * first.view_bytes());
    for t in tensors {
        data.extend_from_slice(&t.gather_bytes());
    }
    Tensor::from_bytes(data, first.dtype(), &shape, first.device())
}

/// Concatenates tensors along dimension 0.
pub fn cat0(tensors: &[Tensor]) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Shape("cat0 of zero tensors".to_string()));
    }
    check_same_meta(tensors, false)?;
    let first = &tensors[0];
    let rows: usize = tensors.iter().map(|t| t.shape()[0]).sum();
    let mut shape = first.shape().to_vec();
    shape[0] = rows;
    let mut data = Vec::with_capacity(rows * first.view_bytes() / first.shape()[0].max(1));
    for t in tensors {
        data.extend_from_slice(&t.gather_bytes());
    }
    Tensor::from_bytes(data, first.dtype(), &shape, first.device())
}

/// [`cat0`] into a buffer checked out from `pool`; the slab returns to the
/// pool when the last view over it drops. The pool's buffer length must be
/// at least the concatenated byte size (excess bytes stay unused).
pub fn cat0_pooled(tensors: &[Tensor], pool: &MemoryPool, device: DeviceId) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Shape(
            "cat0_pooled of zero tensors".to_string(),
        ));
    }
    check_same_meta(tensors, false)?;
    let first = &tensors[0];
    let rows: usize = tensors.iter().map(|t| t.shape()[0]).sum();
    let mut shape = first.shape().to_vec();
    shape[0] = rows;
    let total_bytes: usize = tensors.iter().map(|t| t.view_bytes()).sum();
    if pool.buf_len() < total_bytes {
        return Err(TensorError::Shape(format!(
            "pool slab of {} B too small for producer batch of {} B",
            pool.buf_len(),
            total_bytes
        )));
    }
    let mut buf = pool.checkout();
    let mut cursor = 0;
    for t in tensors {
        let bytes = t.gather_bytes();
        buf[cursor..cursor + bytes.len()].copy_from_slice(&bytes);
        cursor += bytes.len();
    }
    let storage = Arc::new(Storage::new_pooled(buf, device, pool.return_handle()));
    Tensor::from_parts(
        storage,
        first.dtype(),
        shape.clone(),
        contiguous_strides(&shape),
        0,
    )
}

/// [`cat0`] directly into a leased shared-memory slot from `pool`: the
/// concatenated bytes are written exactly once, into the arena slot that
/// consumers will map, so the later publish moves no payload bytes — the
/// collation *is* the placement.
///
/// The returned tensor's storage is a zero-copy view of the leased slot
/// (under a fresh storage id), and the returned [`ShmLease`] still holds
/// the lease's producer reference: at publish time,
/// [`ShmLease::into_handle`] it into
/// [`crate::SharedRegistry::register_placed`] so the slot recycles through
/// `pool` when the registration releases. An item that never reaches the
/// publish stage (shutdown, epoch abort) simply drops the lease, freeing
/// the slot. Fails with [`TensorError::Arena`] when no slot can be leased
/// (arena full, or every recyclable slot still pinned by readers) —
/// callers fall back to the copying collate path.
pub fn cat0_leased(
    tensors: &[Tensor],
    pool: &SlotPool,
    device: DeviceId,
) -> Result<(Tensor, ShmLease)> {
    if tensors.is_empty() {
        return Err(TensorError::Shape(
            "cat0_leased of zero tensors".to_string(),
        ));
    }
    check_same_meta(tensors, false)?;
    let first = &tensors[0];
    let rows: usize = tensors.iter().map(|t| t.shape()[0]).sum();
    let mut shape = first.shape().to_vec();
    shape[0] = rows;
    let total_bytes: usize = tensors.iter().map(|t| t.view_bytes()).sum();
    let mut lease = pool
        .lease(total_bytes)
        .map_err(|e| TensorError::Arena(e.to_string()))?;
    let dst = lease.bytes_mut();
    let mut cursor = 0;
    for t in tensors {
        let bytes = t.gather_bytes();
        dst[cursor..cursor + bytes.len()].copy_from_slice(&bytes);
        cursor += bytes.len();
    }
    // The tensor's storage pins the slot with its own read reference; the
    // producer reference stays with the lease we hand back.
    let view = pool
        .arena()
        .attach(lease.handle())
        .map_err(|e| TensorError::Arena(e.to_string()))?;
    let storage = Arc::new(Storage::from_shm_view(fresh_storage_id(), view, device));
    let tensor = Tensor::from_parts(
        storage,
        first.dtype(),
        shape.clone(),
        contiguous_strides(&shape),
        0,
    )?;
    Ok((tensor, lease))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u8], shape: &[usize]) -> Tensor {
        Tensor::from_u8(vals.to_vec(), shape, DeviceId::Cpu).unwrap()
    }

    #[test]
    fn stack_adds_leading_dim() {
        let s = stack0(&[t(&[1, 2], &[2]), t(&[3, 4], &[2]), t(&[5, 6], &[2])]).unwrap();
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.to_vec_u8().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn cat_extends_leading_dim() {
        let c = cat0(&[t(&[1, 2, 3, 4], &[2, 2]), t(&[5, 6], &[1, 2])]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.to_vec_u8().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn mismatched_inner_dims_rejected() {
        assert!(cat0(&[t(&[1, 2], &[1, 2]), t(&[1, 2, 3], &[1, 3])]).is_err());
        assert!(stack0(&[t(&[1, 2], &[2]), t(&[1, 2, 3], &[3])]).is_err());
    }

    #[test]
    fn mismatched_dtype_rejected() {
        let a = t(&[1, 2], &[2]);
        let b = Tensor::from_f32(&[1.0, 2.0], &[2], DeviceId::Cpu).unwrap();
        assert!(matches!(
            stack0(&[a, b]).unwrap_err(),
            TensorError::DType { .. }
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(stack0(&[]).is_err());
        assert!(cat0(&[]).is_err());
    }

    #[test]
    fn pooled_cat_reuses_slab() {
        let pool = MemoryPool::new(16, 2);
        let parts = [t(&[1, 2, 3, 4], &[2, 2]), t(&[5, 6, 7, 8], &[2, 2])];
        {
            let producer_batch = cat0_pooled(&parts, &pool, DeviceId::Gpu(0)).unwrap();
            assert_eq!(producer_batch.shape(), &[4, 2]);
            assert_eq!(producer_batch.device(), DeviceId::Gpu(0));
            assert_eq!(
                producer_batch.to_vec_u8().unwrap(),
                vec![1, 2, 3, 4, 5, 6, 7, 8]
            );
            // slices keep the slab alive
            let slice = producer_batch.narrow(0, 1, 2).unwrap();
            drop(producer_batch);
            assert_eq!(slice.to_vec_u8().unwrap(), vec![3, 4, 5, 6]);
        }
        // slab returned once all views dropped
        assert_eq!(pool.free_count(), 1);
        let (_, misses, returned) = pool.stats();
        assert_eq!((misses, returned), (1, 1));
    }

    #[test]
    fn leased_cat_collates_into_the_arena_slot() {
        let path =
            std::env::temp_dir().join(format!("ts-collate-lease-{}.arena", std::process::id()));
        let arena = ts_shm::ShmArena::create(path, 4, 64).unwrap();
        let pool = SlotPool::new(arena.clone(), 2);
        let parts = [t(&[1, 2, 3, 4], &[2, 2]), t(&[5, 6, 7, 8], &[2, 2])];
        let (batch, lease) = cat0_leased(&parts, &pool, DeviceId::Cpu).unwrap();
        let handle = lease.into_handle();
        assert_eq!(batch.shape(), &[4, 2]);
        assert!(
            batch.storage().is_shared_memory(),
            "tensor IS the slot view"
        );
        assert_eq!(batch.to_vec_u8().unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // The slot holds the same bytes — no second placement needed.
        assert_eq!(
            &arena.attach(handle).unwrap()[..],
            &[1, 2, 3, 4, 5, 6, 7, 8]
        );
        drop(batch);
        pool.reclaim(handle);
        // Steady state: the next collation recycles the same slot.
        let (again, lease2) = cat0_leased(&parts, &pool, DeviceId::Cpu).unwrap();
        assert_eq!(again.to_vec_u8().unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let stats = pool.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        drop(again);
        pool.reclaim(lease2.into_handle());
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn dropped_lease_from_leased_cat_frees_its_slot() {
        let path = std::env::temp_dir().join(format!(
            "ts-collate-lease-drop-{}.arena",
            std::process::id()
        ));
        let arena = ts_shm::ShmArena::create(path, 4, 64).unwrap();
        let pool = SlotPool::new(arena.clone(), 2);
        let parts = [t(&[1, 2, 3, 4], &[2, 2])];
        let (batch, lease) = cat0_leased(&parts, &pool, DeviceId::Cpu).unwrap();
        // An item abandoned before publish: dropping tensor + lease must
        // leave nothing behind in the arena.
        drop(batch);
        drop(lease);
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn pooled_cat_checks_slab_size() {
        let pool = MemoryPool::new(4, 2);
        let parts = [t(&[1, 2, 3, 4], &[2, 2]), t(&[5, 6, 7, 8], &[2, 2])];
        assert!(cat0_pooled(&parts, &pool, DeviceId::Cpu).is_err());
    }
}
