//! Collation: building batches (and producer batches) from samples.
//!
//! The producer "collates the data it receives from the data loader into
//! producer batch sizes" (§3.2.6, step 1 in Figure 5). [`stack0`] stacks
//! equally shaped samples into a batch with a new leading dimension;
//! [`cat0`] concatenates batches along the existing leading dimension —
//! that is how several loader batches fuse into one contiguous producer
//! batch slab (optionally in a pooled buffer via [`cat0_pooled`]).

use crate::pool::MemoryPool;
use crate::shape::contiguous_strides;
use crate::storage::Storage;
use crate::{Result, Tensor, TensorError};
use std::sync::Arc;
use ts_device::DeviceId;

fn check_same_meta(tensors: &[Tensor], same_all_dims: bool) -> Result<()> {
    let first = &tensors[0];
    for t in &tensors[1..] {
        if t.dtype() != first.dtype() {
            return Err(TensorError::DType {
                expected: first.dtype(),
                got: t.dtype(),
            });
        }
        let (a, b) = if same_all_dims {
            (t.shape(), first.shape())
        } else {
            (&t.shape()[1..], &first.shape()[1..])
        };
        if a != b {
            return Err(TensorError::Shape(format!(
                "collate shape mismatch: {:?} vs {:?}",
                t.shape(),
                first.shape()
            )));
        }
        if t.device() != first.device() {
            return Err(TensorError::Device(format!(
                "collate device mismatch: {} vs {}",
                t.device(),
                first.device()
            )));
        }
    }
    Ok(())
}

/// Stacks equally shaped tensors into a new leading dimension.
pub fn stack0(tensors: &[Tensor]) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Shape("stack0 of zero tensors".to_string()));
    }
    check_same_meta(tensors, true)?;
    let first = &tensors[0];
    let mut shape = Vec::with_capacity(first.ndim() + 1);
    shape.push(tensors.len());
    shape.extend_from_slice(first.shape());
    let mut data = Vec::with_capacity(tensors.len() * first.view_bytes());
    for t in tensors {
        data.extend_from_slice(&t.gather_bytes());
    }
    Tensor::from_bytes(data, first.dtype(), &shape, first.device())
}

/// Concatenates tensors along dimension 0.
pub fn cat0(tensors: &[Tensor]) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Shape("cat0 of zero tensors".to_string()));
    }
    check_same_meta(tensors, false)?;
    let first = &tensors[0];
    let rows: usize = tensors.iter().map(|t| t.shape()[0]).sum();
    let mut shape = first.shape().to_vec();
    shape[0] = rows;
    let mut data = Vec::with_capacity(rows * first.view_bytes() / first.shape()[0].max(1));
    for t in tensors {
        data.extend_from_slice(&t.gather_bytes());
    }
    Tensor::from_bytes(data, first.dtype(), &shape, first.device())
}

/// [`cat0`] into a buffer checked out from `pool`; the slab returns to the
/// pool when the last view over it drops. The pool's buffer length must be
/// at least the concatenated byte size (excess bytes stay unused).
pub fn cat0_pooled(tensors: &[Tensor], pool: &MemoryPool, device: DeviceId) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Shape(
            "cat0_pooled of zero tensors".to_string(),
        ));
    }
    check_same_meta(tensors, false)?;
    let first = &tensors[0];
    let rows: usize = tensors.iter().map(|t| t.shape()[0]).sum();
    let mut shape = first.shape().to_vec();
    shape[0] = rows;
    let total_bytes: usize = tensors.iter().map(|t| t.view_bytes()).sum();
    if pool.buf_len() < total_bytes {
        return Err(TensorError::Shape(format!(
            "pool slab of {} B too small for producer batch of {} B",
            pool.buf_len(),
            total_bytes
        )));
    }
    let mut buf = pool.checkout();
    let mut cursor = 0;
    for t in tensors {
        let bytes = t.gather_bytes();
        buf[cursor..cursor + bytes.len()].copy_from_slice(&bytes);
        cursor += bytes.len();
    }
    let storage = Arc::new(Storage::new_pooled(buf, device, pool.return_handle()));
    Tensor::from_parts(
        storage,
        first.dtype(),
        shape.clone(),
        contiguous_strides(&shape),
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u8], shape: &[usize]) -> Tensor {
        Tensor::from_u8(vals.to_vec(), shape, DeviceId::Cpu).unwrap()
    }

    #[test]
    fn stack_adds_leading_dim() {
        let s = stack0(&[t(&[1, 2], &[2]), t(&[3, 4], &[2]), t(&[5, 6], &[2])]).unwrap();
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.to_vec_u8().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn cat_extends_leading_dim() {
        let c = cat0(&[t(&[1, 2, 3, 4], &[2, 2]), t(&[5, 6], &[1, 2])]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.to_vec_u8().unwrap(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn mismatched_inner_dims_rejected() {
        assert!(cat0(&[t(&[1, 2], &[1, 2]), t(&[1, 2, 3], &[1, 3])]).is_err());
        assert!(stack0(&[t(&[1, 2], &[2]), t(&[1, 2, 3], &[3])]).is_err());
    }

    #[test]
    fn mismatched_dtype_rejected() {
        let a = t(&[1, 2], &[2]);
        let b = Tensor::from_f32(&[1.0, 2.0], &[2], DeviceId::Cpu).unwrap();
        assert!(matches!(
            stack0(&[a, b]).unwrap_err(),
            TensorError::DType { .. }
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(stack0(&[]).is_err());
        assert!(cat0(&[]).is_err());
    }

    #[test]
    fn pooled_cat_reuses_slab() {
        let pool = MemoryPool::new(16, 2);
        let parts = [t(&[1, 2, 3, 4], &[2, 2]), t(&[5, 6, 7, 8], &[2, 2])];
        {
            let producer_batch = cat0_pooled(&parts, &pool, DeviceId::Gpu(0)).unwrap();
            assert_eq!(producer_batch.shape(), &[4, 2]);
            assert_eq!(producer_batch.device(), DeviceId::Gpu(0));
            assert_eq!(
                producer_batch.to_vec_u8().unwrap(),
                vec![1, 2, 3, 4, 5, 6, 7, 8]
            );
            // slices keep the slab alive
            let slice = producer_batch.narrow(0, 1, 2).unwrap();
            drop(producer_batch);
            assert_eq!(slice.to_vec_u8().unwrap(), vec![3, 4, 5, 6]);
        }
        // slab returned once all views dropped
        assert_eq!(pool.free_count(), 1);
        let (_, misses, returned) = pool.stats();
        assert_eq!((misses, returned), (1, 1));
    }

    #[test]
    fn pooled_cat_checks_slab_size() {
        let pool = MemoryPool::new(4, 2);
        let parts = [t(&[1, 2, 3, 4], &[2, 2]), t(&[5, 6, 7, 8], &[2, 2])];
        assert!(cat0_pooled(&parts, &pool, DeviceId::Cpu).is_err());
    }
}
