//! Tensor payloads: the pointer-plus-metadata packets TensorSocket ships
//! instead of data (§3.2.4).
//!
//! A [`TensorPayload`] is everything a consumer needs to rebuild a tensor
//! view with zero copies: the storage id (the "pointer"), device, dtype,
//! shape, strides and offset. The wire encoding is a tiny fixed-layout
//! little-endian format; the whole payload for a typical image batch is
//! under 100 bytes regardless of batch size — that is the entire point of
//! pointer sharing.

use crate::shape::contiguous_strides;
use crate::{DType, Result, SharedRegistry, Tensor, TensorError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ts_device::DeviceId;
use ts_shm::ShmHandle;

/// A packed description of a tensor view over a shared storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorPayload {
    /// Id of the shared storage ("device pointer").
    pub storage_id: u64,
    /// Device the storage lives on.
    pub device: DeviceId,
    /// Element type.
    pub dtype: DType,
    /// Dimension extents.
    pub shape: Vec<usize>,
    /// Strides in elements.
    pub strides: Vec<usize>,
    /// Offset into the storage in elements.
    pub offset: usize,
    /// Shared-memory arena placement of the storage, for consumers in
    /// other OS processes (`None` for in-process sharing).
    pub shm: Option<ShmHandle>,
}

impl TensorPayload {
    /// Packs a tensor into a payload. The caller must have registered the
    /// tensor's storage in the [`SharedRegistry`] for unpacking to succeed.
    pub fn pack(tensor: &Tensor) -> Self {
        Self {
            storage_id: tensor.storage_id(),
            device: tensor.device(),
            dtype: tensor.dtype(),
            shape: tensor.shape().to_vec(),
            strides: tensor.strides().to_vec(),
            offset: tensor.offset(),
            shm: None,
        }
    }

    /// Packs a tensor, embedding the registry's shared-memory placement of
    /// its storage (if any) so consumers in *other OS processes* can
    /// rebuild it from the arena. Falls back to [`TensorPayload::pack`]
    /// semantics when no arena is bound.
    pub fn pack_shared(tensor: &Tensor, registry: &SharedRegistry) -> Self {
        let mut payload = Self::pack(tensor);
        payload.shm = registry.shm_handle(tensor.storage_id());
        payload
    }

    /// Rebuilds the tensor view by resolving the storage id — from the
    /// local registry table, or zero-copy from the bound shared-memory
    /// arena when the payload carries a placement from another process.
    pub fn unpack(&self, registry: &SharedRegistry) -> Result<Tensor> {
        let storage = registry.resolve(self.storage_id, self.shm, self.device)?;
        Tensor::from_parts(
            storage,
            self.dtype,
            self.shape.clone(),
            self.strides.clone(),
            self.offset,
        )
    }

    /// Number of elements described by the payload.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Bytes described by the payload view.
    pub fn view_bytes(&self) -> usize {
        self.numel() * self.dtype.size_bytes()
    }

    /// True when the strides describe a dense row-major view.
    pub fn is_contiguous(&self) -> bool {
        self.strides == contiguous_strides(&self.shape)
    }

    /// Encodes the payload into a compact little-endian frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(49 + 16 * self.shape.len());
        buf.put_u64_le(self.storage_id);
        match self.device {
            DeviceId::Cpu => buf.put_u8(0xFF),
            DeviceId::Gpu(i) => buf.put_u8(i),
        }
        buf.put_u8(self.dtype.tag());
        buf.put_u64_le(self.offset as u64);
        buf.put_u16_le(self.shape.len() as u16);
        for (&d, &s) in self.shape.iter().zip(&self.strides) {
            buf.put_u64_le(d as u64);
            buf.put_u64_le(s as u64);
        }
        match &self.shm {
            None => buf.put_u8(0),
            Some(h) => {
                buf.put_u8(1);
                buf.put_slice(&h.encode());
            }
        }
        buf.freeze()
    }

    /// Decodes a payload previously produced by [`TensorPayload::encode`].
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        let err = |m: &str| TensorError::Shape(format!("payload decode: {m}"));
        if buf.len() < 20 {
            return Err(err("truncated header"));
        }
        let storage_id = buf.get_u64_le();
        let device = match buf.get_u8() {
            0xFF => DeviceId::Cpu,
            i => DeviceId::Gpu(i),
        };
        let dtype = DType::from_tag(buf.get_u8()).ok_or_else(|| err("bad dtype tag"))?;
        let offset = buf.get_u64_le() as usize;
        let ndim = buf.get_u16_le() as usize;
        if buf.len() < ndim * 16 {
            return Err(err("truncated dims"));
        }
        let mut shape = Vec::with_capacity(ndim);
        let mut strides = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(buf.get_u64_le() as usize);
            strides.push(buf.get_u64_le() as usize);
        }
        // Shared-memory placement (absent in frames from pre-arena
        // encoders; tolerated for compatibility).
        let shm = if buf.is_empty() {
            None
        } else {
            match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.len() < ts_shm::HANDLE_BYTES {
                        return Err(err("truncated shm handle"));
                    }
                    let handle = ShmHandle::decode(buf).ok_or_else(|| err("bad shm handle"))?;
                    buf.advance(ts_shm::HANDLE_BYTES);
                    handle.into()
                }
                _ => return Err(err("bad shm flag")),
            }
        };
        Ok(Self {
            storage_id,
            device,
            dtype,
            shape,
            strides,
            offset,
            shm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(t: &Tensor) -> SharedRegistry {
        let reg = SharedRegistry::new();
        reg.register(t.storage());
        reg
    }

    #[test]
    fn pack_unpack_zero_copy() {
        let t = Tensor::rand_u8(&[4, 8], DeviceId::Gpu(0), 3);
        let reg = registry_with(&t);
        let p = TensorPayload::pack(&t);
        let rebuilt = p.unpack(&reg).unwrap();
        assert_eq!(rebuilt.storage_id(), t.storage_id());
        assert!(rebuilt.data_eq(&t));
    }

    #[test]
    fn pack_unpack_of_sliced_view() {
        let t = Tensor::rand_u8(&[16, 4], DeviceId::Gpu(1), 11);
        let slice = t.narrow(0, 5, 7).unwrap();
        let reg = registry_with(&t);
        let p = TensorPayload::pack(&slice);
        assert_eq!(p.offset, 20);
        let rebuilt = p.unpack(&reg).unwrap();
        assert!(rebuilt.data_eq(&slice));
        assert_eq!(rebuilt.storage_id(), t.storage_id());
    }

    #[test]
    fn unpack_released_storage_fails() {
        let t = Tensor::rand_u8(&[4], DeviceId::Cpu, 0);
        let reg = registry_with(&t);
        let p = TensorPayload::pack(&t);
        reg.release(t.storage_id());
        assert!(matches!(
            p.unpack(&reg).unwrap_err(),
            TensorError::DanglingPayload { .. }
        ));
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = Tensor::rand_u8(&[3, 224, 224], DeviceId::Gpu(2), 1);
        let view = t.narrow(1, 10, 100).unwrap();
        let p = TensorPayload::pack(&view);
        let decoded = TensorPayload::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn encoded_payload_is_small_and_size_independent() {
        let small = TensorPayload::pack(&Tensor::zeros(&[2, 2], DType::U8, DeviceId::Cpu));
        let huge = TensorPayload::pack(&Tensor::zeros(
            &[512, 3, 224, 224],
            DType::U8,
            DeviceId::Cpu,
        ));
        assert_eq!(small.encode().len() + 32, huge.encode().len());
        assert!(huge.encode().len() < 100);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TensorPayload::decode(&[1, 2, 3]).is_err());
        let t = Tensor::zeros(&[2], DType::U8, DeviceId::Cpu);
        let mut bytes = TensorPayload::pack(&t).encode().to_vec();
        bytes[9] = 99; // bad dtype tag
        assert!(TensorPayload::decode(&bytes).is_err());
        bytes.truncate(bytes.len() - 4); // truncated dims
        assert!(TensorPayload::decode(&bytes).is_err());
    }

    #[test]
    fn shm_handle_round_trips_on_the_wire() {
        let t = Tensor::zeros(&[4, 4], DType::U8, DeviceId::Cpu);
        let mut p = TensorPayload::pack(&t);
        p.shm = Some(ts_shm::ShmHandle {
            slot: 3,
            generation: 17,
            len: 16,
        });
        let decoded = TensorPayload::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.shm.unwrap().generation, 17);
    }

    #[test]
    fn pack_shared_embeds_arena_placement() {
        let arena_path =
            std::env::temp_dir().join(format!("ts-payload-test-{}.arena", std::process::id()));
        let arena = ts_shm::ShmArena::create(arena_path, 2, 64).unwrap();
        let reg = SharedRegistry::new();
        reg.bind_arena(arena);
        let t = Tensor::rand_u8(&[2, 4], DeviceId::Cpu, 5);
        reg.register(t.storage());
        let p = TensorPayload::pack_shared(&t, &reg);
        let handle = p.shm.expect("arena placement");
        assert_eq!(handle.len as usize, t.view_bytes());
        // A consumer-side registry with no local entry resolves through
        // the arena, bit-exactly and zero-copy.
        let consumer = SharedRegistry::new();
        consumer.bind_arena(reg.arena().unwrap());
        let decoded = TensorPayload::decode(&p.encode()).unwrap();
        let rebuilt = decoded.unpack(&consumer).unwrap();
        assert!(rebuilt.storage().is_shared_memory());
        assert!(rebuilt.data_eq(&t));
    }

    #[test]
    fn cpu_device_round_trips() {
        let t = Tensor::zeros(&[1], DType::I64, DeviceId::Cpu);
        let p = TensorPayload::pack(&t);
        let d = TensorPayload::decode(&p.encode()).unwrap();
        assert_eq!(d.device, DeviceId::Cpu);
    }
}
