//! The tensor type: a typed, strided view over refcounted storage.

use crate::shape::{contiguous_strides, is_contiguous};
use crate::storage::Storage;
use crate::{DType, Result, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ts_device::DeviceId;

/// A typed, strided view over an [`Arc<Storage>`](Storage).
///
/// Cloning a tensor clones the view, not the data — exactly the sharing
/// semantics TensorSocket exploits. All slicing operations return views;
/// only [`Tensor::contiguous`] and the `to_vec_*` accessors copy.
#[derive(Debug, Clone)]
pub struct Tensor {
    storage: Arc<Storage>,
    dtype: DType,
    shape: Vec<usize>,
    strides: Vec<usize>,
    /// Offset into the storage, in elements.
    offset: usize,
}

impl Tensor {
    /// Builds a tensor from raw parts, validating that the view fits inside
    /// the storage.
    pub fn from_parts(
        storage: Arc<Storage>,
        dtype: DType,
        shape: Vec<usize>,
        strides: Vec<usize>,
        offset: usize,
    ) -> Result<Self> {
        if shape.len() != strides.len() {
            return Err(TensorError::Shape(format!(
                "shape ndim {} != strides ndim {}",
                shape.len(),
                strides.len()
            )));
        }
        let numel: usize = shape.iter().product();
        if numel > 0 {
            // Largest reachable element offset.
            let max_elem: usize = offset
                + shape
                    .iter()
                    .zip(&strides)
                    .map(|(&d, &s)| (d - 1) * s)
                    .sum::<usize>();
            let needed = (max_elem + 1) * dtype.size_bytes();
            if needed > storage.len() {
                return Err(TensorError::Shape(format!(
                    "view needs {needed} B but storage {} has {} B",
                    storage.id(),
                    storage.len()
                )));
            }
        }
        Ok(Self {
            storage,
            dtype,
            shape,
            strides,
            offset,
        })
    }

    /// A contiguous tensor over a fresh storage built from `data` bytes.
    pub fn from_bytes(
        data: Vec<u8>,
        dtype: DType,
        shape: &[usize],
        device: DeviceId,
    ) -> Result<Self> {
        let numel: usize = shape.iter().product();
        if data.len() != numel * dtype.size_bytes() {
            return Err(TensorError::Shape(format!(
                "{} bytes provided for shape {:?} of {:?} (need {})",
                data.len(),
                shape,
                dtype,
                numel * dtype.size_bytes()
            )));
        }
        let storage = Arc::new(Storage::new(data, device));
        Self::from_parts(storage, dtype, shape.to_vec(), contiguous_strides(shape), 0)
    }

    /// Zero-filled contiguous tensor.
    pub fn zeros(shape: &[usize], dtype: DType, device: DeviceId) -> Self {
        let numel: usize = shape.iter().product();
        Self::from_bytes(vec![0u8; numel * dtype.size_bytes()], dtype, shape, device)
            .expect("zeros construction is always consistent")
    }

    /// Contiguous `U8` tensor from values.
    pub fn from_u8(values: Vec<u8>, shape: &[usize], device: DeviceId) -> Result<Self> {
        Self::from_bytes(values, DType::U8, shape, device)
    }

    /// Contiguous `F32` tensor from values.
    pub fn from_f32(values: &[f32], shape: &[usize], device: DeviceId) -> Result<Self> {
        let mut data = Vec::with_capacity(values.len() * 4);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        Self::from_bytes(data, DType::F32, shape, device)
    }

    /// Contiguous `I64` tensor from values.
    pub fn from_i64(values: &[i64], shape: &[usize], device: DeviceId) -> Result<Self> {
        let mut data = Vec::with_capacity(values.len() * 8);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        Self::from_bytes(data, DType::I64, shape, device)
    }

    /// Deterministic pseudo-random `U8` tensor (seeded).
    pub fn rand_u8(shape: &[usize], device: DeviceId, seed: u64) -> Self {
        let numel: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0u8; numel];
        rng.fill(&mut data[..]);
        Self::from_bytes(data, DType::U8, shape, device)
            .expect("rand_u8 construction is always consistent")
    }

    /// Deterministic pseudo-random `F32` tensor in `[0, 1)` (seeded).
    pub fn rand_f32(shape: &[usize], device: DeviceId, seed: u64) -> Self {
        let numel: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f32> = (0..numel).map(|_| rng.gen::<f32>()).collect();
        Self::from_f32(&values, shape, device).expect("rand_f32 construction is always consistent")
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Dimension extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Strides in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// View offset into the storage, in elements.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total elements in the view.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Bytes covered by the view's elements (not the whole storage).
    pub fn view_bytes(&self) -> usize {
        self.numel() * self.dtype.size_bytes()
    }

    /// Placement of the underlying storage.
    pub fn device(&self) -> DeviceId {
        self.storage.device()
    }

    /// The underlying storage.
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// Id of the underlying storage (the shared "pointer").
    pub fn storage_id(&self) -> u64 {
        self.storage.id()
    }

    /// True for dense row-major views.
    pub fn is_contiguous(&self) -> bool {
        is_contiguous(&self.shape, &self.strides)
    }

    /// Zero-copy slice along `dim`: keeps `len` indices starting at `start`.
    ///
    /// This is the primitive behind flexible batch sizing (§3.2.6): carving
    /// consumer batches out of a producer batch moves no bytes.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Result<Tensor> {
        if dim >= self.ndim() {
            return Err(TensorError::Shape(format!(
                "narrow dim {dim} out of range for ndim {}",
                self.ndim()
            )));
        }
        if start + len > self.shape[dim] {
            return Err(TensorError::Shape(format!(
                "narrow [{start}, {start}+{len}) exceeds dim {dim} extent {}",
                self.shape[dim]
            )));
        }
        let mut shape = self.shape.clone();
        shape[dim] = len;
        Ok(Tensor {
            storage: self.storage.clone(),
            dtype: self.dtype,
            shape,
            strides: self.strides.clone(),
            offset: self.offset + start * self.strides[dim],
        })
    }

    /// Zero-copy select of index `idx` along `dim` (drops the dimension).
    pub fn select(&self, dim: usize, idx: usize) -> Result<Tensor> {
        let narrowed = self.narrow(dim, idx, 1)?;
        let mut shape = narrowed.shape.clone();
        let mut strides = narrowed.strides.clone();
        shape.remove(dim);
        strides.remove(dim);
        Ok(Tensor {
            storage: narrowed.storage,
            dtype: narrowed.dtype,
            shape,
            strides,
            offset: narrowed.offset,
        })
    }

    /// Reshape of a contiguous view (zero-copy).
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        if !self.is_contiguous() {
            return Err(TensorError::Shape(
                "reshape requires a contiguous view".to_string(),
            ));
        }
        let numel: usize = shape.iter().product();
        if numel != self.numel() {
            return Err(TensorError::Shape(format!(
                "reshape to {:?} changes element count {} -> {}",
                shape,
                self.numel(),
                numel
            )));
        }
        Ok(Tensor {
            storage: self.storage.clone(),
            dtype: self.dtype,
            shape: shape.to_vec(),
            strides: contiguous_strides(shape),
            offset: self.offset,
        })
    }

    /// The raw bytes of a contiguous view.
    pub fn bytes(&self) -> Result<&[u8]> {
        if !self.is_contiguous() {
            return Err(TensorError::Shape(
                "bytes() requires a contiguous view".to_string(),
            ));
        }
        let esize = self.dtype.size_bytes();
        let start = self.offset * esize;
        let end = start + self.numel() * esize;
        Ok(&self.storage.bytes()[start..end])
    }

    /// Gathers the view into a dense row-major byte vector (copies).
    pub fn gather_bytes(&self) -> Vec<u8> {
        let esize = self.dtype.size_bytes();
        if self.is_contiguous() {
            return self.bytes().expect("contiguous").to_vec();
        }
        let numel = self.numel();
        let mut out = Vec::with_capacity(numel * esize);
        let src = self.storage.bytes();
        let mut idx = vec![0usize; self.ndim()];
        for _ in 0..numel {
            let elem: usize = self.offset
                + idx
                    .iter()
                    .zip(&self.strides)
                    .map(|(&i, &s)| i * s)
                    .sum::<usize>();
            let b = elem * esize;
            out.extend_from_slice(&src[b..b + esize]);
            // advance the multi-index, last dim fastest
            for d in (0..self.ndim()).rev() {
                idx[d] += 1;
                if idx[d] < self.shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        out
    }

    /// Materializes the view into a fresh contiguous tensor (copies).
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() && self.offset == 0 && self.view_bytes() == self.storage.len() {
            return self.clone();
        }
        Tensor::from_bytes(self.gather_bytes(), self.dtype, &self.shape, self.device())
            .expect("gathered bytes always match the shape")
    }

    /// Copies the tensor to another device label. Traffic/memory accounting
    /// is the caller's job (see [`crate::DeviceCtx`]).
    pub fn to_device(&self, device: DeviceId) -> Tensor {
        Tensor::from_bytes(self.gather_bytes(), self.dtype, &self.shape, device)
            .expect("gathered bytes always match the shape")
    }

    /// Elements as `u8` (copies; requires `U8` dtype).
    pub fn to_vec_u8(&self) -> Result<Vec<u8>> {
        self.check_dtype(DType::U8)?;
        Ok(self.gather_bytes())
    }

    /// Elements as `f32` (copies; requires `F32` dtype).
    pub fn to_vec_f32(&self) -> Result<Vec<f32>> {
        self.check_dtype(DType::F32)?;
        let bytes = self.gather_bytes();
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Elements as `i64` (copies; requires `I64` dtype).
    pub fn to_vec_i64(&self) -> Result<Vec<i64>> {
        self.check_dtype(DType::I64)?;
        let bytes = self.gather_bytes();
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    fn check_dtype(&self, expected: DType) -> Result<()> {
        if self.dtype != expected {
            return Err(TensorError::DType {
                expected,
                got: self.dtype,
            });
        }
        Ok(())
    }

    /// True when both tensors have equal shape, dtype and element data.
    pub fn data_eq(&self, other: &Tensor) -> bool {
        self.dtype == other.dtype
            && self.shape == other.shape
            && self.gather_bytes() == other.gather_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_u8(n: usize, shape: &[usize]) -> Tensor {
        Tensor::from_u8(
            (0..n as u32).map(|i| i as u8).collect(),
            shape,
            DeviceId::Cpu,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = seq_u8(6, &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.strides(), &[3, 1]);
        assert_eq!(t.numel(), 6);
        assert!(t.is_contiguous());
        assert_eq!(t.view_bytes(), 6);
        assert_eq!(t.device(), DeviceId::Cpu);
    }

    #[test]
    fn from_bytes_validates_length() {
        assert!(Tensor::from_bytes(vec![0u8; 5], DType::U8, &[2, 3], DeviceId::Cpu).is_err());
        assert!(Tensor::from_bytes(vec![0u8; 8], DType::F32, &[3], DeviceId::Cpu).is_err());
    }

    #[test]
    fn narrow_is_zero_copy_and_correct() {
        let t = seq_u8(12, &[4, 3]);
        let n = t.narrow(0, 1, 2).unwrap();
        assert_eq!(n.shape(), &[2, 3]);
        assert_eq!(n.storage_id(), t.storage_id());
        assert_eq!(n.to_vec_u8().unwrap(), vec![3, 4, 5, 6, 7, 8]);
        // narrow along the inner dim produces a non-contiguous view
        let inner = t.narrow(1, 1, 2).unwrap();
        assert!(!inner.is_contiguous());
        assert_eq!(inner.to_vec_u8().unwrap(), vec![1, 2, 4, 5, 7, 8, 10, 11]);
    }

    #[test]
    fn narrow_bounds_checked() {
        let t = seq_u8(6, &[2, 3]);
        assert!(t.narrow(2, 0, 1).is_err());
        assert!(t.narrow(0, 1, 2).is_err());
    }

    #[test]
    fn select_drops_dimension() {
        let t = seq_u8(12, &[4, 3]);
        let row = t.select(0, 2).unwrap();
        assert_eq!(row.shape(), &[3]);
        assert_eq!(row.to_vec_u8().unwrap(), vec![6, 7, 8]);
        let col = t.select(1, 0).unwrap();
        assert_eq!(col.shape(), &[4]);
        assert_eq!(col.to_vec_u8().unwrap(), vec![0, 3, 6, 9]);
    }

    #[test]
    fn reshape_contiguous_only() {
        let t = seq_u8(12, &[4, 3]);
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.shape(), &[2, 6]);
        assert_eq!(r.storage_id(), t.storage_id());
        let col = t.narrow(1, 1, 2).unwrap();
        assert!(col.reshape(&[8]).is_err());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn contiguous_materializes_views() {
        let t = seq_u8(12, &[4, 3]);
        let v = t.narrow(1, 1, 2).unwrap();
        let c = v.contiguous();
        assert!(c.is_contiguous());
        assert_ne!(c.storage_id(), t.storage_id());
        assert!(c.data_eq(&v));
    }

    #[test]
    fn f32_and_i64_round_trip() {
        let t = Tensor::from_f32(&[1.5, -2.0, 3.25], &[3], DeviceId::Cpu).unwrap();
        assert_eq!(t.to_vec_f32().unwrap(), vec![1.5, -2.0, 3.25]);
        let t = Tensor::from_i64(&[-7, 9], &[2], DeviceId::Cpu).unwrap();
        assert_eq!(t.to_vec_i64().unwrap(), vec![-7, 9]);
    }

    #[test]
    fn dtype_mismatch_is_error() {
        let t = Tensor::from_f32(&[1.0], &[1], DeviceId::Cpu).unwrap();
        assert!(matches!(
            t.to_vec_u8().unwrap_err(),
            TensorError::DType { .. }
        ));
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let a = Tensor::rand_u8(&[16], DeviceId::Cpu, 7);
        let b = Tensor::rand_u8(&[16], DeviceId::Cpu, 7);
        let c = Tensor::rand_u8(&[16], DeviceId::Cpu, 8);
        assert!(a.data_eq(&b));
        assert!(!a.data_eq(&c));
    }

    #[test]
    fn to_device_relabels_with_copy() {
        let t = seq_u8(4, &[4]);
        let g = t.to_device(DeviceId::Gpu(1));
        assert_eq!(g.device(), DeviceId::Gpu(1));
        assert_ne!(g.storage_id(), t.storage_id());
        assert_eq!(g.to_vec_u8().unwrap(), t.to_vec_u8().unwrap());
    }

    #[test]
    fn from_parts_rejects_oversized_views() {
        let storage = Arc::new(Storage::new(vec![0u8; 8], DeviceId::Cpu));
        assert!(Tensor::from_parts(storage.clone(), DType::U8, vec![9], vec![1], 0).is_err());
        assert!(Tensor::from_parts(storage.clone(), DType::U8, vec![4], vec![1], 5).is_err());
        assert!(Tensor::from_parts(storage, DType::U8, vec![4], vec![1, 1], 0).is_err());
    }

    #[test]
    fn empty_tensor_is_fine() {
        let t = Tensor::from_u8(vec![], &[0, 3], DeviceId::Cpu).unwrap();
        assert_eq!(t.numel(), 0);
        assert_eq!(t.gather_bytes(), Vec::<u8>::new());
    }
}
