//! Refcounted byte storage with device placement.
//!
//! A [`Storage`] is the unit of sharing: tensors are views over an
//! `Arc<Storage>`, and the [`crate::SharedRegistry`] hands `Arc` clones to
//! consumers. The storage id plays the role of the device pointer that the
//! real TensorSocket extracts from PyTorch tensors (§3.2.4): unique for the
//! lifetime of the process, never reused.

use crate::pool::PoolReturn;
use std::sync::atomic::{AtomicU64, Ordering};
use ts_device::DeviceId;

static NEXT_STORAGE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique storage id.
pub fn fresh_storage_id() -> u64 {
    NEXT_STORAGE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Where a storage's bytes live.
enum Backing {
    /// Process-private heap buffer; `Some` until drop (`Option` only so
    /// `Drop` can move it back to a pool).
    Owned(Option<Vec<u8>>),
    /// A pinned view into a cross-process shared-memory arena
    /// ([`ts_shm::ShmView`]): zero-copy, and the view's drop releases the
    /// consumer's slot reference.
    Shm(ts_shm::ShmView),
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Owned(_) => f.write_str("Owned"),
            Backing::Shm(_) => f.write_str("Shm"),
        }
    }
}

/// An immutable, refcounted byte buffer placed on a device.
///
/// Buffers are *write-once*: they are built as `Vec<u8>` and frozen on
/// construction. Storages created from a [`crate::MemoryPool`] return their
/// buffer to the pool when the last reference drops. Storages rebuilt by a
/// consumer in another OS process wrap a shared-memory view instead
/// ([`Storage::from_shm_view`]) — same API, no copy.
#[derive(Debug)]
pub struct Storage {
    id: u64,
    device: DeviceId,
    data: Backing,
    pool: Option<PoolReturn>,
}

impl Storage {
    /// Freezes `data` into a storage on `device`.
    pub fn new(data: Vec<u8>, device: DeviceId) -> Self {
        Self {
            id: fresh_storage_id(),
            device,
            data: Backing::Owned(Some(data)),
            pool: None,
        }
    }

    /// Freezes a pooled buffer; on drop the buffer returns to `pool`.
    pub(crate) fn new_pooled(data: Vec<u8>, device: DeviceId, pool: PoolReturn) -> Self {
        Self {
            id: fresh_storage_id(),
            device,
            data: Backing::Owned(Some(data)),
            pool: Some(pool),
        }
    }

    /// Wraps a shared-memory view as a storage carrying the *producer's*
    /// storage id, so a rebuilt tensor reports the same identity in both
    /// processes. The view's slot reference is held until the last
    /// `Arc<Storage>` clone drops.
    pub fn from_shm_view(id: u64, view: ts_shm::ShmView, device: DeviceId) -> Self {
        Self {
            id,
            device,
            data: Backing::Shm(view),
            pool: None,
        }
    }

    /// Process-unique identifier (the "pointer" shared in payloads).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Placement of the buffer.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// True when the bytes live in a shared-memory arena rather than this
    /// process's heap.
    pub fn is_shared_memory(&self) -> bool {
        matches!(self.data, Backing::Shm(_))
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            Backing::Owned(d) => d.as_deref().expect("storage data present until drop"),
            Backing::Shm(view) => view,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let (Some(pool), Backing::Owned(data)) = (self.pool.take(), &mut self.data) {
            if let Some(data) = data.take() {
                pool.give_back(data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Storage::new(vec![0u8; 4], DeviceId::Cpu);
        let b = Storage::new(vec![0u8; 4], DeviceId::Cpu);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn holds_bytes_and_device() {
        let s = Storage::new(vec![1, 2, 3], DeviceId::Gpu(1));
        assert_eq!(s.bytes(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.device(), DeviceId::Gpu(1));
    }
}
