//! Refcounted byte storage with device placement.
//!
//! A [`Storage`] is the unit of sharing: tensors are views over an
//! `Arc<Storage>`, and the [`crate::SharedRegistry`] hands `Arc` clones to
//! consumers. The storage id plays the role of the device pointer that the
//! real TensorSocket extracts from PyTorch tensors (§3.2.4): unique for the
//! lifetime of the process, never reused.

use crate::pool::PoolReturn;
use std::sync::atomic::{AtomicU64, Ordering};
use ts_device::DeviceId;

static NEXT_STORAGE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique storage id.
pub fn fresh_storage_id() -> u64 {
    NEXT_STORAGE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Where a storage's bytes live.
enum Backing {
    /// Process-private heap buffer; `Some` until drop (`Option` only so
    /// `Drop` can move it back to a pool).
    Owned(Option<Vec<u8>>),
    /// A pinned view into a cross-process shared-memory arena
    /// ([`ts_shm::ShmView`]): zero-copy, and the view's drop releases the
    /// consumer's slot reference.
    Shm(ts_shm::ShmView),
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Owned(_) => f.write_str("Owned"),
            Backing::Shm(_) => f.write_str("Shm"),
        }
    }
}

/// What happens to an owned buffer when the last reference drops.
enum Reclaim {
    /// Return the buffer to a [`crate::MemoryPool`].
    Pool(PoolReturn),
    /// Hand the buffer to an arbitrary owner — the hook behind device
    /// slab recycling: a staged tensor's buffer returns to its VRAM slab
    /// pool (`ts-staging`) the moment producer *and* consumers let go,
    /// so the slab can be rewritten in place for the next batch.
    Hook(Box<dyn FnOnce(Vec<u8>) + Send + Sync>),
}

impl std::fmt::Debug for Reclaim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reclaim::Pool(_) => f.write_str("Pool"),
            Reclaim::Hook(_) => f.write_str("Hook"),
        }
    }
}

/// An immutable, refcounted byte buffer placed on a device.
///
/// Buffers are *write-once*: they are built as `Vec<u8>` and frozen on
/// construction. Storages created from a [`crate::MemoryPool`] return their
/// buffer to the pool when the last reference drops, and storages built
/// over a recycled buffer ([`Storage::new_with_reclaim`]) hand it back to
/// their owner the same way. Storages rebuilt by a consumer in another OS
/// process wrap a shared-memory view instead ([`Storage::from_shm_view`])
/// — same API, no copy.
#[derive(Debug)]
pub struct Storage {
    id: u64,
    device: DeviceId,
    data: Backing,
    reclaim: Option<Reclaim>,
}

impl Storage {
    /// Freezes `data` into a storage on `device`.
    pub fn new(data: Vec<u8>, device: DeviceId) -> Self {
        Self {
            id: fresh_storage_id(),
            device,
            data: Backing::Owned(Some(data)),
            reclaim: None,
        }
    }

    /// Freezes a pooled buffer; on drop the buffer returns to `pool`.
    pub(crate) fn new_pooled(data: Vec<u8>, device: DeviceId, pool: PoolReturn) -> Self {
        Self {
            id: fresh_storage_id(),
            device,
            data: Backing::Owned(Some(data)),
            reclaim: Some(Reclaim::Pool(pool)),
        }
    }

    /// Freezes a recycled buffer; when the last reference drops, the
    /// buffer is handed to `reclaim` instead of being deallocated.
    ///
    /// This is how device-staged tensors ride the VRAM slab rotation: the
    /// staging engine leases a slab, copies the batch in, and wires the
    /// hook to return the slab to its pool — so the buffer's round trip
    /// (lease → storage → consumers → pool) needs no further accounting
    /// calls on the hot path.
    pub fn new_with_reclaim(
        data: Vec<u8>,
        device: DeviceId,
        reclaim: Box<dyn FnOnce(Vec<u8>) + Send + Sync>,
    ) -> Self {
        Self {
            id: fresh_storage_id(),
            device,
            data: Backing::Owned(Some(data)),
            reclaim: Some(Reclaim::Hook(reclaim)),
        }
    }

    /// Wraps a shared-memory view as a storage carrying the *producer's*
    /// storage id, so a rebuilt tensor reports the same identity in both
    /// processes. The view's slot reference is held until the last
    /// `Arc<Storage>` clone drops.
    pub fn from_shm_view(id: u64, view: ts_shm::ShmView, device: DeviceId) -> Self {
        Self {
            id,
            device,
            data: Backing::Shm(view),
            reclaim: None,
        }
    }

    /// Process-unique identifier (the "pointer" shared in payloads).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Placement of the buffer.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// True when the bytes live in a shared-memory arena rather than this
    /// process's heap.
    pub fn is_shared_memory(&self) -> bool {
        matches!(self.data, Backing::Shm(_))
    }

    /// True when this storage's buffer returns to an external owner via a
    /// reclaim hook ([`Storage::new_with_reclaim`]) — e.g. a device slab
    /// pool. That owner also owns the buffer's *device accounting*, so
    /// runtime release paths must not account a free for such storages.
    pub fn is_recycled(&self) -> bool {
        matches!(self.reclaim, Some(Reclaim::Hook(_)))
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.data {
            Backing::Owned(d) => d.as_deref().expect("storage data present until drop"),
            Backing::Shm(view) => view,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let (Some(reclaim), Backing::Owned(data)) = (self.reclaim.take(), &mut self.data) {
            if let Some(data) = data.take() {
                match reclaim {
                    Reclaim::Pool(pool) => pool.give_back(data),
                    Reclaim::Hook(hook) => hook(data),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Storage::new(vec![0u8; 4], DeviceId::Cpu);
        let b = Storage::new(vec![0u8; 4], DeviceId::Cpu);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn holds_bytes_and_device() {
        let s = Storage::new(vec![1, 2, 3], DeviceId::Gpu(1));
        assert_eq!(s.bytes(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.device(), DeviceId::Gpu(1));
    }

    #[test]
    fn reclaim_hook_receives_the_buffer_on_last_drop() {
        use std::sync::Arc;
        let returned: Arc<parking_lot::Mutex<Option<Vec<u8>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let sink = returned.clone();
        let s = Arc::new(Storage::new_with_reclaim(
            vec![7, 8, 9],
            DeviceId::Gpu(0),
            Box::new(move |buf| *sink.lock() = Some(buf)),
        ));
        let clone = s.clone();
        drop(s);
        assert!(
            returned.lock().is_none(),
            "live references keep the buffer out of the hook"
        );
        drop(clone);
        assert_eq!(returned.lock().take().unwrap(), vec![7, 8, 9]);
    }
}
