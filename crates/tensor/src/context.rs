//! Device context: explicit accounting for allocations and transfers.
//!
//! Tensors themselves do not touch the books (construction is pure); the
//! runtime layers call into a [`DeviceCtx`] when data logically lands on or
//! moves between devices, which is what produces the PCIe/NVLink/VRAM rows
//! of Tables 3 and 4.

use crate::{Result, Tensor, TensorError};
use std::collections::HashMap;
use ts_device::{DeviceId, MemoryBook, Topology, TrafficBook, TransferPath};

/// Books for one node: topology, per-device memory, link traffic.
#[derive(Debug, Clone)]
pub struct DeviceCtx {
    topology: Topology,
    memory: HashMap<DeviceId, MemoryBook>,
    traffic: TrafficBook,
}

impl DeviceCtx {
    /// Builds a context with a memory book per device. GPU capacities come
    /// from `gpu_vram_bytes` (index = GPU id); host memory is unbounded.
    pub fn new(topology: Topology, gpu_vram_bytes: &[u64]) -> Self {
        let mut memory = HashMap::new();
        memory.insert(DeviceId::Cpu, MemoryBook::unbounded());
        for g in 0..topology.gpu_count() {
            let cap = gpu_vram_bytes.get(g as usize).copied().unwrap_or(u64::MAX);
            memory.insert(DeviceId::Gpu(g), MemoryBook::new(cap));
        }
        Self {
            topology,
            memory,
            traffic: TrafficBook::new(),
        }
    }

    /// A context with one unbounded CPU device (handy for tests/examples).
    pub fn host_only() -> Self {
        Self::new(Topology::new(0, false), &[])
    }

    /// The node topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The traffic book.
    pub fn traffic(&self) -> &TrafficBook {
        &self.traffic
    }

    /// Memory book of a device.
    pub fn memory(&self, device: DeviceId) -> Result<&MemoryBook> {
        self.memory
            .get(&device)
            .ok_or_else(|| TensorError::Device(format!("unknown device {device}")))
    }

    /// Accounts an allocation of `bytes` on `device`.
    pub fn account_alloc(&self, device: DeviceId, bytes: u64) -> Result<()> {
        self.memory(device)?
            .alloc(bytes)
            .map_err(TensorError::OutOfMemory)
    }

    /// Accounts a free of `bytes` on `device`.
    pub fn account_free(&self, device: DeviceId, bytes: u64) -> Result<()> {
        self.memory(device)?.free(bytes);
        Ok(())
    }

    /// Copies `tensor` to `device`, accounting the allocation on the target
    /// and the bytes moved on every hop of the route (NVLink preferred for
    /// GPU↔GPU, PCIe bounce otherwise — §3.2.4), and **modeling the link
    /// copy time**: each hop costs `bytes / bandwidth` of wall time at the
    /// hop link's bandwidth, matching the staged path's `SimBackend` so
    /// comparisons against it carry the same transfer cost.
    /// Sub-microsecond copies skip the sleep, like the staged path — tiny
    /// test tensors cost nothing.
    pub fn transfer(&self, tensor: &Tensor, device: DeviceId) -> Result<Tensor> {
        self.transfer_with_bandwidth(tensor, device, None)
    }

    /// [`DeviceCtx::transfer`] with a **caller-scoped** modeled-bandwidth
    /// override (bytes/second) replacing each hop link's bandwidth.
    /// Benchmarks constrain it so transfer time is visible at small batch
    /// sizes — mirroring `SimBackend::with_bandwidth` on the staged path
    /// — without mutating any state shared with other users of these
    /// books.
    pub fn transfer_with_bandwidth(
        &self,
        tensor: &Tensor,
        device: DeviceId,
        bandwidth_override: Option<f64>,
    ) -> Result<Tensor> {
        let path = self.topology.path(tensor.device(), device).ok_or_else(|| {
            TensorError::Device(format!("no path from {} to {device}", tensor.device()))
        })?;
        if matches!(path, TransferPath::Local) {
            return Ok(tensor.clone());
        }
        let bytes = tensor.view_bytes() as u64;
        self.account_alloc(device, bytes)?;
        let mut modeled_secs = 0.0;
        for hop in path.hops() {
            self.traffic.record_hop(hop.from, hop.to, hop.kind, bytes);
            let bps = bandwidth_override.unwrap_or_else(|| {
                self.topology
                    .direct_link(hop.from, hop.to)
                    .map(|l| l.bandwidth_bps)
                    .unwrap_or(f64::INFINITY)
            });
            if bps.is_finite() && bps > 0.0 {
                modeled_secs += bytes as f64 / bps;
            }
        }
        if modeled_secs >= 1e-6 {
            std::thread::sleep(std::time::Duration::from_secs_f64(modeled_secs));
        }
        Ok(tensor.to_device(device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::traffic::Channel;

    fn ctx4() -> DeviceCtx {
        DeviceCtx::new(Topology::new(4, true), &[1_000_000; 4])
    }

    #[test]
    fn host_to_gpu_accounts_pcie_and_vram() {
        let ctx = ctx4();
        let t = Tensor::rand_u8(&[100], DeviceId::Cpu, 0);
        let g = ctx.transfer(&t, DeviceId::Gpu(0)).unwrap();
        assert_eq!(g.device(), DeviceId::Gpu(0));
        assert_eq!(ctx.traffic().bytes(Channel::Pcie(0)), 100);
        assert_eq!(ctx.memory(DeviceId::Gpu(0)).unwrap().in_use(), 100);
    }

    #[test]
    fn transfer_models_link_copy_time() {
        let ctx = ctx4();
        // 100 KB at 10 MB/s ≈ 10 ms of modeled PCIe time.
        let t = Tensor::rand_u8(&[100_000], DeviceId::Cpu, 0);
        let started = std::time::Instant::now();
        ctx.transfer_with_bandwidth(&t, DeviceId::Gpu(0), Some(10e6))
            .unwrap();
        let elapsed = started.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(8),
            "copy should cost ~10ms of modeled link time, took {elapsed:?}"
        );
        // The override is caller-scoped: a plain transfer on the same
        // books models the default link bandwidth, costing ~4µs — far
        // under the asserted floor.
        let started = std::time::Instant::now();
        ctx.transfer(&t, DeviceId::Gpu(1)).unwrap();
        assert!(started.elapsed() < std::time::Duration::from_millis(8));
    }

    #[test]
    fn gpu_to_gpu_uses_nvlink() {
        let ctx = ctx4();
        let t = Tensor::rand_u8(&[64], DeviceId::Cpu, 0);
        let on0 = ctx.transfer(&t, DeviceId::Gpu(0)).unwrap();
        let on3 = ctx.transfer(&on0, DeviceId::Gpu(3)).unwrap();
        assert_eq!(on3.device(), DeviceId::Gpu(3));
        assert_eq!(ctx.traffic().bytes(Channel::NvLink(3)), 64);
        // only the initial h2d went over PCIe
        assert_eq!(ctx.traffic().bytes(Channel::Pcie(0)), 64);
        assert_eq!(ctx.traffic().bytes(Channel::Pcie(3)), 0);
    }

    #[test]
    fn local_transfer_moves_nothing() {
        let ctx = ctx4();
        let t = Tensor::rand_u8(&[8], DeviceId::Cpu, 0);
        let same = ctx.transfer(&t, DeviceId::Cpu).unwrap();
        assert_eq!(same.storage_id(), t.storage_id());
        assert!(ctx.traffic().snapshot().is_empty());
    }

    #[test]
    fn transfer_respects_vram_capacity() {
        let ctx = DeviceCtx::new(Topology::new(1, false), &[50]);
        let t = Tensor::rand_u8(&[100], DeviceId::Cpu, 0);
        assert!(matches!(
            ctx.transfer(&t, DeviceId::Gpu(0)).unwrap_err(),
            TensorError::OutOfMemory(_)
        ));
    }

    #[test]
    fn unknown_device_is_error() {
        let ctx = ctx4();
        let t = Tensor::rand_u8(&[1], DeviceId::Cpu, 0);
        assert!(ctx.transfer(&t, DeviceId::Gpu(9)).is_err());
    }
}
