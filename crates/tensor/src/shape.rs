//! Shapes and strides.

/// A tensor shape: the extent of each dimension.
///
/// Kept as a thin wrapper over `Vec<usize>` so callers can pattern-match,
/// while giving shape arithmetic a home.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (1 for a scalar / empty shape).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Row-major (C-order) strides, in *elements*, for a shape.
///
/// The last dimension is contiguous; a zero-dimensional shape has no
/// strides. Dimensions of extent 0 are permitted (empty tensors).
pub fn contiguous_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![0usize; dims.len()];
    let mut acc = 1usize;
    for (i, &d) in dims.iter().enumerate().rev() {
        strides[i] = acc;
        acc = acc.saturating_mul(d.max(1));
    }
    strides
}

/// True when `strides` describe a dense row-major layout for `dims`.
pub fn is_contiguous(dims: &[usize], strides: &[usize]) -> bool {
    strides == contiguous_strides(dims).as_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_products_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
        assert_eq!(Shape::new(&[]).numel(), 1);
        assert_eq!(Shape::new(&[5, 0, 2]).numel(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(contiguous_strides(&[7]), vec![1]);
        assert!(contiguous_strides(&[]).is_empty());
    }

    #[test]
    fn strides_with_zero_dim() {
        // a zero-extent dim must not zero out outer strides
        assert_eq!(contiguous_strides(&[2, 0, 3]), vec![3, 3, 1]);
    }

    #[test]
    fn contiguity_check() {
        assert!(is_contiguous(&[2, 3], &[3, 1]));
        assert!(!is_contiguous(&[2, 3], &[4, 1]));
    }

    #[test]
    fn display_shape() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::new(&[]).to_string(), "[]");
    }
}
