//! A reuse pool for producer-batch slabs.
//!
//! Under flexible batch sizing the producer allocates "a continuous block of
//! memory on the GPU" for every producer batch (§3.2.6). Allocating and
//! freeing that block per batch would churn the allocator; the pool keeps
//! returned slabs for reuse, mirroring PyTorch's caching allocator behaviour
//! that the real TensorSocket inherits.

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
    returned: u64,
}

/// A pool of equally sized byte buffers.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    buf_len: usize,
    max_buffers: usize,
    inner: Arc<Mutex<PoolInner>>,
}

/// Handle held by a pooled [`crate::Storage`]; returns the buffer on drop.
#[derive(Debug, Clone)]
pub struct PoolReturn {
    buf_len: usize,
    max_buffers: usize,
    inner: Arc<Mutex<PoolInner>>,
}

impl PoolReturn {
    pub(crate) fn give_back(&self, buf: Vec<u8>) {
        debug_assert!(buf.capacity() >= self.buf_len);
        let mut inner = self.inner.lock();
        inner.returned += 1;
        if inner.free.len() < self.max_buffers {
            inner.free.push(buf);
        }
    }
}

impl MemoryPool {
    /// Creates a pool of buffers of `buf_len` bytes, retaining at most
    /// `max_buffers` free buffers.
    pub fn new(buf_len: usize, max_buffers: usize) -> Self {
        Self {
            buf_len,
            max_buffers,
            inner: Arc::new(Mutex::new(PoolInner::default())),
        }
    }

    /// Buffer size served by this pool.
    pub fn buf_len(&self) -> usize {
        self.buf_len
    }

    /// Checks out a zeroed buffer of `buf_len` bytes, reusing a returned one
    /// when available.
    pub fn checkout(&self) -> Vec<u8> {
        let mut inner = self.inner.lock();
        if let Some(mut buf) = inner.free.pop() {
            inner.hits += 1;
            buf.clear();
            buf.resize(self.buf_len, 0);
            buf
        } else {
            inner.misses += 1;
            vec![0u8; self.buf_len]
        }
    }

    /// The drop-handle to attach to storages built from this pool.
    pub(crate) fn return_handle(&self) -> PoolReturn {
        PoolReturn {
            buf_len: self.buf_len,
            max_buffers: self.max_buffers,
            inner: self.inner.clone(),
        }
    }

    /// `(hits, misses, returned)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses, inner.returned)
    }

    /// Number of free buffers currently held.
    pub fn free_count(&self) -> usize {
        self.inner.lock().free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Storage;
    use ts_device::DeviceId;

    #[test]
    fn checkout_miss_then_hit_via_storage_drop() {
        let pool = MemoryPool::new(16, 4);
        let buf = pool.checkout();
        assert_eq!(buf.len(), 16);
        let storage = Storage::new_pooled(buf, DeviceId::Gpu(0), pool.return_handle());
        drop(storage);
        assert_eq!(pool.free_count(), 1);
        let _buf2 = pool.checkout();
        let (hits, misses, returned) = pool.stats();
        assert_eq!((hits, misses, returned), (1, 1, 1));
    }

    #[test]
    fn pool_caps_retained_buffers() {
        let pool = MemoryPool::new(8, 2);
        for _ in 0..5 {
            let s = Storage::new_pooled(pool.checkout(), DeviceId::Cpu, pool.return_handle());
            drop(s);
        }
        assert!(pool.free_count() <= 2);
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        let pool = MemoryPool::new(4, 4);
        let mut buf = pool.checkout();
        buf.copy_from_slice(&[9, 9, 9, 9]);
        let s = Storage::new_pooled(buf, DeviceId::Cpu, pool.return_handle());
        drop(s);
        let buf2 = pool.checkout();
        assert_eq!(buf2, vec![0u8; 4]);
    }
}
