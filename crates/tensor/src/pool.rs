//! Reuse pools for producer-batch memory.
//!
//! Two pools live here, one per kind of producer-batch memory:
//!
//! * [`MemoryPool`] — heap slabs. Under flexible batch sizing the producer
//!   allocates "a continuous block of memory on the GPU" for every producer
//!   batch (§3.2.6). Allocating and freeing that block per batch would churn
//!   the allocator; the pool keeps returned slabs for reuse, mirroring
//!   PyTorch's caching allocator behaviour that the real TensorSocket
//!   inherits.
//! * [`SlotPool`] — shared-memory arena slots. With a
//!   [`ts_shm::ShmArena`] bound, every published batch places its bytes in
//!   an arena slot; without recycling that is an allocation (free-slot
//!   probe + claim) per tensor per batch. The slot pool keeps slots whose
//!   consumers have all acked and rewrites them in place
//!   ([`ts_shm::ShmArena::try_recycle`]) for the next batch, so the
//!   steady-state publish path performs **zero arena allocations**: each
//!   placement is a generation bump plus one memcpy into an already-owned
//!   slot. Its [`SlotPool::stats`] make that property assertable.

use parking_lot::Mutex;
use std::sync::Arc;
use ts_shm::{ShmArena, ShmError, ShmHandle};

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
    returned: u64,
}

/// A pool of equally sized byte buffers.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    buf_len: usize,
    max_buffers: usize,
    inner: Arc<Mutex<PoolInner>>,
}

/// Handle held by a pooled [`crate::Storage`]; returns the buffer on drop.
#[derive(Debug, Clone)]
pub struct PoolReturn {
    buf_len: usize,
    max_buffers: usize,
    inner: Arc<Mutex<PoolInner>>,
}

impl PoolReturn {
    pub(crate) fn give_back(&self, buf: Vec<u8>) {
        debug_assert!(buf.capacity() >= self.buf_len);
        let mut inner = self.inner.lock();
        inner.returned += 1;
        if inner.free.len() < self.max_buffers {
            inner.free.push(buf);
        }
    }
}

impl MemoryPool {
    /// Creates a pool of buffers of `buf_len` bytes, retaining at most
    /// `max_buffers` free buffers.
    pub fn new(buf_len: usize, max_buffers: usize) -> Self {
        Self {
            buf_len,
            max_buffers,
            inner: Arc::new(Mutex::new(PoolInner::default())),
        }
    }

    /// Buffer size served by this pool.
    pub fn buf_len(&self) -> usize {
        self.buf_len
    }

    /// Checks out a zeroed buffer of `buf_len` bytes, reusing a returned one
    /// when available.
    pub fn checkout(&self) -> Vec<u8> {
        let mut inner = self.inner.lock();
        if let Some(mut buf) = inner.free.pop() {
            inner.hits += 1;
            buf.clear();
            buf.resize(self.buf_len, 0);
            buf
        } else {
            inner.misses += 1;
            vec![0u8; self.buf_len]
        }
    }

    /// The drop-handle to attach to storages built from this pool.
    pub(crate) fn return_handle(&self) -> PoolReturn {
        PoolReturn {
            buf_len: self.buf_len,
            max_buffers: self.max_buffers,
            inner: self.inner.clone(),
        }
    }

    /// `(hits, misses, returned)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses, inner.returned)
    }

    /// Number of free buffers currently held.
    pub fn free_count(&self) -> usize {
        self.inner.lock().free.len()
    }
}

#[derive(Debug, Default)]
struct SlotPoolInner {
    /// Slots this pool owns (producer reference held), ready to rewrite.
    free: Vec<ShmHandle>,
    hits: u64,
    misses: u64,
    returned: u64,
    busy_discards: u64,
}

/// Counters describing a [`SlotPool`]'s behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotPoolStats {
    /// Placements served by recycling an owned slot (zero-allocation path).
    pub hits: u64,
    /// Placements that had to claim a fresh slot from the arena.
    pub misses: u64,
    /// Slots returned to the pool after their batch was fully acked.
    pub returned: u64,
    /// Owned slots abandoned because a consumer still held a view when the
    /// pool tried to rewrite them (the slot frees itself once the view
    /// drops).
    pub busy_discards: u64,
}

/// A recycling pool of shared-memory arena slots.
///
/// The pool holds the *producer reference* of every slot on its free list:
/// a reclaimed slot is not released back to the arena, it is kept owned
/// and rewritten in place for the next placement. See the module docs for
/// why, and [`crate::SharedRegistry::bind_slot_pool`] for the wiring.
///
/// Cloning shares the pool.
#[derive(Debug, Clone)]
pub struct SlotPool {
    arena: Arc<ShmArena>,
    /// Free-list depth cap; slots reclaimed beyond it are released to the
    /// arena for other users.
    max_free: usize,
    inner: Arc<Mutex<SlotPoolInner>>,
}

impl SlotPool {
    /// A pool over `arena` retaining at most `max_free` idle slots (the
    /// "pool depth"). Size it like the publish window: `buffer_size ×
    /// (fields + labels)` plus rubberband headroom — deep enough that a
    /// full window of in-flight batches can recycle without ever probing
    /// the arena, shallow enough to leave slots for other arena users.
    pub fn new(arena: Arc<ShmArena>, max_free: usize) -> Self {
        Self {
            arena,
            max_free,
            inner: Arc::new(Mutex::new(SlotPoolInner::default())),
        }
    }

    /// The arena the pool recycles slots of.
    pub fn arena(&self) -> &Arc<ShmArena> {
        &self.arena
    }

    /// The free-list depth cap.
    pub fn depth(&self) -> usize {
        self.max_free
    }

    /// Pre-reserves up to `n` slots (the free list never exceeding the
    /// depth cap) so even the first placements hit the pool. Returns how
    /// many were reserved; stops early when the arena runs out of free
    /// slots or the pool is already at depth.
    pub fn preallocate(&self, n: usize) -> usize {
        let mut reserved = 0;
        for _ in 0..n {
            {
                let inner = self.inner.lock();
                if inner.free.len() >= self.max_free {
                    break;
                }
            }
            let Ok(handle) = self.arena.reserve(0) else {
                break;
            };
            let mut inner = self.inner.lock();
            if inner.free.len() < self.max_free {
                inner.free.push(handle);
                reserved += 1;
            } else {
                // A concurrent reclaim filled the pool meanwhile.
                drop(inner);
                self.arena.release(handle);
                break;
            }
        }
        reserved
    }

    /// Places `bytes` into an owned slot (recycled, counted as a hit) or a
    /// freshly claimed one (counted as a miss). The returned handle's
    /// producer reference is held by the caller until
    /// [`SlotPool::reclaim`].
    pub fn place(&self, bytes: &[u8]) -> Result<ShmHandle, ShmError> {
        loop {
            let candidate = self.inner.lock().free.pop();
            let Some(handle) = candidate else {
                let handle = self.arena.alloc(bytes)?;
                self.inner.lock().misses += 1;
                return Ok(handle);
            };
            match self.arena.try_recycle(handle, bytes) {
                Ok(fresh) => {
                    self.inner.lock().hits += 1;
                    return Ok(fresh);
                }
                Err(ShmError::Busy { .. }) => {
                    // A consumer still maps the old contents (acked but the
                    // rebuilt tensor is alive). Drop our reference — the
                    // slot frees itself when the view goes — and move on.
                    self.arena.release(handle);
                    self.inner.lock().busy_discards += 1;
                }
                Err(e) => {
                    // TooLarge/Stale: give the slot back before surfacing.
                    self.arena.release(handle);
                    return Err(e);
                }
            }
        }
    }

    /// Leases a writable slot for `len` bytes *without moving any bytes* —
    /// the zero-copy sibling of [`SlotPool::place`]. An owned slot is
    /// rewritten in place ([`ts_shm::ShmArena::try_recycle_in_place`],
    /// counted as a hit); with none available a fresh slot is claimed
    /// ([`ts_shm::ShmArena::lease`], counted as a miss). Busy slots —
    /// a consumer still mapping acked contents — are abandoned exactly as
    /// in `place`.
    ///
    /// The caller collates directly into [`ts_shm::ShmLease::bytes_mut`]
    /// and then publishes [`ts_shm::ShmLease::into_handle`]; the handle's
    /// producer reference comes back via [`SlotPool::reclaim`] like any
    /// placed slot's.
    pub fn lease(&self, len: usize) -> Result<ts_shm::ShmLease, ShmError> {
        loop {
            let candidate = self.inner.lock().free.pop();
            let Some(handle) = candidate else {
                let lease = self.arena.lease(len)?;
                self.inner.lock().misses += 1;
                return Ok(lease);
            };
            match self.arena.try_recycle_in_place(handle, len) {
                Ok(lease) => {
                    self.inner.lock().hits += 1;
                    return Ok(lease);
                }
                Err(ShmError::Busy { .. }) => {
                    self.arena.release(handle);
                    self.inner.lock().busy_discards += 1;
                }
                Err(e) => {
                    self.arena.release(handle);
                    return Err(e);
                }
            }
        }
    }

    /// Takes back a slot whose batch was fully acked, keeping its producer
    /// reference for recycling. Beyond the depth cap the slot is released
    /// to the arena instead.
    pub fn reclaim(&self, handle: ShmHandle) {
        let mut inner = self.inner.lock();
        inner.returned += 1;
        if inner.free.len() < self.max_free {
            inner.free.push(handle);
        } else {
            drop(inner);
            self.arena.release(handle);
        }
    }

    /// Releases every idle slot back to the arena (e.g. at the end of a
    /// run, so `slots_in_use` drains to zero).
    pub fn drain(&self) {
        let free = std::mem::take(&mut self.inner.lock().free);
        for handle in free {
            self.arena.release(handle);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> SlotPoolStats {
        let inner = self.inner.lock();
        SlotPoolStats {
            hits: inner.hits,
            misses: inner.misses,
            returned: inner.returned,
            busy_discards: inner.busy_discards,
        }
    }

    /// Idle slots currently owned by the pool.
    pub fn free_count(&self) -> usize {
        self.inner.lock().free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Storage;
    use ts_device::DeviceId;

    #[test]
    fn checkout_miss_then_hit_via_storage_drop() {
        let pool = MemoryPool::new(16, 4);
        let buf = pool.checkout();
        assert_eq!(buf.len(), 16);
        let storage = Storage::new_pooled(buf, DeviceId::Gpu(0), pool.return_handle());
        drop(storage);
        assert_eq!(pool.free_count(), 1);
        let _buf2 = pool.checkout();
        let (hits, misses, returned) = pool.stats();
        assert_eq!((hits, misses, returned), (1, 1, 1));
    }

    #[test]
    fn pool_caps_retained_buffers() {
        let pool = MemoryPool::new(8, 2);
        for _ in 0..5 {
            let s = Storage::new_pooled(pool.checkout(), DeviceId::Cpu, pool.return_handle());
            drop(s);
        }
        assert!(pool.free_count() <= 2);
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        let pool = MemoryPool::new(4, 4);
        let mut buf = pool.checkout();
        buf.copy_from_slice(&[9, 9, 9, 9]);
        let s = Storage::new_pooled(buf, DeviceId::Cpu, pool.return_handle());
        drop(s);
        let buf2 = pool.checkout();
        assert_eq!(buf2, vec![0u8; 4]);
    }

    fn test_arena(tag: &str, nslots: usize, slot: usize) -> Arc<ShmArena> {
        let path =
            std::env::temp_dir().join(format!("ts-pool-test-{}-{tag}.arena", std::process::id()));
        ShmArena::create(path, nslots, slot).unwrap()
    }

    #[test]
    fn slot_pool_recycles_without_arena_allocations() {
        let arena = test_arena("recycle", 8, 64);
        let pool = SlotPool::new(arena.clone(), 4);
        // Warmup: first placement claims a fresh slot.
        let h = pool.place(b"batch-0").unwrap();
        assert_eq!(pool.stats().misses, 1);
        pool.reclaim(h);
        // Steady state: every placement rewrites the reclaimed slot.
        let mut handle = pool.place(b"batch-1").unwrap();
        for i in 2..50 {
            pool.reclaim(handle);
            handle = pool.place(format!("batch-{i}").as_bytes()).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "steady state must not touch the arena");
        assert_eq!(stats.hits, 49);
        assert_eq!(&arena.attach(handle).unwrap()[..], b"batch-49");
        assert_eq!(arena.slots_in_use(), 1, "one slot served every batch");
    }

    #[test]
    fn slot_pool_leases_recycle_without_arena_allocations() {
        let arena = test_arena("lease", 8, 64);
        let pool = SlotPool::new(arena.clone(), 4);
        let mut lease = pool.lease(7).unwrap();
        lease.bytes_mut().copy_from_slice(b"batch-0");
        let mut handle = lease.into_handle();
        assert_eq!(pool.stats().misses, 1);
        // Steady state: every lease rewrites the reclaimed slot in place.
        for i in 1..50 {
            pool.reclaim(handle);
            let body = format!("batch-{i}");
            let mut lease = pool.lease(body.len()).unwrap();
            lease.bytes_mut().copy_from_slice(body.as_bytes());
            handle = lease.into_handle();
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1, "steady state must not touch the arena");
        assert_eq!(stats.hits, 49);
        assert_eq!(&arena.attach(handle).unwrap()[..], b"batch-49");
        assert_eq!(arena.slots_in_use(), 1, "one slot served every batch");
    }

    #[test]
    fn slot_pool_lease_skips_slots_pinned_by_readers() {
        let arena = test_arena("lease-busy", 4, 64);
        let pool = SlotPool::new(arena.clone(), 4);
        let h = pool.place(b"pinned").unwrap();
        let view = arena.attach(h).unwrap();
        pool.reclaim(h);
        let mut lease = pool.lease(5).unwrap();
        assert_ne!(lease.handle().slot, h.slot);
        lease.bytes_mut().copy_from_slice(b"fresh");
        let h2 = lease.into_handle();
        assert_eq!(&view[..], b"pinned", "reader's bytes untouched");
        let stats = pool.stats();
        assert_eq!(stats.busy_discards, 1);
        drop(view);
        pool.reclaim(h2);
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn slot_pool_depth_caps_retained_slots() {
        let arena = test_arena("depth", 8, 64);
        let pool = SlotPool::new(arena.clone(), 2);
        let handles: Vec<_> = (0..5).map(|_| pool.place(b"x").unwrap()).collect();
        for h in handles {
            pool.reclaim(h);
        }
        assert_eq!(pool.free_count(), 2);
        // Slots beyond the cap were released back to the arena.
        assert_eq!(arena.slots_in_use(), 2);
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
        assert_eq!(pool.stats().returned, 5);
    }

    #[test]
    fn slot_pool_skips_slots_pinned_by_readers() {
        let arena = test_arena("busy", 4, 64);
        let pool = SlotPool::new(arena.clone(), 4);
        let h = pool.place(b"pinned").unwrap();
        let view = arena.attach(h).unwrap();
        pool.reclaim(h);
        // The reader still maps the old bytes: the pool must abandon that
        // slot (not corrupt it) and claim a fresh one.
        let h2 = pool.place(b"fresh").unwrap();
        assert_ne!(h2.slot, h.slot);
        assert_eq!(&view[..], b"pinned");
        let stats = pool.stats();
        assert_eq!(stats.busy_discards, 1);
        assert_eq!(stats.misses, 2);
        drop(view);
        pool.reclaim(h2);
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn slot_pool_preallocation_never_exceeds_depth() {
        let arena = test_arena("prealloc-cap", 8, 32);
        let pool = SlotPool::new(arena.clone(), 3);
        assert_eq!(pool.preallocate(2), 2);
        // A second call tops up to the cap, never past it.
        assert_eq!(pool.preallocate(4), 1);
        assert_eq!(pool.preallocate(4), 0);
        assert_eq!(pool.free_count(), 3);
        assert_eq!(arena.slots_in_use(), 3);
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn slot_pool_preallocation_makes_first_placement_a_hit() {
        let arena = test_arena("prealloc", 4, 32);
        let pool = SlotPool::new(arena.clone(), 4);
        assert_eq!(pool.preallocate(2), 2);
        assert_eq!(pool.free_count(), 2);
        let h = pool.place(b"first").unwrap();
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        pool.reclaim(h);
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
    }
}
