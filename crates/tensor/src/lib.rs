#![warn(missing_docs)]

//! Tensor substrate for the TensorSocket reproduction.
//!
//! TensorSocket (the paper) leans on three pieces of PyTorch machinery:
//!
//! 1. **Refcounted storages** — "tensors are kept in memory as long as any
//!    of the producers or consumers hold a reference" (§3.2.4). Here a
//!    [`Tensor`] is a view (`dtype`, `shape`, `strides`, `offset`) over an
//!    [`Arc<Storage>`](Storage).
//! 2. **Tensor deconstruction/reconstruction** — the producer ships a small
//!    *payload* (pointer + metadata) instead of bytes; consumers rebuild the
//!    tensor with zero copies. [`TensorPayload`] + [`SharedRegistry`]
//!    reproduce this: the registry plays the role of the CUDA/shared-memory
//!    handle table, and `pack`/`unpack` are the `TensorPayload` wrapper the
//!    paper estimates at ~59 lines (§5).
//! 3. **Slicing views** — flexible batch sizing (§3.2.6) carves per-consumer
//!    batches from one contiguous producer batch. [`Tensor::narrow`]
//!    provides the zero-copy slice; [`collate`] builds the contiguous
//!    producer batch, optionally from a reusable [`MemoryPool`] slab.
//!
//! Device placement is a label plus accounting (see [`ts_device`]); bytes
//! always live in host RAM, but allocation and transfer volumes are booked
//! exactly as they would be on the machines in the paper's Table 2.

pub mod collate;
pub mod context;
pub mod dtype;
pub mod ops;
pub mod payload;
pub mod pool;
pub mod registry;
pub mod shape;
pub mod storage;
pub mod tensor;

pub use collate::{cat0, cat0_leased, stack0};
pub use context::DeviceCtx;
pub use dtype::DType;
pub use payload::TensorPayload;
pub use pool::{MemoryPool, SlotPool, SlotPoolStats};
pub use registry::SharedRegistry;
pub use shape::{contiguous_strides, Shape};
pub use storage::Storage;
pub use tensor::Tensor;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Shape/stride mismatch or invalid dimension arguments.
    Shape(String),
    /// A dtype was required that the tensor does not have.
    DType {
        /// The dtype the operation required.
        expected: DType,
        /// The dtype the tensor actually has.
        got: DType,
    },
    /// A payload referenced a storage that is no longer registered.
    DanglingPayload {
        /// Id of the released storage.
        storage_id: u64,
    },
    /// Device mismatch or unknown device.
    Device(String),
    /// A shared-memory arena operation failed (full, stale handle, slot
    /// pinned by readers) — callers on the zero-copy publish path fall
    /// back to the copying path on this.
    Arena(String),
    /// Device memory exhausted.
    OutOfMemory(ts_device::OutOfMemory),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::Shape(m) => write!(f, "shape error: {m}"),
            TensorError::DType { expected, got } => {
                write!(f, "dtype error: expected {expected:?}, got {got:?}")
            }
            TensorError::DanglingPayload { storage_id } => {
                write!(f, "payload references released storage {storage_id}")
            }
            TensorError::Device(m) => write!(f, "device error: {m}"),
            TensorError::Arena(m) => write!(f, "arena error: {m}"),
            TensorError::OutOfMemory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
