//! The shared storage registry.
//!
//! In the real TensorSocket, the producer shares CUDA/shared-memory handles
//! and PyTorch's tensor-rebuilding machinery resolves them in the consumer
//! process. The [`SharedRegistry`] is that handle table: the producer
//! registers a storage before publishing a payload referencing it, and
//! consumers resolve the payload's storage id to an `Arc<Storage>` without
//! copying data. Releasing a storage (after all consumers acknowledged the
//! batch, §3.2.3) removes it from the table; late lookups fail with
//! [`crate::TensorError::DanglingPayload`] —
//! the equivalent of a use-after-free on a real device pointer, surfaced
//! as an error instead of UB.

use crate::storage::Storage;
use crate::{Result, TensorError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A process-wide table mapping storage ids to live storages.
///
/// Cloning shares the table.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<HashMap<u64, Arc<Storage>>>>,
}

impl SharedRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a storage, making it resolvable by id. Re-registering the
    /// same storage is a no-op.
    pub fn register(&self, storage: &Arc<Storage>) {
        self.inner
            .lock()
            .insert(storage.id(), Arc::clone(storage));
    }

    /// Resolves a storage id to the live storage.
    pub fn lookup(&self, storage_id: u64) -> Result<Arc<Storage>> {
        self.inner
            .lock()
            .get(&storage_id)
            .cloned()
            .ok_or(TensorError::DanglingPayload { storage_id })
    }

    /// Releases a storage id. Returns true when the id was present.
    ///
    /// Consumers that already resolved the storage keep their `Arc`; the
    /// bytes are freed only when the last reference drops (the paper's
    /// "tensors are kept in memory as long as any of the producers or
    /// consumers hold a reference").
    pub fn release(&self, storage_id: u64) -> bool {
        self.inner.lock().remove(&storage_id).is_some()
    }

    /// Number of registered storages.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no storages are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of registered storages (producer-side bookkeeping).
    pub fn registered_bytes(&self) -> usize {
        self.inner.lock().values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::DeviceId;

    #[test]
    fn register_lookup_release() {
        let reg = SharedRegistry::new();
        let s = Arc::new(Storage::new(vec![1, 2, 3], DeviceId::Gpu(0)));
        reg.register(&s);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.registered_bytes(), 3);
        let got = reg.lookup(s.id()).unwrap();
        assert_eq!(got.bytes(), &[1, 2, 3]);
        assert!(reg.release(s.id()));
        assert!(!reg.release(s.id()));
        assert!(reg.is_empty());
    }

    #[test]
    fn lookup_after_release_is_dangling() {
        let reg = SharedRegistry::new();
        let s = Arc::new(Storage::new(vec![0u8; 8], DeviceId::Cpu));
        let id = s.id();
        reg.register(&s);
        reg.release(id);
        assert!(matches!(
            reg.lookup(id).unwrap_err(),
            TensorError::DanglingPayload { storage_id } if storage_id == id
        ));
    }

    #[test]
    fn consumer_keeps_data_alive_after_release() {
        let reg = SharedRegistry::new();
        let s = Arc::new(Storage::new(vec![7u8; 4], DeviceId::Gpu(1)));
        reg.register(&s);
        let consumer_ref = reg.lookup(s.id()).unwrap();
        reg.release(s.id());
        drop(s);
        // consumer still holds valid bytes
        assert_eq!(consumer_ref.bytes(), &[7, 7, 7, 7]);
    }

    #[test]
    fn clone_shares_table() {
        let reg = SharedRegistry::new();
        let view = reg.clone();
        let s = Arc::new(Storage::new(vec![1], DeviceId::Cpu));
        reg.register(&s);
        assert!(view.lookup(s.id()).is_ok());
    }
}
