//! The shared storage registry.
//!
//! In the real TensorSocket, the producer shares CUDA/shared-memory handles
//! and PyTorch's tensor-rebuilding machinery resolves them in the consumer
//! process. The [`SharedRegistry`] is that handle table: the producer
//! registers a storage before publishing a payload referencing it, and
//! consumers resolve the payload's storage id to an `Arc<Storage>` without
//! copying data. Releasing a storage (after all consumers acknowledged the
//! batch, §3.2.3) removes it from the table; late lookups fail with
//! [`crate::TensorError::DanglingPayload`] —
//! the equivalent of a use-after-free on a real device pointer, surfaced
//! as an error instead of UB.
//!
//! ## Cross-process sharing
//!
//! Within one process the table alone suffices. To share across OS
//! processes, bind a [`ts_shm::ShmArena`] with
//! [`SharedRegistry::bind_arena`]:
//!
//! * the **producer** side then mirrors every registered storage into an
//!   arena slot and exposes its [`ShmHandle`] via
//!   [`SharedRegistry::shm_handle`], which
//!   [`crate::TensorPayload::pack_shared`] embeds in the payload metadata;
//! * the **consumer** side (a different process that opened the same
//!   arena file) resolves payloads it has no local storage for by
//!   attaching the handle's slot — a zero-copy mmap view, wrapped as a
//!   [`Storage`] ([`SharedRegistry::resolve`]).
//!
//! Releases flow through too: [`SharedRegistry::release`] drops the
//! producer's arena reference, and a consumer's view drops its reference
//! when the rebuilt tensor goes away, so slots recycle exactly when nobody
//! reads them.

use crate::pool::SlotPool;
use crate::storage::Storage;
use crate::{Result, TensorError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use ts_shm::{ShmArena, ShmHandle};

#[derive(Debug)]
struct Registration {
    storage: Arc<Storage>,
    /// Live registrations of this id. A storage republished across an
    /// epoch boundary — e.g. a vector source re-sharing the same batches
    /// while the previous epoch's tail is still rubberband-pinned — must
    /// not have its arena slot reclaimed by the *first* release while the
    /// second registration is live: registrations count up and the slot
    /// is freed exactly once, when the count returns to zero.
    refs: u64,
}

#[derive(Debug, Default)]
struct Inner {
    storages: HashMap<u64, Registration>,
    /// Producer side: arena placement of registered storages.
    handles: HashMap<u64, ShmHandle>,
    /// Which pool placed each handle (`Some(shard)` = that shard's pool,
    /// `None` = the default pool), so the release reclaims into the pool
    /// that owns the slot. Absent = raw arena allocation.
    placed_by: HashMap<u64, Option<u32>>,
}

/// A process-wide table mapping storage ids to live storages, optionally
/// mirrored into a shared-memory arena for cross-process consumers.
///
/// Cloning shares the table.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<Inner>>,
    arena: Arc<Mutex<Option<Arc<ShmArena>>>>,
    /// Optional recycling pool: placements go through it instead of raw
    /// arena allocations, and releases return slots to it.
    slot_pool: Arc<Mutex<Option<SlotPool>>>,
    /// Per-shard recycling pools for sharded producer groups: each shard's
    /// publish pipeline recycles its own slots, so shards never contend on
    /// one free list and per-shard pool stats stay attributable.
    shard_pools: Arc<Mutex<HashMap<u32, SlotPool>>>,
}

impl SharedRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a shared-memory arena. On the producer side every subsequent
    /// [`SharedRegistry::register`] also places the bytes in the arena; on
    /// the consumer side [`SharedRegistry::resolve`] can attach handles
    /// from payloads.
    pub fn bind_arena(&self, arena: Arc<ShmArena>) {
        *self.arena.lock() = Some(arena);
    }

    /// The bound arena, if any.
    pub fn arena(&self) -> Option<Arc<ShmArena>> {
        self.arena.lock().clone()
    }

    /// Binds a recycling [`SlotPool`] (and its arena, if none is bound
    /// yet). Subsequent placements recycle acked slots in place instead of
    /// allocating fresh ones, so a steady-state producer performs zero
    /// arena allocations — see the pool docs.
    pub fn bind_slot_pool(&self, pool: SlotPool) {
        let mut arena = self.arena.lock();
        if arena.is_none() {
            *arena = Some(pool.arena().clone());
        }
        *self.slot_pool.lock() = Some(pool);
    }

    /// The bound recycling pool, if any.
    pub fn slot_pool(&self) -> Option<SlotPool> {
        self.slot_pool.lock().clone()
    }

    /// Binds shard `shard`'s recycling pool (and its arena, if none is
    /// bound yet). Storages registered through
    /// [`SharedRegistry::register_for_shard`] with this shard key place
    /// and recycle through this pool, independently of every other
    /// shard's — the per-shard half of the sharded producer group.
    pub fn bind_shard_slot_pool(&self, shard: u32, pool: SlotPool) {
        let mut arena = self.arena.lock();
        if arena.is_none() {
            *arena = Some(pool.arena().clone());
        }
        self.shard_pools.lock().insert(shard, pool);
    }

    /// Shard `shard`'s recycling pool, if bound.
    pub fn shard_slot_pool(&self, shard: u32) -> Option<SlotPool> {
        self.shard_pools.lock().get(&shard).cloned()
    }

    /// The pool a placement with key `shard` goes through: the shard's own
    /// pool when bound, else the default pool.
    fn pool_for(&self, shard: Option<u32>) -> (Option<SlotPool>, Option<u32>) {
        if let Some(s) = shard {
            if let Some(pool) = self.shard_pools.lock().get(&s).cloned() {
                return (Some(pool), Some(s));
            }
        }
        (self.slot_pool.lock().clone(), None)
    }

    /// The recycling pool a shard's feeder should lease slots from, plus
    /// the placement key to hand back to
    /// [`SharedRegistry::register_placed`]. `None` when no pool serves the
    /// shard — the caller then falls back to the copying publish path.
    pub fn lease_pool(&self, shard: Option<u32>) -> Option<(SlotPool, Option<u32>)> {
        let (pool, key) = self.pool_for(shard);
        pool.map(|p| (p, key))
    }

    /// Resolves a `placed_by` key back to its pool.
    fn pool_by_key(&self, key: Option<u32>) -> Option<SlotPool> {
        match key {
            Some(shard) => self.shard_pools.lock().get(&shard).cloned(),
            None => self.slot_pool.lock().clone(),
        }
    }

    /// Registers a storage, making it resolvable by id. Re-registering the
    /// same storage is a no-op.
    ///
    /// With an arena bound, the bytes are also copied into an arena slot so
    /// consumers in other processes can map them. If the arena is full the
    /// storage is still registered locally — in-process consumers are
    /// unaffected and cross-process consumers surface a dangling-payload
    /// error rather than stalling. (Waiting would be futile: producer-held
    /// slot references are only released by this same thread processing
    /// acks, so fullness cannot clear while `register` blocks.)
    pub fn register(&self, storage: &Arc<Storage>) {
        self.register_for_shard(storage, None);
    }

    /// [`SharedRegistry::register`] on behalf of one shard of a producer
    /// group: arena placement goes through the shard's own recycling pool
    /// (see [`SharedRegistry::bind_shard_slot_pool`]), falling back to
    /// the default pool, then to raw arena allocation.
    pub fn register_for_shard(&self, storage: &Arc<Storage>, shard: Option<u32>) {
        let arena = self.arena.lock().clone();
        {
            let mut inner = self.inner.lock();
            if let Some(reg) = inner.storages.get_mut(&storage.id()) {
                // Republished id (epoch boundary with the earlier
                // registration still pinned): count it; the existing
                // arena placement keeps serving both.
                reg.refs += 1;
                return;
            }
            inner.storages.insert(
                storage.id(),
                Registration {
                    storage: Arc::clone(storage),
                    refs: 1,
                },
            );
        }
        // The arena copy happens outside the table lock so concurrent
        // lookups/releases never stall behind a large memcpy.
        let Some(arena) = arena else { return };
        // Never re-copy a storage that is itself an arena view (a
        // producer re-sharing a consumer-side tensor).
        if storage.is_shared_memory() {
            return;
        }
        let (pool, pool_key) = self.pool_for(shard);
        let placed = match &pool {
            Some(pool) => pool.place(storage.bytes()),
            None => arena.alloc(storage.bytes()),
        };
        if let Ok(handle) = placed {
            let mut inner = self.inner.lock();
            if inner.storages.contains_key(&storage.id()) {
                inner.handles.insert(storage.id(), handle);
                if pool.is_some() {
                    inner.placed_by.insert(storage.id(), pool_key);
                }
            } else {
                // Racing release already removed the storage: give the
                // slot straight back instead of leaking it.
                drop(inner);
                match &pool {
                    Some(pool) => pool.reclaim(handle),
                    None => {
                        arena.release(handle);
                    }
                }
            }
        }
    }

    /// Copyless registration for a feeder-leased slot: `storage` is itself
    /// a view of the arena slot behind `handle` (the feeder collated
    /// directly into the leased byte range), so there is nothing to place
    /// — the table simply adopts the handle, whose producer reference the
    /// lease transferred to the caller. `pool_key` names the recycling
    /// pool the lease came from ([`SharedRegistry::lease_pool`]); the
    /// eventual [`SharedRegistry::release`] reclaims the slot into it.
    ///
    /// A duplicate id (republished across an epoch boundary) is counted
    /// like [`SharedRegistry::register_for_shard`]'s, and the redundant
    /// new slot is reclaimed immediately instead of clobbering the live
    /// placement.
    pub fn register_placed(
        &self,
        storage: &Arc<Storage>,
        handle: ShmHandle,
        pool_key: Option<u32>,
    ) {
        {
            let mut inner = self.inner.lock();
            if let Some(reg) = inner.storages.get_mut(&storage.id()) {
                reg.refs += 1;
            } else {
                inner.storages.insert(
                    storage.id(),
                    Registration {
                        storage: Arc::clone(storage),
                        refs: 1,
                    },
                );
                inner.handles.insert(storage.id(), handle);
                inner.placed_by.insert(storage.id(), pool_key);
                return;
            }
        }
        // Duplicate: the id already has a live placement serving every
        // consumer; give the redundant slot back (outside the table lock).
        match self.pool_by_key(pool_key) {
            Some(pool) => pool.reclaim(handle),
            None => {
                if let Some(arena) = self.arena.lock().clone() {
                    arena.release(handle);
                }
            }
        }
    }

    /// The arena placement of a registered storage (producer side, arena
    /// bound, allocation succeeded).
    pub fn shm_handle(&self, storage_id: u64) -> Option<ShmHandle> {
        self.inner.lock().handles.get(&storage_id).copied()
    }

    /// Resolves a storage id to the live storage.
    pub fn lookup(&self, storage_id: u64) -> Result<Arc<Storage>> {
        self.inner
            .lock()
            .storages
            .get(&storage_id)
            .map(|reg| Arc::clone(&reg.storage))
            .ok_or(TensorError::DanglingPayload { storage_id })
    }

    /// Resolves a payload's storage: the local table first (producer
    /// process, or in-process consumers), then the shared-memory arena via
    /// the payload's handle (consumers in other processes). The arena path
    /// returns a fresh zero-copy [`Storage`] holding a slot reference that
    /// drops with it — deliberately *not* cached in the table, so consumer
    /// references never outlive the tensors built from them.
    pub fn resolve(
        &self,
        storage_id: u64,
        shm: Option<ShmHandle>,
        device: ts_device::DeviceId,
    ) -> Result<Arc<Storage>> {
        if let Ok(local) = self.lookup(storage_id) {
            return Ok(local);
        }
        let (Some(handle), Some(arena)) = (shm, self.arena.lock().clone()) else {
            return Err(TensorError::DanglingPayload { storage_id });
        };
        let view = arena
            .attach(handle)
            .map_err(|_| TensorError::DanglingPayload { storage_id })?;
        Ok(Arc::new(Storage::from_shm_view(storage_id, view, device)))
    }

    /// Releases a storage id. Returns true when the id was present.
    ///
    /// An id registered more than once (republished across an epoch
    /// boundary while the earlier registration is still pinned) only
    /// decrements its count; the slot and table entry go when the count
    /// returns to zero, so a release for the *old* epoch never pulls a
    /// placement out from under the new one.
    ///
    /// Consumers that already resolved the storage keep their `Arc`; the
    /// bytes are freed only when the last reference drops (the paper's
    /// "tensors are kept in memory as long as any of the producers or
    /// consumers hold a reference"). The arena slot likewise keeps its
    /// bytes until every cross-process view lets go.
    pub fn release(&self, storage_id: u64) -> bool {
        let arena = self.arena.lock().clone();
        let mut inner = self.inner.lock();
        match inner.storages.get_mut(&storage_id) {
            None => return false,
            Some(reg) if reg.refs > 1 => {
                reg.refs -= 1;
                return true;
            }
            Some(_) => {}
        }
        if let Some(handle) = inner.handles.remove(&storage_id) {
            // Reclaim into the pool that placed the slot (a shard's own
            // pool, or the default one); raw allocations go back to the
            // arena.
            let pool = match inner.placed_by.remove(&storage_id) {
                Some(Some(shard)) => self.shard_pools.lock().get(&shard).cloned(),
                Some(None) => self.slot_pool.lock().clone(),
                None => None,
            };
            match (pool, arena) {
                // Recycling: keep the producer reference, rewrite later.
                (Some(pool), _) => pool.reclaim(handle),
                (None, Some(arena)) => {
                    arena.release(handle);
                }
                (None, None) => {}
            }
        }
        inner.storages.remove(&storage_id).is_some()
    }

    /// Number of registered storages.
    pub fn len(&self) -> usize {
        self.inner.lock().storages.len()
    }

    /// True when no storages are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of registered storages (producer-side bookkeeping).
    pub fn registered_bytes(&self) -> usize {
        self.inner
            .lock()
            .storages
            .values()
            .map(|reg| reg.storage.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::DeviceId;

    #[test]
    fn register_lookup_release() {
        let reg = SharedRegistry::new();
        let s = Arc::new(Storage::new(vec![1, 2, 3], DeviceId::Gpu(0)));
        reg.register(&s);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.registered_bytes(), 3);
        let got = reg.lookup(s.id()).unwrap();
        assert_eq!(got.bytes(), &[1, 2, 3]);
        assert!(reg.release(s.id()));
        assert!(!reg.release(s.id()));
        assert!(reg.is_empty());
    }

    #[test]
    fn lookup_after_release_is_dangling() {
        let reg = SharedRegistry::new();
        let s = Arc::new(Storage::new(vec![0u8; 8], DeviceId::Cpu));
        let id = s.id();
        reg.register(&s);
        reg.release(id);
        assert!(matches!(
            reg.lookup(id).unwrap_err(),
            TensorError::DanglingPayload { storage_id } if storage_id == id
        ));
    }

    #[test]
    fn consumer_keeps_data_alive_after_release() {
        let reg = SharedRegistry::new();
        let s = Arc::new(Storage::new(vec![7u8; 4], DeviceId::Gpu(1)));
        reg.register(&s);
        let consumer_ref = reg.lookup(s.id()).unwrap();
        reg.release(s.id());
        drop(s);
        // consumer still holds valid bytes
        assert_eq!(consumer_ref.bytes(), &[7, 7, 7, 7]);
    }

    #[test]
    fn clone_shares_table() {
        let reg = SharedRegistry::new();
        let view = reg.clone();
        let s = Arc::new(Storage::new(vec![1], DeviceId::Cpu));
        reg.register(&s);
        assert!(view.lookup(s.id()).is_ok());
    }

    fn test_arena(tag: &str, nslots: usize, slot: usize) -> Arc<ShmArena> {
        let path = std::env::temp_dir().join(format!(
            "ts-registry-test-{}-{tag}.arena",
            std::process::id()
        ));
        ShmArena::create(path, nslots, slot).unwrap()
    }

    #[test]
    fn arena_bound_register_places_bytes() {
        let reg = SharedRegistry::new();
        reg.bind_arena(test_arena("place", 4, 64));
        let s = Arc::new(Storage::new(vec![9u8; 16], DeviceId::Cpu));
        reg.register(&s);
        let handle = reg.shm_handle(s.id()).expect("placed in arena");
        assert_eq!(handle.len, 16);
        // A "consumer" registry over the same arena resolves it without a
        // local table entry.
        let consumer = SharedRegistry::new();
        consumer.bind_arena(reg.arena().unwrap());
        let resolved = consumer
            .resolve(s.id(), Some(handle), DeviceId::Cpu)
            .unwrap();
        assert!(resolved.is_shared_memory());
        assert_eq!(resolved.bytes(), &[9u8; 16]);
        assert_eq!(resolved.id(), s.id());
        // Release drops the producer reference; the consumer view still
        // pins the slot.
        drop(resolved);
        reg.release(s.id());
        assert_eq!(reg.arena().unwrap().slots_in_use(), 0);
    }

    #[test]
    fn resolve_without_handle_or_arena_is_dangling() {
        let reg = SharedRegistry::new();
        assert!(matches!(
            reg.resolve(42, None, DeviceId::Cpu).unwrap_err(),
            TensorError::DanglingPayload { storage_id: 42 }
        ));
    }

    #[test]
    fn slot_pool_bound_registry_recycles_placements() {
        let reg = SharedRegistry::new();
        let arena = test_arena("pooled", 8, 64);
        reg.bind_slot_pool(SlotPool::new(arena.clone(), 4));
        assert!(reg.arena().is_some(), "pool binding also binds its arena");
        // A publish/ack cycle per storage: register places, release
        // reclaims, the next register recycles the same slot.
        for i in 0..20 {
            let s = Arc::new(Storage::new(vec![i as u8; 16], DeviceId::Cpu));
            reg.register(&s);
            let handle = reg.shm_handle(s.id()).expect("placed");
            assert_eq!(&arena.attach(handle).unwrap()[..], &[i as u8; 16]);
            reg.release(s.id());
        }
        let stats = reg.slot_pool().unwrap().stats();
        assert_eq!(stats.misses, 1, "only the first placement allocates");
        assert_eq!(stats.hits, 19);
        assert_eq!(stats.returned, 20);
        reg.slot_pool().unwrap().drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn shard_pools_place_and_reclaim_independently() {
        let reg = SharedRegistry::new();
        let arena = test_arena("sharded", 16, 64);
        reg.bind_shard_slot_pool(0, SlotPool::new(arena.clone(), 2));
        reg.bind_shard_slot_pool(1, SlotPool::new(arena.clone(), 2));
        // Interleaved publish/ack cycles on two shards: each shard's pool
        // sees exactly its own placements and reclaims.
        for i in 0..10u8 {
            for shard in 0..2u32 {
                let s = Arc::new(Storage::new(vec![i; 8], DeviceId::Cpu));
                reg.register_for_shard(&s, Some(shard));
                assert!(reg.shm_handle(s.id()).is_some(), "placed via shard pool");
                reg.release(s.id());
            }
        }
        for shard in 0..2u32 {
            let stats = reg.shard_slot_pool(shard).unwrap().stats();
            assert_eq!(stats.misses, 1, "shard {shard}: one warmup allocation");
            assert_eq!(stats.hits, 9, "shard {shard}: steady state recycles");
            assert_eq!(stats.returned, 10);
        }
        reg.shard_slot_pool(0).unwrap().drain();
        reg.shard_slot_pool(1).unwrap().drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn shard_key_without_pool_falls_back_to_default() {
        let reg = SharedRegistry::new();
        let arena = test_arena("fallback", 8, 64);
        reg.bind_slot_pool(SlotPool::new(arena.clone(), 4));
        let s = Arc::new(Storage::new(vec![1u8; 8], DeviceId::Cpu));
        // Shard 7 has no pool of its own: the default pool serves it.
        reg.register_for_shard(&s, Some(7));
        assert!(reg.shm_handle(s.id()).is_some());
        reg.release(s.id());
        let stats = reg.slot_pool().unwrap().stats();
        assert_eq!((stats.misses, stats.returned), (1, 1));
        reg.slot_pool().unwrap().drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn republished_storage_survives_first_release() {
        let reg = SharedRegistry::new();
        let arena = test_arena("republish", 4, 64);
        reg.bind_slot_pool(SlotPool::new(arena.clone(), 4));
        let s = Arc::new(Storage::new(vec![5u8; 16], DeviceId::Cpu));
        reg.register(&s);
        let handle = reg.shm_handle(s.id()).expect("placed");
        // Epoch boundary: the same storage is republished while the first
        // registration is still live (rubberband-pinned tail).
        reg.register(&s);
        // Releasing the first epoch's registration must NOT reclaim the
        // slot — the second registration still serves consumers.
        assert!(reg.release(s.id()));
        assert!(reg.lookup(s.id()).is_ok(), "second registration still live");
        assert_eq!(reg.shm_handle(s.id()), Some(handle), "placement intact");
        assert!(arena.attach(handle).is_ok(), "slot not recycled");
        // The final release frees exactly once.
        assert!(reg.release(s.id()));
        assert!(reg.lookup(s.id()).is_err());
        assert!(!reg.release(s.id()));
        reg.slot_pool().unwrap().drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn register_placed_adopts_leased_slot_without_copy() {
        let reg = SharedRegistry::new();
        let arena = test_arena("placed", 4, 64);
        reg.bind_slot_pool(SlotPool::new(arena.clone(), 4));
        let (pool, key) = reg.lease_pool(None).expect("pool bound");
        let mut lease = pool.lease(8).unwrap();
        lease.bytes_mut().copy_from_slice(&[3u8; 8]);
        let handle = lease.handle();
        // The storage's view holds its own reference; the lease's producer
        // reference transfers to the registry below via `into_handle`.
        let view = arena.attach(handle).unwrap();
        let s = Arc::new(Storage::from_shm_view(9001, view, DeviceId::Cpu));
        reg.register_placed(&s, lease.into_handle(), key);
        assert_eq!(reg.shm_handle(9001), Some(handle));
        assert_eq!(reg.lookup(9001).unwrap().bytes(), &[3u8; 8]);
        drop(s);
        reg.release(9001);
        let stats = pool.stats();
        assert_eq!(stats.returned, 1, "released placement reclaims into pool");
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn register_placed_duplicate_reclaims_redundant_slot() {
        let reg = SharedRegistry::new();
        let arena = test_arena("placed-dup", 4, 64);
        reg.bind_slot_pool(SlotPool::new(arena.clone(), 4));
        let (pool, key) = reg.lease_pool(None).expect("pool bound");
        let first = pool.lease(8).unwrap();
        let first_handle = first.handle();
        let view = arena.attach(first_handle).unwrap();
        let s = Arc::new(Storage::from_shm_view(77, view, DeviceId::Cpu));
        reg.register_placed(&s, first.into_handle(), key);
        // Republish of the same id with a fresh slot: the duplicate slot
        // is reclaimed immediately, the original placement stays.
        let second = pool.lease(8).unwrap();
        reg.register_placed(&s, second.into_handle(), key);
        assert_eq!(
            reg.shm_handle(77),
            Some(first_handle),
            "first placement kept"
        );
        assert_eq!(pool.stats().returned, 1, "redundant slot reclaimed");
        // Two registrations → two releases to free.
        assert!(reg.release(77));
        assert!(reg.lookup(77).is_ok());
        assert!(reg.release(77));
        assert!(reg.lookup(77).is_err());
        drop(s);
        pool.drain();
        assert_eq!(arena.slots_in_use(), 0);
    }

    #[test]
    fn release_after_consumer_detach_frees_slot() {
        let reg = SharedRegistry::new();
        reg.bind_arena(test_arena("free", 2, 32));
        let s = Arc::new(Storage::new(vec![1u8; 8], DeviceId::Cpu));
        reg.register(&s);
        let handle = reg.shm_handle(s.id()).unwrap();
        let arena = reg.arena().unwrap();
        assert_eq!(arena.slots_in_use(), 1);
        reg.release(s.id());
        assert_eq!(arena.slots_in_use(), 0);
        // Stale handle can no longer be attached.
        assert!(arena.attach(handle).is_err());
    }
}
