//! Element types.

/// Element type of a [`crate::Tensor`].
///
/// The evaluation only needs the types that appear in the paper's
/// pipelines: `U8` for decoded images shipped host→device (normalization
/// happens on-GPU), `F32` for embeddings/audio, `F16` for mixed-precision
/// activations, `I64` for token ids and index tensors, and `Bool` for masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Unsigned 8-bit integer.
    U8,
    /// 16-bit float (storage only; host math is done in f32).
    F16,
    /// 32-bit float.
    F32,
    /// 64-bit signed integer.
    I64,
    /// Boolean stored as one byte.
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::U8 | DType::Bool => 1,
            DType::F16 => 2,
            DType::F32 => 4,
            DType::I64 => 8,
        }
    }

    /// Stable numeric tag used by the wire codec.
    pub const fn tag(self) -> u8 {
        match self {
            DType::U8 => 0,
            DType::F16 => 1,
            DType::F32 => 2,
            DType::I64 => 3,
            DType::Bool => 4,
        }
    }

    /// Inverse of [`DType::tag`].
    pub const fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(DType::U8),
            1 => Some(DType::F16),
            2 => Some(DType::F32),
            3 => Some(DType::I64),
            4 => Some(DType::Bool),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [DType; 5] = [DType::U8, DType::F16, DType::F32, DType::I64, DType::Bool];

    #[test]
    fn sizes() {
        assert_eq!(DType::U8.size_bytes(), 1);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn tag_round_trips() {
        for dt in ALL {
            assert_eq!(DType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DType::from_tag(250), None);
    }
}
