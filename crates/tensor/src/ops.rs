//! Small numeric kernels.
//!
//! These are not a math library; they exist so examples and tests can run
//! *real* CPU work against tensor data (decode validation, checksums, a
//! miniature "training step") instead of sleeping — the reproduction's
//! stand-in for model compute where real GPU kernels would run.

use crate::{DType, Result, Tensor, TensorError};

/// FNV-1a checksum of the view's bytes (order-sensitive).
pub fn checksum(t: &Tensor) -> u64 {
    fnv1a(&t.gather_bytes())
}

/// FNV-1a over raw bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Mean of an `F32` tensor; `0.0` for empty tensors.
pub fn mean_f32(t: &Tensor) -> Result<f32> {
    let v = t.to_vec_f32()?;
    if v.is_empty() {
        return Ok(0.0);
    }
    Ok(v.iter().sum::<f32>() / v.len() as f32)
}

/// `y = a*x + y` over two equally shaped `F32` tensors, returning a fresh
/// tensor. Used as the "gradient step" of the miniature training loops.
pub fn saxpy(a: f32, x: &Tensor, y: &Tensor) -> Result<Tensor> {
    if x.dtype() != DType::F32 || y.dtype() != DType::F32 {
        return Err(TensorError::DType {
            expected: DType::F32,
            got: if x.dtype() != DType::F32 {
                x.dtype()
            } else {
                y.dtype()
            },
        });
    }
    if x.shape() != y.shape() {
        return Err(TensorError::Shape(format!(
            "saxpy shape mismatch: {:?} vs {:?}",
            x.shape(),
            y.shape()
        )));
    }
    let xv = x.to_vec_f32()?;
    let yv = y.to_vec_f32()?;
    let out: Vec<f32> = xv.iter().zip(&yv).map(|(xi, yi)| a * xi + yi).collect();
    Tensor::from_f32(&out, x.shape(), x.device())
}

/// Burns real CPU time proportional to `units`, returning a value that
/// depends on every iteration so the work cannot be optimized away.
///
/// One unit is roughly a few nanoseconds of integer work; callers calibrate
/// against wall-clock where it matters.
pub fn busy_work(seed: u64, units: u64) -> u64 {
    let mut h = seed | 1;
    for i in 0..units {
        h ^= i;
        h = h.wrapping_mul(0x100000001b3);
        h ^= h >> 33;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::DeviceId;

    #[test]
    fn checksum_is_stable_and_view_sensitive() {
        let t = Tensor::rand_u8(&[4, 4], DeviceId::Cpu, 5);
        assert_eq!(checksum(&t), checksum(&t.clone()));
        let half = t.narrow(0, 0, 2).unwrap();
        assert_ne!(checksum(&t), checksum(&half));
        // a view checksums the same as its materialized copy
        assert_eq!(checksum(&half), checksum(&half.contiguous()));
    }

    #[test]
    fn mean_of_known_values() {
        let t = Tensor::from_f32(&[1.0, 2.0, 3.0, 6.0], &[4], DeviceId::Cpu).unwrap();
        assert_eq!(mean_f32(&t).unwrap(), 3.0);
        let empty = Tensor::from_f32(&[], &[0], DeviceId::Cpu).unwrap();
        assert_eq!(mean_f32(&empty).unwrap(), 0.0);
    }

    #[test]
    fn saxpy_math_and_validation() {
        let x = Tensor::from_f32(&[1.0, 2.0], &[2], DeviceId::Cpu).unwrap();
        let y = Tensor::from_f32(&[10.0, 20.0], &[2], DeviceId::Cpu).unwrap();
        let z = saxpy(2.0, &x, &y).unwrap();
        assert_eq!(z.to_vec_f32().unwrap(), vec![12.0, 24.0]);
        let bad = Tensor::from_f32(&[1.0], &[1], DeviceId::Cpu).unwrap();
        assert!(saxpy(1.0, &x, &bad).is_err());
        let not_f32 = Tensor::from_u8(vec![1, 2], &[2], DeviceId::Cpu).unwrap();
        assert!(saxpy(1.0, &not_f32, &y).is_err());
    }

    #[test]
    fn busy_work_depends_on_inputs() {
        assert_eq!(busy_work(1, 100), busy_work(1, 100));
        assert_ne!(busy_work(1, 100), busy_work(2, 100));
        assert_ne!(busy_work(1, 100), busy_work(1, 101));
    }
}
