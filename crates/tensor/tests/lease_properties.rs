//! Property tests of the zero-copy lease lifetime: a slot that is leased,
//! collated into, published and possibly republished across an epoch
//! boundary while rubberband-pinned is released exactly once — never
//! while any registration or consumer pin is live, and never leaked.
//!
//! Companion to `ts-shm`'s `arena_properties` suite: that one checks the
//! raw slot protocol (generations, refcounts), this one checks the layer
//! above — [`SlotPool`] leases, [`cat0_leased`] placement and the
//! [`SharedRegistry`]'s refcounted adoption of placed handles.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use ts_device::DeviceId;
use ts_shm::{ShmArena, ShmError, ShmView};
use ts_tensor::{cat0_leased, SharedRegistry, SlotPool, Tensor, TensorError};

fn temp_arena(nslots: usize, slot_size: usize) -> std::sync::Arc<ShmArena> {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "ts-tensor-lease-prop-{}-{}.arena",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    ShmArena::create(path, nslots, slot_size).unwrap()
}

/// Deterministic, distinctive content for the `k`-th publication.
fn content_f32(k: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (k.wrapping_mul(31).wrapping_add(i as u64) % 251) as f32)
        .collect()
}

/// One published batch the model tracks: the producer-side tensor, its
/// registry id, the bytes it must keep reading, and how many live
/// registrations (initial publish + epoch republishes) it has.
struct Live {
    tensor: Tensor,
    id: u64,
    bytes: Vec<u8>,
    refs: u64,
}

proptest! {
    /// Model-checked lease lifetime. Ops: 0 = lease+collate+publish,
    /// 1 = republish the same storage across an epoch boundary (duplicate
    /// registration must refcount, not double-place), 2 = consumer pin
    /// (attach the published handle and hold the view), 3 = release one
    /// registration, 4 = attach-and-verify a live publication.
    #[test]
    fn lease_released_exactly_once_and_never_while_pinned(
        nslots in 2usize..8,
        ops in prop::collection::vec((0u8..5, 0usize..32, 1usize..12), 1..100)
    ) {
        let arena = temp_arena(nslots, 64);
        let pool = SlotPool::new(arena.clone(), nslots);
        let registry = SharedRegistry::new();
        registry.bind_slot_pool(pool.clone());
        let mut live: Vec<Live> = Vec::new();
        let mut pins: Vec<(ShmView, Vec<u8>)> = Vec::new();
        let mut counter = 0u64;
        for (op, pick, len) in ops {
            match op {
                0 => {
                    counter += 1;
                    let values = content_f32(counter, len);
                    let src = Tensor::from_f32(&values, &[len], DeviceId::Cpu).unwrap();
                    let expected = src.gather_bytes();
                    match cat0_leased(&[src], &pool, DeviceId::Cpu) {
                        Ok((tensor, lease)) => {
                            // The collate wrote into the leased slot: the
                            // published tensor reads the source bytes.
                            prop_assert_eq!(tensor.gather_bytes(), expected.clone());
                            let id = tensor.storage_id();
                            registry.register_placed(tensor.storage(), lease.into_handle(), None);
                            prop_assert!(registry.shm_handle(id).is_some());
                            live.push(Live { tensor, id, bytes: expected, refs: 1 });
                        }
                        // Arena full: every slot is held by a live
                        // publication or a consumer pin. Legal — the
                        // runtime falls back to the copying path here.
                        Err(TensorError::Arena(_)) => {}
                        Err(e) => prop_assert!(false, "unexpected collate error {e:?}"),
                    }
                }
                1 if !live.is_empty() => {
                    // Epoch republish: the same storage registered again
                    // with a freshly leased slot. The registry must bump
                    // the refcount and reclaim the redundant slot — not
                    // grow the table or orphan the first placement.
                    let idx = pick % live.len();
                    let e = &mut live[idx];
                    match pool.lease(e.bytes.len()) {
                        Ok(lease) => {
                            let before = registry.len();
                            registry.register_placed(e.tensor.storage(), lease.into_handle(), None);
                            e.refs += 1;
                            prop_assert_eq!(registry.len(), before);
                            prop_assert!(registry.shm_handle(e.id).is_some());
                            prop_assert_eq!(e.tensor.gather_bytes(), e.bytes.clone());
                        }
                        Err(ShmError::Full) => {}
                        Err(err) => prop_assert!(false, "unexpected lease error {err:?}"),
                    }
                }
                2 if !live.is_empty() => {
                    let e = &live[pick % live.len()];
                    let handle = registry.shm_handle(e.id).unwrap();
                    let view = arena.attach(handle).unwrap();
                    prop_assert_eq!(&view[..], e.bytes.as_slice());
                    pins.push((view, e.bytes.clone()));
                }
                3 if !live.is_empty() => {
                    let idx = pick % live.len();
                    prop_assert!(registry.release(live[idx].id), "live registration releases");
                    if live[idx].refs > 1 {
                        // One registration down, others still live: the
                        // storage must stay resolvable and placed.
                        live[idx].refs -= 1;
                        prop_assert!(registry.lookup(live[idx].id).is_ok());
                        prop_assert!(registry.shm_handle(live[idx].id).is_some());
                        prop_assert_eq!(live[idx].tensor.gather_bytes(), live[idx].bytes.clone());
                    } else {
                        let e = live.remove(idx);
                        prop_assert!(registry.lookup(e.id).is_err());
                        prop_assert!(registry.shm_handle(e.id).is_none());
                        // Exactly once: a second release is a no-op.
                        prop_assert!(!registry.release(e.id));
                    }
                }
                4 if !live.is_empty() => {
                    let e = &live[pick % live.len()];
                    prop_assert_eq!(e.tensor.gather_bytes(), e.bytes.clone());
                    let view = arena.attach(registry.shm_handle(e.id).unwrap()).unwrap();
                    prop_assert_eq!(&view[..], e.bytes.as_slice());
                }
                _ => {}
            }
        }
        // Drain the model: every remaining registration releases exactly
        // `refs` times, staying live until the last one.
        for e in live {
            for remaining in (1..=e.refs).rev() {
                prop_assert!(registry.lookup(e.id).is_ok());
                prop_assert!(registry.release(e.id));
                if remaining > 1 {
                    prop_assert!(registry.shm_handle(e.id).is_some());
                }
            }
            prop_assert!(!registry.release(e.id));
            // The producer-side tensor still reads its bytes: the storage
            // holds its own attach reference independent of the registry.
            prop_assert_eq!(e.tensor.gather_bytes(), e.bytes);
        }
        prop_assert!(registry.is_empty());
        // Consumer pins outlive every release: attach references keep the
        // bytes stable until the views drop.
        for (view, bytes) in &pins {
            prop_assert_eq!(&view[..], bytes.as_slice());
        }
        drop(pins);
        pool.drain();
        prop_assert_eq!(arena.slots_in_use(), 0, "no slot leaks, no double frees");
    }
}

/// The satellite scenario, directed: leased → published → consumer-pinned
/// → republished across the epoch boundary → released once per
/// registration — the slot frees exactly once, after the last release,
/// and the pin keeps reading its bytes throughout.
#[test]
fn republished_pinned_slot_frees_exactly_once() {
    let arena = temp_arena(4, 64);
    let pool = SlotPool::new(arena.clone(), 4);
    let registry = SharedRegistry::new();
    registry.bind_slot_pool(pool.clone());

    let values = content_f32(7, 8);
    let src = Tensor::from_f32(&values, &[8], DeviceId::Cpu).unwrap();
    let expected = src.gather_bytes();
    let (tensor, lease) = cat0_leased(&[src], &pool, DeviceId::Cpu).unwrap();
    let id = tensor.storage_id();
    registry.register_placed(tensor.storage(), lease.into_handle(), None);

    // Rubberband pin: a consumer attaches the published handle.
    let pin = arena.attach(registry.shm_handle(id).unwrap()).unwrap();
    assert_eq!(&pin[..], expected.as_slice());

    // Epoch boundary: the same storage republished with a fresh lease.
    let lease2 = pool.lease(expected.len()).unwrap();
    registry.register_placed(tensor.storage(), lease2.into_handle(), None);
    assert_eq!(
        registry.len(),
        1,
        "republish refcounts, it does not duplicate"
    );

    // First release: the earlier epoch's registration retires, but the
    // republished one keeps the storage live and resolvable.
    assert!(registry.release(id));
    assert!(registry.lookup(id).is_ok());
    assert!(registry.shm_handle(id).is_some());
    assert_eq!(tensor.gather_bytes(), expected);

    // Last release: now the registration goes away — exactly once.
    assert!(registry.release(id));
    assert!(registry.lookup(id).is_err());
    assert!(!registry.release(id));

    // The pin still reads the published bytes after every release.
    assert_eq!(&pin[..], expected.as_slice());
    drop(pin);
    drop(tensor);
    pool.drain();
    assert_eq!(arena.slots_in_use(), 0);
}
