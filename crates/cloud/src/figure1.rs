//! The Figure-1 heatmap: instance counts by (vCPU, GPU count) per provider.

use crate::catalog::{all_instances, Provider};

/// The vCPU buckets on the figure's y-axis (ascending).
pub const VCPU_AXIS: [u32; 8] = [4, 8, 16, 24, 32, 48, 64, 96];

/// The GPU-count buckets on the figure's x-axis.
pub const GPU_AXIS: [u32; 6] = [1, 2, 4, 6, 8, 16];

/// One cell of the heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure1Cell {
    /// vCPU bucket.
    pub vcpus: u32,
    /// GPU-count bucket.
    pub gpus: u32,
    /// Number of catalog instances in the cell.
    pub count: u32,
}

fn bucket(value: u32, axis: &[u32]) -> Option<u32> {
    // Snap to the nearest axis value; values beyond the axis are clamped to
    // the last bucket (192 vCPUs → 96 bucket, as the figure caps its axis).
    axis.iter()
        .copied()
        .min_by_key(|a| a.abs_diff(value))
        .filter(|a| {
            // reject values wildly off-axis (none in the catalog)
            a.abs_diff(value) <= value
        })
}

/// Computes the (vCPU, GPU) heatmap for `provider`.
pub fn figure1_matrix(provider: Provider) -> Vec<Figure1Cell> {
    let mut cells: Vec<Figure1Cell> = Vec::new();
    for &v in &VCPU_AXIS {
        for &g in &GPU_AXIS {
            cells.push(Figure1Cell {
                vcpus: v,
                gpus: g,
                count: 0,
            });
        }
    }
    for inst in all_instances().iter().filter(|i| i.provider == provider) {
        let (Some(v), Some(g)) = (bucket(inst.vcpus, &VCPU_AXIS), bucket(inst.gpus, &GPU_AXIS))
        else {
            continue;
        };
        if let Some(cell) = cells.iter_mut().find(|c| c.vcpus == v && c.gpus == g) {
            cell.count += 1;
        }
    }
    cells
}

/// Total instances a provider contributes to the heatmap.
pub fn provider_total(provider: Provider) -> u32 {
    figure1_matrix(provider).iter().map(|c| c.count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_is_axis_product() {
        let m = figure1_matrix(Provider::Aws);
        assert_eq!(m.len(), VCPU_AXIS.len() * GPU_AXIS.len());
    }

    #[test]
    fn counts_add_up_to_catalog() {
        for p in [Provider::Aws, Provider::Azure, Provider::Gcp] {
            let catalog_n = crate::catalog::by_provider(p).len() as u32;
            assert_eq!(provider_total(p), catalog_n, "{p}");
        }
    }

    #[test]
    fn single_gpu_low_vcpu_cells_are_dense() {
        // the figure's observation: most offerings sit at few vCPUs per GPU
        let m = figure1_matrix(Provider::Aws);
        let single_gpu: u32 = m.iter().filter(|c| c.gpus == 1).map(|c| c.count).sum();
        let many_gpu: u32 = m.iter().filter(|c| c.gpus >= 8).map(|c| c.count).sum();
        assert!(single_gpu > many_gpu);
    }

    #[test]
    fn high_ratio_cells_are_sparse() {
        // ≥ 64 vCPUs with a single GPU is rare on every provider
        for p in [Provider::Aws, Provider::Azure, Provider::Gcp] {
            let m = figure1_matrix(p);
            let high: u32 = m
                .iter()
                .filter(|c| c.gpus == 1 && c.vcpus >= 64)
                .map(|c| c.count)
                .sum();
            assert!(high <= 2, "{p}: {high}");
        }
    }

    #[test]
    fn bucketing_snaps_sensibly() {
        assert_eq!(bucket(6, &VCPU_AXIS), Some(4)); // NC6s_v3 → 4-bucket (nearest)
        assert_eq!(bucket(12, &VCPU_AXIS), Some(8)); // 12 is closer to 8? no: |12-8|=4, |12-16|=4 → min_by_key picks first=8
        assert_eq!(bucket(192, &VCPU_AXIS), Some(96));
        assert_eq!(bucket(96, &VCPU_AXIS), Some(96));
    }
}
