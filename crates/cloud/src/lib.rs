#![warn(missing_docs)]

//! Cloud GPU instance catalog, the Figure-1 vCPU:GPU matrix, and the cost
//! planner behind the paper's "halve the cloud costs" claim.
//!
//! Figure 1 motivates TensorSocket: cloud providers offer few distinct
//! vCPU-per-GPU ratios, and buying more vCPUs for the same GPU multiplies
//! the price. The catalog below encodes the GPU instance families of AWS,
//! Azure and GCP as of the paper's snapshot (late 2023 pricing for the g5
//! family matches Table 2 exactly); [`figure1_matrix`] derives the heatmap
//! and [`planner`] answers "which instance sustains this workload, and
//! what does sharing save?".

pub mod catalog;
pub mod figure1;
pub mod planner;

pub use catalog::{all_instances, Instance, Provider};
pub use figure1::{figure1_matrix, Figure1Cell, GPU_AXIS, VCPU_AXIS};
pub use planner::{cheapest_sustaining, savings_with_sharing, Requirement};
