//! Cost planning: which instance sustains a workload, and what does
//! sharing save?
//!
//! The §4.3 claim: CLMR training needs ~32 vCPUs per A10G without sharing
//! but only ~8 with TensorSocket, so the g5.2xlarge replaces the
//! g5.8xlarge at ~half the cost. [`savings_with_sharing`] computes exactly
//! that ratio from the catalog.

use crate::catalog::{all_instances, Instance};

/// Resources a workload needs from one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Requirement {
    /// Minimum vCPUs (data loading + training scripts).
    pub vcpus: u32,
    /// Minimum GPU count.
    pub gpus: u32,
    /// Minimum VRAM per GPU in GB.
    pub vram_gb: u32,
    /// Required GPU model (`None` = any).
    pub gpu_model: Option<&'static str>,
}

impl Requirement {
    fn satisfied_by(&self, i: &Instance) -> bool {
        i.vcpus >= self.vcpus
            && i.gpus >= self.gpus
            && i.vram_gb >= self.vram_gb
            && self.gpu_model.is_none_or(|m| i.gpu_model == m)
    }
}

/// The cheapest catalog instance satisfying `req`.
pub fn cheapest_sustaining(req: Requirement) -> Option<Instance> {
    all_instances()
        .into_iter()
        .filter(|i| req.satisfied_by(i))
        .min_by(|a, b| {
            a.hourly_usd
                .partial_cmp(&b.hourly_usd)
                .expect("prices are finite")
        })
}

/// Cost comparison of running a workload with and without shared loading.
#[derive(Debug, Clone)]
pub struct SharingSavings {
    /// Cheapest instance without sharing.
    pub without: Instance,
    /// Cheapest instance with sharing.
    pub with: Instance,
    /// `1 - with/without` as a fraction.
    pub saving_fraction: f64,
}

/// Computes the cost saving from reducing the vCPU requirement via shared
/// loading (`vcpus_without` → `vcpus_with`), all else equal.
pub fn savings_with_sharing(
    mut req: Requirement,
    vcpus_without: u32,
    vcpus_with: u32,
) -> Option<SharingSavings> {
    req.vcpus = vcpus_without;
    let without = cheapest_sustaining(req)?;
    req.vcpus = vcpus_with;
    let with = cheapest_sustaining(req)?;
    let saving_fraction = 1.0 - with.hourly_usd / without.hourly_usd;
    Some(SharingSavings {
        without,
        with,
        saving_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmr_case_from_section_4_3() {
        // 4-way CLMR on one A10G: 32 vCPUs without sharing, 8 with.
        let req = Requirement {
            vcpus: 0,
            gpus: 1,
            vram_gb: 24,
            gpu_model: Some("A10G"),
        };
        let s = savings_with_sharing(req, 32, 8).unwrap();
        assert_eq!(s.without.name, "g5.8xlarge");
        assert_eq!(s.with.name, "g5.2xlarge");
        // 1 - 1.212/2.448 ≈ 50.5%
        assert!(
            (s.saving_fraction - 0.505).abs() < 0.01,
            "{}",
            s.saving_fraction
        );
    }

    #[test]
    fn cheapest_respects_all_constraints() {
        let i = cheapest_sustaining(Requirement {
            vcpus: 40,
            gpus: 4,
            vram_gb: 40,
            gpu_model: Some("A100"),
        })
        .unwrap();
        assert!(i.vcpus >= 40 && i.gpus >= 4 && i.vram_gb >= 40);
        assert_eq!(i.gpu_model, "A100");
    }

    #[test]
    fn impossible_requirements_yield_none() {
        assert!(cheapest_sustaining(Requirement {
            vcpus: 10_000,
            gpus: 1,
            vram_gb: 24,
            gpu_model: None,
        })
        .is_none());
    }

    #[test]
    fn any_model_picks_cheapest_overall() {
        let i = cheapest_sustaining(Requirement {
            vcpus: 4,
            gpus: 1,
            vram_gb: 16,
            gpu_model: None,
        })
        .unwrap();
        // cheapest 1-GPU/16GB+ box in the catalog (T4 class)
        assert!(i.hourly_usd <= 0.55, "{} at {}", i.name, i.hourly_usd);
    }
}
