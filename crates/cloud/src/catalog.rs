//! The instance catalog.
//!
//! One row per GPU instance type. The list covers the GPU families the
//! paper's Figure 1 heatmap aggregates (AWS G/P families, Azure NC/ND/NV
//! v-series, GCP A2/G2 and N1+accelerator shapes). Prices are on-demand
//! USD/hour where the paper reports them (Table 2); other prices are
//! representative of the same snapshot and only used for relative
//! comparisons.

/// Cloud provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Provider {
    /// Amazon Web Services.
    Aws,
    /// Microsoft Azure.
    Azure,
    /// Google Cloud Platform.
    Gcp,
}

impl std::fmt::Display for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provider::Aws => write!(f, "AWS"),
            Provider::Azure => write!(f, "Azure"),
            Provider::Gcp => write!(f, "GCP"),
        }
    }
}

/// One rentable instance shape.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Provider.
    pub provider: Provider,
    /// Instance type name.
    pub name: &'static str,
    /// vCPUs.
    pub vcpus: u32,
    /// GPU count.
    pub gpus: u32,
    /// GPU model.
    pub gpu_model: &'static str,
    /// VRAM per GPU in GB.
    pub vram_gb: u32,
    /// On-demand hourly price in USD.
    pub hourly_usd: f64,
}

impl Instance {
    /// vCPUs per GPU.
    pub fn vcpu_per_gpu(&self) -> f64 {
        self.vcpus as f64 / self.gpus as f64
    }
}

macro_rules! inst {
    ($prov:ident, $name:literal, $vcpus:literal, $gpus:literal, $model:literal, $vram:literal, $usd:literal) => {
        Instance {
            provider: Provider::$prov,
            name: $name,
            vcpus: $vcpus,
            gpus: $gpus,
            gpu_model: $model,
            vram_gb: $vram,
            hourly_usd: $usd,
        }
    };
}

/// The full catalog.
pub fn all_instances() -> Vec<Instance> {
    vec![
        // ---- AWS G4dn (T4) ----
        inst!(Aws, "g4dn.xlarge", 4, 1, "T4", 16, 0.526),
        inst!(Aws, "g4dn.2xlarge", 8, 1, "T4", 16, 0.752),
        inst!(Aws, "g4dn.4xlarge", 16, 1, "T4", 16, 1.204),
        inst!(Aws, "g4dn.8xlarge", 32, 1, "T4", 16, 2.176),
        inst!(Aws, "g4dn.16xlarge", 64, 1, "T4", 16, 4.352),
        inst!(Aws, "g4dn.12xlarge", 48, 4, "T4", 16, 3.912),
        inst!(Aws, "g4dn.metal", 96, 8, "T4", 16, 7.824),
        // ---- AWS G5 (A10G) — Table 2 pricing ----
        inst!(Aws, "g5.xlarge", 4, 1, "A10G", 24, 1.006),
        inst!(Aws, "g5.2xlarge", 8, 1, "A10G", 24, 1.212),
        inst!(Aws, "g5.4xlarge", 16, 1, "A10G", 24, 1.624),
        inst!(Aws, "g5.8xlarge", 32, 1, "A10G", 24, 2.448),
        inst!(Aws, "g5.16xlarge", 64, 1, "A10G", 24, 4.096),
        inst!(Aws, "g5.12xlarge", 48, 4, "A10G", 24, 5.672),
        inst!(Aws, "g5.24xlarge", 96, 4, "A10G", 24, 8.144),
        inst!(Aws, "g5.48xlarge", 192, 8, "A10G", 24, 16.288),
        // ---- AWS P3 (V100) ----
        inst!(Aws, "p3.2xlarge", 8, 1, "V100", 16, 3.06),
        inst!(Aws, "p3.8xlarge", 32, 4, "V100", 16, 12.24),
        inst!(Aws, "p3.16xlarge", 64, 8, "V100", 16, 24.48),
        inst!(Aws, "p3dn.24xlarge", 96, 8, "V100", 32, 31.212),
        // ---- AWS P4/P5 ----
        inst!(Aws, "p4d.24xlarge", 96, 8, "A100", 40, 32.77),
        inst!(Aws, "p4de.24xlarge", 96, 8, "A100", 80, 40.96),
        inst!(Aws, "p5.48xlarge", 192, 8, "H100", 80, 98.32),
        // ---- Azure NC (K80/T4/V100/A100) ----
        inst!(Azure, "NC6s_v3", 6, 1, "V100", 16, 3.06),
        inst!(Azure, "NC12s_v3", 12, 2, "V100", 16, 6.12),
        inst!(Azure, "NC24s_v3", 24, 4, "V100", 16, 12.24),
        inst!(Azure, "NC4as_T4_v3", 4, 1, "T4", 16, 0.526),
        inst!(Azure, "NC8as_T4_v3", 8, 1, "T4", 16, 0.752),
        inst!(Azure, "NC16as_T4_v3", 16, 1, "T4", 16, 1.204),
        inst!(Azure, "NC64as_T4_v3", 64, 4, "T4", 16, 4.352),
        inst!(Azure, "NC24ads_A100_v4", 24, 1, "A100", 80, 3.673),
        inst!(Azure, "NC48ads_A100_v4", 48, 2, "A100", 80, 7.346),
        inst!(Azure, "NC96ads_A100_v4", 96, 4, "A100", 80, 14.692),
        // ---- Azure ND (A100 clusters) ----
        inst!(Azure, "ND96asr_v4", 96, 8, "A100", 40, 27.197),
        inst!(Azure, "ND96amsr_A100_v4", 96, 8, "A100", 80, 32.77),
        // ---- GCP G2 (L4) ----
        inst!(Gcp, "g2-standard-4", 4, 1, "L4", 24, 0.71),
        inst!(Gcp, "g2-standard-8", 8, 1, "L4", 24, 0.85),
        inst!(Gcp, "g2-standard-12", 12, 1, "L4", 24, 1.00),
        inst!(Gcp, "g2-standard-16", 16, 1, "L4", 24, 1.15),
        inst!(Gcp, "g2-standard-32", 32, 1, "L4", 24, 1.73),
        inst!(Gcp, "g2-standard-24", 24, 2, "L4", 24, 2.00),
        inst!(Gcp, "g2-standard-48", 48, 4, "L4", 24, 4.00),
        inst!(Gcp, "g2-standard-96", 96, 8, "L4", 24, 8.00),
        // ---- GCP A2 (A100) ----
        inst!(Gcp, "a2-highgpu-1g", 12, 1, "A100", 40, 3.67),
        inst!(Gcp, "a2-highgpu-2g", 24, 2, "A100", 40, 7.35),
        inst!(Gcp, "a2-highgpu-4g", 48, 4, "A100", 40, 14.69),
        inst!(Gcp, "a2-highgpu-8g", 96, 8, "A100", 40, 29.39),
        inst!(Gcp, "a2-ultragpu-1g", 12, 1, "A100", 80, 5.07),
        inst!(Gcp, "a2-ultragpu-2g", 24, 2, "A100", 80, 10.14),
        inst!(Gcp, "a2-ultragpu-4g", 48, 4, "A100", 80, 20.27),
        inst!(Gcp, "a2-ultragpu-8g", 96, 8, "A100", 80, 40.55),
        // ---- GCP N1 + T4/V100 attachments (selected shapes) ----
        inst!(Gcp, "n1-standard-4+T4", 4, 1, "T4", 16, 0.54),
        inst!(Gcp, "n1-standard-8+T4", 8, 1, "T4", 16, 0.73),
        inst!(Gcp, "n1-standard-16+T4", 16, 1, "T4", 16, 1.11),
        inst!(Gcp, "n1-standard-32+T4", 32, 1, "T4", 16, 1.87),
        inst!(Gcp, "n1-standard-16+2xT4", 16, 2, "T4", 16, 1.46),
        inst!(Gcp, "n1-standard-32+4xT4", 32, 4, "T4", 16, 2.92),
        inst!(Gcp, "n1-standard-64+4xT4", 64, 4, "T4", 16, 4.44),
        inst!(Gcp, "n1-standard-8+V100", 8, 1, "V100", 16, 2.86),
        inst!(Gcp, "n1-standard-16+2xV100", 16, 2, "V100", 16, 5.72),
        inst!(Gcp, "n1-standard-32+4xV100", 32, 4, "V100", 16, 11.44),
        inst!(Gcp, "n1-standard-64+8xV100", 64, 8, "V100", 16, 22.88),
        inst!(Gcp, "n1-standard-96+8xV100", 96, 8, "V100", 16, 24.40),
    ]
}

/// Instances of one provider.
pub fn by_provider(p: Provider) -> Vec<Instance> {
    all_instances()
        .into_iter()
        .filter(|i| i.provider == p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_prices_match_paper() {
        let cat = all_instances();
        let price = |name: &str| {
            cat.iter()
                .find(|i| i.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .hourly_usd
        };
        assert_eq!(price("g5.2xlarge"), 1.212);
        assert_eq!(price("g5.4xlarge"), 1.624);
        assert_eq!(price("g5.8xlarge"), 2.448);
    }

    #[test]
    fn catalog_covers_all_providers() {
        for p in [Provider::Aws, Provider::Azure, Provider::Gcp] {
            assert!(by_provider(p).len() >= 10, "{p} under-represented");
        }
    }

    #[test]
    fn more_vcpus_cost_more_within_a_family() {
        // the paper's point: same GPU, more vCPUs, much higher price
        let cat = all_instances();
        let g5: Vec<&Instance> = cat
            .iter()
            .filter(|i| i.name.starts_with("g5.") && i.gpus == 1)
            .collect();
        for w in g5.windows(2) {
            if w[0].vcpus < w[1].vcpus {
                assert!(w[0].hourly_usd < w[1].hourly_usd);
            }
        }
        // highest single-GPU g5 costs ~4x the smallest
        let min = g5.iter().map(|i| i.hourly_usd).fold(f64::MAX, f64::min);
        let max = g5.iter().map(|i| i.hourly_usd).fold(0.0, f64::max);
        assert!(max / min > 3.5);
    }

    #[test]
    fn vcpu_per_gpu_ratios_are_coarse() {
        // few distinct ratios per provider — Figure 1's observation
        use std::collections::BTreeSet;
        let ratios: BTreeSet<u32> = by_provider(Provider::Aws)
            .iter()
            .map(|i| i.vcpu_per_gpu().round() as u32)
            .collect();
        assert!(ratios.len() <= 10);
    }
}
