//! Property tests of the device slab pool: arbitrary lease/release
//! interleavings never exceed the configured VRAM budget, every slab is
//! released exactly once per epoch, and oversized (flex) leases fall
//! back to transient allocations without leaking pool slots.

use proptest::prelude::*;
use std::sync::Arc;
use ts_device::{DeviceId, MemoryBook, Topology, TrafficBook};
use ts_staging::{DeviceSlabPool, SimBackend, SlabLease, StagingError};

fn pool_over(vram: u64, slab: usize, depth: usize) -> (Arc<DeviceSlabPool>, MemoryBook) {
    let memory = MemoryBook::new(vram);
    let backend = SimBackend::new(
        &Topology::new(1, false),
        memory.clone(),
        TrafficBook::new(),
        DeviceId::Gpu(0),
    )
    .unwrap();
    (
        Arc::new(DeviceSlabPool::new(Arc::new(backend), slab, depth)),
        memory,
    )
}

proptest! {
    /// Rotation invariant: whatever the interleaving of fit, overflow and
    /// oversized leases, pooled device memory never exceeds
    /// `depth × slab_bytes`, total in-use never exceeds pooled + live
    /// transients, and a full drain returns the book to zero.
    #[test]
    fn rotation_never_exceeds_configured_vram(
        depth in 1usize..6,
        warm in prop::bool::ANY,
        ops in prop::collection::vec((0u8..3, 0usize..8, 1usize..200), 1..120)
    ) {
        const SLAB: usize = 64;
        // Capacity always admits the full rotation plus one worst-case
        // transient, so OOM is not what this property is about.
        let (pool, memory) = pool_over((depth * SLAB + 256) as u64, SLAB, depth);
        if warm {
            prop_assert_eq!(pool.warm_up(), depth);
        }
        let mut live: Vec<SlabLease> = Vec::new();
        for (op, pick, len) in ops {
            match op {
                // Lease: fit sizes stay pooled, > SLAB is oversized.
                0 => match pool.lease(len) {
                    Ok(mut lease) => {
                        lease.buf_mut().extend_from_slice(&vec![0xAB; len]);
                        live.push(lease);
                    }
                    Err(StagingError::OutOfMemory(_)) => {
                        // Only reachable when many transients are live.
                        prop_assert!(!live.is_empty());
                    }
                    Err(e) => prop_assert!(false, "unexpected lease error {e:?}"),
                },
                // Release one live lease.
                1 if !live.is_empty() => {
                    live.remove(pick % live.len());
                }
                // Spot-check the standing invariants.
                _ => {}
            }
            let (free, leased, pooled) = pool.occupancy();
            prop_assert!(pooled <= depth, "pooled {pooled} > depth {depth}");
            prop_assert!(free <= pooled);
            prop_assert_eq!(leased, live.len());
            // Pooled bytes are bounded by the rotation; anything beyond
            // is transient and bounded by live leases' worst case (every
            // live lease transient at the max generated length).
            let transient_bound = live.len() as u64 * 200;
            prop_assert!(
                memory.in_use() <= (depth * SLAB) as u64 + transient_bound,
                "in_use {} beyond rotation + transients",
                memory.in_use()
            );
        }
        drop(live);
        pool.drain();
        prop_assert_eq!(memory.in_use(), 0, "drain + returns must zero the book");
    }

    /// Epoch discipline: publishing `k` batches per epoch leases and
    /// releases each slab exactly once per batch — `returned` grows by
    /// exactly `k` per epoch, the rotation never grows past its warm-up
    /// size, and steady-state epochs perform zero device allocations.
    #[test]
    fn every_slab_is_released_exactly_once_per_epoch(
        epochs in 1usize..6,
        batches in 1usize..12,
        window in 1usize..4,
    ) {
        const SLAB: usize = 128;
        let depth = window + 1;
        let (pool, memory) = pool_over(1 << 20, SLAB, depth);
        pool.warm_up();
        let warmup_allocs = memory.alloc_count();
        for epoch in 0..epochs {
            let mut in_flight: Vec<SlabLease> = Vec::new();
            for b in 0..batches {
                if in_flight.len() == window {
                    in_flight.remove(0); // oldest batch fully acked
                }
                let mut lease = pool.lease(100).unwrap();
                lease.buf_mut().extend_from_slice(&[b as u8; 100]);
                in_flight.push(lease);
            }
            drop(in_flight); // epoch end releases the tail
            let stats = pool.stats();
            prop_assert_eq!(
                stats.returned,
                ((epoch + 1) * batches) as u64,
                "each slab returns exactly once per batch"
            );
        }
        prop_assert_eq!(
            memory.alloc_count(),
            warmup_allocs,
            "steady-state epochs must not allocate device memory"
        );
        let stats = pool.stats();
        prop_assert_eq!(stats.hits + stats.misses + stats.transient,
                        (epochs * batches) as u64);
        prop_assert_eq!(stats.transient, 0, "window fits the rotation");
        pool.drain();
        prop_assert_eq!(memory.in_use(), 0);
    }

    /// Flex fallback: interleaving oversized leases with fit leases never
    /// consumes a pooled slot — after the oversized lease returns, the
    /// rotation is whole (same idle count, same accounting) and the book
    /// drops by exactly the oversized bytes.
    #[test]
    fn oversized_leases_fall_back_without_leaking_pool_slots(
        depth in 1usize..5,
        rounds in 1usize..20,
        extra in 1usize..300,
    ) {
        const SLAB: usize = 64;
        let (pool, memory) = pool_over(1 << 20, SLAB, depth);
        pool.warm_up();
        let baseline = memory.in_use();
        for r in 0..rounds {
            let fit = pool.lease(SLAB / 2).unwrap();
            let big = pool.lease(SLAB + extra).unwrap();
            prop_assert_eq!(
                memory.in_use(),
                baseline + (SLAB + extra) as u64,
                "round {r}: oversized accounted at exact size"
            );
            drop(big);
            prop_assert_eq!(memory.in_use(), baseline, "oversized bytes released");
            drop(fit);
            let (free, leased, pooled) = pool.occupancy();
            prop_assert_eq!((free, leased, pooled), (depth, 0, depth),
                            "rotation whole after round {r}");
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.oversized, rounds as u64);
        prop_assert_eq!(stats.returned, 2 * rounds as u64);
        pool.drain();
        prop_assert_eq!(memory.in_use(), 0);
    }
}
