//! Compile-checked stub for a real CUDA staging backend (`--features
//! cuda`).
//!
//! The workspace builds offline with no CUDA toolkit, so this module
//! cannot link a driver. Its job is to keep the [`DeviceBackend`]
//! contract honest: the stub implements the full trait surface against
//! the types a `cudaMalloc`/`cudaMemcpyAsync`/`cudaStreamSynchronize`
//! binding would use, so any contract change that a real backend could
//! not satisfy fails this build. [`CudaBackend::probe`] reports
//! [`StagingError::Unavailable`] at runtime; a future driver binding
//! replaces the bodies, not the signatures.

use crate::backend::{DeviceBackend, StagingError};
use ts_device::DeviceId;

/// Placeholder for a CUDA-driver-backed [`DeviceBackend`].
#[derive(Debug)]
pub struct CudaBackend {
    device: DeviceId,
}

const NO_DRIVER: &str = "built without a CUDA driver binding (offline stub)";

impl CudaBackend {
    /// Probes for a usable CUDA device. The stub always reports
    /// [`StagingError::Unavailable`]; a real binding would initialize the
    /// driver and validate the ordinal here.
    pub fn probe(device: DeviceId) -> Result<Self, StagingError> {
        if !device.is_gpu() {
            return Err(StagingError::NoRoute { device });
        }
        Err(StagingError::Unavailable(NO_DRIVER))
    }
}

impl DeviceBackend for CudaBackend {
    fn device(&self) -> DeviceId {
        self.device
    }

    fn alloc(&self, _bytes: u64) -> Result<(), StagingError> {
        Err(StagingError::Unavailable(NO_DRIVER))
    }

    fn free(&self, _bytes: u64) {}

    fn copy_h2d(&self, _src: &[u8], _dst: &mut Vec<u8>) -> Result<(), StagingError> {
        Err(StagingError::Unavailable(NO_DRIVER))
    }

    fn fence(&self) -> Result<(), StagingError> {
        Err(StagingError::Unavailable(NO_DRIVER))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_probe_reports_unavailable() {
        assert!(matches!(
            CudaBackend::probe(DeviceId::Gpu(0)).unwrap_err(),
            StagingError::Unavailable(_)
        ));
        assert!(matches!(
            CudaBackend::probe(DeviceId::Cpu).unwrap_err(),
            StagingError::NoRoute { .. }
        ));
    }

    #[test]
    fn stub_satisfies_the_backend_contract() {
        // The point of the stub: it must be usable as a trait object.
        let b: Box<dyn DeviceBackend> = Box::new(CudaBackend {
            device: DeviceId::Gpu(0),
        });
        assert_eq!(b.device(), DeviceId::Gpu(0));
        assert!(b.alloc(16).is_err());
        assert!(b.fence().is_err());
    }
}
