#![warn(missing_docs)]

//! Device staging for the TensorSocket reproduction: pre-allocated VRAM
//! slabs and host→device copy accounting behind a pluggable backend.
//!
//! The paper's producer stages every collated batch on GPU 0 before
//! sharing it (§3.2.4), and the real implementation leans on PyTorch's
//! caching allocator so that steady-state staging never calls
//! `cudaMalloc`. This crate reproduces that discipline as an explicit
//! subsystem with two halves:
//!
//! * [`DeviceBackend`] — the contract a staging device must satisfy:
//!   account an allocation ([`DeviceBackend::alloc`]), perform/account a
//!   host→device copy ([`DeviceBackend::copy_h2d`]) and complete
//!   outstanding copies ([`DeviceBackend::fence`]). The default
//!   [`SimBackend`] routes every byte through `ts-device`'s
//!   [`MemoryBook`](ts_device::MemoryBook) /
//!   [`TrafficBook`](ts_device::TrafficBook) /
//!   [`Topology`](ts_device::Topology), so VRAM peaks and PCIe/NVLink
//!   traffic land exactly where Tables 3–4 of the paper expect them —
//!   this is the "GPU 0" of the paper, simulated. A `cuda` cargo feature
//!   compiles a `cuda::CudaBackend` stub with the same surface, so the
//!   trait is proven implementable against a real driver without linking
//!   one.
//! * [`DeviceSlabPool`] — a pool of pre-allocated, equally sized VRAM
//!   slabs rotated through the publish window. Leasing a slab for a
//!   batch whose bytes fit is *not* a device allocation: the device
//!   memory was accounted once at warm-up and is reused in place, so a
//!   warmed-up producer stages every batch with **zero device
//!   allocations** (assertable through
//!   [`MemoryBook::alloc_count`](ts_device::MemoryBook::alloc_count)).
//!   Oversized requests (flexible producer batches larger than the slab)
//!   fall back to a transient allocation that is accounted, used once and
//!   freed on return — never leaking a pooled slot.
//!
//! The threaded runtime (`tensorsocket::runtime`) builds one pool per
//! producer pipeline — one per *shard* in a sharded group, mirroring the
//! per-shard host `SlotPool` binding — and drives an asynchronous copy
//! stage over it so host collation of batch *n + 1* overlaps the device
//! copy of batch *n*.

pub mod backend;
#[cfg(feature = "cuda")]
pub mod cuda;
pub mod slab;

pub use backend::{DeviceBackend, SimBackend, StagingError};
pub use slab::{DeviceSlabPool, OccupancyHook, SlabLease, SlabPoolStats, SlabTicket};
