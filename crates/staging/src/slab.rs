//! The [`DeviceSlabPool`]: pre-allocated VRAM slabs rotated through the
//! publish window.
//!
//! The pool owns up to `depth` equally sized device slabs. A *lease*
//! hands one slab out for a staged batch tensor; when the last reference
//! to that tensor drops (producer release after full acknowledgement,
//! plus any consumer still reading), the slab's buffer returns to the
//! pool and the *device accounting stays put* — the next lease rewrites
//! the same slab in place. Warm-up allocates the whole rotation once, so
//! steady-state staging performs **zero device allocations**, the device
//! analogue of the host `SlotPool`'s zero-arena-allocation guarantee.
//!
//! Requests that do not fit the rotation degrade gracefully instead of
//! failing or leaking:
//!
//! * a request *larger than the slab size* (an oversized flexible
//!   producer batch) takes a **transient** allocation: accounted on the
//!   device for its exact size, used once, freed on return;
//! * a request arriving while every pooled slab is leased out (pool
//!   sized too shallow) also takes a transient allocation rather than
//!   blocking the copy stage.
//!
//! Pooled device memory is therefore bounded by `depth × slab_bytes` at
//! all times; transients add only what is actually in flight. `drain`
//! closes the pool and releases every idle slab; leases still out return
//! their accounting when they come back.

use crate::backend::{DeviceBackend, StagingError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Counters describing a [`DeviceSlabPool`]'s behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabPoolStats {
    /// Leases served by rewriting an idle pooled slab (the
    /// zero-device-allocation path).
    pub hits: u64,
    /// Leases that had to allocate a new pooled slab (warm-up, or a pool
    /// growing toward its depth).
    pub misses: u64,
    /// Leases served by a transient allocation because every pooled slab
    /// was out (freed on return, never pooled).
    pub transient: u64,
    /// Transient leases that were also larger than the slab size
    /// (oversized flexible batches); a subset of `transient`.
    pub oversized: u64,
    /// Leases returned to the pool.
    pub returned: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Idle pooled slab buffers, ready to rewrite.
    free: Vec<Vec<u8>>,
    /// Pooled slabs currently allocated on the device (idle + leased).
    pooled_slabs: usize,
    /// Leases currently out (pooled + transient).
    leased: usize,
    /// After `drain`: returned pooled slabs free their device accounting
    /// instead of re-entering the rotation.
    closed: bool,
    stats: SlabPoolStats,
}

/// Observer of the pool's lease count, called with the number of leases
/// outstanding after every lease and return — the live half of a metrics
/// gauge, kept current even by returns that arrive long after the
/// producer shut down (a slow consumer dropping its last staged batch).
///
/// The hook runs while the pool's internal lock is held, so concurrent
/// lease/return notifications can never land out of order; the hook must
/// be cheap and must not call back into the pool.
pub type OccupancyHook = Box<dyn Fn(usize) + Send + Sync>;

/// A pool of pre-allocated device slabs. See the module docs.
///
/// Shared as an `Arc`: leases and tickets keep the pool alive until the
/// last staged tensor drops.
pub struct DeviceSlabPool {
    backend: Arc<dyn DeviceBackend>,
    slab_bytes: usize,
    depth: usize,
    inner: Mutex<Inner>,
    hook: Mutex<Option<OccupancyHook>>,
}

impl std::fmt::Debug for DeviceSlabPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceSlabPool")
            .field("backend", &self.backend)
            .field("slab_bytes", &self.slab_bytes)
            .field("depth", &self.depth)
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl DeviceSlabPool {
    /// A pool of at most `depth` slabs of `slab_bytes` each over
    /// `backend`. Size the depth like the in-flight set: publish window ×
    /// tensors per batch, plus copy-queue and rubberband headroom.
    pub fn new(backend: Arc<dyn DeviceBackend>, slab_bytes: usize, depth: usize) -> Self {
        Self {
            backend,
            slab_bytes,
            depth: depth.max(1),
            inner: Mutex::new(Inner::default()),
            hook: Mutex::new(None),
        }
    }

    /// Installs the [`OccupancyHook`]; it fires on every lease/return
    /// with the up-to-date outstanding-lease count.
    pub fn set_occupancy_hook(&self, hook: OccupancyHook) {
        *self.hook.lock() = Some(hook);
    }

    /// Always called with the `inner` lock held (see [`OccupancyHook`]):
    /// the count passed to the hook is the one computed under that lock,
    /// so notifications can never be observed out of order.
    fn notify_occupancy(&self, leased: usize) {
        if let Some(hook) = self.hook.lock().as_ref() {
            hook(leased);
        }
    }

    /// The backend this pool allocates from.
    pub fn backend(&self) -> &Arc<dyn DeviceBackend> {
        &self.backend
    }

    /// Slab size in bytes.
    pub fn slab_bytes(&self) -> usize {
        self.slab_bytes
    }

    /// Maximum pooled slabs (the rotation depth).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pre-allocates pooled slabs up to the depth, so even the first
    /// leases are rewrites. Returns how many slabs the pool now holds
    /// allocated; stops early (without error) when the device is out of
    /// capacity — the pool then grows lazily via transient fallbacks.
    pub fn warm_up(&self) -> usize {
        loop {
            // Reserve the rotation slot under the lock BEFORE allocating,
            // so concurrent warm-ups/leases can never overshoot `depth`;
            // roll the reservation back if the device is out of memory.
            {
                let mut inner = self.inner.lock();
                if inner.pooled_slabs >= self.depth || inner.closed {
                    return inner.pooled_slabs;
                }
                inner.pooled_slabs += 1;
            }
            if self.backend.alloc(self.slab_bytes as u64).is_err() {
                let mut inner = self.inner.lock();
                inner.pooled_slabs -= 1;
                return inner.pooled_slabs;
            }
            let free_again = {
                let mut inner = self.inner.lock();
                if inner.closed {
                    // A drain raced the allocation: this slab must not
                    // re-enter a closed pool's free list.
                    inner.pooled_slabs -= 1;
                    true
                } else {
                    inner.free.push(Vec::with_capacity(self.slab_bytes));
                    false
                }
            };
            if free_again {
                self.backend.free(self.slab_bytes as u64);
                return self.inner.lock().pooled_slabs;
            }
        }
    }

    /// Leases a slab able to hold `len` bytes. Fit requests rewrite an
    /// idle pooled slab (or allocate one while the rotation is still
    /// growing); oversized or overflow requests take a transient
    /// allocation. Fails only when the device itself is out of memory.
    pub fn lease(self: &Arc<Self>, len: usize) -> Result<SlabLease, StagingError> {
        if len <= self.slab_bytes {
            // Fast path: rewrite an idle pooled slab in place.
            let reused = {
                let mut inner = self.inner.lock();
                match inner.free.pop() {
                    Some(buf) => {
                        inner.stats.hits += 1;
                        inner.leased += 1;
                        // Notify while the lock is held: racing
                        // lease/return notifications must reach the hook
                        // in the order the counts were computed.
                        self.notify_occupancy(inner.leased);
                        Some(buf)
                    }
                    None => None,
                }
            };
            if let Some(buf) = reused {
                return Ok(SlabLease {
                    buf: Some(buf),
                    ticket: SlabTicket {
                        pool: Arc::clone(self),
                        pooled: true,
                        accounted: self.slab_bytes as u64,
                    },
                });
            }
            // Grow the rotation if it is not full yet, reserving the slot
            // under the lock so concurrent growers cannot overshoot the
            // depth (the reservation rolls back on device OOM).
            let reserved = {
                let mut inner = self.inner.lock();
                if inner.pooled_slabs < self.depth && !inner.closed {
                    inner.pooled_slabs += 1;
                    true
                } else {
                    false
                }
            };
            if reserved {
                if let Err(e) = self.backend.alloc(self.slab_bytes as u64) {
                    self.inner.lock().pooled_slabs -= 1;
                    return Err(e);
                }
                {
                    let mut inner = self.inner.lock();
                    inner.stats.misses += 1;
                    inner.leased += 1;
                    self.notify_occupancy(inner.leased);
                }
                return Ok(SlabLease {
                    buf: Some(Vec::with_capacity(self.slab_bytes)),
                    ticket: SlabTicket {
                        pool: Arc::clone(self),
                        pooled: true,
                        accounted: self.slab_bytes as u64,
                    },
                });
            }
        }
        // Transient: exact-size allocation, freed on return.
        self.backend.alloc(len as u64)?;
        {
            let mut inner = self.inner.lock();
            inner.stats.transient += 1;
            if len > self.slab_bytes {
                inner.stats.oversized += 1;
            }
            inner.leased += 1;
            self.notify_occupancy(inner.leased);
        }
        Ok(SlabLease {
            buf: Some(Vec::with_capacity(len)),
            ticket: SlabTicket {
                pool: Arc::clone(self),
                pooled: false,
                accounted: len as u64,
            },
        })
    }

    /// Closes the pool and frees every idle pooled slab. Outstanding
    /// leases return their device accounting as they come back.
    pub fn drain(&self) {
        let (freed, slab_bytes) = {
            let mut inner = self.inner.lock();
            inner.closed = true;
            let freed = std::mem::take(&mut inner.free);
            inner.pooled_slabs -= freed.len();
            (freed, self.slab_bytes as u64)
        };
        for _ in &freed {
            self.backend.free(slab_bytes);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> SlabPoolStats {
        self.inner.lock().stats
    }

    /// `(idle pooled slabs, leases outstanding, pooled slabs allocated)`.
    pub fn occupancy(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock();
        (inner.free.len(), inner.leased, inner.pooled_slabs)
    }

    /// Take back a lease's buffer and accounting.
    fn give_back(&self, buf: Vec<u8>, pooled: bool, accounted: u64) {
        let free_now = {
            let mut inner = self.inner.lock();
            inner.stats.returned += 1;
            inner.leased -= 1;
            let free_now = if pooled && !inner.closed {
                inner.free.push(buf);
                false
            } else {
                if pooled {
                    inner.pooled_slabs -= 1;
                }
                true
            };
            self.notify_occupancy(inner.leased);
            free_now
        };
        if free_now {
            self.backend.free(accounted);
        }
    }
}

/// The return half of a lease: restores the slab (buffer + device
/// accounting) to its pool. Obtained from [`SlabLease::into_parts`] so
/// the buffer can live inside a tensor storage while the ticket rides in
/// that storage's drop hook.
#[derive(Debug)]
pub struct SlabTicket {
    pool: Arc<DeviceSlabPool>,
    pooled: bool,
    accounted: u64,
}

impl SlabTicket {
    /// Returns `buf` (and this lease's device accounting) to the pool.
    pub fn restore(self, buf: Vec<u8>) {
        self.pool.give_back(buf, self.pooled, self.accounted);
    }
}

/// A leased slab: a writable buffer plus the [`SlabTicket`] that returns
/// it. Dropping an unused lease returns the slab automatically.
#[derive(Debug)]
pub struct SlabLease {
    buf: Option<Vec<u8>>,
    ticket: SlabTicket,
}

impl SlabLease {
    /// The slab buffer (cleared length, full capacity).
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        self.buf
            .as_mut()
            .expect("lease buffer present until consumed")
    }

    /// Splits the lease into its buffer and return ticket.
    pub fn into_parts(mut self) -> (Vec<u8>, SlabTicket) {
        let buf = self.buf.take().expect("lease consumed once");
        // Rebuild the ticket out of `self` so Drop does not double-return.
        let ticket = SlabTicket {
            pool: Arc::clone(&self.ticket.pool),
            pooled: self.ticket.pooled,
            accounted: self.ticket.accounted,
        };
        (buf, ticket)
    }
}

impl Drop for SlabLease {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.ticket
                .pool
                .give_back(buf, self.ticket.pooled, self.ticket.accounted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use ts_device::{DeviceId, MemoryBook, Topology, TrafficBook};

    fn pool(vram: u64, slab: usize, depth: usize) -> (Arc<DeviceSlabPool>, MemoryBook) {
        let memory = MemoryBook::new(vram);
        let backend = SimBackend::new(
            &Topology::new(1, false),
            memory.clone(),
            TrafficBook::new(),
            DeviceId::Gpu(0),
        )
        .unwrap();
        (
            Arc::new(DeviceSlabPool::new(Arc::new(backend), slab, depth)),
            memory,
        )
    }

    #[test]
    fn warm_up_then_steady_state_allocates_nothing() {
        let (pool, memory) = pool(1 << 20, 128, 4);
        assert_eq!(pool.warm_up(), 4);
        assert_eq!(memory.alloc_count(), 4);
        assert_eq!(memory.in_use(), 4 * 128);
        for round in 0..50 {
            let mut lease = pool.lease(100).unwrap();
            lease.buf_mut().extend_from_slice(&[round as u8; 100]);
            let (buf, ticket) = lease.into_parts();
            ticket.restore(buf);
        }
        assert_eq!(memory.alloc_count(), 4, "steady state must not allocate");
        let stats = pool.stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.returned, 50);
        pool.drain();
        assert_eq!(memory.in_use(), 0);
    }

    #[test]
    fn rotation_grows_lazily_without_warm_up() {
        let (pool, memory) = pool(1 << 20, 64, 2);
        let a = pool.lease(10).unwrap();
        let b = pool.lease(10).unwrap();
        assert_eq!(pool.stats().misses, 2);
        drop(a);
        drop(b);
        let _c = pool.lease(10).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(memory.in_use(), 2 * 64, "rotation bounded by depth");
    }

    #[test]
    fn overflow_beyond_depth_is_transient_and_freed_on_return() {
        let (pool, memory) = pool(1 << 20, 64, 1);
        let held = pool.lease(10).unwrap();
        let spill = pool.lease(10).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.transient, 1);
        assert_eq!(stats.oversized, 0, "fit-size overflow is not oversized");
        assert_eq!(memory.in_use(), 64 + 10);
        drop(spill);
        assert_eq!(memory.in_use(), 64, "transient freed on return");
        drop(held);
        pool.drain();
        assert_eq!(memory.in_use(), 0);
    }

    #[test]
    fn oversized_lease_falls_back_without_leaking_pool_slots() {
        let (pool, memory) = pool(1 << 20, 64, 2);
        pool.warm_up();
        let big = pool.lease(1000).unwrap();
        let stats = pool.stats();
        assert_eq!((stats.transient, stats.oversized), (1, 1));
        assert_eq!(memory.in_use(), 2 * 64 + 1000);
        drop(big);
        assert_eq!(memory.in_use(), 2 * 64, "oversized accounting released");
        let (free, leased, pooled) = pool.occupancy();
        assert_eq!((free, leased, pooled), (2, 0, 2), "no pooled slot leaked");
        pool.drain();
        assert_eq!(memory.in_use(), 0);
    }

    #[test]
    fn device_oom_surfaces_and_leaves_accounting_clean() {
        let (pool, memory) = pool(100, 64, 2);
        assert_eq!(pool.warm_up(), 1, "second slab exceeds capacity");
        let held = pool.lease(10).unwrap();
        // Rotation wants to grow but the device is full.
        assert!(matches!(
            pool.lease(50).unwrap_err(),
            StagingError::OutOfMemory(_)
        ));
        assert_eq!(memory.in_use(), 64);
        drop(held);
        pool.drain();
        assert_eq!(memory.in_use(), 0);
    }

    #[test]
    fn occupancy_hook_tracks_leases_and_late_returns() {
        let (pool, _memory) = pool(1 << 20, 64, 2);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = seen.clone();
        pool.set_occupancy_hook(Box::new(move |n| sink.lock().push(n)));
        let a = pool.lease(10).unwrap();
        let b = pool.lease(10).unwrap();
        drop(a);
        pool.drain();
        // A return landing after the drain still fires the hook: the
        // occupancy a metrics gauge reports never goes stale.
        drop(b);
        assert_eq!(&*seen.lock(), &[1, 2, 1, 0]);
    }

    #[test]
    fn concurrent_growth_never_overshoots_depth() {
        let (pool, memory) = pool(1 << 20, 64, 2);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let lease = p.lease(10).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    drop(lease);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (free, leased, pooled) = pool.occupancy();
        assert!(pooled <= 2, "rotation overshot its depth: {pooled}");
        assert_eq!(leased, 0);
        assert_eq!(free, pooled);
        pool.drain();
        assert_eq!(memory.in_use(), 0, "transients and slabs all returned");
    }

    #[test]
    fn returns_after_drain_free_their_accounting() {
        let (pool, memory) = pool(1 << 20, 64, 2);
        let lease = pool.lease(10).unwrap();
        pool.drain();
        assert_eq!(memory.in_use(), 64, "leased slab survives the drain");
        drop(lease);
        assert_eq!(memory.in_use(), 0, "late return frees, not re-pools");
        assert_eq!(pool.occupancy(), (0, 0, 0));
    }
}
