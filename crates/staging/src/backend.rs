//! The [`DeviceBackend`] contract and its simulated implementation.
//!
//! A backend owns three responsibilities, deliberately small so that a
//! real driver binding can satisfy them:
//!
//! 1. **alloc/free** — reserve and release device memory, with capacity
//!    enforcement (a failed reservation must leave accounting untouched);
//! 2. **copy_h2d** — move host bytes into a device destination,
//!    accounting the bytes on every interconnect hop they traverse;
//! 3. **fence** — make previously issued copies visible (a real backend
//!    would synchronize its copy stream here; the simulated one copies
//!    synchronously, so it is a no-op).
//!
//! [`SimBackend`] implements the contract against `ts-device`'s books: it
//! is the paper's "producer stages on GPU 0" with every byte accounted
//! the way `nvidia-smi`/`dcgm` would see it, and a copy-time model
//! derived from the topology's link bandwidth so that overlapping the
//! copy with host work is *measurable*, not just correct.

use std::time::Duration;
use ts_device::topology::Hop;
use ts_device::{DeviceId, MemoryBook, OutOfMemory, Topology, TrafficBook};

/// Errors surfaced by staging backends and the slab pool.
#[derive(Debug, Clone, PartialEq)]
pub enum StagingError {
    /// The device rejected an allocation.
    OutOfMemory(OutOfMemory),
    /// The topology has no route from the host to the staging device.
    NoRoute {
        /// The unreachable staging device.
        device: DeviceId,
    },
    /// The backend cannot run in this build/environment (e.g. the `cuda`
    /// stub compiled without a driver).
    Unavailable(&'static str),
}

impl std::fmt::Display for StagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StagingError::OutOfMemory(e) => write!(f, "staging allocation failed: {e}"),
            StagingError::NoRoute { device } => {
                write!(f, "no host route to staging device {device}")
            }
            StagingError::Unavailable(why) => write!(f, "staging backend unavailable: {why}"),
        }
    }
}

impl std::error::Error for StagingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StagingError::OutOfMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OutOfMemory> for StagingError {
    fn from(e: OutOfMemory) -> Self {
        StagingError::OutOfMemory(e)
    }
}

/// The contract a staging device must satisfy. See the module docs for
/// the three responsibilities; all methods take `&self` because backends
/// are shared across the copy stage and the publish loop.
pub trait DeviceBackend: Send + Sync + std::fmt::Debug {
    /// The device this backend stages onto.
    fn device(&self) -> DeviceId;

    /// Reserves `bytes` of device memory. A failed reservation must not
    /// change accounting.
    fn alloc(&self, bytes: u64) -> Result<(), StagingError>;

    /// Releases `bytes` of device memory previously reserved with
    /// [`DeviceBackend::alloc`].
    fn free(&self, bytes: u64);

    /// Copies `src` into `dst` (the device destination), accounting the
    /// bytes on every interconnect hop. `dst` is overwritten; its
    /// capacity is reused, so steady-state copies allocate nothing on the
    /// host either.
    fn copy_h2d(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<(), StagingError>;

    /// Completes all previously issued copies. A simulated backend copies
    /// synchronously; a real one would synchronize its copy stream.
    fn fence(&self) -> Result<(), StagingError>;
}

/// The default backend: stages onto a simulated GPU, routing every byte
/// through `ts-device`'s accounting books.
///
/// * allocations and frees hit the device's [`MemoryBook`] (VRAM peaks,
///   capacity enforcement — the `nvidia-smi` rows of Tables 3–4);
/// * copies record their bytes on each hop of the host→device route in
///   the [`TrafficBook`] (the PCIe/NVLink rows), and take modeled wall
///   time `bytes / bandwidth` where the bandwidth comes from the
///   slowest link of the route (overridable with
///   [`SimBackend::with_bandwidth`]), so overlapping copies with host
///   work shows up in end-to-end measurements.
///
/// Data never leaves host RAM — the destination buffer stands in for the
/// VRAM slab — matching the repo-wide convention that devices are
/// *accounted*, not emulated.
#[derive(Debug, Clone)]
pub struct SimBackend {
    device: DeviceId,
    memory: MemoryBook,
    traffic: TrafficBook,
    /// Resolved host→device route, accounted per copy.
    hops: Vec<Hop>,
    /// Modeled copy bandwidth in bytes/second (`f64::INFINITY` disables
    /// the time model, e.g. for a CPU "device" in tests).
    bandwidth_bps: f64,
}

impl SimBackend {
    /// Builds a backend staging onto `device`, with the route resolved
    /// from `topology` and accounting shared with the given books.
    pub fn new(
        topology: &Topology,
        memory: MemoryBook,
        traffic: TrafficBook,
        device: DeviceId,
    ) -> Result<Self, StagingError> {
        let path = topology
            .path(DeviceId::Cpu, device)
            .ok_or(StagingError::NoRoute { device })?;
        let bandwidth_bps = path
            .hops()
            .iter()
            .filter_map(|h| topology.direct_link(h.from, h.to))
            .map(|l| l.bandwidth_bps)
            .fold(f64::INFINITY, f64::min);
        Ok(Self {
            device,
            memory,
            traffic,
            hops: path.hops().to_vec(),
            bandwidth_bps,
        })
    }

    /// Overrides the modeled copy bandwidth (bytes/second). Use a lower
    /// figure than the topology default to model a contended or narrower
    /// link; `f64::INFINITY` disables copy time entirely.
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.bandwidth_bps = bytes_per_sec;
        self
    }

    /// The modeled copy bandwidth in bytes/second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// The memory book of the staging device (shared accounting).
    pub fn memory(&self) -> &MemoryBook {
        &self.memory
    }
}

impl DeviceBackend for SimBackend {
    fn device(&self) -> DeviceId {
        self.device
    }

    fn alloc(&self, bytes: u64) -> Result<(), StagingError> {
        self.memory.alloc(bytes).map_err(StagingError::from)
    }

    fn free(&self, bytes: u64) {
        self.memory.free(bytes);
    }

    fn copy_h2d(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<(), StagingError> {
        dst.clear();
        dst.extend_from_slice(src);
        for hop in &self.hops {
            self.traffic
                .record_hop(hop.from, hop.to, hop.kind, src.len() as u64);
        }
        if self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0 {
            let secs = src.len() as f64 / self.bandwidth_bps;
            // Sub-microsecond copies are below timer resolution; skip the
            // sleep so tiny test tensors cost nothing.
            if secs >= 1e-6 {
                std::thread::sleep(Duration::from_secs_f64(secs));
            }
        }
        Ok(())
    }

    fn fence(&self) -> Result<(), StagingError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::traffic::Channel;

    fn backend_for(vram: u64) -> SimBackend {
        let topo = Topology::new(1, false);
        SimBackend::new(
            &topo,
            MemoryBook::new(vram),
            TrafficBook::new(),
            DeviceId::Gpu(0),
        )
        .unwrap()
    }

    #[test]
    fn alloc_and_free_hit_the_memory_book() {
        let b = backend_for(100);
        b.alloc(60).unwrap();
        assert_eq!(b.memory().in_use(), 60);
        assert!(matches!(
            b.alloc(50).unwrap_err(),
            StagingError::OutOfMemory(_)
        ));
        assert_eq!(b.memory().in_use(), 60, "failed alloc changes nothing");
        b.free(60);
        assert_eq!(b.memory().in_use(), 0);
        assert_eq!(b.memory().alloc_count(), 1);
    }

    #[test]
    fn copy_accounts_pcie_traffic_and_moves_bytes() {
        let topo = Topology::new(2, true);
        let traffic = TrafficBook::new();
        let b = SimBackend::new(
            &topo,
            MemoryBook::unbounded(),
            traffic.clone(),
            DeviceId::Gpu(1),
        )
        .unwrap();
        let mut dst = Vec::with_capacity(8);
        b.copy_h2d(&[1, 2, 3, 4], &mut dst).unwrap();
        b.fence().unwrap();
        assert_eq!(dst, vec![1, 2, 3, 4]);
        assert_eq!(traffic.bytes(Channel::Pcie(1)), 4);
        // Destination capacity is reused, not reallocated.
        let cap = dst.capacity();
        b.copy_h2d(&[9, 9], &mut dst).unwrap();
        assert_eq!(dst, vec![9, 9]);
        assert_eq!(dst.capacity(), cap);
        assert_eq!(traffic.bytes(Channel::Pcie(1)), 6);
    }

    #[test]
    fn bandwidth_defaults_to_slowest_link_and_is_overridable() {
        let b = backend_for(1 << 30);
        assert_eq!(b.bandwidth_bps(), ts_device::topology::PCIE_GEN4_X16_BPS);
        let slow = b.with_bandwidth(1e6);
        assert_eq!(slow.bandwidth_bps(), 1e6);
    }

    #[test]
    fn unknown_device_has_no_route() {
        let topo = Topology::new(1, false);
        let err = SimBackend::new(
            &topo,
            MemoryBook::unbounded(),
            TrafficBook::new(),
            DeviceId::Gpu(7),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            StagingError::NoRoute {
                device: DeviceId::Gpu(7)
            }
        ));
        assert!(err.to_string().contains("no host route"));
    }

    #[test]
    fn cpu_target_is_a_local_no_hop_backend() {
        let topo = Topology::new(0, false);
        let traffic = TrafficBook::new();
        let b = SimBackend::new(
            &topo,
            MemoryBook::unbounded(),
            traffic.clone(),
            DeviceId::Cpu,
        )
        .unwrap();
        let mut dst = Vec::new();
        b.copy_h2d(&[5; 16], &mut dst).unwrap();
        assert_eq!(dst.len(), 16);
        assert!(traffic.snapshot().is_empty(), "local copies move no link");
    }
}
