//! Figure 12: DALL-E 2 online training on the H100 — sharing the frozen
//! CLIP inference stage on the GPU (§3.3.4, Figure 7).
//!
//! Without sharing, every diffusion-prior trainer runs its own CLIP
//! forward pass per batch; with TensorSocket the producer runs CLIP once
//! and shares the embeddings, cutting redundant *GPU* work.

use crate::profiles::{cc3m_loader, dalle_prior, h100_server, CLIP_GPU_MS_PER_SAMPLE};
use crate::report::ExperimentReport;
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult, Strategy, WorkloadSpec};

/// Runs `degree` collocated DALL-E trainings, shared or not.
pub fn run_config(degree: usize, shared: bool) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..degree)
        .map(|_| {
            let mut t = dalle_prior(0);
            if !shared {
                // each training runs its own CLIP forward per sample
                t.gpu_ms_per_sample += CLIP_GPU_MS_PER_SAMPLE;
            }
            t
        })
        .collect();
    let strategy = if shared {
        Strategy::TensorSocket {
            buffer: 2,
            producer_gpu: 0,
            producer_gpu_ms_per_sample: CLIP_GPU_MS_PER_SAMPLE,
            producer_cpu_ms_per_batch_per_consumer: 0.05,
            publish_latency_ms: 1.0,
        }
    } else {
        Strategy::NonShared
    };
    let mut cfg = SimConfig::new(h100_server(), cc3m_loader(24), trainers, strategy);
    cfg.samples_per_trainer = 30_000;
    ts_sim::run(cfg)
}

/// Regenerates Figure 12.
pub fn run() -> ExperimentReport {
    let mut report =
        ExperimentReport::new("fig12", "DALL-E 2 online training with a shared CLIP stage");
    let mut t = Table::new(
        "Fig 12: DALL-E 2 on the H100",
        &[
            "Collocation",
            "Non-shared per-model",
            "Shared per-model",
            "Non-shared aggregate",
            "Shared aggregate",
            "Aggregate gain",
        ],
    );
    for degree in [1usize, 2, 4] {
        let ns = run_config(degree, false);
        let ts = run_config(degree, true);
        let gain = ts.aggregate_samples_per_s() / ns.aggregate_samples_per_s() - 1.0;
        t.row(&[
            format!("{degree}x"),
            fmt_num(ns.mean_samples_per_s()),
            fmt_num(ts.mean_samples_per_s()),
            fmt_num(ns.aggregate_samples_per_s()),
            fmt_num(ts.aggregate_samples_per_s()),
            format!("{:+.0}%", gain * 100.0),
        ]);
    }
    report.table(t);
    report.note(
        "Paper: 10-15% aggregate speedup at 2- and 4-way collocation from running CLIP once; \
         per-model throughput drops with collocation since the GPU is saturated even alone.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_training_sees_no_benefit() {
        // at 1x the CLIP work happens once either way
        let ns = run_config(1, false).aggregate_samples_per_s();
        let ts = run_config(1, true).aggregate_samples_per_s();
        assert!((ns - ts).abs() / ns < 0.05, "1x ns {ns} vs ts {ts}");
    }

    #[test]
    fn aggregate_gain_grows_with_collocation() {
        let gain = |d: usize| {
            run_config(d, true).aggregate_samples_per_s()
                / run_config(d, false).aggregate_samples_per_s()
        };
        let g2 = gain(2);
        let g4 = gain(4);
        assert!((1.05..1.20).contains(&g2), "2x gain {g2}");
        assert!((1.08..1.25).contains(&g4), "4x gain {g4}");
        assert!(g4 > g2);
    }

    #[test]
    fn per_model_throughput_halves_with_collocation() {
        // GPU-bound workload: collocation divides the GPU
        let p1 = run_config(1, false).mean_samples_per_s();
        let p2 = run_config(2, false).mean_samples_per_s();
        assert!((p2 - p1 / 2.0).abs() / p1 < 0.1, "1x {p1} vs 2x {p2}");
    }

    #[test]
    fn absolute_rate_near_paper() {
        // paper Fig 12: ~600 samples/s per model at 1x
        let p1 = run_config(1, false).mean_samples_per_s();
        assert!((500.0..700.0).contains(&p1), "{p1}");
    }
}
