//! Experiment reports: paper-style tables plus notes.

use ts_metrics::Table;

/// The output of one experiment runner.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Stable id (`fig8`, `table3`, …).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// One or more tables of rows (throughput, utilization, traffic …).
    pub tables: Vec<Table>,
    /// Free-form observations: what the paper claims, what we measured.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self {
            id,
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn table(&mut self, t: Table) -> &mut Self {
        self.tables.push(t);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "################ {} — {}\n\n",
            self.id, self.title
        ));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Renders the report as Markdown (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        for t in &self.tables {
            out.push_str(&t.render_markdown());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("*{n}*\n\n"));
        }
        out
    }
}

/// Formats a ratio like `1.94x`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage like `48%`.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.0}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_tables_and_notes() {
        let mut r = ExperimentReport::new("figX", "demo");
        let mut t = Table::new("tbl", &["a", "b"]);
        t.row_display(&[1, 2]);
        r.table(t);
        r.note("shape holds");
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("tbl"));
        assert!(s.contains("shape holds"));
        let md = r.render_markdown();
        assert!(md.contains("## figX"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_x(1.944), "1.94x");
        assert_eq!(fmt_pct(0.485), "48%");
    }
}
