//! Figure 13: mixed workload (RegNetX 2 + RegNetX 4 collocated on one
//! A10G) across g5 instance sizes — runtime and aggregate throughput over
//! time, with and without sharing.

use crate::profiles::{g5, imagenet_loader, regnet_a10g};
use crate::report::ExperimentReport;
use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult, Strategy};

/// Runs the mixed pair on a g5 instance.
pub fn run_config(vcpus: u32, strategy: Strategy) -> SimResult {
    let trainers = vec![regnet_a10g("RegNetX 2", 0), regnet_a10g("RegNetX 4", 0)];
    let mut cfg = SimConfig::new(
        g5(vcpus),
        imagenet_loader(vcpus as usize),
        trainers,
        strategy,
    );
    cfg.samples_per_trainer = 500_000;
    cfg.series_interval_s = 50.0;
    ts_sim::run(cfg)
}

fn aggregate_series(r: &SimResult) -> Vec<(f64, f64)> {
    // windowed aggregate throughput from the cumulative per-trainer series
    let a = &r.trainers[0].series;
    let b = &r.trainers[1].series;
    let n = a.len().min(b.len());
    let mut out = Vec::new();
    for i in 1..n {
        let dt = a[i].0 - a[i - 1].0;
        if dt <= 0.0 {
            continue;
        }
        let d = (a[i].1 - a[i - 1].1) + (b[i].1 - b[i - 1].1);
        out.push((a[i].0, d / dt));
    }
    out
}

/// Regenerates Figure 13.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig13",
        "Mixed workload (RegNetX 2 + RegNetX 4) on AWS g5 instances",
    );
    let mut summary = Table::new(
        "Fig 13: aggregate throughput and runtime",
        &[
            "Instance",
            "Mode",
            "Aggregate samples/s",
            "Runtime (s)",
            "Hourly cost",
            "Cost per 1M samples",
        ],
    );
    let price = |v: u32| match v {
        8 => 1.212,
        16 => 1.624,
        _ => 2.448,
    };
    let mut series_tables = Vec::new();
    for vcpus in [8u32, 16, 32] {
        for (mode, strategy) in [
            ("Non-shared", nonshared_strategy()),
            ("Shared", tensorsocket_strategy(0)),
        ] {
            let r = run_config(vcpus, strategy);
            let agg = r.aggregate_samples_per_s();
            let usd_per_m = price(vcpus) / 3600.0 / agg * 1e6;
            summary.row(&[
                format!("g5 {vcpus} vCPU"),
                mode.to_string(),
                fmt_num(agg),
                fmt_num(r.duration_s),
                format!("${:.3}", price(vcpus)),
                format!("${usd_per_m:.3}"),
            ]);
            if vcpus == 8 {
                let mut st = Table::new(
                    format!("g5.2xlarge {mode}: aggregate samples/s over time"),
                    &["t (s)", "samples/s"],
                );
                for (t, v) in aggregate_series(&r).iter().take(8) {
                    st.row(&[format!("{t:.0}"), fmt_num(*v)]);
                }
                series_tables.push(st);
            }
        }
    }
    report.table(summary);
    for t in series_tables {
        report.table(t);
    }
    report.note(
        "Paper: the larger instances are not CPU-bound, so sharing changes little there; the \
         g5.2xlarge throttles heavily without sharing but nearly matches the big instances \
         with it — the same throughput at half the instance cost.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instance_throttles_without_sharing() {
        let ns8 = run_config(8, nonshared_strategy()).aggregate_samples_per_s();
        let ns32 = run_config(32, nonshared_strategy()).aggregate_samples_per_s();
        assert!(ns8 < ns32 * 0.65, "8 vCPU {ns8} vs 32 vCPU {ns32}");
    }

    #[test]
    fn sharing_lets_the_small_instance_match_the_large_ones() {
        let ts8 = run_config(8, tensorsocket_strategy(0)).aggregate_samples_per_s();
        let ns32 = run_config(32, nonshared_strategy()).aggregate_samples_per_s();
        // paper: "almost the same throughput at half the instance cost" —
        // the shared small instance lands within ~20% of the large one
        // (lockstep trades a little RegNetX-2 headroom for balance)
        assert!(
            ts8 > ns32 * 0.8,
            "shared g5.2xlarge {ts8} vs non-shared g5.8xlarge {ns32}"
        );
    }

    #[test]
    fn lockstep_equalizes_the_mixed_pair() {
        let r = run_config(8, tensorsocket_strategy(0));
        let a = r.trainers[0].samples_per_s;
        let b = r.trainers[1].samples_per_s;
        assert!((a - b).abs() / b < 0.05, "RegNet2 {a} vs RegNet4 {b}");
    }

    #[test]
    fn cost_per_sample_halves_with_sharing() {
        let ns32 = run_config(32, nonshared_strategy()).aggregate_samples_per_s();
        let ts8 = run_config(8, tensorsocket_strategy(0)).aggregate_samples_per_s();
        let cost_ns32 = 2.448 / ns32;
        let cost_ts8 = 1.212 / ts8;
        let saving = 1.0 - cost_ts8 / cost_ns32;
        assert!(saving > 0.4, "cost saving {saving}");
    }

    #[test]
    fn series_is_recorded() {
        let r = run_config(8, tensorsocket_strategy(0));
        assert!(r.trainers[0].series.len() >= 3);
    }
}
