//! Figure 10: default vs flexible batch sizing — three MobileNet S models
//! on the H100, batch 128 everywhere vs batches 128/192/224.
//!
//! Under flexible sizing all consumers still traverse the data at the
//! producer-batch rate (the lockstep invariant of §3.2.6), so throughput
//! is unchanged; the producer pays a little extra CPU to carve and pack
//! per-consumer slices. The carving itself is exercised for real by the
//! threaded runtime's flexible mode (see `tensorsocket::protocol::flex`);
//! here the simulator accounts its CPU cost.

use crate::profiles::{h100_server, imagenet_loader, mobilenet_s_h100};
use crate::report::ExperimentReport;
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult, Strategy, WorkloadSpec};

/// Per-batch-per-consumer CPU cost of default pointer sharing (ms).
const DEFAULT_SHARE_MS: f64 = 0.05;
/// Per-batch-per-consumer CPU cost with flexible carving: more payloads to
/// slice/pack per producer batch plus the occasional repeated-segment copy.
const FLEX_SHARE_MS: f64 = 0.35;

/// Runs the 3-way collocation with the given producer overhead.
pub fn run_config(share_ms: f64) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..3).map(|_| mobilenet_s_h100(0)).collect();
    let strategy = Strategy::TensorSocket {
        buffer: 2,
        producer_gpu: 0,
        producer_gpu_ms_per_sample: 0.0,
        producer_cpu_ms_per_batch_per_consumer: share_ms,
        publish_latency_ms: 1.0,
    };
    let mut cfg = SimConfig::new(h100_server(), imagenet_loader(24), trainers, strategy);
    cfg.samples_per_trainer = 120_000;
    ts_sim::run(cfg)
}

/// Regenerates Figure 10.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig10",
        "Default vs flexible batch sizing (3x MobileNet S, H100)",
    );
    let default = run_config(DEFAULT_SHARE_MS);
    let flexible = run_config(FLEX_SHARE_MS);
    let mut t = Table::new(
        "Fig 10: throughput and CPU utilization",
        &[
            "Mode",
            "Consumer batches",
            "Samples/s per model",
            "CPU util %",
            "Busy cores",
        ],
    );
    t.row(&[
        "Default".to_string(),
        "128 / 128 / 128".to_string(),
        fmt_num(default.mean_samples_per_s()),
        format!("{:.1}", default.cpu_util * 100.0),
        format!("{:.2}", default.cpu_busy_cores),
    ]);
    t.row(&[
        "Flexible".to_string(),
        "128 / 192 / 224".to_string(),
        fmt_num(flexible.mean_samples_per_s()),
        format!("{:.1}", flexible.cpu_util * 100.0),
        format!("{:.2}", flexible.cpu_busy_cores),
    ]);
    report.table(t);
    report.note(
        "Paper: flexible batching sustains training throughput while only incurring minimal \
         CPU overhead to orchestrate the different batches.",
    );
    report.note(
        "Consumers with batch sizes 192/224 take fewer, larger steps over the same producer \
         batches (ceil(P/b) batches each, repetition < b per producer batch) — the exact \
         slicing is property-tested in tensorsocket::protocol::flex.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexible_sustains_throughput() {
        let d = run_config(DEFAULT_SHARE_MS).mean_samples_per_s();
        let f = run_config(FLEX_SHARE_MS).mean_samples_per_s();
        assert!((d - f).abs() / d < 0.03, "default {d} vs flexible {f}");
    }

    #[test]
    fn flexible_costs_slightly_more_cpu() {
        let d = run_config(DEFAULT_SHARE_MS);
        let f = run_config(FLEX_SHARE_MS);
        assert!(f.cpu_busy_cores > d.cpu_busy_cores);
        // "minimal" overhead: well under one extra core
        assert!(f.cpu_busy_cores - d.cpu_busy_cores < 1.0);
    }
}
