#![warn(missing_docs)]

//! The evaluation harness: one runner per table/figure of the paper.
//!
//! Every experiment produces an [`report::ExperimentReport`] with the same
//! rows/series the paper plots, alongside the paper's reference values so
//! deviations are visible at a glance. Run them all with
//! `cargo run -p ts-experiments --bin repro` (or a single one by id, e.g.
//! `-- fig8`).
//!
//! | id | artifact |
//! |----|----------|
//! | `fig1` | cloud instances by vCPU:GPU ratio |
//! | `fig8` | image classification, 4-way collocation on the A100 server |
//! | `table3` | disk/PCIe/NVLink/VRAM for 4× MobileNet L |
//! | `fig9` | throughput vs collocation degree (MobileNet S/L) |
//! | `fig10` | default vs flexible batch sizing |
//! | `fig11` | CLMR audio on AWS g5, MPS vs streams |
//! | `fig12` | DALL-E 2 online training, shared CLIP stage |
//! | `fig13` | mixed RegNetX workload time series on g5 |
//! | `table4` | Qwen2.5 fine-tuning traffic/VRAM |
//! | `fig14` | comparison with CoorDL |
//! | `fig15` | comparison with Joader |
//! | `ablation-*` | design-choice studies beyond the paper (buffer size, producer batch, MPS vs streams, worker budget, GPU offload) |
//! | `runtime-validation` | the threaded runtime measured live on this machine |
//!
//! Calibration constants live in [`profiles`] and are set against the
//! *baseline* (non-shared) runs only; the shared/CoorDL/Joader behaviours
//! emerge from the simulator (see `DESIGN.md` §4 and `EXPERIMENTS.md`).

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig8;
pub mod fig9;
pub mod profiles;
pub mod report;
pub mod runtime_check;
pub mod table3;
pub mod table4;

pub use report::ExperimentReport;

/// An experiment entry: `(id, title, runner)`.
pub type ExperimentEntry = (&'static str, &'static str, fn() -> ExperimentReport);

/// All experiments in paper order.
pub fn all_experiments() -> Vec<ExperimentEntry> {
    vec![
        (
            "fig1",
            "Cloud instances by vCPU:GPU ratio",
            fig1::run as fn() -> ExperimentReport,
        ),
        (
            "fig8",
            "Image classification, 4-way collocation (A100 server)",
            fig8::run,
        ),
        (
            "table3",
            "Data movement for 4x MobileNet L (A100 server)",
            table3::run,
        ),
        (
            "fig9",
            "Throughput vs collocation degree (MobileNet S/L)",
            fig9::run,
        ),
        (
            "fig10",
            "Default vs flexible batch sizing (H100)",
            fig10::run,
        ),
        ("fig11", "CLMR audio on AWS g5 (MPS vs streams)", fig11::run),
        ("fig12", "DALL-E 2 online training (H100)", fig12::run),
        (
            "fig13",
            "Mixed RegNetX workload on AWS g5 (time series)",
            fig13::run,
        ),
        (
            "table4",
            "Qwen2.5 0.5B fine-tuning (A100 server)",
            table4::run,
        ),
        ("fig14", "Comparison with CoorDL (A100 server)", fig14::run),
        ("fig15", "Comparison with Joader (H100)", fig15::run),
        // design-choice ablations beyond the paper's figures
        (
            "ablation-buffer",
            "ABLATION: batch buffer size under jitter",
            ablations::buffer_sweep,
        ),
        (
            "ablation-flex",
            "ABLATION: producer batch size vs repetition",
            ablations::flex_repetition_sweep,
        ),
        (
            "ablation-streams",
            "ABLATION: MPS vs multi-stream sharing",
            ablations::stream_penalty_sweep,
        ),
        (
            "ablation-workers",
            "ABLATION: producer worker budget",
            ablations::worker_sweep,
        ),
        (
            "ablation-gpu-offload",
            "ABLATION: GPU-offloaded pre-processing",
            ablations::gpu_offload_sweep,
        ),
        // the threaded runtime measured live on this machine
        (
            "runtime-validation",
            "REAL RUNTIME: shared vs non-shared",
            runtime_check::run,
        ),
    ]
}

/// Runs one experiment by id.
pub fn run_by_id(id: &str) -> Option<ExperimentReport> {
    all_experiments()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_paper_artifacts_and_ablations() {
        let ids: Vec<&str> = all_experiments().iter().map(|(id, _, _)| *id).collect();
        assert_eq!(
            &ids[..11],
            &[
                "fig1", "fig8", "table3", "fig9", "fig10", "fig11", "fig12", "fig13", "table4",
                "fig14", "fig15"
            ]
        );
        assert!(ids[11..16].iter().all(|id| id.starts_with("ablation-")));
        assert_eq!(ids.last(), Some(&"runtime-validation"));
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("fig99").is_none());
    }
}
