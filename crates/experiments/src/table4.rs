//! Table 4: Qwen2.5-0.5B fine-tuning on Alpaca via a TorchTune-style
//! recipe — training speed, PCIe/NVLink traffic and VRAM, baseline vs
//! shared, on the A100 server.
//!
//! The shared run puts the producer on GPU 0 and the two trainings on GPUs
//! 1 and 2, exactly as the paper does to separate producer and consumer
//! traffic.

use crate::profiles::{a100_server, alpaca_loader, qwen25, QWEN_TOKENS_PER_SAMPLE};
use crate::report::ExperimentReport;
use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::{fmt_gb, fmt_rate};
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult};

/// Runs the two-trainer fine-tune.
pub fn run_config(shared: bool) -> SimResult {
    let (trainers, strategy) = if shared {
        (vec![qwen25(1), qwen25(2)], tensorsocket_strategy(0))
    } else {
        (vec![qwen25(0), qwen25(1)], nonshared_strategy())
    };
    let mut cfg = SimConfig::new(a100_server(), alpaca_loader(8), trainers, strategy);
    cfg.samples_per_trainer = 4_000;
    ts_sim::run(cfg)
}

/// Regenerates Table 4.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new("table4", "Qwen2.5 0.5B fine-tuning (TorchTune recipe)");
    let ns = run_config(false);
    let ts = run_config(true);
    let mut t = Table::new(
        "Table 4 (measured)",
        &["Mode", "GPU", "Tokens/s", "PCIe", "NVLink", "VRAM peak"],
    );
    for (i, tr) in ns.trainers.iter().enumerate() {
        t.row(&[
            "Baseline".to_string(),
            format!("{}", tr.gpu),
            format!(
                "{:.1}k/s",
                tr.samples_per_s * QWEN_TOKENS_PER_SAMPLE as f64 / 1e3
            ),
            fmt_rate(ns.pcie_bps[tr.gpu]),
            fmt_rate(ns.nvlink_bps[tr.gpu]),
            fmt_gb(ns.vram_peak[tr.gpu] as f64),
        ]);
        let _ = i;
    }
    t.row(&[
        "Shared".to_string(),
        "0 (Prod)".to_string(),
        "-".to_string(),
        fmt_rate(ts.pcie_bps[0]),
        "-".to_string(),
        fmt_gb(ts.vram_peak[0] as f64),
    ]);
    for tr in &ts.trainers {
        t.row(&[
            "Shared".to_string(),
            format!("{} (Cons)", tr.gpu),
            format!(
                "{:.1}k/s",
                tr.samples_per_s * QWEN_TOKENS_PER_SAMPLE as f64 / 1e3
            ),
            fmt_rate(ts.pcie_bps[tr.gpu]),
            fmt_rate(ts.nvlink_bps[tr.gpu]),
            fmt_gb(ts.vram_peak[tr.gpu] as f64),
        ]);
    }
    report.table(t);

    let mut p = Table::new(
        "Table 4 (paper)",
        &["Mode", "GPU", "Tokens/s", "PCIe", "NVLink", "VRAM"],
    );
    for row in [
        ["Baseline", "1", "7.5k/s", "48 MB/s", "-", "7.3 GB"],
        ["Baseline", "2", "7.4k/s", "48 MB/s", "-", "7.3 GB"],
        ["Shared", "0 (Prod)", "-", "0.3 MB/s", "-", "1.5 GB"],
        [
            "Shared", "1 (Cons)", "7.5k/s", "48 MB/s", "152 KB/s", "7.3 GB",
        ],
        [
            "Shared", "2 (Cons)", "7.6k/s", "48 MB/s", "153 KB/s", "7.3 GB",
        ],
    ] {
        p.row(&row.map(|s| s.to_string()));
    }
    report.table(p);
    report.note(
        "LLM fine-tuning is GPU-bound: sharing neither helps nor hurts tokens/s. Its \
         footprint is the point — the producer needs ~0.3 MB/s of PCIe and a ~1-1.5 GB \
         context; consumer NVLink carries only the tokenized batches (hundreds of KB/s).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_per_second_match_paper_scale() {
        let ns = run_config(false);
        for tr in &ns.trainers {
            let tokens = tr.samples_per_s * QWEN_TOKENS_PER_SAMPLE as f64;
            assert!((6_800.0..7_800.0).contains(&tokens), "{tokens}");
        }
    }

    #[test]
    fn sharing_does_not_change_training_speed() {
        let ns = run_config(false).mean_samples_per_s();
        let ts = run_config(true).mean_samples_per_s();
        assert!((ns - ts).abs() / ns < 0.03, "ns {ns} vs ts {ts}");
    }

    #[test]
    fn producer_traffic_is_tiny() {
        let ts = run_config(true);
        // producer PCIe well under 1 MB/s (paper: 0.3 MB/s)
        assert!(ts.pcie_bps[0] < 1e6, "{}", ts.pcie_bps[0]);
        // consumer NVLink in the hundreds of KB/s (paper: ~150 KB/s)
        assert!(
            ts.nvlink_bps[1] > 50e3 && ts.nvlink_bps[1] < 1e6,
            "{}",
            ts.nvlink_bps[1]
        );
        // consumers' PCIe dominated by non-dataloading traffic (~48 MB/s)
        assert!((30e6..60e6).contains(&ts.pcie_bps[1]), "{}", ts.pcie_bps[1]);
    }

    #[test]
    fn producer_vram_footprint_is_small() {
        let ts = run_config(true);
        let prod_gb = ts.vram_peak[0] as f64 / 1e9;
        assert!((0.8..2.0).contains(&prod_gb), "{prod_gb}");
        let cons_gb = ts.vram_peak[1] as f64 / 1e9;
        assert!((6.8..7.8).contains(&cons_gb), "{cons_gb}");
    }
}
