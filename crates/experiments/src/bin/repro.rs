//! Reproduces the paper's evaluation tables and figures.
//!
//! ```text
//! cargo run --release -p ts-experiments --bin repro            # everything
//! cargo run --release -p ts-experiments --bin repro -- fig8    # one artifact
//! cargo run --release -p ts-experiments --bin repro -- --markdown > results.md
//! ```

use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let experiments = ts_experiments::all_experiments();

    let to_run: Vec<_> = if selected.is_empty() {
        experiments
    } else {
        let known: Vec<&str> = experiments.iter().map(|(id, _, _)| *id).collect();
        for s in &selected {
            if !known.contains(&s.as_str()) {
                eprintln!("unknown experiment id {s:?}; known: {known:?}");
                std::process::exit(2);
            }
        }
        experiments
            .into_iter()
            .filter(|(id, _, _)| selected.iter().any(|s| s.as_str() == *id))
            .collect()
    };

    for (id, title, runner) in to_run {
        eprintln!("running {id} — {title} ...");
        let started = std::time::Instant::now();
        let report = runner();
        let elapsed = started.elapsed();
        let rendered = if markdown {
            report.render_markdown()
        } else {
            report.render()
        };
        writeln!(out, "{rendered}").expect("stdout");
        eprintln!("  done in {:.2?}", elapsed);
    }
}
