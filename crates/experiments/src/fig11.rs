//! Figure 11: CLMR audio classification, 4-way collocated on one A10G,
//! across AWS g5 instance sizes (8/16/32 vCPUs), multi-streams vs MPS,
//! shared vs non-shared.

use crate::profiles::{clmr, g5, librispeech_loader};
use crate::report::ExperimentReport;
use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{GpuSharing, SimConfig, SimResult, Strategy, WorkloadSpec};

/// Runs 4-way CLMR on a g5 instance.
pub fn run_config(vcpus: u32, sharing: GpuSharing, strategy: Strategy) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..4).map(|_| clmr(0)).collect();
    let mut cluster = g5(vcpus);
    cluster.gpu_sharing = sharing;
    let mut cfg = SimConfig::new(
        cluster,
        librispeech_loader(vcpus as usize),
        trainers,
        strategy,
    );
    cfg.samples_per_trainer = 3_000;
    ts_sim::run(cfg)
}

/// The stream-sharing penalty reproducing the MPS-over-streams gap.
pub const STREAM_PENALTY: f64 = 0.10;

/// Regenerates Figure 11.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig11",
        "CLMR 4-way collocation on AWS g5: vCPU scaling, MPS vs streams",
    );
    let mut t = Table::new(
        "Fig 11: per-model samples/s",
        &[
            "Instance",
            "Non-shared (streams)",
            "Shared (streams)",
            "Non-shared (MPS)",
            "Shared (MPS)",
        ],
    );
    for vcpus in [8u32, 16, 32] {
        let streams = GpuSharing::Streams {
            penalty: STREAM_PENALTY,
        };
        let ns_streams = run_config(vcpus, streams, nonshared_strategy());
        let ts_streams = run_config(vcpus, streams, tensorsocket_strategy(0));
        let ns_mps = run_config(vcpus, GpuSharing::Mps, nonshared_strategy());
        let ts_mps = run_config(vcpus, GpuSharing::Mps, tensorsocket_strategy(0));
        t.row(&[
            format!("{vcpus} vCPUs"),
            fmt_num(ns_streams.mean_samples_per_s()),
            fmt_num(ts_streams.mean_samples_per_s()),
            fmt_num(ns_mps.mean_samples_per_s()),
            fmt_num(ts_mps.mean_samples_per_s()),
        ]);
    }
    report.table(t);
    report.note(
        "Paper: without sharing the 8-vCPU instance performs drastically worse than the \
         32-vCPU one; with TensorSocket all three sizes reach the same (GPU-bound) \
         throughput — a 75% vCPU reduction and ~50% cost saving (g5.2xlarge at $1.212/h vs \
         g5.8xlarge at $2.448/h).",
    );
    report.note("MPS adds throughput over multi-stream sharing at every size (blurred bars).");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instance_catastrophic_without_sharing() {
        let ns8 = run_config(8, GpuSharing::Mps, nonshared_strategy()).mean_samples_per_s();
        let ns32 = run_config(32, GpuSharing::Mps, nonshared_strategy()).mean_samples_per_s();
        assert!(ns8 < ns32 * 0.4, "8 vCPU {ns8} vs 32 vCPU {ns32}");
    }

    #[test]
    fn sharing_equalizes_instance_sizes() {
        let ts8 = run_config(8, GpuSharing::Mps, tensorsocket_strategy(0)).mean_samples_per_s();
        let ts32 = run_config(32, GpuSharing::Mps, tensorsocket_strategy(0)).mean_samples_per_s();
        assert!(
            (ts8 - ts32).abs() / ts32 < 0.1,
            "shared 8 vCPU {ts8} vs 32 vCPU {ts32}"
        );
        // and matches the big instance's non-shared throughput
        let ns32 = run_config(32, GpuSharing::Mps, nonshared_strategy()).mean_samples_per_s();
        assert!(ts8 > ns32 * 0.9, "{ts8} vs {ns32}");
    }

    #[test]
    fn mps_beats_streams() {
        let streams = GpuSharing::Streams {
            penalty: STREAM_PENALTY,
        };
        let ts_mps = run_config(32, GpuSharing::Mps, tensorsocket_strategy(0)).mean_samples_per_s();
        let ts_str = run_config(32, streams, tensorsocket_strategy(0)).mean_samples_per_s();
        assert!(ts_mps > ts_str * 1.05, "mps {ts_mps} vs streams {ts_str}");
    }

    #[test]
    fn absolute_rates_near_paper() {
        // paper: ~60 samples/s per model when not CPU-bound
        let ts8 = run_config(8, GpuSharing::Mps, tensorsocket_strategy(0)).mean_samples_per_s();
        assert!((45.0..75.0).contains(&ts8), "{ts8}");
    }
}
