//! Table 3: disk I/O, PCIe and NVLink traffic plus GPU memory for four
//! MobileNet L models training on separate A100 GPUs.

use crate::fig8::run_config;
use crate::report::ExperimentReport;
use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::{fmt_gb, fmt_rate};
use ts_metrics::Table;

/// Paper reference rows for quick comparison.
const PAPER: [(&str, &str, &str, &str, &str); 8] = [
    ("Baseline", "0", "267 MB/s*", "-", "8.5 GB"),
    ("Baseline", "1", "267 MB/s", "-", "8.5 GB"),
    ("Baseline", "2", "268 MB/s", "-", "8.5 GB"),
    ("Baseline", "3", "267 MB/s", "-", "8.5 GB"),
    ("Shared", "0 (Prod+Cons)", "286 MB/s", "-", "9.8 GB"),
    ("Shared", "1 (Cons)", "23 MB/s", "267 MB/s", "8.5 GB"),
    ("Shared", "2 (Cons)", "24 MB/s", "269 MB/s", "8.4 GB"),
    ("Shared", "3 (Cons)", "23 MB/s", "268 MB/s", "8.4 GB"),
];

/// Regenerates Table 3.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table3",
        "Data movement for 4x MobileNet L on separate A100 GPUs",
    );
    let ns = run_config("MobileNet L", nonshared_strategy());
    let ts = run_config("MobileNet L", tensorsocket_strategy(0));

    let mut t = Table::new(
        "Table 3 (measured)",
        &["Mode", "GPU", "Disk I/O", "PCIe", "NVLink", "VRAM peak"],
    );
    for (mode, r) in [("Baseline", &ns), ("Shared", &ts)] {
        for g in 0..4 {
            let disk = if g == 0 {
                fmt_rate(r.disk_bps)
            } else {
                "\"".to_string()
            };
            t.row(&[
                mode.to_string(),
                if mode == "Shared" && g == 0 {
                    "0 (Prod)".to_string()
                } else {
                    format!("{g}")
                },
                disk,
                fmt_rate(r.pcie_bps[g]),
                fmt_rate(r.nvlink_bps[g]),
                fmt_gb(r.vram_peak[g] as f64),
            ]);
        }
    }
    report.table(t);

    let mut p = Table::new(
        "Table 3 (paper)",
        &["Mode", "GPU", "PCIe", "NVLink", "VRAM"],
    );
    for (mode, gpu, pcie, nvl, vram) in PAPER {
        p.row(&[
            mode.to_string(),
            gpu.to_string(),
            pcie.to_string(),
            nvl.to_string(),
            vram.to_string(),
        ]);
    }
    report.table(p);
    report.note(format!(
        "Paper disk totals: baseline 613 MB/s vs shared 161 MB/s; measured {} vs {} — \
         sharing reads the dataset once instead of four times.",
        fmt_rate(ns.disk_bps),
        fmt_rate(ts.disk_bps)
    ));
    report.note(
        "Shared consumers receive data over NVLink at the rate the baseline pulled it over \
         PCIe; the producer GPU carries the single PCIe stream plus the buffered batches.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_shape_matches_table3() {
        let ns = run_config("MobileNet L", nonshared_strategy());
        let ts = run_config("MobileNet L", tensorsocket_strategy(0));
        // Baseline: ~267 MB/s PCIe per GPU, no NVLink.
        for g in 0..4 {
            assert!(
                (200e6..350e6).contains(&ns.pcie_bps[g]),
                "baseline pcie[{g}] = {}",
                ns.pcie_bps[g]
            );
            assert_eq!(ns.nvlink_bps[g], 0.0);
        }
        // Shared: producer GPU carries PCIe; consumers use NVLink.
        assert!(ts.pcie_bps[0] > 200e6, "{}", ts.pcie_bps[0]);
        for g in 1..4 {
            assert!(
                ts.pcie_bps[g] < 20e6,
                "shared pcie[{g}] = {}",
                ts.pcie_bps[g]
            );
            assert!(
                (200e6..350e6).contains(&ts.nvlink_bps[g]),
                "shared nvlink[{g}] = {}",
                ts.nvlink_bps[g]
            );
        }
        // Disk: once instead of four times (paper: 613 → 161 MB/s).
        assert!(
            ts.disk_bps < ns.disk_bps / 3.0,
            "disk {} vs {}",
            ts.disk_bps,
            ns.disk_bps
        );
        assert!((500e6..750e6).contains(&ns.disk_bps), "{}", ns.disk_bps);
        assert!((120e6..220e6).contains(&ts.disk_bps), "{}", ts.disk_bps);
    }

    #[test]
    fn vram_shape_matches_table3() {
        let ns = run_config("MobileNet L", nonshared_strategy());
        let ts = run_config("MobileNet L", tensorsocket_strategy(0));
        // baseline ~8.5 GB per GPU
        for g in 0..4 {
            let gb = ns.vram_peak[g] as f64 / 1e9;
            assert!((8.0..9.2).contains(&gb), "baseline vram[{g}] = {gb}");
        }
        // producer GPU holds extra (buffers + extra context)
        assert!(ts.vram_peak[0] > ns.vram_peak[0]);
        // consumer GPUs roughly unchanged
        for g in 1..4 {
            let diff = ts.vram_peak[g] as f64 - ns.vram_peak[g] as f64;
            assert!(diff.abs() < 0.6e9, "consumer vram delta {diff}");
        }
    }

    #[test]
    fn report_has_measured_and_paper_tables() {
        let r = run();
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].num_rows(), 8);
    }
}
