//! Figure 8: image classification on the A100 server, 4-way collocation
//! (one instance of the same model per GPU), with and without sharing.
//!
//! Reported per model: training throughput (samples/s per model), CPU
//! utilization, and mean GPU utilization — Figures 8a–8c.

use crate::profiles::{a100_server, imagenet_loader, timm_model};
use crate::report::{fmt_x, ExperimentReport};
use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult, Strategy, WorkloadSpec};

/// The five evaluated models in the figure's order.
pub const MODELS: [&str; 5] = [
    "ResNet18",
    "RegNetX 2",
    "RegNetX 4",
    "MobileNet S",
    "MobileNet L",
];

/// Runs one 4-way collocation configuration.
pub fn run_config(model: &str, strategy: Strategy) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..4).map(|g| timm_model(model, g)).collect();
    let mut cfg = SimConfig::new(a100_server(), imagenet_loader(48), trainers, strategy);
    cfg.samples_per_trainer = 120_000;
    ts_sim::run(cfg)
}

/// Paper reference: shared-over-baseline speedup per model (§4.2 text).
fn paper_speedup(model: &str) -> &'static str {
    match model {
        "MobileNet S" => "~2.0x",
        "ResNet18" | "MobileNet L" => "1.05-1.10x",
        _ => "1.1x-2.0x",
    }
}

/// Regenerates Figure 8.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig8",
        "Image classification, 4-way collocation on the A100 server",
    );
    let mut thr = Table::new(
        "Fig 8a: per-model training throughput (samples/s)",
        &["Model", "Non-shared", "Shared", "Speedup", "Paper speedup"],
    );
    let mut cpu = Table::new(
        "Fig 8b: CPU utilization (48 cores)",
        &["Model", "Non-shared %", "Shared %", "CPU freed"],
    );
    let mut gpu = Table::new(
        "Fig 8c: mean GPU utilization",
        &["Model", "Non-shared %", "Shared %"],
    );
    for model in MODELS {
        let ns = run_config(model, nonshared_strategy());
        let ts = run_config(model, tensorsocket_strategy(0));
        let ns_rate = ns.mean_samples_per_s();
        let ts_rate = ts.mean_samples_per_s();
        thr.row(&[
            model.to_string(),
            fmt_num(ns_rate),
            fmt_num(ts_rate),
            fmt_x(ts_rate / ns_rate),
            paper_speedup(model).to_string(),
        ]);
        cpu.row(&[
            model.to_string(),
            format!("{:.0}", ns.cpu_util * 100.0),
            format!("{:.0}", ts.cpu_util * 100.0),
            format!(
                "{:.0}%",
                (1.0 - ts.cpu_busy_cores / ns.cpu_busy_cores) * 100.0
            ),
        ]);
        let mean_gpu = |r: &SimResult| r.gpu_util.iter().sum::<f64>() / r.gpu_util.len() as f64;
        gpu.row(&[
            model.to_string(),
            format!("{:.0}", mean_gpu(&ns) * 100.0),
            format!("{:.0}", mean_gpu(&ts) * 100.0),
        ]);
    }
    report.table(thr);
    report.table(cpu);
    report.table(gpu);
    report.note(
        "Paper: sharing raises throughput for every workload; MobileNet S nearly doubles; \
         GPU-bound models (MobileNet L) gain little throughput but free ~70% of CPU.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_baselines::{nonshared_strategy, tensorsocket_strategy};

    #[test]
    fn mobilenet_s_roughly_doubles_with_sharing() {
        let ns = run_config("MobileNet S", nonshared_strategy());
        let ts = run_config("MobileNet S", tensorsocket_strategy(0));
        let speedup = ts.mean_samples_per_s() / ns.mean_samples_per_s();
        assert!(
            (1.7..=2.3).contains(&speedup),
            "MobileNet S speedup {speedup}"
        );
        // baseline is CPU-bound, shared is not
        assert!(ns.cpu_util > 0.9);
        assert!(ts.cpu_util < 0.7);
    }

    #[test]
    fn mobilenet_l_frees_cpu_without_throughput_regression() {
        let ns = run_config("MobileNet L", nonshared_strategy());
        let ts = run_config("MobileNet L", tensorsocket_strategy(0));
        assert!(ts.mean_samples_per_s() >= ns.mean_samples_per_s() * 0.98);
        let freed = 1.0 - ts.cpu_busy_cores / ns.cpu_busy_cores;
        assert!(freed > 0.6, "freed {freed}");
    }

    #[test]
    fn sharing_never_hurts_any_model() {
        for model in MODELS {
            let ns = run_config(model, nonshared_strategy());
            let ts = run_config(model, tensorsocket_strategy(0));
            assert!(
                ts.mean_samples_per_s() >= ns.mean_samples_per_s() * 0.98,
                "{model}: {} vs {}",
                ts.mean_samples_per_s(),
                ns.mean_samples_per_s()
            );
        }
    }

    #[test]
    fn report_covers_all_models() {
        let r = run();
        assert_eq!(r.tables.len(), 3);
        assert_eq!(r.tables[0].num_rows(), 5);
    }
}
