//! Figure 9: per-model throughput of MobileNet Small and Large with
//! increasing collocation degree (1–4 models, one per A100 GPU).

use crate::profiles::{a100_server, imagenet_loader, timm_model};
use crate::report::ExperimentReport;
use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult, Strategy, WorkloadSpec};

/// Runs `degree`-way collocation of `model` under `strategy`.
pub fn run_config(model: &str, degree: usize, strategy: Strategy) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..degree).map(|g| timm_model(model, g)).collect();
    let mut cfg = SimConfig::new(a100_server(), imagenet_loader(48), trainers, strategy);
    cfg.samples_per_trainer = 120_000;
    ts_sim::run(cfg)
}

/// Regenerates Figure 9.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig9",
        "Per-model throughput vs collocation degree (A100 server)",
    );
    for model in ["MobileNet S", "MobileNet L"] {
        let mut t = Table::new(
            format!("{model}: per-model samples/s by degree"),
            &["Degree", "Non-shared", "Shared", "Shared/Non-shared"],
        );
        for degree in 1..=4 {
            let ns = run_config(model, degree, nonshared_strategy());
            let ts = run_config(model, degree, tensorsocket_strategy(0));
            t.row(&[
                format!("{degree}x"),
                fmt_num(ns.mean_samples_per_s()),
                fmt_num(ts.mean_samples_per_s()),
                format!("{:.2}x", ts.mean_samples_per_s() / ns.mean_samples_per_s()),
            ]);
        }
        report.table(t);
    }
    report.note(
        "Paper: sharing wins at every degree; the small model increasingly relies on it \
         (the non-shared loader splits the CPU budget), while the large model is GPU-bound \
         and barely moves.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_model_nonshared_degrades_with_degree() {
        let d1 = run_config("MobileNet S", 1, nonshared_strategy()).mean_samples_per_s();
        let d4 = run_config("MobileNet S", 4, nonshared_strategy()).mean_samples_per_s();
        assert!(
            d4 < d1 * 0.6,
            "expected heavy degradation: 1x {d1} vs 4x {d4}"
        );
    }

    #[test]
    fn small_model_shared_stays_flat() {
        let d1 = run_config("MobileNet S", 1, tensorsocket_strategy(0)).mean_samples_per_s();
        let d4 = run_config("MobileNet S", 4, tensorsocket_strategy(0)).mean_samples_per_s();
        assert!(
            (d4 - d1).abs() / d1 < 0.1,
            "shared should hold: 1x {d1} vs 4x {d4}"
        );
    }

    #[test]
    fn large_model_is_insensitive_to_degree() {
        let ns1 = run_config("MobileNet L", 1, nonshared_strategy()).mean_samples_per_s();
        let ns4 = run_config("MobileNet L", 4, nonshared_strategy()).mean_samples_per_s();
        // 48 workers for 1 model vs 12/model at 4-way: still above the GPU
        // plateau → little change
        assert!((ns4 - ns1).abs() / ns1 < 0.15, "1x {ns1} vs 4x {ns4}");
    }

    #[test]
    fn report_shape() {
        let r = run();
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].num_rows(), 4);
    }
}
