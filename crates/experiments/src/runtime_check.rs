//! Runtime validation: the sharing benefit measured on *real threads*.
//!
//! The simulator-based experiments reproduce the paper's hardware; this
//! experiment runs the actual threaded TensorSocket runtime on the current
//! machine — real decode work, real sockets, real payload sharing — and
//! compares per-model throughput of three collocated "trainings" under a
//! fixed data-loading worker budget:
//!
//! * **non-shared**: each training iterates its own `DataLoader` with one
//!   worker (the budget split three ways);
//! * **shared**: one TensorSocket producer owns all three workers.
//!
//! Decode dominates (CPU-bound regime, like Fig 8's small models), so
//! sharing should recover close to the full worker budget for every
//! consumer. Absolute numbers depend on the host; the *ratio* is the
//! reproduced claim.

use crate::report::{fmt_x, ExperimentReport};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensorsocket::{Consumer, Producer, TsContext};
use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_tensor::ops;

const CONSUMERS: usize = 3;
const WORKER_BUDGET: usize = 3;
const SAMPLES: usize = 768;
const BATCH: usize = 32;
/// "GPU step" stand-in: a little real work per batch so consumers are not
/// pure sinks (still loader-bound).
const TRAIN_WORK_UNITS: u64 = 50_000;

fn dataset(seed: u64) -> Arc<SyntheticImageDataset> {
    // 3×160×160 → ~77 KB decode per sample: decode dominates everything.
    Arc::new(SyntheticImageDataset::new(SAMPLES, 160, 160, seed).with_encoded_len(8_192))
}

fn loader(workers: usize, seed: u64) -> DataLoader {
    DataLoader::new(
        dataset(seed),
        DataLoaderConfig {
            batch_size: BATCH,
            num_workers: workers,
            shuffle: false,
            seed,
            ..Default::default()
        },
    )
}

fn train_step(seq: u64, field: &ts_tensor::Tensor) -> u64 {
    // touch a slice of the batch + burn fixed work
    let probe = field
        .narrow(0, 0, 1)
        .map(|t| ops::checksum(&t))
        .unwrap_or(0);
    probe ^ ops::busy_work(seq, TRAIN_WORK_UNITS)
}

/// Per-model samples/s with private loaders (1 worker each).
pub fn measure_nonshared() -> f64 {
    let handles: Vec<_> = (0..CONSUMERS)
        .map(|i| {
            std::thread::spawn(move || {
                let loader = loader(WORKER_BUDGET / CONSUMERS, 42 + i as u64);
                let started = Instant::now();
                let mut samples = 0u64;
                for batch in loader.epoch(0) {
                    std::hint::black_box(train_step(batch.index as u64, &batch.fields[0]));
                    samples += batch.batch_size() as u64;
                }
                samples as f64 / started.elapsed().as_secs_f64()
            })
        })
        .collect();
    let rates: Vec<f64> = handles
        .into_iter()
        .map(|h| h.join().expect("trainer"))
        .collect();
    rates.iter().sum::<f64>() / rates.len() as f64
}

/// Per-model samples/s with one shared producer owning the worker budget.
pub fn measure_shared() -> f64 {
    let ctx = TsContext::host_only();
    let ep = "inproc://runtime-check";
    let producer = Producer::builder()
        .context(&ctx)
        .endpoint(ep)
        .epochs(1)
        .rubberband_cutoff(1.0)
        .poll_interval(Duration::from_micros(200))
        .spawn(loader(WORKER_BUDGET, 42))
        .expect("spawn producer");
    let handles: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let ctx = ctx.clone();
            let ep = ep.to_string();
            std::thread::spawn(move || {
                let mut consumer = Consumer::builder()
                    .context(&ctx)
                    .heartbeat_interval(Duration::from_millis(50))
                    .connect(ep)
                    .expect("connect");
                let started = Instant::now();
                for batch in consumer.by_ref() {
                    let batch = batch.expect("clean stream");
                    std::hint::black_box(train_step(batch.seq, &batch.fields[0]));
                }
                consumer.samples_consumed() as f64 / started.elapsed().as_secs_f64()
            })
        })
        .collect();
    let rates: Vec<f64> = handles
        .into_iter()
        .map(|h| h.join().expect("trainer"))
        .collect();
    producer.join().expect("producer");
    rates.iter().sum::<f64>() / rates.len() as f64
}

/// Runs the real-runtime comparison.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "runtime-validation",
        "REAL RUNTIME: shared vs non-shared on this machine (3 consumers, 3-worker budget)",
    );
    let ns = measure_nonshared();
    let ts = measure_shared();
    let mut t = Table::new(
        "per-model samples/s over real threads",
        &["Mode", "Samples/s per model", "Speedup"],
    );
    t.row(&[
        "Non-shared (1 worker each)".into(),
        fmt_num(ns),
        "1.00x".into(),
    ]);
    t.row(&[
        "TensorSocket (3 shared workers)".into(),
        fmt_num(ts),
        fmt_x(ts / ns),
    ]);
    report.table(t);
    report.note(
        "This is the threaded runtime itself, not the simulator: real decode work, real \
         ZeroMQ-style sockets, pointer payloads, acks and heartbeats. Under a CPU-bound \
         loading regime the shared producer serves every consumer at (nearly) the full \
         worker-budget rate — the paper's core claim, live.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_beats_split_workers_on_real_threads() {
        let ns = measure_nonshared();
        let ts = measure_shared();
        // 3 workers shared vs 1 worker each: expect close to 3x; accept
        // >= 1.5x to stay robust on loaded CI hosts.
        assert!(
            ts > ns * 1.5,
            "real-runtime sharing speedup too small: {ts:.0} vs {ns:.0}"
        );
    }
}
