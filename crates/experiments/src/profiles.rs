//! Calibration constants: hardware, dataset and model cost profiles.
//!
//! Calibration rule (DESIGN.md §4): constants are fitted against the
//! paper's *non-shared baseline* measurements only — loader CPU cost from
//! baseline throughput at a known worker count, GPU cost from the
//! GPU-bound plateau, byte sizes from the reported PCIe/disk rates. The
//! shared/CoorDL/Joader behaviours are then *predictions* of the simulator,
//! compared against the paper in EXPERIMENTS.md.
//!
//! Two deliberate deviations from naive datasheet numbers, both documented
//! in EXPERIMENTS.md:
//!
//! * `disk_bytes_per_sample` for ImageNet is 85 KB (not the ~110 KB average
//!   JPEG): Table 3's 613 MB/s baseline disk rate at 4×1800 samples/s
//!   implies the OS page cache absorbs part of the re-read traffic.
//! * Small CNNs do not scale linearly with SM count across GPU
//!   generations; where the paper pins a workload to a specific GPU
//!   (Figures 13 and 15), the GPU cost is calibrated on that GPU.

use ts_sim::{ClusterSpec, GpuConfig, GpuSharing, LoaderSpec, WorkloadSpec};

// ---------------------------------------------------------------------------
// hardware (Table 2)
// ---------------------------------------------------------------------------

/// The 4×A100 server capped at 48 usable cores.
pub fn a100_server() -> ClusterSpec {
    ClusterSpec {
        name: "A100 Server (48 cores)".into(),
        vcpus: 48.0,
        gpus: vec![
            GpuConfig {
                relative_throughput: 1.0,
                vram_bytes: 40_000_000_000,
            };
            4
        ],
        gpu_sharing: GpuSharing::Mps,
        disk_read_bps: 3.5e9,
        nvlink: true,
    }
}

/// The 24-core single-H100 server.
pub fn h100_server() -> ClusterSpec {
    ClusterSpec {
        name: "H100 Server".into(),
        vcpus: 24.0,
        gpus: vec![GpuConfig {
            relative_throughput: 2.0,
            vram_bytes: 80_000_000_000,
        }],
        gpu_sharing: GpuSharing::Mps,
        disk_read_bps: 3.5e9,
        nvlink: false,
    }
}

/// AWS g5 instance with one A10G and the given vCPU count (8/16/32).
pub fn g5(vcpus: u32) -> ClusterSpec {
    ClusterSpec {
        name: format!("AWS g5 ({vcpus} vCPU)"),
        vcpus: vcpus as f64,
        gpus: vec![GpuConfig {
            relative_throughput: 0.4,
            vram_bytes: 24_000_000_000,
        }],
        gpu_sharing: GpuSharing::Mps,
        disk_read_bps: 1.25e9,
        nvlink: false,
    }
}

// ---------------------------------------------------------------------------
// datasets → loader profiles
// ---------------------------------------------------------------------------

/// ImageNet through the TIMM training pipeline (decode + crop + flip).
///
/// CPU cost: the A100-server baselines run 12 workers per model and top
/// out near 1900 samples/s → ≈ 6.3 worker-ms/sample. Decoded uint8
/// 3×224×224 → 150 528 B over PCIe (Table 3's 267 MB/s at ~1800/s).
pub fn imagenet_loader(num_workers: usize) -> LoaderSpec {
    LoaderSpec {
        cpu_ms_per_sample: 6.3,
        disk_bytes_per_sample: 85_000,
        h2d_bytes_per_sample: 150_528,
        num_workers,
        prefetch_batches: 2,
    }
}

/// ImageNet through Joader's hardcoded (lighter) Rust pipeline — no
/// augmentation, which is why its base cost is below TIMM's (§4.7).
pub fn imagenet_loader_light(num_workers: usize) -> LoaderSpec {
    LoaderSpec {
        cpu_ms_per_sample: 7.0, // H100-server TIMM pipeline (Fig 15 baseline)
        disk_bytes_per_sample: 85_000,
        h2d_bytes_per_sample: 150_528,
        num_workers,
        prefetch_batches: 2,
    }
}

/// LibriSpeech raw-waveform windows for CLMR: very expensive host-side
/// augmentation chain (~120 ms/sample), 59 049-sample f32 clips.
pub fn librispeech_loader(num_workers: usize) -> LoaderSpec {
    LoaderSpec {
        cpu_ms_per_sample: 120.0,
        disk_bytes_per_sample: 118_098, // ~2:1 FLAC over 16-bit PCM
        h2d_bytes_per_sample: 236_196,  // f32 waveform
        num_workers,
        prefetch_batches: 2,
    }
}

/// Conceptual Captions (CC3M) for DALL-E 2 prior training.
pub fn cc3m_loader(num_workers: usize) -> LoaderSpec {
    LoaderSpec {
        cpu_ms_per_sample: 8.0,
        disk_bytes_per_sample: 90_000,
        h2d_bytes_per_sample: 3 * 224 * 224 + 77 * 8, // image + token ids
        num_workers,
        prefetch_batches: 2,
    }
}

/// Alpaca for Qwen2.5 fine-tuning: tokenized text, nearly free to load.
pub fn alpaca_loader(num_workers: usize) -> LoaderSpec {
    LoaderSpec {
        cpu_ms_per_sample: 2.0,
        disk_bytes_per_sample: 1_024,
        h2d_bytes_per_sample: 20_480, // padded token tensor per sample
        num_workers,
        prefetch_batches: 2,
    }
}

// ---------------------------------------------------------------------------
// models (Table 1)
// ---------------------------------------------------------------------------

/// The five TIMM image classifiers of Figure 8, with GPU-bound plateau
/// rates calibrated on the A100 (samples/s at batch 128):
/// MobileNet S ≈ 3900, RegNetX-002 ≈ 3000, RegNetX-004 ≈ 2200,
/// ResNet18 ≈ 2000, MobileNet L ≈ 1820.
pub fn timm_model(name: &str, gpu: usize) -> WorkloadSpec {
    let (gpu_ms, vram): (f64, u64) = match name {
        "MobileNet S" => (1.0 / 3.9, 5_000_000_000),
        "RegNetX 2" => (1.0 / 3.0, 5_500_000_000),
        "RegNetX 4" => (1.0 / 2.2, 6_500_000_000),
        "ResNet18" => (1.0 / 2.0, 7_000_000_000),
        "MobileNet L" => (1.0 / 1.82, 8_000_000_000),
        other => panic!("unknown TIMM model {other}"),
    };
    WorkloadSpec {
        name: name.to_string(),
        gpu,
        batch_size: 128,
        gpu_ms_per_sample: gpu_ms,
        pre_gpu_cpu_ms_per_sample: 0.0,
        model_vram: vram,
        extra_pcie_bytes_per_sample: 0,
        gpu_jitter_frac: 0.0,
    }
}

/// MobileNetV3-Small calibrated on the H100 for Figure 15 (plateau ≈ 7700
/// samples/s aggregate under MPS).
pub fn mobilenet_s_h100(gpu: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "MobileNet S".into(),
        gpu,
        batch_size: 128,
        gpu_ms_per_sample: 0.26, // ×2.0 H100 → 0.13 ms/sample
        pre_gpu_cpu_ms_per_sample: 0.0,
        model_vram: 5_000_000_000,
        extra_pcie_bytes_per_sample: 0,
        gpu_jitter_frac: 0.0,
    }
}

/// CLMR audio model on the A10G (4-way MPS plateau ≈ 240 samples/s
/// aggregate).
pub fn clmr(gpu: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "CLMR".into(),
        gpu,
        batch_size: 16,
        gpu_ms_per_sample: 1.0 / 0.6, // ×0.4 A10G → 240/s aggregate
        pre_gpu_cpu_ms_per_sample: 0.0,
        model_vram: 4_000_000_000,
        extra_pcie_bytes_per_sample: 0,
        gpu_jitter_frac: 0.0,
    }
}

/// DALL-E 2 diffusion-prior training step (excluding CLIP), calibrated on
/// the H100 (§4.4): CLIP ≈ 0.25 ms/sample and prior ≈ 1.35 ms/sample on
/// the H100.
pub fn dalle_prior(gpu: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "DALL-E 2 prior".into(),
        gpu,
        batch_size: 64,
        gpu_ms_per_sample: 2.7, // ×2.0 H100 → 1.35 ms/sample
        pre_gpu_cpu_ms_per_sample: 0.0,
        model_vram: 15_000_000_000,
        extra_pcie_bytes_per_sample: 0,
        gpu_jitter_frac: 0.0,
    }
}

/// CLIP inference cost per sample (A100-reference ms) for the DALL-E
/// pipeline — run by every trainer when not shared, by the producer once
/// when shared.
pub const CLIP_GPU_MS_PER_SAMPLE: f64 = 0.5;

/// RegNetX models calibrated on the A10G for the Figure 13 mixed workload
/// (small CNNs do not scale with SM count; see module docs).
pub fn regnet_a10g(name: &str, gpu: usize) -> WorkloadSpec {
    let gpu_ms = match name {
        "RegNetX 2" => 0.4 / 2.8, // A10G plateau ≈ 2800 samples/s
        "RegNetX 4" => 0.4 / 1.6, // A10G plateau ≈ 1600 samples/s
        other => panic!("unknown A10G model {other}"),
    };
    WorkloadSpec {
        name: name.to_string(),
        gpu,
        batch_size: 128,
        gpu_ms_per_sample: gpu_ms,
        pre_gpu_cpu_ms_per_sample: 0.0,
        model_vram: 6_000_000_000,
        extra_pcie_bytes_per_sample: 0,
        gpu_jitter_frac: 0.0,
    }
}

/// ResNet18 under the CoorDL comparison settings (batch 512, no AMP, 4
/// workers — §4.7): GPU plateau ≈ 650 samples/s on the A100.
pub fn resnet18_coordl(gpu: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "ResNet18 (bs 512)".into(),
        gpu,
        batch_size: 512,
        gpu_ms_per_sample: 1.0 / 0.65,
        pre_gpu_cpu_ms_per_sample: 0.0,
        model_vram: 9_000_000_000,
        extra_pcie_bytes_per_sample: 0,
        gpu_jitter_frac: 0.0,
    }
}

/// Qwen2.5-0.5B fine-tuning on Alpaca at batch 8 (Table 4): ≈ 7500
/// tokens/s ≈ 14.6 samples/s per A100 at 512 tokens/sample; the 48 MB/s
/// baseline PCIe is optimizer/activation traffic, not data loading.
pub fn qwen25(gpu: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "Qwen2.5 0.5B".into(),
        gpu,
        batch_size: 8,
        gpu_ms_per_sample: 1000.0 / 14.6,
        pre_gpu_cpu_ms_per_sample: 0.0,
        model_vram: 6_800_000_000,
        extra_pcie_bytes_per_sample: 3_300_000,
        gpu_jitter_frac: 0.0,
    }
}

/// Tokens per sample for the Qwen fine-tuning workload.
pub const QWEN_TOKENS_PER_SAMPLE: u64 = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_matches_table2() {
        assert_eq!(a100_server().vcpus, 48.0);
        assert_eq!(a100_server().gpus.len(), 4);
        assert_eq!(h100_server().vcpus, 24.0);
        assert_eq!(g5(8).vcpus, 8.0);
        assert!(g5(32).gpus[0].relative_throughput < 1.0);
    }

    #[test]
    fn timm_models_ordered_by_cost() {
        let s = timm_model("MobileNet S", 0).gpu_ms_per_sample;
        let r2 = timm_model("RegNetX 2", 0).gpu_ms_per_sample;
        let r4 = timm_model("RegNetX 4", 0).gpu_ms_per_sample;
        let r18 = timm_model("ResNet18", 0).gpu_ms_per_sample;
        let l = timm_model("MobileNet L", 0).gpu_ms_per_sample;
        assert!(s < r2 && r2 < r4 && r4 < r18 && r18 < l);
    }

    #[test]
    #[should_panic(expected = "unknown TIMM model")]
    fn unknown_model_panics() {
        timm_model("AlexNet", 0);
    }

    #[test]
    fn qwen_rate_implies_7500_tokens_per_s() {
        let q = qwen25(0);
        let samples_per_s = 1000.0 / q.gpu_ms_per_sample;
        let tokens = samples_per_s * QWEN_TOKENS_PER_SAMPLE as f64;
        assert!((tokens - 7475.0).abs() < 25.0, "{tokens}");
    }

    #[test]
    fn imagenet_h2d_matches_uint8_224() {
        assert_eq!(imagenet_loader(8).h2d_bytes_per_sample, 3 * 224 * 224);
    }
}
