//! Ablation studies of TensorSocket's design choices.
//!
//! These go beyond the paper's figures and probe the claims its design
//! section makes in passing:
//!
//! * **Buffer size** (§3.2.5): "a buffer as small as two batches is enough
//!   to provide maximum training throughput while training similar tasks.
//!   Increasing the buffer size can be beneficial when training processes
//!   fluctuate more widely" — swept under per-batch GPU-time jitter.
//! * **Producer batch size** (§3.2.6): "we recommend having it at least
//!   twice as large as the largest consumer batch, making this share never
//!   exceed 50%" — the repetition share as a function of `P / max(b)`.
//! * **GPU sharing primitive** (§4.3): MPS vs multi-streams across the
//!   stream-efficiency penalty.

use crate::profiles::{g5, h100_server, imagenet_loader, librispeech_loader, mobilenet_s_h100};
use crate::report::{fmt_pct, ExperimentReport};
use tensorsocket::protocol::flex::plan_flex;
use ts_baselines::{nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult, Strategy, WorkloadSpec};

/// Runs 3 collocated jittery MobileNet S consumers with buffer size `n`.
pub fn run_buffer_config(buffer: usize, jitter: f64) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..3)
        .map(|_| WorkloadSpec {
            gpu_jitter_frac: jitter,
            ..mobilenet_s_h100(0)
        })
        .collect();
    let strategy = Strategy::TensorSocket {
        buffer,
        producer_gpu: 0,
        producer_gpu_ms_per_sample: 0.0,
        producer_cpu_ms_per_batch_per_consumer: 0.05,
        // exaggerated publish latency so the hiding effect is measurable
        publish_latency_ms: 10.0,
    };
    // Ample loader headroom: the consumers are GPU-bound, so any exposed
    // publish latency shows up directly as lost throughput.
    let mut cfg = SimConfig::new(h100_server(), imagenet_loader(24), trainers, strategy);
    cfg.samples_per_trainer = 120_000;
    ts_sim::run(cfg)
}

/// Buffer-size sweep (§3.2.5 claim).
pub fn buffer_sweep() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ablation-buffer",
        "ABLATION: consumer batch buffer size N under GPU-time jitter",
    );
    for jitter in [0.0, 0.4] {
        let mut t = Table::new(
            format!("per-model samples/s, jitter ±{:.0}%", jitter * 100.0),
            &["Buffer N", "Samples/s", "vs N=8"],
        );
        let reference = run_buffer_config(8, jitter).mean_samples_per_s();
        for buffer in [1usize, 2, 4, 8] {
            let r = run_buffer_config(buffer, jitter).mean_samples_per_s();
            t.row(&[
                buffer.to_string(),
                fmt_num(r),
                format!("{:.1}%", r / reference * 100.0),
            ]);
        }
        report.table(t);
    }
    report.note(
        "Paper §3.2.5: buffering + pre-fetching hide pipeline latency, and a buffer of two \
         batches already provides maximum throughput for similar tasks. Reproduced: N=1 \
         exposes the (exaggerated 10 ms) publish latency on every batch; N=2 hides it and \
         N>2 adds nothing, with or without step-time jitter.",
    );
    report
}

/// Repetition-share table for flexible batch sizing (§3.2.6 bound).
pub fn flex_repetition_sweep() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ablation-flex",
        "ABLATION: repeated-data share vs producer batch size",
    );
    let mut t = Table::new(
        "repeated share per producer batch (consumer batch b = 96)",
        &[
            "Producer batch P",
            "P / b",
            "Repeated samples",
            "Share",
            "Bound (b-1)/P",
        ],
    );
    let b = 96usize;
    for p in [96usize, 128, 192, 256, 384, 512, 1024] {
        let plan = plan_flex(p, b, 0).expect("valid plan");
        t.row(&[
            p.to_string(),
            format!("{:.2}", p as f64 / b as f64),
            plan.repeated().to_string(),
            fmt_pct(plan.repeated() as f64 / p as f64),
            fmt_pct((b - 1) as f64 / p as f64),
        ]);
    }
    report.table(t);
    report.note(
        "Paper §3.2.6: the repeated share never exceeds (max consumer batch − 1)/P, so a \
         producer batch at least twice the largest consumer batch keeps repetition under \
         50%. Measured shares sit at or below the bound everywhere and fall as 1/P.",
    );
    report
}

/// MPS vs multi-streams across the stream penalty (Fig 11's gap, swept).
pub fn stream_penalty_sweep() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ablation-streams",
        "ABLATION: GPU sharing primitive — MPS vs multi-streams",
    );
    let mut t = Table::new(
        "4-way CLMR on g5.8xlarge, shared loading",
        &["Sharing", "Per-model samples/s", "vs MPS"],
    );
    let run_with = |sharing: ts_sim::GpuSharing| {
        let trainers: Vec<WorkloadSpec> = (0..4).map(|_| crate::profiles::clmr(0)).collect();
        let mut cluster = g5(32);
        cluster.gpu_sharing = sharing;
        let mut cfg = SimConfig::new(
            cluster,
            librispeech_loader(32),
            trainers,
            tensorsocket_strategy(0),
        );
        cfg.samples_per_trainer = 3_000;
        ts_sim::run(cfg)
    };
    let mps = run_with(ts_sim::GpuSharing::Mps).mean_samples_per_s();
    t.row(&["MPS".to_string(), fmt_num(mps), "100%".to_string()]);
    for penalty in [0.05, 0.10, 0.20] {
        let r = run_with(ts_sim::GpuSharing::Streams { penalty }).mean_samples_per_s();
        t.row(&[
            format!("streams (penalty {penalty})"),
            fmt_num(r),
            format!("{:.0}%", r / mps * 100.0),
        ]);
    }
    report.table(t);
    report.note(
        "Paper §4.1/§4.3: MPS 'is shown to allow flexible collocation while exhibiting high \
         performance'; multi-streams is the restricted fallback. The gap grows with the \
         per-process context penalty.",
    );
    report
}

/// Worker-count sensitivity: how many CPU workers the shared producer
/// actually needs (the resource-saving knob behind the cost claims).
pub fn worker_sweep() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ablation-workers",
        "ABLATION: producer worker count vs throughput (4x MobileNet S, H100)",
    );
    let mut t = Table::new(
        "shared vs non-shared across worker budgets",
        &["Workers", "Non-shared per-model", "Shared per-model"],
    );
    for workers in [2usize, 4, 8, 12, 16] {
        let trainers: Vec<WorkloadSpec> = (0..4).map(|_| mobilenet_s_h100(0)).collect();
        let mk = |strategy| {
            let mut cfg = SimConfig::new(
                h100_server(),
                imagenet_loader(workers),
                trainers.clone(),
                strategy,
            );
            cfg.samples_per_trainer = 60_000;
            ts_sim::run(cfg)
        };
        let ns = if workers >= 4 {
            fmt_num(mk(nonshared_strategy()).mean_samples_per_s())
        } else {
            "-".to_string() // cannot split 2 workers across 4 loaders
        };
        let ts = fmt_num(mk(tensorsocket_strategy(0)).mean_samples_per_s());
        t.row(&[workers.to_string(), ns, ts]);
    }
    report.table(t);
    report.note(
        "The shared producer turns worker count into a single global knob: every worker \
         feeds every consumer. Non-shared loading wastes its budget 4 ways.",
    );
    report
}

/// GPU-offloaded pre-processing (DALI/FusionFlow-style) combined with
/// sharing — the §5 complementarity claim: "TensorSocket can be deployed
/// together with them to support GPU-offloading of transformation and
/// augmentation operations while keeping redundancy and computational
/// footprint low."
pub fn gpu_offload_sweep() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "ablation-gpu-offload",
        "ABLATION: GPU-offloaded pre-processing with and without sharing",
    );
    // CPU-heavy pipeline: 7 ms/sample on CPU, or 6 of those 7 ms moved to
    // the GPU as a 0.15 ms/sample kernel (decode/augment on device).
    let run_with = |offload: bool, shared: bool| {
        let trainers: Vec<WorkloadSpec> = (0..4)
            .map(|_| {
                let mut t = mobilenet_s_h100(0);
                if offload && !shared {
                    // non-shared offload: every process runs its own
                    // preprocessing kernel on the GPU
                    t.gpu_ms_per_sample += 0.15;
                }
                t
            })
            .collect();
        let mut loader = imagenet_loader(8);
        if offload {
            loader.cpu_ms_per_sample = 1.0; // only fetch + host-side glue
        }
        let strategy = if shared {
            if offload {
                Strategy::TensorSocket {
                    buffer: 2,
                    producer_gpu: 0,
                    // shared offload: the kernel runs once in the producer
                    producer_gpu_ms_per_sample: 0.15,
                    producer_cpu_ms_per_batch_per_consumer: 0.05,
                    publish_latency_ms: 1.0,
                }
            } else {
                tensorsocket_strategy(0)
            }
        } else {
            nonshared_strategy()
        };
        let mut cfg = SimConfig::new(h100_server(), loader, trainers, strategy);
        cfg.samples_per_trainer = 60_000;
        ts_sim::run(cfg)
    };
    let mut t = Table::new(
        "4x MobileNet S on the H100, 8 CPU workers",
        &[
            "Pre-processing",
            "Sharing",
            "Per-model samples/s",
            "CPU busy cores",
        ],
    );
    for (offload, shared) in [(false, false), (false, true), (true, false), (true, true)] {
        let r = run_with(offload, shared);
        t.row(&[
            if offload { "GPU-offloaded" } else { "CPU" }.to_string(),
            if shared { "TensorSocket" } else { "none" }.to_string(),
            fmt_num(r.mean_samples_per_s()),
            format!("{:.1}", r.cpu_busy_cores),
        ]);
    }
    report.table(t);
    report.note(
        "GPU offloading alone removes the CPU bottleneck but replicates the kernel per          process; sharing alone removes the redundancy but keeps the CPU cost. Combined,          the kernel runs once on the producer GPU and the CPU is nearly idle — the two          techniques compose, as §5 claims.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_of_two_hides_publish_latency() {
        // §3.2.5: "both the buffering and the pre-fetching hide the latency
        // of various parts of the data loading pipeline" — with N=1 the
        // (exaggerated, 10 ms) publish latency lands on the critical path;
        // N=2 hides it; deeper buffers add nothing for similar tasks.
        let n1 = run_buffer_config(1, 0.0).mean_samples_per_s();
        let n2 = run_buffer_config(2, 0.0).mean_samples_per_s();
        let n8 = run_buffer_config(8, 0.0).mean_samples_per_s();
        assert!(n1 < n2 * 0.92, "N=1 must expose the latency: {n1} vs {n2}");
        assert!(n2 > n8 * 0.98, "N=2 is already maximal: {n2} vs {n8}");
    }

    #[test]
    fn buffer_of_two_still_suffices_under_jitter() {
        let n1 = run_buffer_config(1, 0.4).mean_samples_per_s();
        let n2 = run_buffer_config(2, 0.4).mean_samples_per_s();
        let n8 = run_buffer_config(8, 0.4).mean_samples_per_s();
        assert!(
            n2 > n1 * 1.05,
            "buffering absorbs jitter: N=1 {n1} vs N=2 {n2}"
        );
        assert!(n2 > n8 * 0.95, "N=2 recovers most of it: {n2} vs {n8}");
    }

    #[test]
    fn repetition_share_under_50pct_at_2x() {
        let plan = plan_flex(192, 96, 0).unwrap();
        assert!(plan.repeated() as f64 / 192.0 <= 0.5);
        let plan = plan_flex(1024, 96, 0).unwrap();
        assert!(plan.repeated() as f64 / 1024.0 < 0.1);
    }

    #[test]
    fn streams_penalty_monotone() {
        let r = stream_penalty_sweep();
        let rows = r.tables[0].rows();
        let parse = |s: &str| s.parse::<f64>().unwrap_or(0.0);
        let mps = parse(&rows[0][1]);
        let p05 = parse(&rows[1][1]);
        let p20 = parse(&rows[3][1]);
        assert!(mps >= p05 && p05 >= p20, "{mps} {p05} {p20}");
    }

    #[test]
    fn gpu_offload_composes_with_sharing() {
        let r = gpu_offload_sweep();
        let rows = r.tables[0].rows();
        let rate = |i: usize| rows[i][2].replace(",", "").parse::<f64>().unwrap_or(0.0);
        let cpu = |i: usize| rows[i][3].parse::<f64>().unwrap_or(f64::MAX);
        // rows: (cpu,none), (cpu,shared), (offload,none), (offload,shared)
        assert!(rate(1) > rate(0) * 1.5, "sharing fixes the CPU bottleneck");
        assert!(rate(2) > rate(0) * 1.5, "offload also fixes it");
        // combined: full throughput at the lowest CPU cost of all four
        assert!(rate(3) >= rate(1) * 0.95);
        assert!(cpu(3) < cpu(1) && cpu(3) < cpu(0));
    }

    #[test]
    fn reports_render() {
        for r in [
            buffer_sweep(),
            flex_repetition_sweep(),
            stream_penalty_sweep(),
            worker_sweep(),
            gpu_offload_sweep(),
        ] {
            assert!(!r.tables.is_empty());
            assert!(!r.render().is_empty());
        }
    }
}
