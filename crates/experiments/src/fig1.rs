//! Figure 1: cloud instances by vCPU-to-GPU ratio across AWS, Azure, GCP.

use crate::report::ExperimentReport;
use ts_cloud::{figure1_matrix, Provider, GPU_AXIS, VCPU_AXIS};
use ts_metrics::Table;

/// Regenerates the Figure-1 heatmap from the instance catalog.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig1", "Cloud instances by vCPU:GPU ratio");
    for provider in [Provider::Aws, Provider::Azure, Provider::Gcp] {
        let cells = figure1_matrix(provider);
        let mut headers: Vec<String> = vec!["vCPUs \\ GPUs".to_string()];
        headers.extend(GPU_AXIS.iter().map(|g| g.to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(format!("{provider} instance count heatmap"), &headers_ref);
        for &v in VCPU_AXIS.iter().rev() {
            let mut row = vec![v.to_string()];
            for &g in &GPU_AXIS {
                let count = cells
                    .iter()
                    .find(|c| c.vcpus == v && c.gpus == g)
                    .map(|c| c.count)
                    .unwrap_or(0);
                row.push(if count == 0 {
                    ".".to_string()
                } else {
                    count.to_string()
                });
            }
            t.row(&row);
        }
        report.table(t);
    }
    report.note(
        "Paper observation: providers offer few distinct vCPU:GPU ratios, and high-ratio \
         single-GPU shapes are rare/expensive — reproduced: the mass sits at 1 GPU with \
         4-32 vCPUs on every provider.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_provider_heatmaps() {
        let r = run();
        assert_eq!(r.tables.len(), 3);
        for t in &r.tables {
            assert_eq!(t.num_rows(), VCPU_AXIS.len());
        }
    }

    #[test]
    fn aws_has_dense_single_gpu_column() {
        let r = run();
        // at least four non-empty cells in the single-GPU column of AWS
        let aws = &r.tables[0];
        let filled = aws.rows().iter().filter(|row| row[1] != ".").count();
        assert!(filled >= 4, "{filled}");
    }
}
