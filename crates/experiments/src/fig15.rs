//! Figure 15: comparison with Joader — 1–8 collocated MobileNetV3-Small
//! models on the H100 under a constrained budget of 8 CPU workers.

use crate::profiles::{h100_server, imagenet_loader_light, mobilenet_s_h100};
use crate::report::ExperimentReport;
use ts_baselines::{joader_strategy, nonshared_strategy, tensorsocket_strategy};
use ts_metrics::table::fmt_num;
use ts_metrics::Table;
use ts_sim::{SimConfig, SimResult, Strategy, WorkloadSpec};

/// Paper's measured per-model samples/s, for reference columns.
pub const PAPER_BASELINE: [f64; 8] = [1128.0, 577.0, 391.0, 295.0, 222.0, 187.0, 159.0, 137.0];
/// Paper TensorSocket row.
pub const PAPER_TS: [f64; 8] = [
    1141.0, 1116.0, 1099.0, 1113.0, 1104.0, 1112.0, 1075.0, 965.0,
];
/// Paper Joader row.
pub const PAPER_JOADER: [f64; 8] = [983.0, 733.0, 557.0, 437.0, 414.0, 374.0, 324.0, 287.0];

/// Runs `n` collocated MobileNet S trainings on the H100 with 8 workers.
pub fn run_config(n: usize, strategy: Strategy) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..n).map(|_| mobilenet_s_h100(0)).collect();
    let mut cfg = SimConfig::new(h100_server(), imagenet_loader_light(8), trainers, strategy);
    cfg.samples_per_trainer = 60_000;
    ts_sim::run(cfg)
}

/// Regenerates Figure 15.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig15",
        "Comparison with Joader: 1-8 collocated MobileNet S on the H100, 8 CPU workers",
    );
    let mut t = Table::new(
        "Fig 15: per-model samples/s (measured | paper)",
        &[
            "Collocated",
            "Baseline",
            "paper",
            "TensorSocket",
            "paper",
            "Joader",
            "paper",
        ],
    );
    for n in 1..=8usize {
        let b = run_config(n, nonshared_strategy()).mean_samples_per_s();
        let ts = run_config(n, tensorsocket_strategy(0)).mean_samples_per_s();
        let jd = run_config(n, joader_strategy()).mean_samples_per_s();
        t.row(&[
            n.to_string(),
            fmt_num(b),
            fmt_num(PAPER_BASELINE[n - 1]),
            fmt_num(ts),
            fmt_num(PAPER_TS[n - 1]),
            fmt_num(jd),
            fmt_num(PAPER_JOADER[n - 1]),
        ]);
    }
    report.table(t);
    report.note(
        "Paper: the baseline's summed throughput never exceeds single-model training (the 8 \
         workers are the bottleneck); TensorSocket holds per-model throughput until ~7-way \
         when the GPU saturates; Joader sits in between, losing throughput to per-iteration \
         dependent-sampling work that grows with the number of jobs.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_error(measured: f64, paper: f64) -> f64 {
        (measured - paper).abs() / paper
    }

    #[test]
    fn baseline_matches_paper_within_15_percent() {
        for n in [1usize, 2, 4, 8] {
            let m = run_config(n, nonshared_strategy()).mean_samples_per_s();
            let err = relative_error(m, PAPER_BASELINE[n - 1]);
            assert!(
                err < 0.15,
                "n={n}: measured {m} vs paper {}",
                PAPER_BASELINE[n - 1]
            );
        }
    }

    #[test]
    fn tensorsocket_flat_until_gpu_saturates() {
        let r1 = run_config(1, tensorsocket_strategy(0)).mean_samples_per_s();
        let r6 = run_config(6, tensorsocket_strategy(0)).mean_samples_per_s();
        let r8 = run_config(8, tensorsocket_strategy(0)).mean_samples_per_s();
        assert!((r6 - r1).abs() / r1 < 0.08, "1x {r1} vs 6x {r6}");
        assert!(r8 < r6, "8-way must dip: {r8} vs {r6}");
        assert!(relative_error(r8, PAPER_TS[7]) < 0.15, "8x {r8}");
    }

    #[test]
    fn joader_sits_between_baseline_and_tensorsocket() {
        for n in [2usize, 4, 6, 8] {
            let b = run_config(n, nonshared_strategy()).mean_samples_per_s();
            let ts = run_config(n, tensorsocket_strategy(0)).mean_samples_per_s();
            let jd = run_config(n, joader_strategy()).mean_samples_per_s();
            assert!(b < jd && jd < ts, "n={n}: {b} < {jd} < {ts} violated");
        }
    }

    #[test]
    fn joader_matches_paper_within_25_percent() {
        for n in [1usize, 2, 4, 8] {
            let m = run_config(n, joader_strategy()).mean_samples_per_s();
            let err = relative_error(m, PAPER_JOADER[n - 1]);
            assert!(
                err < 0.25,
                "n={n}: measured {m} vs paper {}",
                PAPER_JOADER[n - 1]
            );
        }
    }

    #[test]
    fn baseline_aggregate_never_exceeds_single_model() {
        let single = run_config(1, nonshared_strategy()).aggregate_samples_per_s();
        for n in [2usize, 4, 8] {
            let agg = run_config(n, nonshared_strategy()).aggregate_samples_per_s();
            assert!(
                agg <= single * 1.05,
                "n={n}: aggregate {agg} exceeds single {single}"
            );
        }
    }
}
