//! Figure 14: comparison with CoorDL on the A100 server — normalized CPU
//! utilization and per-model throughput as collocation scales 1×→4×
//! (ResNet18, batch 512, 4 data-loading workers, one model per GPU).

use crate::profiles::{a100_server, resnet18_coordl};
use crate::report::ExperimentReport;
use ts_baselines::{
    coordl_strategy, nonshared_strategy, tensorsocket_strategy, validate_coordl_placement,
};
use ts_metrics::Table;
use ts_sim::{LoaderSpec, SimConfig, SimResult, Strategy, WorkloadSpec};

fn coordl_loader() -> LoaderSpec {
    LoaderSpec {
        // DALI-based pipeline, similar decode cost to TIMM's
        cpu_ms_per_sample: 6.0,
        disk_bytes_per_sample: 85_000,
        h2d_bytes_per_sample: 150_528,
        num_workers: 4, // the CoorDL evaluation setting (§4.7)
        prefetch_batches: 2,
    }
}

/// Runs `degree` ResNet18 trainings (one per GPU) under `strategy`.
pub fn run_config(degree: usize, strategy: Strategy) -> SimResult {
    let trainers: Vec<WorkloadSpec> = (0..degree).map(resnet18_coordl).collect();
    validate_coordl_placement(&trainers).expect("one model per GPU");
    let mut cfg = SimConfig::new(a100_server(), coordl_loader(), trainers, strategy);
    cfg.samples_per_trainer = 40_000;
    ts_sim::run(cfg)
}

/// Regenerates Figure 14 (both panels).
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new("fig14", "Comparison with CoorDL (A100 server)");
    type StrategyEntry = (&'static str, fn() -> Strategy);
    let strategies: [StrategyEntry; 3] = [
        ("Baseline", nonshared_strategy as fn() -> Strategy),
        ("TensorSocket", || tensorsocket_strategy(0)),
        ("CoorDL", coordl_strategy),
    ];
    let mut cpu_t = Table::new(
        "Fig 14a: normalized CPU utilization (vs own 1x)",
        &["Collocation", "Baseline", "TensorSocket", "CoorDL"],
    );
    let mut thr_t = Table::new(
        "Fig 14b: normalized per-model throughput (vs own 1x)",
        &["Collocation", "Baseline", "TensorSocket", "CoorDL"],
    );
    let mut results: Vec<Vec<SimResult>> = Vec::new();
    for (_, mk) in &strategies {
        let runs: Vec<SimResult> = (1..=4).map(|d| run_config(d, mk())).collect();
        results.push(runs);
    }
    for d in 1..=4usize {
        let mut cpu_row = vec![format!("{d}x")];
        let mut thr_row = vec![format!("{d}x")];
        for runs in &results {
            let base = &runs[0];
            let r = &runs[d - 1];
            cpu_row.push(format!("{:.2}x", r.cpu_busy_cores / base.cpu_busy_cores));
            thr_row.push(format!(
                "{:.2}x",
                r.mean_samples_per_s() / base.mean_samples_per_s()
            ));
        }
        cpu_t.row(&cpu_row);
        thr_t.row(&thr_row);
    }
    report.table(cpu_t);
    report.table(thr_t);
    report.note(
        "Paper: both CoorDL and TensorSocket hold per-model throughput flat while the \
         baseline loses ~75% at 4x; CoorDL's CPU grows to ~1.6x while TensorSocket's stays \
         nearly flat and the baseline's is constant (its workers are simply starved).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_throughput_collapses_at_4x() {
        let b1 = run_config(1, nonshared_strategy()).mean_samples_per_s();
        let b4 = run_config(4, nonshared_strategy()).mean_samples_per_s();
        let norm = b4 / b1;
        assert!((0.2..0.35).contains(&norm), "normalized {norm}");
    }

    #[test]
    fn both_sharers_hold_throughput_flat() {
        for strat in [tensorsocket_strategy(0), coordl_strategy()] {
            let r1 = run_config(1, strat.clone()).mean_samples_per_s();
            let r4 = run_config(4, strat).mean_samples_per_s();
            assert!((r4 / r1) > 0.93, "1x {r1} vs 4x {r4}");
        }
    }

    #[test]
    fn coordl_cpu_scales_tensorsocket_does_not() {
        let ts1 = run_config(1, tensorsocket_strategy(0)).cpu_busy_cores;
        let ts4 = run_config(4, tensorsocket_strategy(0)).cpu_busy_cores;
        let co1 = run_config(1, coordl_strategy()).cpu_busy_cores;
        let co4 = run_config(4, coordl_strategy()).cpu_busy_cores;
        let ts_scale = ts4 / ts1;
        let co_scale = co4 / co1;
        assert!(ts_scale < 1.1, "TensorSocket CPU scale {ts_scale}");
        assert!(
            (1.4..1.9).contains(&co_scale),
            "CoorDL CPU scale {co_scale}"
        );
    }

    #[test]
    fn tensorsocket_uses_less_cpu_than_coordl_at_same_throughput() {
        let ts = run_config(4, tensorsocket_strategy(0));
        let co = run_config(4, coordl_strategy());
        let thr_ratio = ts.mean_samples_per_s() / co.mean_samples_per_s();
        assert!(thr_ratio > 0.97, "{thr_ratio}");
        assert!(ts.cpu_busy_cores < co.cpu_busy_cores * 0.8);
    }
}
