//! The [`TensorProducer`]: a server owning the data-loading pipeline and
//! multicasting batch payloads to consumers (§3.2.1).
//!
//! The producer is a two-stage pipeline:
//!
//! 1. a **feeder** stage prepares batches *ahead of the publish cursor*:
//!    it iterates the wrapped loader (whose own `num_workers` threads
//!    decode and collate samples), applies the producer map, fuses loader
//!    batches into producer batches under flexible sizing, and hands the
//!    prepared batches over a bounded queue sized by the loader's
//!    `num_workers × prefetch_factor` ([`EpochSource::pipeline_hint`]);
//! 2. the **publish** stage stages each prepared batch on the configured
//!    device (accounting PCIe/NVLink/VRAM), registers storages in the
//!    shared registry (placing bytes in the shared-memory arena — through
//!    the recycling slot pool when one is bound), publishes pointer
//!    payloads, and processes the control stream (joins, readiness, acks,
//!    heartbeats, leaves).
//!
//! With `num_workers == 0` the feeder stage collapses into the publish
//! thread and batches are loaded inline (the serial producer). In both
//! shapes the publish loop never sleeps on a fixed poll: every wait parks
//! on the control channel and wakes the moment an ack/join/leave arrives,
//! with `poll_interval` only bounding stop-flag and liveness checks.
//!
//! Publishing is gated by the [`BatchWindow`]; memory release by the
//! [`AckTracker`]; admission by the [`RubberbandPolicy`]; liveness by the
//! [`HeartbeatMonitor`]. Batch order is identical across pipeline shapes:
//! the feeder queue is FIFO and sequence numbers are assigned at publish.

use crate::protocol::acks::AckTracker;
use crate::protocol::buffer::BatchWindow;
use crate::protocol::flex::plan_flex;
use crate::protocol::heartbeat::HeartbeatMonitor;
use crate::protocol::messages::{
    caps, topics, AnnounceContent, ArenaAd, BatchAnnounce, CtrlMsg, DataMsg, FlexBatchPayload,
    JoinDecision, LogAd, PayloadMode, ReplayFrom, StatsPayload, StreamedTensor, TracePayload,
    WelcomeInfo, HANDSHAKE_VERSION, TRACE_VERSION,
};
use crate::protocol::rubberband::{JoinOutcome, RubberbandPolicy};
use crate::runtime::config::{ProducerConfig, ProducerMap};
use crate::runtime::context::TsContext;
use crate::runtime::coordinator::{EpochCoordinator, GroupJoin};
use crate::runtime::staging::{FeederMsg, Placement, PreparedItem, StagingEngine};
use crate::{Result, TsError};
use crossbeam::channel::{self, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ts_data::{Batch, DataLoader};
use ts_log::{BatchLog, CursorStore};
use ts_metrics::{Counter, Gauge, Histogram, SpanKind, TraceRing};
use ts_socket::{
    coalescing_cell, CoalescingReceiver, CoalescingSender, Multipart, PubSocket, PullSocket,
    RecvError,
};
use ts_tensor::{collate, SlotPool, Tensor, TensorError, TensorPayload};

/// Pre-resolved per-pipeline stage instrumentation: histogram and gauge
/// handles looked up once at spawn (same pattern as the staging engine's
/// gauges), so hot paths record with lock-free atomics and never touch
/// the registry. Namespaced like the staging metrics: `stage.` for the
/// first standalone producer, `stage.p<n>.` for further standalone
/// producers in the same context, `stage.s<shard>.` inside a sharded
/// group.
#[derive(Clone)]
struct StageMetrics {
    /// Feeder fetch+collate time per loader batch, nanoseconds.
    feeder_fetch: Arc<Histogram>,
    /// Publish→fully-acked round trip per batch, nanoseconds.
    publish_ack: Arc<Histogram>,
    /// Current rubberband pin depth (batches held for late joiners).
    pin_depth: Arc<Gauge>,
    /// Bytes sent over the streamed payload path (one increment per
    /// stream-mode subscriber per batch: the copies are real).
    stream_tx_bytes: Arc<Counter>,
    /// Payload bytes the *publish loop* copied into the arena because an
    /// item arrived without a feeder placement. The zero-copy path — the
    /// feeder collates straight into leased slots — keeps this at 0 in
    /// steady state; every non-zero increment is a fallback (arena
    /// momentarily exhausted, or a source that hands out pre-shared
    /// storages the feeder cannot lease for).
    publish_copy_bytes: Arc<Counter>,
    /// Cursor offers displaced before any consumer-visible broadcast —
    /// the coalescing working as intended (latest-wins, no backlog).
    cursor_coalesced: Arc<Counter>,
    /// Bytes the durable-log spiller appended (CRC-framed streamed
    /// records, written off the publish hot path). 0 with no log bound.
    log_append_bytes: Arc<Counter>,
}

impl StageMetrics {
    fn new(metrics: &ts_metrics::Registry, shard: Option<u32>) -> Self {
        let prefix = match shard {
            Some(s) => format!("stage.s{s}."),
            None => match metrics.counter("stage.pipelines").fetch_inc() {
                0 => "stage.".to_string(),
                n => format!("stage.p{n}."),
            },
        };
        Self {
            feeder_fetch: metrics.histogram(&format!("{prefix}feeder_fetch_ns")),
            publish_ack: metrics.histogram(&format!("{prefix}publish_ack_ns")),
            pin_depth: metrics.gauge(&format!("{prefix}pin_depth")),
            stream_tx_bytes: metrics.counter(&format!("{prefix}stream_tx_bytes")),
            publish_copy_bytes: metrics.counter(&format!("{prefix}publish_copy_bytes")),
            cursor_coalesced: metrics.counter(&format!("{prefix}cursor_coalesced")),
            log_append_bytes: metrics.counter(&format!("{prefix}log_append_bytes")),
        }
    }
}

/// One published batch handed to the durable-log spiller: cheap `Arc`
/// clones of the live tensors plus the announce metadata. The spiller
/// encodes the exact streamed wire frame
/// ([`ProducerLoop::encode_streamed`]'s shape) and appends it, so a log
/// replay later re-sends the bytes bit-identically to what a streamed
/// subscriber would have received live.
struct SpillMsg {
    seq: u64,
    epoch: u64,
    index_in_epoch: u64,
    last_in_epoch: bool,
    fields: Vec<Tensor>,
    labels: Tensor,
}

/// Producer-side durable-log state: the shared log handle (spiller
/// appends, control path reads), the persisted consumer-group cursors,
/// and the spiller thread's plumbing.
struct LogRuntime {
    log: Arc<Mutex<BatchLog>>,
    cursors: CursorStore,
    /// Dropped at drain to stop the spiller; `None` afterwards.
    spill_tx: Option<Sender<SpillMsg>>,
    spiller: Option<std::thread::JoinHandle<()>>,
    /// `seq + 1` of the last record the spiller durably appended — the
    /// release gate: a live batch's memory may only go once its bytes are
    /// in the log (the spiller reads the arena slots while encoding).
    logged_up_to: Arc<AtomicU64>,
    /// Set by the spiller on an append failure: logging is disabled for
    /// the rest of the run (releases proceed, replay stops being offered)
    /// instead of wedging the pipeline on a bad disk.
    failed: Arc<AtomicBool>,
    /// Pre-resolved gauges (`log.` / `log.s<N>.` namespace).
    lag: Arc<Gauge>,
    retained_min: Arc<Gauge>,
    retained_max: Arc<Gauge>,
}

/// The spiller loop: encode each published batch as its streamed wire
/// frame and append it to the log, entirely off the publish hot path.
/// `logged_up_to` advances even past a failed append (with `failed`
/// latched) so the producer's release gating never wedges on disk errors.
fn run_spiller(
    rx: channel::Receiver<SpillMsg>,
    log: Arc<Mutex<BatchLog>>,
    logged_up_to: Arc<AtomicU64>,
    failed: Arc<AtomicBool>,
    append_bytes: Arc<Counter>,
    append_errors: Arc<Counter>,
) {
    while let Ok(m) = rx.recv() {
        if !failed.load(Ordering::Relaxed) {
            let announce = BatchAnnounce {
                seq: m.seq,
                epoch: m.epoch,
                index_in_epoch: m.index_in_epoch,
                last_in_epoch: m.last_in_epoch,
                content: AnnounceContent::Streamed {
                    fields: m.fields.iter().map(StreamedTensor::from_tensor).collect(),
                    labels: StreamedTensor::from_tensor(&m.labels),
                },
            };
            let frame = DataMsg::Batch(announce).encode();
            match log.lock().append(m.seq, m.epoch, m.index_in_epoch, &frame) {
                Ok(()) => append_bytes.add(frame.len() as u64),
                Err(e) => {
                    if append_errors.fetch_inc() == 0 {
                        eprintln!(
                            "tensorsocket: log append failed at seq {} ({e}) — \
                             disabling the durable log for this run",
                            m.seq
                        );
                    }
                    failed.store(true, Ordering::Release);
                }
            }
        }
        logged_up_to.store(m.seq + 1, Ordering::Release);
    }
}

/// Resolves where a log-backed replay starts: the requested position,
/// floored at what the log retains and capped at the consumer's live
/// splice point. Deliberately not `Ord::clamp` — `clamp` asserts
/// `min <= max`, and `retained_min > live_seq` is reachable from remote
/// input (an arbitrary `ReplayFrom::Seq`, or retention racing a join),
/// which must degrade to "nothing replayable behind the splice point"
/// (`start == live_seq`), never a panic on the producer control loop.
pub(crate) fn replay_start(want: u64, retained_min: u64, live_seq: u64) -> u64 {
    want.max(retained_min).min(live_seq)
}

/// Per-sample tensor geometry, the hint [`crate::Producer`]'s builder
/// uses to auto-size the shared-memory arena and its recycling slot pool
/// from the loader instead of user-computed depths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleGeometry {
    /// Byte size of each decoded tensor field, for one sample.
    pub field_bytes: Vec<usize>,
    /// Byte size of one sample's label.
    pub label_bytes: usize,
}

impl SampleGeometry {
    /// Tensors per collated batch (fields + the label tensor).
    pub fn tensors_per_batch(&self) -> usize {
        self.field_bytes.len() + 1
    }

    /// The largest single tensor a batch of `batch_size` samples
    /// produces.
    pub fn max_tensor_bytes(&self, batch_size: usize) -> usize {
        self.field_bytes
            .iter()
            .chain(std::iter::once(&self.label_bytes))
            .map(|b| b * batch_size)
            .max()
            .unwrap_or(0)
    }
}

/// A source of epochs of batches — the loader the producer wraps.
///
/// Implemented by [`ts_data::DataLoader`]; implement it for custom loaders
/// (e.g. a Hugging-Face-style loader) to share them the same way, matching
/// the paper's "wrapper around data loaders" design (§3.2).
pub trait EpochSource: Send + 'static {
    /// Batches one epoch yields.
    fn batches_per_epoch(&self) -> usize;

    /// Samples per batch (used to size flexible producer batches).
    fn batch_size(&self) -> usize;

    /// Iterate one epoch.
    fn epoch(&self, epoch: u64) -> Box<dyn Iterator<Item = Batch> + Send + '_>;

    /// Pipeline sizing hint, `(num_workers, prefetch_factor)`.
    ///
    /// With `num_workers == 0` the producer loads inline on the publish
    /// thread (the serial shape); otherwise it spawns a feeder stage that
    /// prepares batches ahead of the publish cursor, with a hand-off queue
    /// of `num_workers × prefetch_factor` prepared batches (overridable
    /// via [`ProducerConfig::pipeline_depth`]).
    fn pipeline_hint(&self) -> (usize, usize) {
        (0, 2)
    }

    /// Per-sample tensor geometry, when the source can cheaply know it
    /// (e.g. by decoding one sample). `None` means the
    /// [`crate::Producer`] builder cannot auto-size a shared-memory
    /// arena for this source and requires explicit geometry.
    fn sample_geometry(&self) -> Option<SampleGeometry> {
        None
    }
}

impl EpochSource for DataLoader {
    fn batches_per_epoch(&self) -> usize {
        DataLoader::batches_per_epoch(self)
    }

    fn batch_size(&self) -> usize {
        self.config().batch_size
    }

    fn epoch(&self, epoch: u64) -> Box<dyn Iterator<Item = Batch> + Send + '_> {
        Box::new(DataLoader::epoch(self, epoch))
    }

    fn pipeline_hint(&self) -> (usize, usize) {
        DataLoader::pipeline_hint(self)
    }

    /// Decodes sample 0 to measure one sample's tensor geometry. Assumes
    /// the transform pipeline preserves per-sample byte size (the usual
    /// augmentation case); pass explicit arena geometry to the builder
    /// for size-changing pipelines.
    fn sample_geometry(&self) -> Option<SampleGeometry> {
        let dataset = self.dataset();
        if dataset.is_empty() {
            return None;
        }
        let raw = dataset.get(0).ok()?;
        let decoded = dataset.decode(&raw).ok()?;
        Some(SampleGeometry {
            field_bytes: decoded.fields.iter().map(|t| t.view_bytes()).collect(),
            label_bytes: std::mem::size_of::<i64>(),
        })
    }
}

/// An in-memory epoch source: serves the same pre-built batches every
/// epoch.
///
/// This is the adapter for loaders this crate does not know about — e.g.
/// a Hugging-Face-style loader (the Table 4 scenario wraps one): build the
/// batches with whatever pipeline you have, hand them to a `VecSource`,
/// and the producer shares them like any other loader.
pub struct VecSource {
    batches: Vec<Batch>,
    batch_size: usize,
}

impl VecSource {
    /// Wraps pre-built batches. All batches must have the same size;
    /// returns an error otherwise (flexible sizing depends on it).
    pub fn new(batches: Vec<Batch>) -> Result<Self> {
        let batch_size = batches
            .first()
            .map(|b| b.batch_size())
            .ok_or_else(|| TsError::Config("VecSource needs at least one batch".into()))?;
        if let Some(bad) = batches.iter().find(|b| b.batch_size() != batch_size) {
            return Err(TsError::Config(format!(
                "VecSource batches must be uniform: found {} and {}",
                batch_size,
                bad.batch_size()
            )));
        }
        Ok(Self {
            batches,
            batch_size,
        })
    }
}

impl EpochSource for VecSource {
    fn batches_per_epoch(&self) -> usize {
        self.batches.len()
    }

    fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn sample_geometry(&self) -> Option<SampleGeometry> {
        let first = self.batches.first()?;
        let b = self.batch_size.max(1);
        Some(SampleGeometry {
            field_bytes: first
                .fields
                .iter()
                .map(|t| t.view_bytes().div_ceil(b))
                .collect(),
            label_bytes: first.labels.view_bytes().div_ceil(b),
        })
    }

    fn epoch(&self, epoch: u64) -> Box<dyn Iterator<Item = Batch> + Send + '_> {
        let n = self.batches.len();
        Box::new(self.batches.iter().enumerate().map(move |(i, b)| {
            let mut batch = b.clone();
            batch.epoch = epoch;
            batch.index = i;
            batch.last_in_epoch = i + 1 == n;
            batch
        }))
    }
}

/// Turns raw loader batches into [`PreparedItem`]s: applies the producer
/// map and, under flexible sizing, accumulates loader batches until a
/// producer batch is full and collates it. Used by both pipeline shapes so
/// serial and pipelined producers publish byte-identical streams.
struct Preparer {
    /// Flexible producer batch size; `None` passes loader batches through.
    producer_batch: Option<usize>,
    map: Option<ProducerMap>,
    /// Zero-copy publish: the recycling slot pool this pipeline's feeder
    /// leases arena slots from, plus the placement key the publish loop
    /// hands to [`ts_tensor::SharedRegistry::register_placed`]. `None`
    /// (no arena, or no pool bound for the shard) keeps the copying
    /// publish path.
    lease: Option<(SlotPool, Option<u32>)>,
    acc: Vec<Batch>,
    acc_samples: usize,
    pb_index: u64,
}

impl Preparer {
    fn new(cfg: &ProducerConfig, lease: Option<(SlotPool, Option<u32>)>) -> Self {
        Self {
            producer_batch: cfg.flexible.as_ref().map(|f| f.producer_batch),
            map: cfg.producer_map.clone(),
            lease,
            acc: Vec::new(),
            acc_samples: 0,
            pb_index: 0,
        }
    }

    /// Produces one output tensor from `parts`, collating directly into a
    /// leased arena slot when the zero-copy path applies (a pool is
    /// bound and every part is a host tensor not already backed by the
    /// arena). The resulting [`Placement`] carries the armed lease to the
    /// publish loop, which adopts it with zero bytes moved.
    ///
    /// Lease exhaustion (`TensorError::Arena`) falls back to the heap
    /// path silently — the publish loop will place (and count) the copy.
    /// `Err(())` is reserved for real collation failures.
    fn place_one(
        &self,
        parts: Vec<Tensor>,
    ) -> std::result::Result<(Tensor, Option<Placement>), ()> {
        if let Some((pool, pool_key)) = &self.lease {
            let eligible = parts
                .iter()
                .all(|t| !t.device().is_gpu() && !t.storage().is_shared_memory());
            if eligible {
                match collate::cat0_leased(&parts, pool, parts[0].device()) {
                    Ok((tensor, lease)) => {
                        return Ok((
                            tensor,
                            Some(Placement {
                                lease,
                                pool_key: *pool_key,
                            }),
                        ));
                    }
                    Err(TensorError::Arena(_)) => {}
                    Err(_) => return Err(()),
                }
            }
        }
        match parts.len() {
            1 => Ok((parts.into_iter().next().expect("one part"), None)),
            _ => Ok((collate::cat0(&parts).map_err(|_| ())?, None)),
        }
    }

    /// Feeds one loader batch; returns a prepared item when one is ready
    /// (always, in default mode; on producer-batch boundaries under
    /// flexible sizing) and `Err(())` when collation fails.
    fn push(&mut self, batch: Batch, last: bool) -> std::result::Result<Option<PreparedItem>, ()> {
        let Some(producer_batch) = self.producer_batch else {
            let batch = match &self.map {
                Some(map) => map(batch),
                None => batch,
            };
            let index_in_epoch = batch.index as u64;
            let mut fields = Vec::with_capacity(batch.fields.len());
            let mut placements = Vec::with_capacity(batch.fields.len() + 1);
            for t in batch.fields {
                let (t, p) = self.place_one(vec![t])?;
                fields.push(t);
                placements.push(p);
            }
            let (labels, p) = self.place_one(vec![batch.labels])?;
            placements.push(p);
            return Ok(Some(PreparedItem {
                index_in_epoch,
                last_in_epoch: last,
                fields,
                labels,
                placements,
                staged: false,
                staged_bytes: 0,
                fetch_span: (0, 0),
                copy_wait_span: (0, 0),
                h2d_span: (0, 0),
            }));
        };
        // Flexible sizing accumulates *raw* loader batches and applies the
        // map only at flush: boundary decisions must count raw sample
        // sizes, because `expected_announces` is computed from raw loader
        // geometry — a size-changing map would otherwise desynchronize
        // the two.
        self.acc_samples += batch.batch_size();
        self.acc.push(batch);
        if self.acc_samples < producer_batch && !last {
            return Ok(None);
        }
        let parts = std::mem::take(&mut self.acc);
        self.acc_samples = 0;
        let parts: Vec<Batch> = match &self.map {
            Some(map) => parts.into_iter().map(|b| map(b)).collect(),
            None => parts,
        };
        // Build the contiguous producer batch per field — straight into
        // leased arena slots when the zero-copy path is on, so the fuse
        // IS the placement and the publish loop moves no bytes.
        let num_fields = parts[0].fields.len();
        let mut fields = Vec::with_capacity(num_fields);
        let mut placements = Vec::with_capacity(num_fields + 1);
        for f in 0..num_fields {
            let per_part: Vec<Tensor> = parts.iter().map(|b| b.fields[f].clone()).collect();
            let (t, p) = self.place_one(per_part)?;
            fields.push(t);
            placements.push(p);
        }
        let label_parts: Vec<Tensor> = parts.iter().map(|b| b.labels.clone()).collect();
        let (labels, p) = self.place_one(label_parts)?;
        placements.push(p);
        let item = PreparedItem {
            index_in_epoch: self.pb_index,
            last_in_epoch: last,
            fields,
            labels,
            placements,
            staged: false,
            staged_bytes: 0,
            fetch_span: (0, 0),
            copy_wait_span: (0, 0),
            h2d_span: (0, 0),
        };
        self.pb_index += 1;
        Ok(Some(item))
    }
}

/// The feeder stage: owns the epoch source for the whole run and prepares
/// every epoch's batches ahead of the publish cursor — it rolls straight
/// from one epoch into the next, so the publish tail of epoch `e`
/// overlaps the preparation of `e + 1` with no refill bubble at the
/// boundary. The bounded item channel is both the backpressure (the
/// feeder parks once `depth` prepared batches are waiting) and the pacing
/// (the publish stage does not read epoch `e + 1` items before its
/// `EpochDone(e)` marker).
fn feeder_main(
    source: impl EpochSource,
    cfg: ProducerConfig,
    lease: Option<(SlotPool, Option<u32>)>,
    item_tx: Sender<FeederMsg>,
    stop: Arc<AtomicBool>,
    fetch_hist: Arc<Histogram>,
    trace: Arc<TraceRing>,
) {
    for epoch in 0..cfg.epochs {
        let mut preparer = Preparer::new(&cfg, lease.clone());
        let total = source.batches_per_epoch();
        let mut iter = source.epoch(epoch);
        let mut i = 0usize;
        // Fetch-span open stamp: under flexible sizing one item fuses
        // several loader batches, and its span covers the whole
        // accumulation, not just the last fetch.
        let mut fetch_open = 0u64;
        loop {
            // Time the fetch+collate of one loader batch — the
            // "loader-bound" signal. Backpressure on the item channel is
            // deliberately excluded: a full queue means the *publish*
            // stage is behind, not the loader.
            let fetch_start = Instant::now();
            if fetch_open == 0 {
                fetch_open = trace.now_ns().max(1);
            }
            let Some(batch) = iter.next() else { break };
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let pushed = preparer.push(batch, i + 1 == total);
            fetch_hist.record_duration(fetch_start.elapsed());
            match pushed {
                Ok(Some(mut item)) => {
                    item.fetch_span = (fetch_open, trace.now_ns());
                    fetch_open = 0;
                    if item_tx.send(FeederMsg::Item(item)).is_err() {
                        return; // publish stage went away
                    }
                }
                Ok(None) => {}
                Err(()) => {
                    let _ = item_tx.send(FeederMsg::Failed);
                    return;
                }
            }
            i += 1;
        }
        drop(iter);
        if item_tx.send(FeederMsg::EpochDone(epoch)).is_err() {
            return;
        }
    }
}

/// Counters reported by [`TensorProducer::join`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProducerStats {
    /// Epochs fully published.
    pub epochs_completed: u64,
    /// Announcements published (loader batches in default mode, producer
    /// batches in flexible mode).
    pub batches_published: u64,
    /// Batches replayed to rubberband joiners.
    pub batches_replayed: u64,
    /// Bytes staged onto the producer device.
    pub bytes_staged: u64,
    /// Peak number of simultaneously admitted consumers.
    pub peak_consumers: usize,
    /// Consumers detached for missing heartbeats.
    pub consumers_detached: u64,
    /// Joins rejected.
    pub joins_rejected: u64,
}

/// Handle to a running producer.
///
/// Mirrors the paper's `producer.join()` clean-up call (Figure 3b): the
/// producer thread runs every epoch, then waits for outstanding acks and
/// publishes `End`.
pub struct TensorProducer {
    handle: Option<std::thread::JoinHandle<ProducerStats>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for TensorProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TensorProducer")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl TensorProducer {
    /// Spawns the producer thread over `source`.
    #[deprecated(
        since = "0.2.0",
        note = "use `tensorsocket::Producer::builder()…spawn(source)` — one facade for \
                plain and sharded producers, with arena/pool/staging auto-sizing"
    )]
    pub fn spawn(
        source: impl EpochSource,
        ctx: &TsContext,
        cfg: ProducerConfig,
    ) -> Result<TensorProducer> {
        Self::spawn_impl(source, ctx, cfg)
    }

    /// The non-deprecated spawn path shared by the legacy shim and the
    /// [`crate::Producer`] builder.
    pub(crate) fn spawn_impl(
        source: impl EpochSource,
        ctx: &TsContext,
        cfg: ProducerConfig,
    ) -> Result<TensorProducer> {
        Self::spawn_inner(source, ctx, cfg, None, 0)
    }

    /// Spawns one shard of a coordinated group (see
    /// [`crate::ShardedProducerGroup`]): epoch boundaries, join admission
    /// and pin release go through the coordinator.
    pub(crate) fn spawn_sharded(
        source: impl EpochSource,
        ctx: &TsContext,
        cfg: ProducerConfig,
        coordinator: Arc<EpochCoordinator>,
        shard: u32,
    ) -> Result<TensorProducer> {
        Self::spawn_inner(source, ctx, cfg, Some(coordinator), shard)
    }

    fn spawn_inner(
        source: impl EpochSource,
        ctx: &TsContext,
        cfg: ProducerConfig,
        coord: Option<Arc<EpochCoordinator>>,
        shard: u32,
    ) -> Result<TensorProducer> {
        if cfg.buffer_size == 0 {
            return Err(TsError::Config("buffer_size must be >= 1".into()));
        }
        if let Some(flex) = &cfg.flexible {
            if flex.producer_batch == 0 {
                return Err(TsError::Config("producer_batch must be >= 1".into()));
            }
        }
        if cfg.log.is_some() && cfg.flexible.is_some() {
            return Err(TsError::Config(
                "durable log and flexible sizing are incompatible: per-consumer carved \
                 views have no streamed serialization to store"
                    .into(),
            ));
        }
        let publisher = PubSocket::bind(&ctx.sockets, &cfg.data_endpoint())
            .map_err(|e| TsError::Socket(e.to_string()))?;
        let ctrl = PullSocket::bind(&ctx.sockets, &cfg.ctrl_endpoint())
            .map_err(|e| TsError::Socket(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let staging = StagingEngine::build(ctx, &cfg, coord.as_ref().map(|_| shard));
        let stage = StageMetrics::new(&ctx.metrics, coord.as_ref().map(|_| shard));
        let logrt = match &cfg.log {
            None => None,
            Some(logcfg) => Some(Self::build_log_runtime(
                ctx,
                logcfg,
                coord.as_ref().map(|_| shard),
                shard,
                &stage,
            )?),
        };
        let (cursor_tx, cursor_rx) = coalescing_cell();
        let state = ProducerLoop {
            ctx: ctx.clone(),
            cfg,
            coord,
            shard,
            publisher,
            ctrl,
            stop: stop.clone(),
            staging,
            cursor_tx,
            cursor_rx,
            last_cursor_flush: Instant::now(),
            replaying: false,
            deferred_replays: Vec::new(),
            logrt,
            groups: HashMap::new(),
            log_infos: HashMap::new(),
            deferred_log_replays: Vec::new(),
            last_log_sweep: Instant::now(),
            window: BatchWindow::new(0), // re-created in run() with real capacity
            acks: AckTracker::new(),
            hb: HeartbeatMonitor::new(1),
            consumers: HashMap::new(),
            awaiting_ready: HashSet::new(),
            join_replies: HashMap::new(),
            last_reply_nudge: Instant::now(),
            pending_join: Vec::new(),
            live: BTreeMap::new(),
            pinned: Vec::new(),
            pin_epoch: 0,
            epoch_start_seq: 0,
            published_in_epoch: 0,
            expected_announces: 0,
            epoch: 0,
            loader_batches: 0,
            loader_batch_size: 0,
            welcome: None,
            started: Instant::now(),
            stats: ProducerStats::default(),
            stage,
            trace: ctx.trace.clone(),
            last_publish: Instant::now(),
            last_watchdog: Instant::now(),
            watchdog_memo: None,
        };
        let name = match &state.coord {
            Some(_) => format!("tensorsocket-producer-s{shard}"),
            None => "tensorsocket-producer".to_string(),
        };
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || state.run(source))
            .map_err(|e| TsError::Socket(format!("spawn failed: {e}")))?;
        Ok(TensorProducer {
            handle: Some(handle),
            stop,
        })
    }

    /// Opens the shard's durable batch log and cursor store, spawns the
    /// spiller thread and pre-resolves the `log.*` gauges.
    ///
    /// A non-empty existing log is refused: sequence numbers restart at 0
    /// every producer run, so appending over a previous run's records
    /// would serve stale bytes to replaying groups. The log directory is
    /// per-producer-run; consumer restarts (the crash-resume contract)
    /// happen within one producer run.
    fn build_log_runtime(
        ctx: &TsContext,
        logcfg: &ts_log::LogConfig,
        shard_ns: Option<u32>,
        shard: u32,
        stage: &StageMetrics,
    ) -> Result<LogRuntime> {
        let log =
            BatchLog::open(logcfg, shard).map_err(|e| TsError::Config(format!("log open: {e}")))?;
        if log.next_seq().is_some() {
            return Err(TsError::Config(format!(
                "log dir {} already holds records from a previous run; point \
                 .log() at a fresh directory (sequence numbers restart per run)",
                logcfg.dir.display()
            )));
        }
        let cursors = CursorStore::open(&logcfg.dir)
            .map_err(|e| TsError::Config(format!("cursor store open: {e}")))?;
        let logged_up_to = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(log));
        let (spill_tx, spill_rx) = channel::unbounded::<SpillMsg>();
        let spiller = {
            let log = log.clone();
            let logged_up_to = logged_up_to.clone();
            let failed = failed.clone();
            let append_bytes = stage.log_append_bytes.clone();
            let append_errors = ctx.metrics.counter("log.append_errors");
            std::thread::Builder::new()
                .name(format!("ts-log-spiller-s{shard}"))
                .spawn(move || {
                    run_spiller(
                        spill_rx,
                        log,
                        logged_up_to,
                        failed,
                        append_bytes,
                        append_errors,
                    )
                })
                .map_err(|e| TsError::Socket(format!("spawn spiller: {e}")))?
        };
        let prefix = match shard_ns {
            Some(s) => format!("log.s{s}."),
            None => "log.".to_string(),
        };
        let retained_min = ctx.metrics.gauge(&format!("{prefix}retained_min"));
        let retained_max = ctx.metrics.gauge(&format!("{prefix}retained_max"));
        // Same inverted-range convention as the WELCOME ad: min > max
        // reads "log enabled, nothing retained yet" to scrapers.
        retained_min.set(1.0);
        retained_max.set(0.0);
        Ok(LogRuntime {
            log,
            cursors,
            spill_tx: Some(spill_tx),
            spiller: Some(spiller),
            logged_up_to,
            failed,
            lag: ctx.metrics.gauge(&format!("{prefix}lag")),
            retained_min,
            retained_max,
        })
    }

    /// Requests the producer to stop after the batch in flight.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the producer to finish all epochs and shut down cleanly.
    ///
    /// Joining an [`TensorProducer::abort`]ed producer is not an error: the
    /// partial [`ProducerStats`] accumulated up to the abort are returned
    /// (with `epochs_completed` short of the configured count), and the
    /// producer skips the outstanding-ack drain so the join returns
    /// promptly. `Err` is reserved for a panicked producer thread.
    pub fn join(mut self) -> Result<ProducerStats> {
        let handle = self.handle.take().expect("join called once");
        handle
            .join()
            .map_err(|_| TsError::Socket("producer thread panicked".into()))
    }
}

impl Drop for TensorProducer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct ConsumerInfo {
    batch_size: u32,
    /// Stable index used for flexible-mode offsets.
    index: usize,
    /// How this consumer's payload bytes travel: shm pointer-passing or
    /// length-prefixed streaming — negotiated at attach, fixed per
    /// subscription.
    mode: PayloadMode,
    /// First live-stream sequence this consumer was admitted at: the
    /// splice point a durable-log replay streams up to (exclusive).
    start_seq: u64,
}

/// A published batch whose tensors are still registered.
struct LiveBatch {
    epoch: u64,
    index_in_epoch: u64,
    last_in_epoch: bool,
    fields: Vec<Tensor>,
    labels: Tensor,
    /// Fully acked, release deferred because the rubberband window is open.
    releasable: bool,
    /// When the announcement went out, for the publish→ack round trip.
    published_at: Instant,
    /// Same instant on the flight recorder's clock — the ack span's start.
    published_ns: u64,
}

struct ProducerLoop {
    ctx: TsContext,
    cfg: ProducerConfig,
    /// Group coordinator when this loop is one shard of a
    /// [`crate::ShardedProducerGroup`].
    coord: Option<Arc<EpochCoordinator>>,
    /// Shard index within the group (0 when uncoordinated).
    shard: u32,
    publisher: PubSocket,
    ctrl: PullSocket,
    stop: Arc<AtomicBool>,
    /// Device staging engine (GPU devices with staging enabled): the
    /// slab pool plus, in the overlapped mode, the H2D copy stage.
    staging: Option<Arc<StagingEngine>>,
    /// Latest-wins publish-cursor cell: every publish offers the shard's
    /// position, housekeeping broadcasts whatever is current at a bounded
    /// cadence — a consumer waking from a stall reads ONE announcement,
    /// never a backlog.
    cursor_tx: CoalescingSender<(u64, u64, u64)>,
    cursor_rx: CoalescingReceiver<(u64, u64, u64)>,
    last_cursor_flush: Instant,
    /// True while `replay_to` or `stream_log_replay` streams a catch-up:
    /// control is drained between replayed batches (to observe a
    /// mid-replay detach), and a Ready or Replay landing there must defer
    /// its own replay instead of recursing.
    replaying: bool,
    deferred_replays: Vec<u64>,
    /// Durable-log state when [`ProducerConfig::log`] is set: spiller,
    /// cursor store and pre-resolved gauges.
    logrt: Option<LogRuntime>,
    /// Consumer id → registered group name, for the ack → cursor-advance
    /// write-through.
    groups: HashMap<u64, String>,
    /// Cached encoded `LogInfo` reply per consumer: a re-sent `Replay`
    /// request re-answers the cached frame, never a second replay stream.
    log_infos: HashMap<u64, bytes::Bytes>,
    /// Log replays `(consumer, from, to)` that landed while another
    /// replay was streaming; drained in arrival order.
    deferred_log_replays: Vec<(u64, u64, u64)>,
    /// Last pin-shed / retention / gauge sweep of the log subsystem.
    last_log_sweep: Instant,
    window: BatchWindow,
    acks: AckTracker,
    hb: HeartbeatMonitor,
    consumers: HashMap<u64, ConsumerInfo>,
    awaiting_ready: HashSet<u64>,
    /// Encoded `JoinReply` per consumer still awaiting `Ready`, re-sent
    /// periodically: on remote transports the reply can be published while
    /// the joiner's subscription is still propagating, and a lost reply
    /// would otherwise deadlock the handshake.
    join_replies: HashMap<u64, bytes::Bytes>,
    last_reply_nudge: Instant,
    pending_join: Vec<(u64, u32, PayloadMode)>,
    live: BTreeMap<u64, LiveBatch>,
    /// Seqs pinned for rubberband replay (current epoch, window open).
    pinned: Vec<u64>,
    /// The epoch the current admission state (`epoch_start_seq`, pin set)
    /// belongs to. Usually equals `epoch`; it lags by one while a
    /// coordinated shard is parked at the epoch barrier — `epoch` already
    /// names the next epoch, but a join admitted there replays the
    /// PREVIOUS epoch's pins, and its reply must say so or the consumer's
    /// shard-interleave cursors desynchronize.
    pin_epoch: u64,
    epoch_start_seq: u64,
    published_in_epoch: u64,
    expected_announces: u64,
    epoch: u64,
    /// Loader geometry, captured before the source moves into the feeder.
    loader_batches: u64,
    loader_batch_size: u64,
    /// The WELCOME self-description answered to attach HELLOs, built at
    /// `run` start once the loader geometry is known. Every shard of a
    /// group carries the identical description, but only shard 0 — whose
    /// control endpoint *is* the base endpoint consumers hello at — ever
    /// answers one.
    welcome: Option<WelcomeInfo>,
    started: Instant,
    stats: ProducerStats,
    /// Pre-resolved stage histogram/gauge handles (lock-free recording).
    stage: StageMetrics,
    /// The context's flight recorder (also cloned into the feeder and the
    /// staging engine): per-batch span stamps, TraceRequest replies, and
    /// the watchdog verdict all go through this one ring.
    trace: Arc<TraceRing>,
    /// When the last batch was announced — the watchdog's idle signal.
    last_publish: Instant,
    /// Last watchdog sweep, bounding the sweep to a low cadence.
    last_watchdog: Instant,
    /// Identity of the last stall counted — `(epoch, seq)` — so one
    /// ongoing stall increments its counter once, not once per sweep.
    watchdog_memo: Option<(u64, u64)>,
}

impl ProducerLoop {
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn run(mut self, source: impl EpochSource) -> ProducerStats {
        self.window = BatchWindow::new(self.cfg.buffer_size);
        self.hb = HeartbeatMonitor::new(self.cfg.heartbeat_timeout.as_nanos() as u64);
        let policy = RubberbandPolicy {
            cutoff: self.cfg.rubberband_cutoff,
        };
        self.loader_batches = source.batches_per_epoch() as u64;
        self.loader_batch_size = source.batch_size() as u64;
        self.welcome = Some(WelcomeInfo {
            version: HANDSHAKE_VERSION,
            shards: self
                .coord
                .as_ref()
                .map(|c| c.num_shards() as u32)
                .unwrap_or(1),
            batch_size: self.loader_batch_size as u32,
            flex_producer_batch: self
                .cfg
                .flexible
                .as_ref()
                .map(|f| f.producer_batch as u32)
                .unwrap_or(0),
            staging: self.cfg.staging.mode.wire_code(),
            arena: self.ctx.registry.arena().map(|a| {
                let g = a.geometry();
                ArenaAd {
                    path: g.path.display().to_string(),
                    nslots: g.nslots as u64,
                    slot_size: g.slot_size as u64,
                }
            }),
            endpoint_overrides: self.cfg.shard_endpoints.clone(),
            // Flexible sizing carves per-consumer views of shared
            // storage; there is no streamed serialization of those views
            // yet, so flex producers grant the shm path only.
            payload_modes: if self.cfg.flexible.is_some() {
                caps::SHM
            } else {
                caps::SHM | caps::STREAM
            },
            // The retained range moves with every append and retention
            // sweep, so the ad is stamped per-HELLO (see the Hello arm),
            // not baked into the template.
            log: None,
        });
        if let Some(engine) = &self.staging {
            // Size the slab rotation before the first item is staged:
            // rubberband-pinned batches keep their slabs leased past full
            // acknowledgement, so the pool must cover the pin set or
            // steady-state staging would fall back to transient device
            // allocations on long epochs.
            engine.set_pin_headroom(policy.pinned_batches(self.expected_announces()) as usize);
        }
        // Resolve the feeder's lease pool once: pools are bound by the
        // builder before spawn. With one bound, collation writes straight
        // into recycled arena slots and publish is pure metadata.
        let lease = self
            .ctx
            .registry
            .lease_pool(self.coord.as_ref().map(|_| self.shard));
        let (workers, prefetch) = source.pipeline_hint();
        if workers == 0 {
            self.epochs_inline(source, lease, &policy);
        } else {
            let depth = self.cfg.pipeline_depth.unwrap_or(workers * prefetch).max(1);
            self.epochs_pipelined(source, lease, depth, &policy);
        }
        self.drain_outstanding();
        let _ = self
            .publisher
            .send(topics::CTRL, Multipart::single(DataMsg::End.encode()));
        // Release the staging subsystem: join the copy stage and drain
        // the VRAM slab rotation (consumers still reading return their
        // slabs' accounting when they let go).
        if let Some(engine) = &self.staging {
            engine.shutdown();
        }
        // Leave the group: barriers must not wait for a finished shard.
        if let Some(coord) = &self.coord {
            coord.retire(self.shard);
        }
        self.stats
    }

    /// Coordinated mode: parks at the group's epoch barrier until every
    /// shard finished the previous epoch, while staying responsive on the
    /// control channel (acks, heartbeats and joins keep flowing — a join
    /// landing here is deferred to the boundary by the coordinator).
    /// Uncoordinated producers pass straight through. Returns false to
    /// stop.
    fn sync_epoch_barrier(&mut self, policy: &RubberbandPolicy) -> bool {
        let Some(coord) = self.coord.clone() else {
            return true;
        };
        let pin_limit = policy.pinned_batches(self.expected_announces);
        let target = coord.arrive(self.shard, self.epoch, pin_limit);
        while !coord.reached(target) {
            if self.stop.load(Ordering::Relaxed) || coord.is_stopped() {
                return false;
            }
            if !self.wait_ctrl() {
                return false;
            }
        }
        !coord.is_stopped()
    }

    /// The serial shape: load, prepare and publish on this thread.
    fn epochs_inline(
        &mut self,
        source: impl EpochSource,
        lease: Option<(SlotPool, Option<u32>)>,
        policy: &RubberbandPolicy,
    ) {
        for epoch in 0..self.cfg.epochs {
            self.epoch = epoch;
            self.expected_announces = self.expected_announces();
            // In a group, align with the other shards BEFORE flushing the
            // pin set: pins survive the coordinated boundary, so a join
            // racing the boundary still replays from every shard.
            if !self.sync_epoch_barrier(policy) {
                return;
            }
            // Flush the previous epoch's deferred releases only now: the
            // pin set stays alive across the epoch boundary, so a join
            // landing between its last publish and this point can still
            // rubberband into it (after the final epoch, during drain).
            self.close_join_window();
            if !self.begin_epoch() {
                return; // stopped or no consumer ever arrived
            }
            let mut preparer = Preparer::new(&self.cfg, lease.clone());
            let total = source.batches_per_epoch();
            let mut iter = source.epoch(epoch);
            let mut i = 0usize;
            let mut fetch_open = 0u64;
            loop {
                // Same fetch+collate timing as the pipelined feeder:
                // publish time is excluded, so the histogram means the
                // same thing in both shapes.
                let fetch_start = Instant::now();
                if fetch_open == 0 {
                    fetch_open = self.trace.now_ns().max(1);
                }
                let Some(batch) = iter.next() else { break };
                if self.stop.load(Ordering::Relaxed) {
                    return;
                }
                let pushed = preparer.push(batch, i + 1 == total);
                self.stage
                    .feeder_fetch
                    .record_duration(fetch_start.elapsed());
                match pushed {
                    Ok(Some(mut item)) => {
                        item.fetch_span = (fetch_open, self.trace.now_ns());
                        fetch_open = 0;
                        if !self.publish_prepared(item, policy) {
                            return;
                        }
                    }
                    Ok(None) => {}
                    Err(()) => return, // collation failed: stop producing
                }
                i += 1;
            }
            drop(iter);
            self.stats.epochs_completed += 1;
        }
    }

    /// The pipelined shape: a feeder thread owns the source and prepares
    /// batches ahead of the publish cursor; this thread publishes them in
    /// arrival (= loader) order.
    fn epochs_pipelined(
        &mut self,
        source: impl EpochSource,
        lease: Option<(SlotPool, Option<u32>)>,
        depth: usize,
        policy: &RubberbandPolicy,
    ) {
        let (item_tx, item_rx) = channel::bounded::<FeederMsg>(depth);
        let feeder_cfg = self.cfg.clone();
        let feeder_stop = self.stop.clone();
        let feeder_hist = self.stage.feeder_fetch.clone();
        let feeder_trace = self.trace.clone();
        let feeder = std::thread::Builder::new()
            .name("tensorsocket-feeder".to_string())
            .spawn(move || {
                feeder_main(
                    source,
                    feeder_cfg,
                    lease,
                    item_tx,
                    feeder_stop,
                    feeder_hist,
                    feeder_trace,
                )
            })
            .expect("spawn feeder thread");
        // Overlapped staging interposes the H2D copy stage between the
        // feeder and this publish loop: items arrive here already staged,
        // so the copy of batch n runs while n+1 collates and n-1
        // publishes. Serial/off modes keep the direct hand-off.
        let item_rx = match &self.staging {
            Some(engine) if engine.overlapped() => {
                engine.spawn_copy_stage(item_rx, self.stop.clone())
            }
            _ => item_rx,
        };
        'epochs: for epoch in 0..self.cfg.epochs {
            self.epoch = epoch;
            self.expected_announces = self.expected_announces();
            if !self.sync_epoch_barrier(policy) {
                break;
            }
            // As in the serial shape: the previous epoch's pin set stays
            // alive across the boundary for rubberband joins.
            self.close_join_window();
            // The feeder is already loading this epoch (it rolls across
            // epoch boundaries on its own): by the time the first consumer
            // is admitted, `depth` batches are ready.
            if !self.begin_epoch() {
                break;
            }
            loop {
                if self.stop.load(Ordering::Relaxed) {
                    break 'epochs;
                }
                match item_rx.recv_timeout(self.cfg.poll_interval) {
                    Ok(FeederMsg::Item(item)) => {
                        if !self.publish_prepared(item, policy) {
                            break 'epochs;
                        }
                    }
                    Ok(FeederMsg::EpochDone(e)) if e == epoch => break,
                    Ok(FeederMsg::EpochDone(_)) => {}
                    Ok(FeederMsg::Failed) | Err(RecvTimeoutError::Disconnected) => break 'epochs,
                    // No item ready yet (loader-bound): stay responsive to
                    // joins/acks/heartbeats while the feeder catches up.
                    Err(RecvTimeoutError::Timeout) => self.poll_ctrl_once(),
                }
            }
            self.stats.epochs_completed += 1;
        }
        // Disconnect the item channel: the feeder observes the hangup even
        // mid-`send` and exits; nothing it prepared was registered, so
        // undelivered items just drop.
        drop(item_rx);
        let _ = feeder.join();
    }

    fn expected_announces(&self) -> u64 {
        match &self.cfg.flexible {
            None => self.loader_batches,
            Some(flex) => {
                let samples = self.loader_batches * self.loader_batch_size;
                samples.div_ceil(flex.producer_batch as u64)
            }
        }
    }

    /// Waits for at least one admitted consumer, admits pending boundary
    /// joiners, and announces the epoch. Returns false to stop.
    fn begin_epoch(&mut self) -> bool {
        self.published_in_epoch = 0;
        self.pin_epoch = self.epoch;
        self.epoch_start_seq = self.window.next_seq();
        // Admit everyone who was told to wait for this epoch (including
        // joins deferred because their group decision was stamped with an
        // epoch this shard had not begun yet — now it has).
        let pending = std::mem::take(&mut self.pending_join);
        for (id, bs, mode) in pending {
            self.admit(id, bs, mode, /*replay=*/ false);
            if let Some(coord) = &self.coord {
                coord.applied(self.shard, id);
            }
        }
        let deadline = self.cfg.first_consumer_timeout.map(|d| Instant::now() + d);
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return false;
            }
            self.poll_ctrl_once();
            if !self.consumers.is_empty() && self.awaiting_ready.is_empty() {
                break;
            }
            if self.consumers.is_empty() {
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        return false;
                    }
                }
            }
            // Park until the next control message (a join/ready, normally)
            // rather than sleeping a fixed interval.
            if !self.wait_ctrl() {
                return false;
            }
        }
        let msg = DataMsg::EpochStart {
            epoch: self.epoch,
            num_batches: self.expected_announces,
        };
        let _ = self
            .publisher
            .send(topics::CTRL, Multipart::single(msg.encode()));
        true
    }

    /// Ensures a prepared item's tensors sit on the producer device,
    /// whichever staging shape is configured:
    ///
    /// * already staged (the overlapped copy stage ran) — pass through;
    /// * engine present (serial mode, or overlapped in the inline
    ///   producer shape, which has no feeder to overlap with) — stage
    ///   through the slab pool now;
    /// * no engine — the legacy per-tensor transfer.
    ///
    /// Returns `None` on device OOM (the producer stops, exactly like
    /// the legacy path).
    fn ensure_staged(&mut self, item: PreparedItem) -> Option<PreparedItem> {
        let staged_bytes = if item.staged {
            item.staged_bytes
        } else if let Some(engine) = self.staging.clone() {
            let staged = engine.stage_item(item).ok()?;
            let bytes = staged.staged_bytes;
            self.note_staged(bytes);
            return Some(staged);
        } else {
            // Legacy path: transfer tensor by tensor, rolling back the
            // accounted transfers if one fails mid-batch so the memory
            // book never leaks (a dropped legacy tensor has no reclaim
            // hook to free its accounting). A configured h2d bandwidth is
            // forwarded per call — caller-scoped, so Off-mode benchmark
            // rows carry the same constrained link model the staged
            // modes use without perturbing other users of the books.
            let mut staged: Vec<Tensor> = Vec::new();
            let mut transferred: Vec<u64> = Vec::new();
            for t in item.fields.iter().chain(std::iter::once(&item.labels)) {
                if t.device() == self.cfg.device {
                    staged.push(t.clone());
                    continue;
                }
                match self.ctx.devices.transfer_with_bandwidth(
                    t,
                    self.cfg.device,
                    self.cfg.staging.h2d_bandwidth,
                ) {
                    Ok(s) => {
                        transferred.push(s.view_bytes() as u64);
                        staged.push(s);
                    }
                    Err(_) => {
                        for bytes in transferred {
                            let _ = self.ctx.devices.account_free(self.cfg.device, bytes);
                        }
                        return None;
                    }
                }
            }
            let bytes: u64 = transferred.iter().sum();
            self.note_staged(bytes);
            let labels = staged.pop().expect("labels staged last");
            return Some(PreparedItem {
                fields: staged,
                labels,
                ..item
            });
        };
        self.note_staged(staged_bytes);
        Some(item)
    }

    /// Accounts bytes that were staged for a batch about to publish.
    fn note_staged(&mut self, bytes: u64) {
        self.stats.bytes_staged += bytes;
        self.ctx.metrics.counter("producer.bytes_staged").add(bytes);
    }

    fn register_live(
        &mut self,
        seq: u64,
        batch: LiveBatch,
        mut placements: Vec<Option<Placement>>,
    ) {
        // In a group, placements go through this shard's own slot pool
        // when one is bound (TsContext::enable_shard_slot_recycling).
        let pool_key = self.coord.as_ref().map(|_| self.shard);
        let arena_bound = self.ctx.registry.arena().is_some();
        // `placements` aligns with fields-then-labels; a short (or empty)
        // vec means the copying path for the remaining tensors.
        placements.resize_with(batch.fields.len() + 1, || None);
        for (t, placement) in batch
            .fields
            .iter()
            .chain(std::iter::once(&batch.labels))
            .zip(placements)
        {
            match placement {
                // Zero-copy: the feeder already collated the bytes into
                // this leased slot (for a staged tensor, the slot holds
                // the exact host bytes the device copy was made from) —
                // adopt the lease, move nothing.
                Some(p) => {
                    self.ctx.registry.register_placed(
                        t.storage(),
                        p.lease.into_handle(),
                        p.pool_key,
                    );
                }
                None => {
                    // Copying fallback: with an arena bound, registering a
                    // storage the arena does not already back memcpys it
                    // into a slot on THIS thread. Count the bytes so tests
                    // and the CI smoke gate can assert steady state stays
                    // at zero.
                    if arena_bound && !t.storage().is_shared_memory() {
                        self.stage.publish_copy_bytes.add(t.view_bytes() as u64);
                    }
                    self.ctx.registry.register_for_shard(t.storage(), pool_key);
                }
            }
        }
        self.live.insert(seq, batch);
    }

    fn release(&mut self, seq: u64) {
        let Some(batch) = self.live.remove(&seq) else {
            return;
        };
        for t in batch.fields.iter().chain(std::iter::once(&batch.labels)) {
            self.ctx.registry.release(t.storage_id());
            // Per tensor, not per batch: a slab-backed storage returns
            // its slab (and keeps its device accounting in the rotation)
            // through its reclaim hook, while a tensor that reached the
            // device some other way — the legacy transfer path, or a
            // producer_map that staged it itself — was accounted as a
            // one-off allocation and must be freed here.
            if t.device().is_gpu() && !t.storage().is_recycled() {
                let _ = self
                    .ctx
                    .devices
                    .account_free(t.device(), t.view_bytes() as u64);
            }
        }
    }

    fn on_fully_acked(&mut self, seq: u64) {
        if let Some(b) = self.live.get(&seq) {
            self.stage
                .publish_ack
                .record_duration(b.published_at.elapsed());
            // The retire span closes the record: the batch's whole
            // producer-side life is now covered and it becomes visible to
            // TraceRequest scrapes.
            self.trace.record(
                b.epoch,
                self.shard,
                seq,
                SpanKind::Ack,
                b.published_ns,
                self.trace.now_ns(),
            );
            self.trace.complete(b.epoch, self.shard, seq);
        }
        if self.pinned.contains(&seq) || !self.durably_logged(seq) {
            if let Some(b) = self.live.get_mut(&seq) {
                // Defer: the rubberband window is still open, or the
                // spiller has not durably appended this batch yet (its
                // encode reads the arena slots). The log sweep releases
                // deferred batches — including shed pins — once logged.
                b.releasable = true;
            }
        } else {
            self.release(seq);
        }
    }

    /// True when the spiller no longer needs batch `seq`'s arena bytes:
    /// either no log is bound, or the spiller has moved past it. This is
    /// the memory-release gate only — `logged_up_to` advances past failed
    /// appends, so this is NOT proof the bytes are in the log; the log
    /// sweep makes that distinction when shedding pins (replay sources).
    fn durably_logged(&self, seq: u64) -> bool {
        match &self.logrt {
            None => true,
            Some(rt) => seq < rt.logged_up_to.load(Ordering::Acquire),
        }
    }

    fn join_window_open(&self, policy: &RubberbandPolicy) -> bool {
        self.published_in_epoch <= policy.pinned_batches(self.expected_announces)
            && self.published_in_epoch > 0
    }

    fn close_join_window(&mut self) {
        let pinned = std::mem::take(&mut self.pinned);
        self.stage.pin_depth.set(0.0);
        for seq in pinned {
            let releasable = self.live.get(&seq).map(|b| b.releasable).unwrap_or(false);
            // An acked pin the spiller has not caught up with yet keeps
            // its `releasable` flag; the log sweep frees it once logged.
            if releasable && self.durably_logged(seq) {
                self.release(seq);
            }
        }
    }

    /// Blocks until the window admits the next publish, parking on the
    /// control channel between checks (an ack is what reopens the window,
    /// so the wake is immediate). Returns false to stop.
    fn wait_for_window(&mut self) -> bool {
        self.poll_ctrl_once();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return false;
            }
            if !self.consumers.is_empty()
                && self.awaiting_ready.is_empty()
                && self.window.can_publish()
            {
                return true;
            }
            if !self.wait_ctrl() {
                return false;
            }
        }
    }

    /// Publishes one prepared batch: wait for the window, stage on the
    /// device (unless the overlapped copy stage already did), register
    /// (placing bytes in the arena — recycled slots when a pool is
    /// bound), announce, and maintain the rubberband pin set.
    fn publish_prepared(&mut self, mut item: PreparedItem, policy: &RubberbandPolicy) -> bool {
        // Close the copy-wait span at dequeue: its start was stamped by
        // the overlapped copy stage when it finished staging this item.
        if item.copy_wait_span.0 != 0 && item.copy_wait_span.1 == 0 {
            item.copy_wait_span.1 = self.trace.now_ns();
        }
        // The publish span: window admission (waiting for acks to reopen
        // it), inline staging when the copy stage did not run, and
        // payload registration — everything before the announce.
        let publish_open = self.trace.now_ns().max(1);
        if !self.wait_for_window() {
            return false;
        }
        let Some(item) = self.ensure_staged(item) else {
            return false; // device OOM: stop producing
        };
        // The batch only now gets its key: spans measured upstream rode
        // on the item, and land in the recorder together here.
        let pre_spans = [
            (SpanKind::Fetch, item.fetch_span),
            (SpanKind::CopyWait, item.copy_wait_span),
            (SpanKind::H2d, item.h2d_span),
        ];
        let (fields, labels, placements) = (item.fields, item.labels, item.placements);
        let seq = self.window.published();
        for (kind, (start, end)) in pre_spans {
            self.trace
                .record(self.epoch, self.shard, seq, kind, start, end);
        }
        self.published_in_epoch += 1;
        if let Some(coord) = &self.coord {
            coord.note_published(self.shard, self.published_in_epoch);
        }
        // Register first: adopting the feeder's placements when the
        // zero-copy path ran (pure metadata), else — with an arena bound —
        // placing the bytes in shared memory here; packing then embeds
        // the placement either way.
        self.register_live(
            seq,
            LiveBatch {
                epoch: self.epoch,
                index_in_epoch: item.index_in_epoch,
                last_in_epoch: item.last_in_epoch,
                fields,
                labels,
                releasable: false,
                published_at: Instant::now(),
                published_ns: self.trace.now_ns().max(1),
            },
            placements,
        );
        self.acks.published(seq, self.consumers.keys().copied());
        self.trace.record(
            self.epoch,
            self.shard,
            seq,
            SpanKind::Publish,
            publish_open,
            self.trace.now_ns(),
        );
        let announce_open = self.trace.now_ns().max(1);
        if self.cfg.flexible.is_some() {
            // Send each consumer its own carved view of the producer batch.
            let consumer_ids: Vec<u64> = self.consumers.keys().copied().collect();
            for id in consumer_ids {
                if self.send_flex_to(id, seq).is_err() {
                    return false;
                }
            }
        } else {
            let live = self.live.get(&seq).expect("just inserted");
            let announce = BatchAnnounce {
                seq,
                epoch: self.epoch,
                index_in_epoch: live.index_in_epoch,
                last_in_epoch: live.last_in_epoch,
                content: AnnounceContent::Shared {
                    fields: live
                        .fields
                        .iter()
                        .map(|t| TensorPayload::pack_shared(t, &self.ctx.registry))
                        .collect(),
                    labels: TensorPayload::pack_shared(&live.labels, &self.ctx.registry),
                },
            };
            let _ = self.publisher.send(
                topics::BATCH,
                Multipart::single(DataMsg::Batch(announce).encode()),
            );
            // Stream-mode consumers cannot follow the pointer announce:
            // send them the bytes themselves on their private topics.
            self.send_streamed(seq);
        }
        self.trace.record(
            self.epoch,
            self.shard,
            seq,
            SpanKind::Announce,
            announce_open,
            self.trace.now_ns(),
        );
        // Tee the published batch into the durable log: a metadata-only
        // hand-off (Arc clones) to the spiller thread, which encodes and
        // appends off this hot path. Release of the batch's memory is
        // gated on `logged_up_to`, so the spiller always reads live bytes.
        if let Some(tx) = self.logrt.as_ref().and_then(|rt| rt.spill_tx.as_ref()) {
            if let Some(live) = self.live.get(&seq) {
                let _ = tx.send(SpillMsg {
                    seq,
                    epoch: self.epoch,
                    index_in_epoch: live.index_in_epoch,
                    last_in_epoch: live.last_in_epoch,
                    fields: live.fields.clone(),
                    labels: live.labels.clone(),
                });
            }
        }
        self.last_publish = Instant::now();
        // In a group the pin predicate is global: this shard keeps pinning
        // while ANY shard could still admit a joiner (which would replay
        // from all of them), and while a decided admission has not been
        // applied here yet — otherwise a shard racing past its own pin
        // boundary would drop batches an in-flight joiner must replay.
        let window_open = match &self.coord {
            Some(coord) => coord.pin_window_open(self.shard),
            None => self.join_window_open(policy),
        };
        if window_open || self.published_in_epoch == 1 {
            self.pinned.push(seq);
        } else {
            self.close_join_window();
        }
        self.stage.pin_depth.set(self.pinned.len() as f64);
        self.stats.batches_published += 1;
        self.ctx.metrics.counter("producer.batches").inc();
        // Offer (never send) the publish cursor: the coalescing cell keeps
        // only the newest position, and housekeeping broadcasts it at a
        // bounded cadence off the hot path.
        if let Some(live) = self.live.get(&seq) {
            if self
                .cursor_tx
                .offer((self.epoch, seq, live.index_in_epoch))
                .is_some()
            {
                self.stage.cursor_coalesced.inc();
            }
        }
        true
    }

    /// Builds and sends consumer `id`'s flexible announce for producer batch
    /// `seq` from the live record.
    fn send_flex_to(&mut self, id: u64, seq: u64) -> Result<()> {
        let flex = self.cfg.flexible.clone().expect("flex mode");
        let info = self
            .consumers
            .get(&id)
            .ok_or_else(|| TsError::Join("unknown consumer".into()))?;
        let consumer_bs = info.batch_size as usize;
        let consumer_index = info.index;
        let live = self
            .live
            .get(&seq)
            .ok_or_else(|| TsError::Socket("live batch missing".into()))?;
        let p = live.labels.shape()[0];
        let bs = consumer_bs.min(p).max(1);
        let offset = flex
            .order
            .offset_for(consumer_index, self.consumers.len().max(1), p);
        let plan = plan_flex(p, bs, offset)?;
        let order = flex.order.visit_order(id, seq, plan.batches.len());
        let mut batches = Vec::with_capacity(plan.batches.len());
        for &k in &order {
            let planned = &plan.batches[k];
            let mut field_segs = Vec::with_capacity(live.fields.len());
            for field in &live.fields {
                let segs: Result<Vec<TensorPayload>> = planned
                    .segments
                    .iter()
                    .map(|s| {
                        Ok(TensorPayload::pack_shared(
                            &field.narrow(0, s.start, s.len)?,
                            &self.ctx.registry,
                        ))
                    })
                    .collect();
                field_segs.push(segs?);
            }
            let label_segs: Result<Vec<TensorPayload>> = planned
                .segments
                .iter()
                .map(|s| {
                    Ok(TensorPayload::pack_shared(
                        &live.labels.narrow(0, s.start, s.len)?,
                        &self.ctx.registry,
                    ))
                })
                .collect();
            batches.push(FlexBatchPayload {
                fields: field_segs,
                labels: label_segs?,
            });
        }
        let announce = BatchAnnounce {
            seq,
            epoch: live.epoch,
            index_in_epoch: live.index_in_epoch,
            last_in_epoch: live.last_in_epoch,
            content: AnnounceContent::Flex { batches },
        };
        self.publisher
            .send(
                &topics::consumer(id),
                Multipart::single(DataMsg::Batch(announce).encode()),
            )
            .map_err(|e| TsError::Socket(e.to_string()))?;
        Ok(())
    }

    /// Encodes the streamed (length-prefixed bytes) announce for live
    /// batch `seq` — once; the same frame is reused for every stream-mode
    /// subscriber.
    fn encode_streamed(&self, seq: u64) -> Option<bytes::Bytes> {
        let live = self.live.get(&seq)?;
        let announce = BatchAnnounce {
            seq,
            epoch: live.epoch,
            index_in_epoch: live.index_in_epoch,
            last_in_epoch: live.last_in_epoch,
            content: AnnounceContent::Streamed {
                fields: live
                    .fields
                    .iter()
                    .map(StreamedTensor::from_tensor)
                    .collect(),
                labels: StreamedTensor::from_tensor(&live.labels),
            },
        };
        Some(DataMsg::Batch(announce).encode())
    }

    /// Sends live batch `seq` as bytes to every stream-mode consumer (the
    /// negotiated fallback for consumers that cannot map the arena). Same
    /// seq space as the pointer announce, so window/ack accounting is
    /// shared between the two payload paths.
    fn send_streamed(&mut self, seq: u64) {
        let stream_ids: Vec<u64> = self
            .consumers
            .iter()
            .filter(|(_, c)| c.mode == PayloadMode::Stream)
            .map(|(&id, _)| id)
            .collect();
        if stream_ids.is_empty() {
            return;
        }
        let Some(encoded) = self.encode_streamed(seq) else {
            return;
        };
        for id in stream_ids {
            self.stage.stream_tx_bytes.add(encoded.len() as u64);
            let _ = self
                .publisher
                .send(&topics::consumer(id), Multipart::single(encoded.clone()));
        }
    }

    /// Replays the pinned epoch prefix to a rubberband joiner.
    fn replay_to(&mut self, id: u64) {
        let mode = self
            .consumers
            .get(&id)
            .map(|c| c.mode)
            .unwrap_or(PayloadMode::Shm);
        let pinned = self.pinned.clone();
        for seq in pinned {
            // A consumer can detach mid-replay — an explicit Leave, or a
            // heartbeat expiry while we stream its catch-up. Drain control
            // between batches so the detach is observed, and stop encoding
            // for it the moment it is gone: the streamed path in
            // particular would otherwise keep serializing full payloads
            // at a dead topic until the loop ran dry.
            self.poll_ctrl_once();
            if !self.consumers.contains_key(&id) {
                break;
            }
            if self.cfg.flexible.is_some() {
                let _ = self.send_flex_to(id, seq);
            } else if mode == PayloadMode::Stream {
                // A shed pin's live entry is gone; its stored log frame IS
                // the streamed frame, bit-identical.
                let (encoded, from_log) = match self.encode_streamed(seq) {
                    Some(e) => (Some(e), false),
                    None => (self.log_frame(seq), true),
                };
                if let Some(encoded) = encoded {
                    if from_log {
                        self.ctx.metrics.counter("replay.log_batches").inc();
                        self.ctx
                            .metrics
                            .counter("replay.log_bytes")
                            .add(encoded.len() as u64);
                    }
                    self.stage.stream_tx_bytes.add(encoded.len() as u64);
                    let _ = self
                        .publisher
                        .send(&topics::consumer(id), Multipart::single(encoded));
                }
            } else if let Some(live) = self.live.get(&seq) {
                let announce = BatchAnnounce {
                    seq,
                    epoch: live.epoch,
                    index_in_epoch: live.index_in_epoch,
                    last_in_epoch: live.last_in_epoch,
                    content: AnnounceContent::Shared {
                        fields: live
                            .fields
                            .iter()
                            .map(|t| TensorPayload::pack_shared(t, &self.ctx.registry))
                            .collect(),
                        labels: TensorPayload::pack_shared(&live.labels, &self.ctx.registry),
                    },
                };
                let _ = self.publisher.send(
                    &topics::consumer(id),
                    Multipart::single(DataMsg::Batch(announce).encode()),
                );
            } else if let Some(frame) = self.log_frame(seq) {
                // Shed pin on the shm path: the live entry was released
                // once durably logged. Replay the stored streamed frame —
                // the consumer rebuilds from bytes in any payload mode.
                self.ctx.metrics.counter("replay.log_batches").inc();
                self.ctx
                    .metrics
                    .counter("replay.log_bytes")
                    .add(frame.len() as u64);
                let _ = self
                    .publisher
                    .send(&topics::consumer(id), Multipart::single(frame));
            }
            self.stats.batches_replayed += 1;
            self.ctx.metrics.counter("producer.replays").inc();
        }
    }

    /// The stored wire frame for logged batch `seq`, if the log holds it.
    fn log_frame(&self, seq: u64) -> Option<bytes::Bytes> {
        let rt = self.logrt.as_ref()?;
        rt.log.lock().read(seq).map(bytes::Bytes::from)
    }

    /// The durable-log section of a WELCOME: `None` with no (healthy)
    /// log; the inverted range `min > max` advertises a log that has not
    /// retained anything yet, so group consumers still register replay
    /// cursors from the very first batch.
    fn log_ad(&self) -> Option<LogAd> {
        let rt = self.logrt.as_ref()?;
        if rt.failed.load(Ordering::Relaxed) {
            return None;
        }
        Some(match rt.log.lock().retained_range() {
            Some((min, max)) => LogAd {
                retained_min: min,
                retained_max: max,
            },
            None => LogAd {
                retained_min: 1,
                retained_max: 0,
            },
        })
    }

    /// Admits a consumer: reply, track, and (on `replay`) schedule catch-up.
    fn admit(&mut self, id: u64, batch_size: u32, mode: PayloadMode, replay: bool) {
        let index = self.consumers.len();
        self.consumers.insert(
            id,
            ConsumerInfo {
                batch_size,
                index,
                mode,
                start_seq: self.epoch_start_seq,
            },
        );
        self.stats.peak_consumers = self.stats.peak_consumers.max(self.consumers.len());
        self.awaiting_ready.insert(id);
        // Joining the window immediately halts publishing until the joiner
        // catches up — the rubberband "halt all other consumers".
        self.window.add_consumer(id, self.epoch_start_seq);
        if replay {
            self.acks
                .add_consumer_to_range(id, self.epoch_start_seq, self.window.next_seq());
            // Batches whose release was deferred (fully acked by the old
            // consumers while pinned) must be re-armed: the newcomer will
            // consume the replay, so the memory may only go once it acks.
            let pinned = self.pinned.clone();
            for seq in pinned {
                if let Some(b) = self.live.get_mut(&seq) {
                    if b.releasable {
                        b.releasable = false;
                        self.acks.published(seq, [id]);
                    }
                }
            }
        }
        let reply = DataMsg::JoinReply {
            consumer_id: id,
            decision: JoinDecision::AdmitReplay {
                // The epoch whose pins will be replayed — NOT `self.epoch`,
                // which may already name the next epoch while this shard is
                // parked at the group's boundary barrier.
                epoch: self.pin_epoch,
                replay_from: 0,
                num_batches: self.expected_announces,
                start_seq: self.epoch_start_seq,
            },
        };
        let encoded = reply.encode();
        self.join_replies.insert(id, encoded.clone());
        let _ = self
            .publisher
            .send(&topics::consumer(id), Multipart::single(encoded));
    }

    /// Admits a consumer mid-epoch at the current stream position (used when
    /// no other consumer is active, so there is nobody to halt and nothing
    /// pinned to replay).
    fn admit_at_current(&mut self, id: u64, batch_size: u32, mode: PayloadMode) {
        let start_seq = self.window.next_seq();
        let index = self.consumers.len();
        self.consumers.insert(
            id,
            ConsumerInfo {
                batch_size,
                index,
                mode,
                start_seq,
            },
        );
        self.stats.peak_consumers = self.stats.peak_consumers.max(self.consumers.len());
        self.awaiting_ready.insert(id);
        self.window.add_consumer(id, start_seq);
        let reply = DataMsg::JoinReply {
            consumer_id: id,
            decision: JoinDecision::AdmitReplay {
                epoch: self.pin_epoch,
                replay_from: self.published_in_epoch,
                num_batches: self.expected_announces,
                start_seq,
            },
        };
        let encoded = reply.encode();
        self.join_replies.insert(id, encoded.clone());
        let _ = self
            .publisher
            .send(&topics::consumer(id), Multipart::single(encoded));
    }

    fn remove_consumer(&mut self, id: u64, notify: bool) {
        if let Some(coord) = &self.coord {
            // A decided admission for a gone consumer must not keep the
            // group's pins alive or wedge the epoch barrier.
            coord.abandon(id);
        }
        self.consumers.remove(&id);
        self.awaiting_ready.remove(&id);
        self.join_replies.remove(&id);
        self.groups.remove(&id);
        self.log_infos.remove(&id);
        self.deferred_log_replays.retain(|(cid, ..)| *cid != id);
        self.window.remove_consumer(id);
        self.hb.remove(id);
        for seq in self.acks.remove_consumer(id) {
            self.on_fully_acked(seq);
        }
        if notify {
            let msg = DataMsg::Detached { consumer_id: id };
            let _ = self
                .publisher
                .send(&topics::consumer(id), Multipart::single(msg.encode()));
        }
    }

    /// Dispatches one control message.
    fn handle_ctrl_frame(&mut self, msg: Multipart) {
        let policy = RubberbandPolicy {
            cutoff: self.cfg.rubberband_cutoff,
        };
        let Some(frame) = msg.frames().first() else {
            return;
        };
        let Ok(ctrl) = CtrlMsg::decode(frame) else {
            return;
        };
        // HELLO carries a one-shot reply token, not a consumer id: answer
        // it statelessly (a consumer that missed the reply retries with
        // the same token) and never let the token into the heartbeat
        // monitor, where it would register a phantom consumer.
        if let CtrlMsg::Hello {
            token,
            version,
            caps: hello_caps,
        } = ctrl
        {
            // Capability bits we do not know yet are ignored (the peer
            // falls back to what the WELCOME grants), but counted so a
            // mixed-version fleet is observable.
            if hello_caps & !caps::KNOWN != 0 {
                self.ctx
                    .metrics
                    .counter("producer.hello_unknown_caps")
                    .inc();
            }
            if let Some(mut info) = self.welcome.clone() {
                // An older caller cannot decode the newer trailing
                // sections: answer in its own dialect (the encoder drops
                // the trailing bytes beyond the encoded version, producing
                // the exact older frame).
                if version < HANDSHAKE_VERSION {
                    info.version = version.clamp(1, HANDSHAKE_VERSION);
                }
                // Stamp the durable-log ad per HELLO — the retained range
                // moves with appends and retention. Encoded only into v3+
                // frames.
                if info.version >= 3 {
                    info.log = self.log_ad();
                }
                let reply = DataMsg::Welcome { token, info };
                let _ = self
                    .publisher
                    .send(&topics::hello(token), Multipart::single(reply.encode()));
            }
            return;
        }
        // Stats scrapes follow the same stateless pattern: snapshot the
        // registry, answer on the caller's one-shot topic, done. Every
        // wait loop funnels through here, so a producer is scrapeable in
        // any state — mid-epoch, at an epoch barrier, or draining acks.
        if let CtrlMsg::StatsRequest { token, seq, .. } = ctrl {
            // Echo the scraper's per-attempt stamp: it re-sends the
            // request while waiting, and a late duplicate snapshot from
            // attempt N must not be mistaken for attempt N+1's reply.
            // Fold the flight recorder's own health into the registry
            // right before snapshotting — scrape-time only, never on the
            // publish path.
            self.ctx
                .metrics
                .gauge("trace.dropped")
                .set(self.trace.dropped() as f64);
            self.ctx
                .metrics
                .gauge("trace.capacity")
                .set(self.trace.capacity() as f64);
            let mut payload = StatsPayload::from_registry(&self.ctx.metrics);
            payload.uptime_ns = self.started.elapsed().as_nanos() as u64;
            payload.snapshot_ns = self.trace.now_ns();
            payload.verdict = self.trace.verdict();
            let reply = DataMsg::Stats {
                token,
                seq,
                payload,
            };
            let _ = self
                .publisher
                .send(&topics::stats(token), Multipart::single(reply.encode()));
            return;
        }
        // Trace scrapes are the same stateless shape on their own one-shot
        // topic: the last-N completed flight-recorder records, answered
        // from any wait state.
        if let CtrlMsg::TraceRequest {
            token, seq, max, ..
        } = ctrl
        {
            let max = (max as usize).clamp(1, 256);
            let reply = DataMsg::Trace {
                token,
                seq,
                payload: TracePayload {
                    version: TRACE_VERSION,
                    now_ns: self.trace.now_ns(),
                    records: self.trace.last_n(max),
                },
            };
            let _ = self
                .publisher
                .send(&topics::trace(token), Multipart::single(reply.encode()));
            return;
        }
        // Forward compatibility: a well-formed frame with a tag from a
        // newer peer is ignored (logged once), never an error and never a
        // phantom consumer in the heartbeat monitor.
        if let CtrlMsg::Unknown { tag } = ctrl {
            if self
                .ctx
                .metrics
                .counter("producer.ctrl_unknown")
                .fetch_inc()
                == 0
            {
                eprintln!("tensorsocket: ignoring unknown ctrl tag {tag} (newer peer?)");
            }
            return;
        }
        let now = self.now_ns();
        self.hb.beat(ctrl.consumer_id(), now);
        match ctrl {
            CtrlMsg::Join {
                consumer_id,
                batch_size,
                mode,
            } => self.handle_join(consumer_id, batch_size, mode, &policy),
            CtrlMsg::Ready { consumer_id } => {
                if self.awaiting_ready.remove(&consumer_id) {
                    self.join_replies.remove(&consumer_id);
                    self.replay_needed(consumer_id);
                }
            }
            CtrlMsg::Ack { consumer_id, seq } => {
                self.window.on_ack(consumer_id, seq);
                if self.acks.on_ack(consumer_id, seq) {
                    self.on_fully_acked(seq);
                }
                // Exactly-once resume: advance the consumer's group cursor
                // in memory on every ack (a log-replayed old seq below the
                // stored cursor is ignored as a regression); the log sweep
                // persists the coalesced value at its ~25ms cadence, so a
                // crash re-delivers at most one sweep interval of acked
                // batches — which acks already tolerate as regressions —
                // instead of paying tmp+rename syscalls per ack on the
                // control path.
                let shard = self.shard;
                if let Some(group) = self.groups.get(&consumer_id) {
                    if let Some(rt) = &mut self.logrt {
                        rt.cursors.advance_mem(group, shard, seq + 1);
                    }
                }
            }
            CtrlMsg::Replay {
                consumer_id,
                group,
                from,
            } => self.handle_replay(consumer_id, group, from),
            CtrlMsg::Heartbeat { .. } => {}
            CtrlMsg::Leave { consumer_id } => {
                self.remove_consumer(consumer_id, false);
            }
            CtrlMsg::Hello { .. }
            | CtrlMsg::StatsRequest { .. }
            | CtrlMsg::TraceRequest { .. }
            | CtrlMsg::Unknown { .. } => {
                unreachable!("answered before heartbeat tracking")
            }
        }
    }

    /// Periodic duties that are not reactions to a specific message.
    fn ctrl_housekeeping(&mut self) {
        // Nudge joiners that have not said Ready: their JoinReply may have
        // been published before their subscription reached us.
        if !self.awaiting_ready.is_empty()
            && self.last_reply_nudge.elapsed() > std::time::Duration::from_millis(25)
        {
            self.last_reply_nudge = Instant::now();
            for (&id, encoded) in &self.join_replies {
                if self.awaiting_ready.contains(&id) {
                    let _ = self
                        .publisher
                        .send(&topics::consumer(id), Multipart::single(encoded.clone()));
                }
            }
        }
        // Broadcast the latest publish cursor at a bounded cadence. The
        // cell already collapsed every intermediate position, so however
        // bursty publishing was, subscribers see at most one cursor frame
        // per flush interval — and it is the current one.
        if self.last_cursor_flush.elapsed() > std::time::Duration::from_millis(25) {
            if let Some((epoch, seq, index_in_epoch)) = self.cursor_rx.poll() {
                self.last_cursor_flush = Instant::now();
                let msg = DataMsg::Cursor {
                    shard: self.shard,
                    epoch,
                    seq,
                    index_in_epoch,
                };
                let _ = self
                    .publisher
                    .send(topics::CURSOR, Multipart::single(msg.encode()));
            }
        }
        // The stall watchdog: a low-frequency sweep entirely off the hot
        // path (housekeeping runs when the publish loop is parked or
        // between control bursts).
        if self.last_watchdog.elapsed() > std::time::Duration::from_millis(100) {
            self.last_watchdog = Instant::now();
            self.watchdog_sweep();
        }
        // Durable-log sweep: shed fully-acked pins whose bytes are on
        // disk, apply group-cursor-floored retention, refresh gauges.
        if self.logrt.is_some()
            && self.last_log_sweep.elapsed() > std::time::Duration::from_millis(25)
        {
            self.last_log_sweep = Instant::now();
            self.log_sweep();
        }
        // Expire silent consumers.
        let now = self.now_ns();
        for dead in self.hb.expire(now) {
            if self.consumers.contains_key(&dead) || self.awaiting_ready.contains(&dead) {
                self.remove_consumer(dead, true);
                self.stats.consumers_detached += 1;
                self.ctx.metrics.counter("producer.detached").inc();
            }
            self.pending_join.retain(|(id, ..)| *id != dead);
        }
    }

    /// One durable-log maintenance sweep (bounded cadence, off the hot
    /// path): sheds rubberband pins that are fully acked AND durably on
    /// disk — their live arena slots release while the seq stays pinned,
    /// so a joiner's catch-up falls back to the stored log frame — then
    /// flushes coalesced group-cursor advances and applies segment
    /// retention floored at the slowest group cursor AND the oldest
    /// rubberband pin, and refreshes the `log.*` gauges.
    fn log_sweep(&mut self) {
        let (logged, log_failed) = match &self.logrt {
            Some(rt) => (
                rt.logged_up_to.load(Ordering::Acquire),
                rt.failed.load(Ordering::Acquire),
            ),
            None => return,
        };
        // `logged_up_to` advances past failed appends (so release gating
        // never wedges on a bad disk), which makes `seq < logged` alone
        // NOT proof the bytes are in the log. A pinned batch is the
        // rubberband replay source — once the log has failed it must stay
        // memory-resident or a joiner's catch-up would silently skip it.
        // Non-pinned releasable batches only wait for the spiller to be
        // past them (it reads arena memory while encoding); those still
        // free normally after a failure.
        let shed: Vec<u64> = self
            .live
            .iter()
            .filter(|(&seq, b)| {
                b.releasable && seq < logged && !(log_failed && self.pinned.contains(&seq))
            })
            .map(|(&seq, _)| seq)
            .collect();
        for seq in shed {
            self.release(seq);
        }
        // Pin depth now counts memory-resident pins only: seqs pinned for
        // replay but backed by the log no longer hold arena slots.
        let resident = self
            .pinned
            .iter()
            .filter(|s| self.live.contains_key(s))
            .count();
        self.stage.pin_depth.set(resident as f64);
        let next_seq = self.window.next_seq();
        let shard = self.shard;
        // A shed pin's log frame IS its replay source, so retention must
        // not outrun the pin set any more than the group cursors: floor
        // reclamation at the oldest pinned seq while the join window is
        // open. (Without this, an epoch longer than the segment budget
        // lets retention trim into the pinned range and a mid-epoch
        // joiner's catch-up would find neither live bytes nor log frame.)
        let pin_floor = self.pinned.iter().min().copied();
        if let Some(rt) = &mut self.logrt {
            // Acks advance cursors in memory only; persist the coalesced
            // values here, BEFORE retention, so the on-disk resume point
            // is never behind a reclamation decision. If a flush fails,
            // skip retention this sweep rather than delete segments a
            // stale on-disk cursor may still need after a crash.
            let cursors_clean = rt.cursors.flush().is_ok();
            let floor = match (rt.cursors.min_cursor(shard), pin_floor) {
                (Some(c), Some(p)) => Some(c.min(p)),
                (c, p) => c.or(p),
            };
            let mut log = rt.log.lock();
            if cursors_clean {
                log.apply_retention(floor);
            }
            rt.lag.set(next_seq.saturating_sub(logged) as f64);
            if let Some((min, max)) = log.retained_range() {
                rt.retained_min.set(min as f64);
                rt.retained_max.set(max as f64);
            }
        }
    }

    /// One stall-watchdog sweep: finds the batch stuck longest in its
    /// current stage, compares its age against the stage's rolling p99
    /// scaled by [`ProducerConfig::watchdog_stall_multiple`] (with an
    /// absolute floor so a cold, fast pipeline is not all "stalls"),
    /// classifies the bottleneck and publishes the verdict:
    ///
    /// * **consumer-straggler** — a published batch waits on a strict
    ///   subset of consumers: the named (lowest-id) ower is holding
    ///   everyone's window;
    /// * **ack-bound** — a published batch waits on *every* consumer: the
    ///   whole subscription side is behind;
    /// * **h2d-bound / loader-bound** — nothing is outstanding but the
    ///   publish loop has gone quiet mid-epoch: the upstream stage with
    ///   the slower p99 is the verdict.
    ///
    /// Each distinct stall increments `watchdog.stalls.<class>` once (the
    /// memo dedups re-sweeps of the same stuck batch) and replaces the
    /// verdict surfaced in stats snapshots and the `ts-top` header.
    fn watchdog_sweep(&mut self) {
        /// Below this age nothing is a stall, whatever the p99 says.
        const FLOOR_NS: u64 = 25_000_000;
        let multiple = self.cfg.watchdog_stall_multiple.max(1.0);
        let threshold = |p99: u64| ((p99 as f64 * multiple) as u64).max(FLOOR_NS);
        // Oldest un-acked batch first: it bounds the publish window, so
        // its wait is the stall that matters. (`live` also holds fully
        // acked batches pinned for rubberband replay — those are healthy.)
        let oldest = self.live.iter().find_map(|(&seq, b)| {
            self.acks.owers(seq).map(|owers| {
                (
                    seq,
                    b.epoch,
                    b.published_at.elapsed().as_nanos() as u64,
                    owers.len(),
                    owers.iter().min().copied().unwrap_or(0),
                )
            })
        });
        if let Some((seq, epoch, age_ns, nowers, min_ower)) = oldest {
            if age_ns <= threshold(self.stage.publish_ack.snapshot().p99()) {
                return;
            }
            if self.watchdog_memo == Some((epoch, seq)) {
                return; // same stall, already counted
            }
            self.watchdog_memo = Some((epoch, seq));
            let ms = age_ns / 1_000_000;
            let (class, verdict) = if nowers < self.consumers.len() {
                (
                    "consumer",
                    format!("consumer-straggler consumer={min_ower} seq={seq} stuck {ms}ms"),
                )
            } else {
                (
                    "ack",
                    format!("ack-bound seq={seq} stuck {ms}ms awaiting {nowers} consumer(s)"),
                )
            };
            self.ctx
                .metrics
                .counter(&format!("watchdog.stalls.{class}"))
                .inc();
            self.trace.set_verdict(&verdict);
            return;
        }
        // Nothing outstanding: if the publish loop has gone quiet
        // mid-epoch with consumers attached, the bottleneck is upstream.
        if self.consumers.is_empty()
            || self.published_in_epoch == 0
            || self.published_in_epoch >= self.expected_announces
        {
            return;
        }
        let idle_ns = self.last_publish.elapsed().as_nanos() as u64;
        let fetch_p99 = self.stage.feeder_fetch.snapshot().p99();
        if idle_ns <= threshold(fetch_p99) {
            return;
        }
        let next_seq = self.window.next_seq();
        if self.watchdog_memo == Some((self.epoch, next_seq)) {
            return;
        }
        self.watchdog_memo = Some((self.epoch, next_seq));
        let h2d_p99 = self.staging.as_ref().map(|e| e.h2d_p99()).unwrap_or(0);
        let ms = idle_ns / 1_000_000;
        let (class, verdict) = if h2d_p99 > fetch_p99 {
            (
                "h2d",
                format!("h2d-bound idle {ms}ms before seq={next_seq}"),
            )
        } else {
            (
                "loader",
                format!("loader-bound idle {ms}ms before seq={next_seq}"),
            )
        };
        self.ctx
            .metrics
            .counter(&format!("watchdog.stalls.{class}"))
            .inc();
        self.trace.set_verdict(&verdict);
    }

    /// Drains every queued control message, then does housekeeping. Never
    /// blocks.
    fn poll_ctrl_once(&mut self) {
        while let Ok(Some(msg)) = self.ctrl.try_recv() {
            self.handle_ctrl_frame(msg);
        }
        self.ctrl_housekeeping();
    }

    /// One *blocking* control round: parks on the control channel until a
    /// message arrives — waking immediately on acks/joins/leaves instead
    /// of sleeping a fixed interval — with `poll_interval` bounding how
    /// long stop-flag and liveness checks can starve. Returns false when
    /// the control socket is gone.
    fn wait_ctrl(&mut self) -> bool {
        match self.ctrl.recv_timeout(self.cfg.poll_interval) {
            Ok(msg) => {
                self.handle_ctrl_frame(msg);
                // Whatever arrived together with it is ready too.
                self.poll_ctrl_once();
                true
            }
            Err(RecvError::Timeout) => {
                self.ctrl_housekeeping();
                true
            }
            Err(RecvError::Closed) => false,
        }
    }

    fn replay_needed(&mut self, id: u64) {
        // Replay whatever of this epoch is already out (pinned prefix).
        if self.published_in_epoch == 0 {
            return;
        }
        // `replay_to` drains control between batches, so a Ready from a
        // SECOND joiner can land while the first replay is in flight.
        // Queue it instead of recursing: each consumer still gets exactly
        // one complete catch-up, in arrival order.
        if self.replaying {
            self.deferred_replays.push(id);
            return;
        }
        self.replaying = true;
        self.replay_to(id);
        self.drain_deferred();
        self.replaying = false;
    }

    /// Drain queued catch-ups (rubberband pin replays and log-backed
    /// range replays) in arrival order until both queues are empty.
    /// Caller must hold `self.replaying = true`.
    fn drain_deferred(&mut self) {
        loop {
            if !self.deferred_replays.is_empty() {
                let next = self.deferred_replays.remove(0);
                self.replay_to(next);
            } else if !self.deferred_log_replays.is_empty() {
                let (id, from, to) = self.deferred_log_replays.remove(0);
                self.stream_log_replay(id, from, to);
            } else {
                break;
            }
        }
    }

    /// Answer a `CtrlMsg::Replay` from a consumer group member: resolve
    /// the replay start (cursor / oldest / explicit, floored at what the
    /// log retains and capped at the consumer's live splice point),
    /// register the group cursor, send a `LogInfo` describing the plan,
    /// then stream the logged range `[start, live_seq)` so it splices
    /// gaplessly onto the live feed that begins at `live_seq`.
    ///
    /// Resume semantics depend on the admission path. A sole consumer is
    /// admitted at the current stream position (`admit_at_current`), so
    /// `live_seq` is ahead of its cursor and the logged gap is replayed:
    /// exactly-once from the last acked batch. A member rejoining while
    /// other consumers are active is admitted on the rubberband path with
    /// `live_seq = epoch_start_seq`; a cursor already past that point is
    /// capped down to it, and the rubberband replay re-delivers the
    /// current epoch from its start — **epoch-coherent** rather than
    /// cursor-exact. Re-delivered seqs below the stored cursor are
    /// ignored as cursor regressions, so the cursor never moves backward.
    fn handle_replay(&mut self, id: u64, group: String, from: ReplayFrom) {
        self.ctx.metrics.counter("producer.replay_requests").inc();
        if !self.consumers.contains_key(&id) {
            return; // must be admitted (Join/Welcome) before replaying
        }
        // Replay requests are resent until answered; the plan is computed
        // once and the cached LogInfo frame re-sent byte-identically so a
        // lost first answer cannot fork the stream.
        if let Some(frame) = self.log_infos.get(&id) {
            let frame = frame.clone();
            let _ = self
                .publisher
                .send(&topics::consumer(id), Multipart::single(frame));
            return;
        }
        let live_seq = self.consumers[&id].start_seq;
        let retained = self
            .logrt
            .as_ref()
            .filter(|rt| !rt.failed.load(Ordering::Acquire))
            .and_then(|rt| rt.log.lock().retained_range());
        let (start, start_epoch, start_index, rmin, rmax) = match retained {
            Some((rmin, rmax)) => {
                let want = match from {
                    ReplayFrom::Cursor => self
                        .logrt
                        .as_ref()
                        .and_then(|rt| rt.cursors.load(&group, self.shard))
                        .unwrap_or(rmin),
                    ReplayFrom::Oldest => rmin,
                    ReplayFrom::Seq(n) => n,
                };
                let start = replay_start(want, rmin, live_seq);
                let (e, i) = self.replay_position(start, live_seq);
                (start, e, i, rmin, rmax)
            }
            // No log (or spiller failed): nothing to replay, live-only.
            None => (live_seq, self.pin_epoch, 0, 0, 0),
        };
        if let Some(rt) = &mut self.logrt {
            let _ = rt.cursors.register(&group, self.shard, start);
        }
        self.groups.insert(id, group);
        let info = DataMsg::LogInfo {
            consumer_id: id,
            start_seq: start,
            start_epoch,
            start_index,
            live_seq,
            retained_min: rmin,
            retained_max: rmax,
        };
        let frame = info.encode();
        self.log_infos.insert(id, frame.clone());
        let _ = self
            .publisher
            .send(&topics::consumer(id), Multipart::single(frame));
        if start < live_seq {
            if self.replaying {
                self.deferred_log_replays.push((id, start, live_seq));
                return;
            }
            self.replaying = true;
            self.stream_log_replay(id, start, live_seq);
            self.drain_deferred();
            self.replaying = false;
        }
    }

    /// Epoch/index coordinates of the first replayed batch, so the
    /// consumer can seed its shard-interleave cursor at the splice point.
    fn replay_position(&self, start: u64, live_seq: u64) -> (u64, u64) {
        if start >= live_seq {
            return (self.pin_epoch, 0);
        }
        if let Some(rt) = &self.logrt {
            if let Some(m) = rt.log.lock().meta(start) {
                return (m.epoch, m.index_in_epoch);
            }
        }
        if let Some(b) = self.live.get(&start) {
            return (b.epoch, b.index_in_epoch);
        }
        (self.pin_epoch, 0)
    }

    /// Stream logged frames `[from, to)` to one consumer's topic. Frames
    /// come straight off the log (already-encoded streamed batches); a
    /// seq the retention sweep dropped between planning and streaming
    /// falls back to re-encoding the still-live batch. Control is
    /// drained between frames so a Leave (consumer dropped mid-replay)
    /// stops the stream promptly instead of flooding a dead topic.
    fn stream_log_replay(&mut self, id: u64, from: u64, to: u64) {
        let replayed = self.ctx.metrics.counter("replay.log_batches");
        let replayed_bytes = self.ctx.metrics.counter("replay.log_bytes");
        for seq in from..to {
            self.poll_ctrl_once();
            if !self.consumers.contains_key(&id) {
                break; // left mid-replay: release the stream
            }
            let Some(frame) = self.log_frame(seq).or_else(|| self.encode_streamed(seq)) else {
                continue;
            };
            replayed.inc();
            replayed_bytes.add(frame.len() as u64);
            let _ = self
                .publisher
                .send(&topics::consumer(id), Multipart::single(frame));
            self.stats.batches_replayed += 1;
        }
    }

    fn handle_join(
        &mut self,
        id: u64,
        batch_size: u32,
        mode: PayloadMode,
        policy: &RubberbandPolicy,
    ) {
        if self.consumers.contains_key(&id) {
            return; // duplicate join
        }
        // The WELCOME never grants STREAM from a flexible producer; a
        // streamed Join here means the consumer ignored the grant mask.
        if mode == PayloadMode::Stream && self.cfg.flexible.is_some() {
            let reply = DataMsg::JoinReply {
                consumer_id: id,
                decision: JoinDecision::Reject {
                    reason: "flexible producers serve shm payloads only".into(),
                },
            };
            let _ = self
                .publisher
                .send(&topics::consumer(id), Multipart::single(reply.encode()));
            self.stats.joins_rejected += 1;
            return;
        }
        if let Some(flex) = &self.cfg.flexible {
            if batch_size == 0 || batch_size as usize > flex.producer_batch {
                let reply = DataMsg::JoinReply {
                    consumer_id: id,
                    decision: JoinDecision::Reject {
                        reason: format!(
                            "batch size {batch_size} exceeds producer batch {}",
                            flex.producer_batch
                        ),
                    },
                };
                let _ = self
                    .publisher
                    .send(&topics::consumer(id), Multipart::single(reply.encode()));
                self.stats.joins_rejected += 1;
                return;
            }
        }
        // One shard of a group: admission is decided ONCE for the whole
        // group (first shard to ask decides, against global state) so the
        // joiner is treated identically by every shard.
        if let Some(coord) = self.coord.clone() {
            let (decision, decision_epoch) = coord.decide_join(id, self.consumers.is_empty());
            // A decision stamped with an epoch this shard has not begun
            // yet means the barrier opened while we were still parked at
            // it: our admission state (pin set, epoch_start_seq) is the
            // PREVIOUS epoch's. Applying it would hand the consumer a
            // stale start position and desynchronize its interleave
            // cursors — defer to begin_epoch, which admits with the
            // decision epoch's fresh state.
            let out_of_phase =
                matches!(decision, GroupJoin::AdmitReplay | GroupJoin::AdmitAtCurrent)
                    && decision_epoch != self.pin_epoch;
            match (decision, out_of_phase) {
                (GroupJoin::AdmitReplay, false) => {
                    self.admit(id, batch_size, mode, self.published_in_epoch > 0);
                    coord.applied(self.shard, id);
                }
                (GroupJoin::AdmitAtCurrent, false) => {
                    self.admit_at_current(id, batch_size, mode);
                    coord.applied(self.shard, id);
                }
                (GroupJoin::WaitNextEpoch, _) | (_, true) => {
                    self.pending_join.push((id, batch_size, mode));
                    let reply = DataMsg::JoinReply {
                        consumer_id: id,
                        decision: JoinDecision::WaitEpoch {
                            epoch: self.epoch + 1,
                        },
                    };
                    let _ = self
                        .publisher
                        .send(&topics::consumer(id), Multipart::single(reply.encode()));
                }
            }
            return;
        }
        if self.consumers.is_empty() && self.published_in_epoch > 0 {
            // Mid-epoch with no active consumers ("consumers may join
            // training at any point in an epoch", §3.3.1): admit at the
            // current position without replay.
            self.admit_at_current(id, batch_size, mode);
            return;
        }
        match policy.decide(self.published_in_epoch, self.expected_announces) {
            JoinOutcome::AdmitReplay { .. } => {
                self.admit(id, batch_size, mode, self.published_in_epoch > 0);
            }
            JoinOutcome::WaitNextEpoch => {
                self.pending_join.push((id, batch_size, mode));
                let reply = DataMsg::JoinReply {
                    consumer_id: id,
                    decision: JoinDecision::WaitEpoch {
                        epoch: self.epoch + 1,
                    },
                };
                let _ = self
                    .publisher
                    .send(&topics::consumer(id), Multipart::single(reply.encode()));
            }
        }
    }

    /// After the final epoch: wait (bounded) for outstanding acks so
    /// consumers finish cleanly, then release everything. Parks on the
    /// control channel so each ack is processed the moment it arrives.
    /// An aborted producer skips the wait — `join` after `abort` must
    /// return the partial stats promptly, not block out the timeout.
    fn drain_outstanding(&mut self) {
        let deadline = Instant::now() + self.cfg.heartbeat_timeout;
        self.poll_ctrl_once();
        while !self.acks.is_empty() && Instant::now() < deadline {
            if self.stop.load(Ordering::Relaxed) || self.consumers.is_empty() || !self.wait_ctrl() {
                break;
            }
        }
        // Stop the spiller BEFORE releasing slots: it reads arena memory
        // while encoding queued appends, so every tee must hit disk first.
        if let Some(rt) = &mut self.logrt {
            rt.spill_tx = None; // closes the channel; spiller drains + exits
            if let Some(handle) = rt.spiller.take() {
                let _ = handle.join();
            }
            // Persist any cursor advances the sweep has not flushed yet:
            // the final acks of a run land between sweeps.
            let _ = rt.cursors.flush();
        }
        let seqs: Vec<u64> = self.live.keys().copied().collect();
        for seq in seqs {
            self.release(seq);
        }
        self.pinned.clear();
        self.stage.pin_depth.set(0.0);
    }
}
