//! The [`TensorProducer`]: a server owning the data-loading pipeline and
//! multicasting batch payloads to consumers (§3.2.1).
//!
//! One thread runs the whole producer: it iterates the wrapped loader,
//! stages batches on the configured device (accounting PCIe/NVLink/VRAM),
//! registers storages in the shared registry, publishes pointer payloads,
//! and processes the control stream (joins, readiness, acks, heartbeats,
//! leaves). Publishing is gated by the [`BatchWindow`]; memory release by
//! the [`AckTracker`]; admission by the [`RubberbandPolicy`]; liveness by
//! the [`HeartbeatMonitor`].

use crate::protocol::acks::AckTracker;
use crate::protocol::buffer::BatchWindow;
use crate::protocol::flex::plan_flex;
use crate::protocol::heartbeat::HeartbeatMonitor;
use crate::protocol::messages::{
    topics, AnnounceContent, BatchAnnounce, CtrlMsg, DataMsg, FlexBatchPayload, JoinDecision,
};
use crate::protocol::rubberband::{JoinOutcome, RubberbandPolicy};
use crate::runtime::config::ProducerConfig;
use crate::runtime::context::TsContext;
use crate::{Result, TsError};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ts_data::{Batch, DataLoader};
use ts_socket::{Multipart, PubSocket, PullSocket};
use ts_tensor::{collate, Tensor, TensorPayload};

/// A source of epochs of batches — the loader the producer wraps.
///
/// Implemented by [`ts_data::DataLoader`]; implement it for custom loaders
/// (e.g. a Hugging-Face-style loader) to share them the same way, matching
/// the paper's "wrapper around data loaders" design (§3.2).
pub trait EpochSource: Send + 'static {
    /// Batches one epoch yields.
    fn batches_per_epoch(&self) -> usize;

    /// Samples per batch (used to size flexible producer batches).
    fn batch_size(&self) -> usize;

    /// Iterate one epoch.
    fn epoch(&self, epoch: u64) -> Box<dyn Iterator<Item = Batch> + Send + '_>;
}

impl EpochSource for DataLoader {
    fn batches_per_epoch(&self) -> usize {
        DataLoader::batches_per_epoch(self)
    }

    fn batch_size(&self) -> usize {
        self.config().batch_size
    }

    fn epoch(&self, epoch: u64) -> Box<dyn Iterator<Item = Batch> + Send + '_> {
        Box::new(DataLoader::epoch(self, epoch))
    }
}

/// An in-memory epoch source: serves the same pre-built batches every
/// epoch.
///
/// This is the adapter for loaders this crate does not know about — e.g.
/// a Hugging-Face-style loader (the Table 4 scenario wraps one): build the
/// batches with whatever pipeline you have, hand them to a `VecSource`,
/// and the producer shares them like any other loader.
pub struct VecSource {
    batches: Vec<Batch>,
    batch_size: usize,
}

impl VecSource {
    /// Wraps pre-built batches. All batches must have the same size;
    /// returns an error otherwise (flexible sizing depends on it).
    pub fn new(batches: Vec<Batch>) -> Result<Self> {
        let batch_size = batches
            .first()
            .map(|b| b.batch_size())
            .ok_or_else(|| TsError::Config("VecSource needs at least one batch".into()))?;
        if let Some(bad) = batches.iter().find(|b| b.batch_size() != batch_size) {
            return Err(TsError::Config(format!(
                "VecSource batches must be uniform: found {} and {}",
                batch_size,
                bad.batch_size()
            )));
        }
        Ok(Self {
            batches,
            batch_size,
        })
    }
}

impl EpochSource for VecSource {
    fn batches_per_epoch(&self) -> usize {
        self.batches.len()
    }

    fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn epoch(&self, epoch: u64) -> Box<dyn Iterator<Item = Batch> + Send + '_> {
        let n = self.batches.len();
        Box::new(self.batches.iter().enumerate().map(move |(i, b)| {
            let mut batch = b.clone();
            batch.epoch = epoch;
            batch.index = i;
            batch.last_in_epoch = i + 1 == n;
            batch
        }))
    }
}

/// Counters reported by [`TensorProducer::join`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProducerStats {
    /// Epochs fully published.
    pub epochs_completed: u64,
    /// Announcements published (loader batches in default mode, producer
    /// batches in flexible mode).
    pub batches_published: u64,
    /// Batches replayed to rubberband joiners.
    pub batches_replayed: u64,
    /// Bytes staged onto the producer device.
    pub bytes_staged: u64,
    /// Peak number of simultaneously admitted consumers.
    pub peak_consumers: usize,
    /// Consumers detached for missing heartbeats.
    pub consumers_detached: u64,
    /// Joins rejected.
    pub joins_rejected: u64,
}

/// Handle to a running producer.
///
/// Mirrors the paper's `producer.join()` clean-up call (Figure 3b): the
/// producer thread runs every epoch, then waits for outstanding acks and
/// publishes `End`.
pub struct TensorProducer {
    handle: Option<std::thread::JoinHandle<ProducerStats>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for TensorProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TensorProducer")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl TensorProducer {
    /// Spawns the producer thread over `source`.
    pub fn spawn(
        source: impl EpochSource,
        ctx: &TsContext,
        cfg: ProducerConfig,
    ) -> Result<TensorProducer> {
        if cfg.buffer_size == 0 {
            return Err(TsError::Config("buffer_size must be >= 1".into()));
        }
        if let Some(flex) = &cfg.flexible {
            if flex.producer_batch == 0 {
                return Err(TsError::Config("producer_batch must be >= 1".into()));
            }
        }
        let publisher = PubSocket::bind(&ctx.sockets, &cfg.data_endpoint())
            .map_err(|e| TsError::Socket(e.to_string()))?;
        let ctrl = PullSocket::bind(&ctx.sockets, &cfg.ctrl_endpoint())
            .map_err(|e| TsError::Socket(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = ProducerLoop {
            ctx: ctx.clone(),
            cfg,
            publisher,
            ctrl,
            stop: stop.clone(),
            window: BatchWindow::new(0), // re-created in run() with real capacity
            acks: AckTracker::new(),
            hb: HeartbeatMonitor::new(1),
            consumers: HashMap::new(),
            awaiting_ready: HashSet::new(),
            join_replies: HashMap::new(),
            last_reply_nudge: Instant::now(),
            pending_join: Vec::new(),
            live: BTreeMap::new(),
            pinned: Vec::new(),
            epoch_start_seq: 0,
            published_in_epoch: 0,
            expected_announces: 0,
            epoch: 0,
            started: Instant::now(),
            stats: ProducerStats::default(),
        };
        let handle = std::thread::Builder::new()
            .name("tensorsocket-producer".to_string())
            .spawn(move || state.run(source))
            .map_err(|e| TsError::Socket(format!("spawn failed: {e}")))?;
        Ok(TensorProducer {
            handle: Some(handle),
            stop,
        })
    }

    /// Requests the producer to stop after the batch in flight.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the producer to finish all epochs and shut down cleanly.
    pub fn join(mut self) -> Result<ProducerStats> {
        let handle = self.handle.take().expect("join called once");
        handle
            .join()
            .map_err(|_| TsError::Socket("producer thread panicked".into()))
    }
}

impl Drop for TensorProducer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct ConsumerInfo {
    batch_size: u32,
    /// Stable index used for flexible-mode offsets.
    index: usize,
}

/// A published batch whose tensors are still registered.
struct LiveBatch {
    epoch: u64,
    index_in_epoch: u64,
    last_in_epoch: bool,
    fields: Vec<Tensor>,
    labels: Tensor,
    /// Fully acked, release deferred because the rubberband window is open.
    releasable: bool,
}

struct ProducerLoop {
    ctx: TsContext,
    cfg: ProducerConfig,
    publisher: PubSocket,
    ctrl: PullSocket,
    stop: Arc<AtomicBool>,
    window: BatchWindow,
    acks: AckTracker,
    hb: HeartbeatMonitor,
    consumers: HashMap<u64, ConsumerInfo>,
    awaiting_ready: HashSet<u64>,
    /// Encoded `JoinReply` per consumer still awaiting `Ready`, re-sent
    /// periodically: on remote transports the reply can be published while
    /// the joiner's subscription is still propagating, and a lost reply
    /// would otherwise deadlock the handshake.
    join_replies: HashMap<u64, bytes::Bytes>,
    last_reply_nudge: Instant,
    pending_join: Vec<(u64, u32)>,
    live: BTreeMap<u64, LiveBatch>,
    /// Seqs pinned for rubberband replay (current epoch, window open).
    pinned: Vec<u64>,
    epoch_start_seq: u64,
    published_in_epoch: u64,
    expected_announces: u64,
    epoch: u64,
    started: Instant,
    stats: ProducerStats,
}

impl ProducerLoop {
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn run(mut self, source: impl EpochSource) -> ProducerStats {
        self.window = BatchWindow::new(self.cfg.buffer_size);
        self.hb = HeartbeatMonitor::new(self.cfg.heartbeat_timeout.as_nanos() as u64);
        let policy = RubberbandPolicy {
            cutoff: self.cfg.rubberband_cutoff,
        };

        'epochs: for epoch in 0..self.cfg.epochs {
            self.epoch = epoch;
            self.expected_announces = self.expected_announces_for(&source);
            if !self.begin_epoch() {
                break 'epochs; // stopped or no consumer ever arrived
            }
            let mut accumulator: Vec<Batch> = Vec::new();
            let mut acc_samples = 0usize;
            let mut pb_index = 0u64;
            let epoch_iter = source.epoch(epoch);
            let total = source.batches_per_epoch();
            for (i, batch) in epoch_iter.enumerate() {
                if self.stop.load(Ordering::Relaxed) {
                    break 'epochs;
                }
                let last_loader_batch = i + 1 == total;
                match &self.cfg.flexible {
                    None => {
                        if !self.publish_shared(batch, &policy, last_loader_batch) {
                            break 'epochs;
                        }
                    }
                    Some(flex) => {
                        acc_samples += batch.batch_size();
                        accumulator.push(batch);
                        if acc_samples >= flex.producer_batch || last_loader_batch {
                            let pb = std::mem::take(&mut accumulator);
                            acc_samples = 0;
                            if !self.publish_flex(pb, pb_index, &policy, last_loader_batch) {
                                break 'epochs;
                            }
                            pb_index += 1;
                        }
                    }
                }
            }
            // Epoch complete: close the join window, flush deferred releases.
            self.close_join_window();
            self.stats.epochs_completed += 1;
        }
        self.drain_outstanding();
        let _ = self
            .publisher
            .send(topics::CTRL, Multipart::single(DataMsg::End.encode()));
        self.stats
    }

    fn expected_announces_for(&self, source: &impl EpochSource) -> u64 {
        let loader_batches = source.batches_per_epoch() as u64;
        match &self.cfg.flexible {
            None => loader_batches,
            Some(flex) => {
                let samples = loader_batches * source.batch_size() as u64;
                samples.div_ceil(flex.producer_batch as u64)
            }
        }
    }

    /// Waits for at least one admitted consumer, admits pending boundary
    /// joiners, and announces the epoch. Returns false to stop.
    fn begin_epoch(&mut self) -> bool {
        self.published_in_epoch = 0;
        self.epoch_start_seq = self.window.next_seq();
        // Admit everyone who was told to wait for this epoch.
        let pending = std::mem::take(&mut self.pending_join);
        for (id, bs) in pending {
            self.admit(id, bs, /*replay=*/ false);
        }
        let deadline = self.cfg.first_consumer_timeout.map(|d| Instant::now() + d);
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return false;
            }
            self.poll_ctrl_once();
            if !self.consumers.is_empty() && self.awaiting_ready.is_empty() {
                break;
            }
            if self.consumers.is_empty() {
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        return false;
                    }
                }
            }
            std::thread::sleep(self.cfg.poll_interval);
        }
        let msg = DataMsg::EpochStart {
            epoch: self.epoch,
            num_batches: self.expected_announces,
        };
        let _ = self
            .publisher
            .send(topics::CTRL, Multipart::single(msg.encode()));
        true
    }

    /// Stages a tensor on the producer device, accounting traffic and VRAM.
    fn stage(&mut self, t: &Tensor) -> Result<Tensor> {
        if t.device() == self.cfg.device {
            return Ok(t.clone());
        }
        let staged = self.ctx.devices.transfer(t, self.cfg.device)?;
        self.stats.bytes_staged += staged.view_bytes() as u64;
        self.ctx
            .metrics
            .counter("producer.bytes_staged")
            .add(staged.view_bytes() as u64);
        Ok(staged)
    }

    fn register_live(&mut self, seq: u64, batch: LiveBatch) {
        for t in batch.fields.iter().chain(std::iter::once(&batch.labels)) {
            self.ctx.registry.register(t.storage());
        }
        self.live.insert(seq, batch);
    }

    fn release(&mut self, seq: u64) {
        let Some(batch) = self.live.remove(&seq) else {
            return;
        };
        for t in batch.fields.iter().chain(std::iter::once(&batch.labels)) {
            self.ctx.registry.release(t.storage_id());
            if t.device().is_gpu() {
                let _ = self
                    .ctx
                    .devices
                    .account_free(t.device(), t.view_bytes() as u64);
            }
        }
    }

    fn on_fully_acked(&mut self, seq: u64) {
        if self.pinned.contains(&seq) {
            if let Some(b) = self.live.get_mut(&seq) {
                b.releasable = true; // defer: rubberband window still open
            }
        } else {
            self.release(seq);
        }
    }

    fn join_window_open(&self, policy: &RubberbandPolicy) -> bool {
        self.published_in_epoch <= policy.pinned_batches(self.expected_announces)
            && self.published_in_epoch > 0
    }

    fn close_join_window(&mut self) {
        let pinned = std::mem::take(&mut self.pinned);
        for seq in pinned {
            let releasable = self.live.get(&seq).map(|b| b.releasable).unwrap_or(false);
            if releasable {
                self.release(seq);
            }
        }
    }

    /// Blocks until the window admits the next publish. Returns false to
    /// stop.
    fn wait_for_window(&mut self) -> bool {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return false;
            }
            self.poll_ctrl_once();
            if !self.consumers.is_empty()
                && self.awaiting_ready.is_empty()
                && self.window.can_publish()
            {
                return true;
            }
            std::thread::sleep(self.cfg.poll_interval);
        }
    }

    fn publish_shared(&mut self, batch: Batch, policy: &RubberbandPolicy, last: bool) -> bool {
        if !self.wait_for_window() {
            return false;
        }
        let batch = match &self.cfg.producer_map {
            Some(map) => map(batch),
            None => batch,
        };
        let staged: Result<Vec<Tensor>> = batch.fields.iter().map(|t| self.stage(t)).collect();
        let (fields, labels) = match (staged, self.stage(&batch.labels)) {
            (Ok(f), Ok(l)) => (f, l),
            _ => return false, // device OOM: stop producing
        };
        let seq = self.window.published();
        self.published_in_epoch += 1;
        // Register first: with an arena bound this is what places the
        // bytes in shared memory, and packing then embeds the placement.
        self.register_live(
            seq,
            LiveBatch {
                epoch: self.epoch,
                index_in_epoch: batch.index as u64,
                last_in_epoch: last,
                fields,
                labels,
                releasable: false,
            },
        );
        let live = self.live.get(&seq).expect("just inserted");
        let announce = BatchAnnounce {
            seq,
            epoch: self.epoch,
            index_in_epoch: live.index_in_epoch,
            last_in_epoch: last,
            content: AnnounceContent::Shared {
                fields: live
                    .fields
                    .iter()
                    .map(|t| TensorPayload::pack_shared(t, &self.ctx.registry))
                    .collect(),
                labels: TensorPayload::pack_shared(&live.labels, &self.ctx.registry),
            },
        };
        self.acks.published(seq, self.consumers.keys().copied());
        let _ = self.publisher.send(
            topics::BATCH,
            Multipart::single(DataMsg::Batch(announce).encode()),
        );
        if self.join_window_open(policy) || self.published_in_epoch == 1 {
            self.pinned.push(seq);
        } else {
            self.close_join_window();
        }
        self.stats.batches_published += 1;
        self.ctx.metrics.counter("producer.batches").inc();
        true
    }

    fn publish_flex(
        &mut self,
        loader_batches: Vec<Batch>,
        pb_index: u64,
        policy: &RubberbandPolicy,
        last: bool,
    ) -> bool {
        if loader_batches.is_empty() {
            return true;
        }
        if !self.wait_for_window() {
            return false;
        }
        let loader_batches: Vec<Batch> = match &self.cfg.producer_map {
            Some(map) => loader_batches.into_iter().map(|b| map(b)).collect(),
            None => loader_batches,
        };
        // Build the contiguous producer batch per field.
        let num_fields = loader_batches[0].fields.len();
        let mut fields = Vec::with_capacity(num_fields);
        for f in 0..num_fields {
            let parts: Vec<Tensor> = loader_batches.iter().map(|b| b.fields[f].clone()).collect();
            match collate::cat0(&parts) {
                Ok(t) => fields.push(t),
                Err(_) => return false,
            }
        }
        let label_parts: Vec<Tensor> = loader_batches.iter().map(|b| b.labels.clone()).collect();
        let Ok(labels) = collate::cat0(&label_parts) else {
            return false;
        };
        let staged: Result<Vec<Tensor>> = fields.iter().map(|t| self.stage(t)).collect();
        let (fields, labels) = match (staged, self.stage(&labels)) {
            (Ok(f), Ok(l)) => (f, l),
            _ => return false,
        };
        let seq = self.window.published();
        self.published_in_epoch += 1;
        self.register_live(
            seq,
            LiveBatch {
                epoch: self.epoch,
                index_in_epoch: pb_index,
                last_in_epoch: last,
                fields,
                labels,
                releasable: false,
            },
        );
        self.acks.published(seq, self.consumers.keys().copied());
        // Send each consumer its own carved view of the producer batch.
        let consumer_ids: Vec<u64> = self.consumers.keys().copied().collect();
        for id in consumer_ids {
            if self.send_flex_to(id, seq).is_err() {
                return false;
            }
        }
        if self.join_window_open(policy) || self.published_in_epoch == 1 {
            self.pinned.push(seq);
        } else {
            self.close_join_window();
        }
        self.stats.batches_published += 1;
        self.ctx.metrics.counter("producer.batches").inc();
        true
    }

    /// Builds and sends consumer `id`'s flexible announce for producer batch
    /// `seq` from the live record.
    fn send_flex_to(&mut self, id: u64, seq: u64) -> Result<()> {
        let flex = self.cfg.flexible.clone().expect("flex mode");
        let info = self
            .consumers
            .get(&id)
            .ok_or_else(|| TsError::Join("unknown consumer".into()))?;
        let consumer_bs = info.batch_size as usize;
        let consumer_index = info.index;
        let live = self
            .live
            .get(&seq)
            .ok_or_else(|| TsError::Socket("live batch missing".into()))?;
        let p = live.labels.shape()[0];
        let bs = consumer_bs.min(p).max(1);
        let offset = flex
            .order
            .offset_for(consumer_index, self.consumers.len().max(1), p);
        let plan = plan_flex(p, bs, offset)?;
        let order = flex.order.visit_order(id, seq, plan.batches.len());
        let mut batches = Vec::with_capacity(plan.batches.len());
        for &k in &order {
            let planned = &plan.batches[k];
            let mut field_segs = Vec::with_capacity(live.fields.len());
            for field in &live.fields {
                let segs: Result<Vec<TensorPayload>> = planned
                    .segments
                    .iter()
                    .map(|s| {
                        Ok(TensorPayload::pack_shared(
                            &field.narrow(0, s.start, s.len)?,
                            &self.ctx.registry,
                        ))
                    })
                    .collect();
                field_segs.push(segs?);
            }
            let label_segs: Result<Vec<TensorPayload>> = planned
                .segments
                .iter()
                .map(|s| {
                    Ok(TensorPayload::pack_shared(
                        &live.labels.narrow(0, s.start, s.len)?,
                        &self.ctx.registry,
                    ))
                })
                .collect();
            batches.push(FlexBatchPayload {
                fields: field_segs,
                labels: label_segs?,
            });
        }
        let announce = BatchAnnounce {
            seq,
            epoch: live.epoch,
            index_in_epoch: live.index_in_epoch,
            last_in_epoch: live.last_in_epoch,
            content: AnnounceContent::Flex { batches },
        };
        self.publisher
            .send(
                &topics::consumer(id),
                Multipart::single(DataMsg::Batch(announce).encode()),
            )
            .map_err(|e| TsError::Socket(e.to_string()))?;
        Ok(())
    }

    /// Replays the pinned epoch prefix to a rubberband joiner.
    fn replay_to(&mut self, id: u64) {
        let pinned = self.pinned.clone();
        for seq in pinned {
            if self.cfg.flexible.is_some() {
                let _ = self.send_flex_to(id, seq);
            } else if let Some(live) = self.live.get(&seq) {
                let announce = BatchAnnounce {
                    seq,
                    epoch: live.epoch,
                    index_in_epoch: live.index_in_epoch,
                    last_in_epoch: live.last_in_epoch,
                    content: AnnounceContent::Shared {
                        fields: live
                            .fields
                            .iter()
                            .map(|t| TensorPayload::pack_shared(t, &self.ctx.registry))
                            .collect(),
                        labels: TensorPayload::pack_shared(&live.labels, &self.ctx.registry),
                    },
                };
                let _ = self.publisher.send(
                    &topics::consumer(id),
                    Multipart::single(DataMsg::Batch(announce).encode()),
                );
            }
            self.stats.batches_replayed += 1;
            self.ctx.metrics.counter("producer.replays").inc();
        }
    }

    /// Admits a consumer: reply, track, and (on `replay`) schedule catch-up.
    fn admit(&mut self, id: u64, batch_size: u32, replay: bool) {
        let index = self.consumers.len();
        self.consumers
            .insert(id, ConsumerInfo { batch_size, index });
        self.stats.peak_consumers = self.stats.peak_consumers.max(self.consumers.len());
        self.awaiting_ready.insert(id);
        // Joining the window immediately halts publishing until the joiner
        // catches up — the rubberband "halt all other consumers".
        self.window.add_consumer(id, self.epoch_start_seq);
        if replay {
            self.acks
                .add_consumer_to_range(id, self.epoch_start_seq, self.window.next_seq());
            // Batches whose release was deferred (fully acked by the old
            // consumers while pinned) must be re-armed: the newcomer will
            // consume the replay, so the memory may only go once it acks.
            let pinned = self.pinned.clone();
            for seq in pinned {
                if let Some(b) = self.live.get_mut(&seq) {
                    if b.releasable {
                        b.releasable = false;
                        self.acks.published(seq, [id]);
                    }
                }
            }
        }
        let reply = DataMsg::JoinReply {
            consumer_id: id,
            decision: JoinDecision::AdmitReplay {
                epoch: self.epoch,
                replay_from: 0,
                num_batches: self.expected_announces,
                start_seq: self.epoch_start_seq,
            },
        };
        let encoded = reply.encode();
        self.join_replies.insert(id, encoded.clone());
        let _ = self
            .publisher
            .send(&topics::consumer(id), Multipart::single(encoded));
    }

    /// Admits a consumer mid-epoch at the current stream position (used when
    /// no other consumer is active, so there is nobody to halt and nothing
    /// pinned to replay).
    fn admit_at_current(&mut self, id: u64, batch_size: u32) {
        let start_seq = self.window.next_seq();
        let index = self.consumers.len();
        self.consumers
            .insert(id, ConsumerInfo { batch_size, index });
        self.stats.peak_consumers = self.stats.peak_consumers.max(self.consumers.len());
        self.awaiting_ready.insert(id);
        self.window.add_consumer(id, start_seq);
        let reply = DataMsg::JoinReply {
            consumer_id: id,
            decision: JoinDecision::AdmitReplay {
                epoch: self.epoch,
                replay_from: self.published_in_epoch,
                num_batches: self.expected_announces,
                start_seq,
            },
        };
        let encoded = reply.encode();
        self.join_replies.insert(id, encoded.clone());
        let _ = self
            .publisher
            .send(&topics::consumer(id), Multipart::single(encoded));
    }

    fn remove_consumer(&mut self, id: u64, notify: bool) {
        self.consumers.remove(&id);
        self.awaiting_ready.remove(&id);
        self.join_replies.remove(&id);
        self.window.remove_consumer(id);
        self.hb.remove(id);
        for seq in self.acks.remove_consumer(id) {
            self.on_fully_acked(seq);
        }
        if notify {
            let msg = DataMsg::Detached { consumer_id: id };
            let _ = self
                .publisher
                .send(&topics::consumer(id), Multipart::single(msg.encode()));
        }
    }

    fn poll_ctrl_once(&mut self) {
        let policy = RubberbandPolicy {
            cutoff: self.cfg.rubberband_cutoff,
        };
        while let Ok(Some(msg)) = self.ctrl.try_recv() {
            let Some(frame) = msg.frames().first() else {
                continue;
            };
            let Ok(ctrl) = CtrlMsg::decode(frame) else {
                continue;
            };
            let now = self.now_ns();
            self.hb.beat(ctrl.consumer_id(), now);
            match ctrl {
                CtrlMsg::Join {
                    consumer_id,
                    batch_size,
                } => self.handle_join(consumer_id, batch_size, &policy),
                CtrlMsg::Ready { consumer_id } => {
                    if self.awaiting_ready.remove(&consumer_id) {
                        self.join_replies.remove(&consumer_id);
                        self.replay_needed(consumer_id);
                    }
                }
                CtrlMsg::Ack { consumer_id, seq } => {
                    self.window.on_ack(consumer_id, seq);
                    if self.acks.on_ack(consumer_id, seq) {
                        self.on_fully_acked(seq);
                    }
                }
                CtrlMsg::Heartbeat { .. } => {}
                CtrlMsg::Leave { consumer_id } => {
                    self.remove_consumer(consumer_id, false);
                }
            }
        }
        // Nudge joiners that have not said Ready: their JoinReply may have
        // been published before their subscription reached us.
        if !self.awaiting_ready.is_empty()
            && self.last_reply_nudge.elapsed() > std::time::Duration::from_millis(25)
        {
            self.last_reply_nudge = Instant::now();
            for (&id, encoded) in &self.join_replies {
                if self.awaiting_ready.contains(&id) {
                    let _ = self
                        .publisher
                        .send(&topics::consumer(id), Multipart::single(encoded.clone()));
                }
            }
        }
        // Expire silent consumers.
        let now = self.now_ns();
        for dead in self.hb.expire(now) {
            if self.consumers.contains_key(&dead) || self.awaiting_ready.contains(&dead) {
                self.remove_consumer(dead, true);
                self.stats.consumers_detached += 1;
                self.ctx.metrics.counter("producer.detached").inc();
            }
            self.pending_join.retain(|(id, _)| *id != dead);
        }
    }

    fn replay_needed(&mut self, id: u64) {
        // Replay whatever of this epoch is already out (pinned prefix).
        if self.published_in_epoch > 0 {
            self.replay_to(id);
        }
    }

    fn handle_join(&mut self, id: u64, batch_size: u32, policy: &RubberbandPolicy) {
        if self.consumers.contains_key(&id) {
            return; // duplicate join
        }
        if let Some(flex) = &self.cfg.flexible {
            if batch_size == 0 || batch_size as usize > flex.producer_batch {
                let reply = DataMsg::JoinReply {
                    consumer_id: id,
                    decision: JoinDecision::Reject {
                        reason: format!(
                            "batch size {batch_size} exceeds producer batch {}",
                            flex.producer_batch
                        ),
                    },
                };
                let _ = self
                    .publisher
                    .send(&topics::consumer(id), Multipart::single(reply.encode()));
                self.stats.joins_rejected += 1;
                return;
            }
        }
        if self.consumers.is_empty() && self.published_in_epoch > 0 {
            // Mid-epoch with no active consumers ("consumers may join
            // training at any point in an epoch", §3.3.1): admit at the
            // current position without replay.
            self.admit_at_current(id, batch_size);
            return;
        }
        match policy.decide(self.published_in_epoch, self.expected_announces) {
            JoinOutcome::AdmitReplay { .. } => {
                self.admit(id, batch_size, self.published_in_epoch > 0);
            }
            JoinOutcome::WaitNextEpoch => {
                self.pending_join.push((id, batch_size));
                let reply = DataMsg::JoinReply {
                    consumer_id: id,
                    decision: JoinDecision::WaitEpoch {
                        epoch: self.epoch + 1,
                    },
                };
                let _ = self
                    .publisher
                    .send(&topics::consumer(id), Multipart::single(reply.encode()));
            }
        }
    }

    /// After the final epoch: wait (bounded) for outstanding acks so
    /// consumers finish cleanly, then release everything.
    fn drain_outstanding(&mut self) {
        let deadline = Instant::now() + self.cfg.heartbeat_timeout;
        while !self.acks.is_empty() && Instant::now() < deadline {
            self.poll_ctrl_once();
            if self.consumers.is_empty() {
                break;
            }
            std::thread::sleep(self.cfg.poll_interval);
        }
        let seqs: Vec<u64> = self.live.keys().copied().collect();
        for seq in seqs {
            self.release(seq);
        }
        self.pinned.clear();
    }
}
