//! End-to-end tests of the threaded runtime: producer + consumers over real
//! threads, real sockets, real payload sharing.
//!
//! Much of this suite deliberately exercises the deprecated
//! `TensorProducer::spawn` / `TensorConsumer::connect` /
//! `ShardedProducerGroup::spawn` shims — they must keep behaving exactly
//! like the `Producer`/`Consumer` builders they delegate to (the
//! `builder_*` tests assert byte-identity between the two surfaces).
#![allow(deprecated)]

use crate::protocol::order::OrderConfig;
use crate::runtime::config::{ConsumerConfig, FlexibleConfig, ProducerConfig};
use crate::runtime::consumer::{StopReason, TensorConsumer};
use crate::runtime::context::TsContext;
use crate::runtime::coordinator::ShardedProducerGroup;
use crate::runtime::producer::TensorProducer;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;
use ts_data::{DataLoader, DataLoaderConfig, Dataset, DecodedSample, RawSample};
use ts_device::DeviceId;
use ts_tensor::Tensor;

/// A tiny dataset where `label == index` and the single field encodes the
/// index, so tests can check coverage and identity exactly.
struct IndexDataset {
    len: usize,
}

impl Dataset for IndexDataset {
    fn len(&self) -> usize {
        self.len
    }
    fn get(&self, index: usize) -> ts_data::Result<RawSample> {
        if index >= self.len {
            return Err(ts_data::DataError::IndexOutOfRange {
                index,
                len: self.len,
            });
        }
        Ok(RawSample {
            index,
            bytes: bytes::Bytes::from(vec![index as u8; 4]),
            label: index as i64,
        })
    }
    fn encoded_sample_bytes(&self) -> usize {
        4
    }
    fn decode(&self, raw: &RawSample) -> ts_data::Result<DecodedSample> {
        let field = Tensor::from_f32(
            &[raw.index as f32, raw.index as f32 * 2.0],
            &[2],
            DeviceId::Cpu,
        )?;
        Ok(DecodedSample {
            index: raw.index,
            fields: vec![field],
            label: raw.label,
        })
    }
    fn name(&self) -> &str {
        "index"
    }
}

fn loader(n: usize, batch: usize) -> DataLoader {
    DataLoader::new(
        Arc::new(IndexDataset { len: n }),
        DataLoaderConfig {
            batch_size: batch,
            num_workers: 0,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    )
}

fn producer_cfg(endpoint: &str, epochs: u64) -> ProducerConfig {
    ProducerConfig {
        endpoint: endpoint.to_string(),
        epochs,
        heartbeat_timeout: Duration::from_millis(500),
        poll_interval: Duration::from_micros(200),
        first_consumer_timeout: Some(Duration::from_secs(5)),
        ..Default::default()
    }
}

fn consumer_cfg(endpoint: &str) -> ConsumerConfig {
    ConsumerConfig {
        endpoint: endpoint.to_string(),
        heartbeat_interval: Duration::from_millis(50),
        recv_timeout: Duration::from_secs(5),
        ..Default::default()
    }
}

/// A loader over `IndexDataset` with an explicit pipeline shape.
fn loader_with_workers(n: usize, batch: usize, workers: usize) -> DataLoader {
    DataLoader::new(
        Arc::new(IndexDataset { len: n }),
        DataLoaderConfig {
            batch_size: batch,
            num_workers: workers,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    )
}

/// (epoch, index_in_epoch, labels, last_in_epoch) per received batch.
type BatchTrace = Vec<(u64, u64, Vec<i64>, bool)>;

#[test]
fn pipelined_producer_preserves_batch_order_across_worker_counts() {
    // The pipelined producer (num_workers >= 1, feeder thread + hand-off
    // queue) must publish the exact same batch stream as the serial one
    // (num_workers == 0, inline loading).
    let mut streams: Vec<BatchTrace> = Vec::new();
    for workers in [0usize, 1, 4] {
        let ctx = TsContext::host_only();
        let ep = format!("inproc://order-w{workers}");
        let producer = TensorProducer::spawn(
            loader_with_workers(64, 4, workers),
            &ctx,
            producer_cfg(&ep, 2),
        )
        .unwrap();
        let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(&ep)).unwrap();
        let mut stream = Vec::new();
        for b in consumer.by_ref() {
            stream.push((
                b.epoch,
                b.index_in_epoch,
                b.labels.to_vec_i64().unwrap(),
                b.last_in_epoch,
            ));
        }
        assert_eq!(consumer.stop_reason(), Some(StopReason::End));
        let stats = producer.join().unwrap();
        assert_eq!(stats.batches_published, 32, "workers={workers}");
        streams.push(stream);
    }
    assert_eq!(streams[0].len(), 32);
    assert_eq!(streams[0], streams[1], "1 worker must match serial");
    assert_eq!(streams[0], streams[2], "4 workers must match serial");
}

#[test]
fn pipelined_flexible_mode_matches_serial_stream() {
    // Same invariance under flexible sizing, where the feeder also fuses
    // loader batches into producer batches.
    let mut streams: Vec<Vec<(u64, u64, Vec<i64>)>> = Vec::new();
    for workers in [0usize, 3] {
        let ctx = TsContext::host_only();
        let ep = format!("inproc://order-flex-w{workers}");
        let mut cfg = producer_cfg(&ep, 1);
        cfg.flexible = Some(FlexibleConfig::new(16));
        let producer =
            TensorProducer::spawn(loader_with_workers(64, 8, workers), &ctx, cfg).unwrap();
        let mut cc = consumer_cfg(&ep);
        cc.batch_size = Some(4);
        let mut consumer = TensorConsumer::connect(&ctx, cc).unwrap();
        let mut stream = Vec::new();
        for b in consumer.by_ref() {
            stream.push((b.epoch, b.index_in_epoch, b.labels.to_vec_i64().unwrap()));
        }
        producer.join().unwrap();
        streams.push(stream);
    }
    assert_eq!(streams[0].len(), 16); // 4 producer batches × 4 carved
    assert_eq!(streams[0], streams[1]);
}

#[test]
fn steady_state_publish_recycles_arena_slots_without_allocating() {
    // With an arena + slot pool bound, the warmed-up publish path must
    // perform zero arena allocations: every placement after warmup is a
    // recycled slot (pool hit), asserted via the pool counters.
    let ctx = TsContext::host_only();
    let arena_path = std::env::temp_dir().join(format!(
        "ts-producer-pool-steady-{}.arena",
        std::process::id()
    ));
    ctx.create_arena(&arena_path, 16, 4096).unwrap();
    let pool = ctx.enable_slot_recycling(12).unwrap();
    let ep = "inproc://pool-steady";
    let mut cfg = producer_cfg(ep, 2);
    // Small join window: pins (and their slots) return to the pool early.
    cfg.rubberband_cutoff = 0.02;
    let producer = TensorProducer::spawn(loader_with_workers(64, 4, 2), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut consumed = 0u64;
    let mut warmed_misses = None;
    for _ in consumer.by_ref() {
        consumed += 1;
        if consumed == 8 {
            // Warmup over: window-depth many slots have cycled through.
            warmed_misses = Some(pool.stats().misses);
        }
    }
    assert_eq!(consumed, 32, "2 epochs × 16 batches");
    let stats = producer.join().unwrap();
    assert_eq!(stats.batches_published, 32);
    let end = pool.stats();
    let warmed = warmed_misses.unwrap();
    assert_eq!(
        end.misses, warmed,
        "steady-state publishing allocated arena slots: {warmed} misses at warmup, {} at end \
         (hits {}, busy discards {})",
        end.misses, end.hits, end.busy_discards
    );
    // Each announce places 2 storages (field + labels); everything beyond
    // the warmup set was a recycled slot.
    assert!(end.hits >= 2 * 32 - warmed, "hits {} too low", end.hits);
    // After the run every slot is back in the pool; draining it empties
    // the arena completely.
    assert!(ctx.registry.is_empty());
    pool.drain();
    assert_eq!(ctx.arena().unwrap().slots_in_use(), 0);
}

#[test]
fn staging_modes_deliver_byte_identical_streams() {
    // Acceptance criterion: consumer-visible batches are byte-identical
    // with staging enabled (serial or overlapped slab-pooled) vs disabled
    // (legacy per-batch transfer) — and identical to the CPU-only stream
    // apart from device placement. Run both pipeline shapes.
    use crate::runtime::staging::{StagingConfig, StagingMode};
    for workers in [0usize, 2] {
        let mut streams: Vec<BatchTrace2> = Vec::new();
        for (tag, mode) in [
            ("off", StagingMode::Off),
            ("serial", StagingMode::Serial),
            ("overlap", StagingMode::Overlapped),
        ] {
            let ctx = TsContext::with_gpus(1, 1 << 30, false);
            let ep = format!("inproc://stage-id-{tag}-w{workers}");
            let mut cfg = producer_cfg(&ep, 2);
            cfg.device = DeviceId::Gpu(0);
            cfg.staging = StagingConfig {
                mode,
                ..Default::default()
            };
            let producer =
                TensorProducer::spawn(loader_with_workers(48, 4, workers), &ctx, cfg).unwrap();
            let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(&ep)).unwrap();
            let mut stream = Vec::new();
            for b in consumer.by_ref() {
                assert_eq!(b.fields[0].device(), DeviceId::Gpu(0), "{tag}");
                stream.push((
                    b.epoch,
                    b.index_in_epoch,
                    b.labels.to_vec_i64().unwrap(),
                    b.fields[0].gather_bytes(),
                    b.last_in_epoch,
                ));
            }
            assert_eq!(consumer.stop_reason(), Some(StopReason::End), "{tag}");
            let stats = producer.join().unwrap();
            assert_eq!(stats.batches_published, 24, "{tag} workers={workers}");
            assert_eq!(stats.bytes_staged, 24 * (4 * 8 + 4 * 8), "{tag}");
            // All VRAM is released once the slabs drain / frees land.
            assert_eq!(
                ctx.devices.memory(DeviceId::Gpu(0)).unwrap().in_use(),
                0,
                "{tag} workers={workers}"
            );
            streams.push(stream);
        }
        assert_eq!(streams[0], streams[1], "serial == off (workers={workers})");
        assert_eq!(
            streams[0], streams[2],
            "overlapped == off (workers={workers})"
        );
    }
}

/// (epoch, index_in_epoch, labels, field bytes, last) per received batch.
type BatchTrace2 = Vec<(u64, u64, Vec<i64>, Vec<u8>, bool)>;

#[test]
fn steady_state_staging_performs_zero_device_allocations() {
    // Acceptance criterion: after warm-up, the slab rotation serves every
    // staged batch without touching the device allocator — asserted via
    // the MemoryBook allocation counter. The epoch is long enough that
    // the rubberband pin set (ceil(256 × 0.02) = 6 batches, whose slabs
    // stay leased past full acknowledgement) exceeds any small fixed
    // headroom: the rotation must be sized from the real pin limit.
    let ctx = TsContext::with_gpus(1, 1 << 30, false);
    let ep = "inproc://stage-zero-alloc";
    let mut cfg = producer_cfg(ep, 2);
    cfg.device = DeviceId::Gpu(0);
    let producer = TensorProducer::spawn(loader_with_workers(1024, 4, 2), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let book = ctx.devices.memory(DeviceId::Gpu(0)).unwrap().clone();
    let mut consumed = 0u64;
    let mut warmed_allocs = None;
    for _ in consumer.by_ref() {
        consumed += 1;
        if consumed == 16 {
            warmed_allocs = Some(book.alloc_count());
        }
    }
    assert_eq!(consumed, 512, "2 epochs × 256 batches");
    let stats = producer.join().unwrap();
    assert_eq!(stats.batches_published, 512);
    let warmed = warmed_allocs.unwrap();
    assert!(warmed > 0, "warm-up allocated the rotation");
    assert_eq!(
        book.alloc_count(),
        warmed,
        "steady-state staging allocated device memory after warm-up"
    );
    assert_eq!(book.in_use(), 0, "rotation drained after the run");
    assert!(book.peak() > 0);
    // The staging metrics flowed through the shared registry.
    let m = &ctx.metrics;
    assert_eq!(
        m.counter("staging.h2d_bytes").get(),
        stats.bytes_staged,
        "every published byte went through the copy stage"
    );
    assert_eq!(m.gauge("staging.slab_occupancy").get(), 0.0);
    assert_eq!(m.gauge("staging.copy_queue_depth").get(), 0.0);
    assert!(m.gauge("staging.h2d_bytes_per_sec").get() > 0.0);
}

#[test]
fn single_consumer_sees_all_batches_in_order() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t1";
    let producer = TensorProducer::spawn(loader(32, 4), &ctx, producer_cfg(ep, 2)).unwrap();
    let consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut labels_seen: Vec<i64> = Vec::new();
    let mut last_flags = 0;
    let mut consumer = consumer;
    for batch in consumer.by_ref() {
        assert_eq!(batch.batch_size(), 4);
        labels_seen.extend(batch.labels.to_vec_i64().unwrap());
        if batch.last_in_epoch {
            last_flags += 1;
        }
    }
    assert_eq!(consumer.stop_reason(), Some(StopReason::End));
    // 2 epochs × 32 samples, sequential sampler
    let expected: Vec<i64> = (0..32).chain(0..32).map(|i| i as i64).collect();
    assert_eq!(labels_seen, expected);
    assert_eq!(last_flags, 2);
    let stats = producer.join().unwrap();
    assert_eq!(stats.epochs_completed, 2);
    assert_eq!(stats.batches_published, 16);
    assert_eq!(stats.peak_consumers, 1);
}

#[test]
fn two_consumers_share_storage_zero_copy() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t2";
    let mut cfg = producer_cfg(ep, 1);
    // Keep the whole (tiny) epoch inside the join window so the second
    // consumer is admitted regardless of connect timing.
    cfg.rubberband_cutoff = 1.0;
    let producer = TensorProducer::spawn(loader(16, 4), &ctx, cfg).unwrap();
    let c1 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let c2 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let h1 = std::thread::spawn(move || {
        let mut ids = Vec::new();
        let mut c1 = c1;
        for b in c1.by_ref() {
            ids.push((b.seq, b.fields[0].storage_id()));
        }
        ids
    });
    let h2 = std::thread::spawn(move || {
        let mut ids = Vec::new();
        let mut c2 = c2;
        for b in c2.by_ref() {
            ids.push((b.seq, b.fields[0].storage_id()));
        }
        ids
    });
    let ids1 = h1.join().unwrap();
    let ids2 = h2.join().unwrap();
    producer.join().unwrap();
    assert_eq!(ids1.len(), 4);
    // identical storage ids: the data was shared, not copied
    assert_eq!(ids1, ids2);
}

#[test]
fn memory_is_released_after_run() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t3";
    let producer = TensorProducer::spawn(loader(16, 4), &ctx, producer_cfg(ep, 1)).unwrap();
    let consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let n = consumer.count();
    assert_eq!(n, 4);
    producer.join().unwrap();
    assert!(
        ctx.registry.is_empty(),
        "registry still holds {} storages",
        ctx.registry.len()
    );
}

#[test]
fn slow_consumer_bounds_producer_drift() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t4";
    let mut cfg = producer_cfg(ep, 1);
    cfg.buffer_size = 2;
    let producer = TensorProducer::spawn(loader(64, 4), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut max_buffered = 0usize;
    while let Some(_b) = consumer.next() {
        // The local buffer (socket queue + decoded queue) can never exceed
        // the window: the producer stops at N unacked.
        max_buffered = max_buffered.max(consumer.buffered());
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        max_buffered <= 2,
        "buffered {max_buffered} exceeded window of 2"
    );
    producer.join().unwrap();
}

#[test]
fn gpu_staging_accounts_traffic_and_releases_vram() {
    let ctx = TsContext::with_gpus(1, 1 << 30, false);
    let ep = "inproc://t5";
    let mut cfg = producer_cfg(ep, 1);
    cfg.device = DeviceId::Gpu(0);
    let producer = TensorProducer::spawn(loader(16, 4), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut batches = 0;
    for b in consumer.by_ref() {
        assert_eq!(b.fields[0].device(), DeviceId::Gpu(0));
        batches += 1;
    }
    assert_eq!(batches, 4);
    let stats = producer.join().unwrap();
    // fields: 4 samples × 2 f32 = 32 B; labels: 4 × 8 = 32 B; ×4 batches
    assert_eq!(stats.bytes_staged, 4 * 64);
    let pcie = ctx
        .devices
        .traffic()
        .bytes(ts_device::traffic::Channel::Pcie(0));
    assert_eq!(pcie, 4 * 64);
    // all VRAM released after the run
    assert_eq!(ctx.devices.memory(DeviceId::Gpu(0)).unwrap().in_use(), 0);
    assert!(ctx.devices.memory(DeviceId::Gpu(0)).unwrap().peak() > 0);
}

#[test]
fn flexible_batch_sizes_fig5() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t6";
    let mut cfg = producer_cfg(ep, 1);
    cfg.flexible = Some(FlexibleConfig::new(16));
    // tiny epoch: keep the join window open for all three consumers
    cfg.rubberband_cutoff = 1.0;
    // 64 samples, loader batches of 8, producer batches of 16 → 4 producer
    // batches per epoch.
    let producer = TensorProducer::spawn(loader(64, 8), &ctx, cfg).unwrap();

    // Connect every consumer before any of them starts consuming, so the
    // tiny epoch cannot finish before the later joins arrive.
    let connect = |bs: usize| {
        let mut cfg = consumer_cfg(ep);
        cfg.batch_size = Some(bs);
        TensorConsumer::connect(&ctx, cfg).unwrap()
    };
    let spawn_consumer = |mut c: TensorConsumer| {
        std::thread::spawn(move || {
            let mut per_pb: HashMap<u64, Vec<i64>> = HashMap::new();
            let mut sizes = Vec::new();
            for b in c.by_ref() {
                sizes.push(b.batch_size());
                per_pb
                    .entry(b.index_in_epoch)
                    .or_default()
                    .extend(b.labels.to_vec_i64().unwrap());
            }
            assert_eq!(c.stop_reason(), Some(StopReason::End));
            (sizes, per_pb)
        })
    };
    let (c4, c7, c6) = (connect(4), connect(7), connect(6));
    let h4 = spawn_consumer(c4);
    let h7 = spawn_consumer(c7);
    let h6 = spawn_consumer(c6);
    let (sizes4, pb4) = h4.join().unwrap();
    let (sizes7, pb7) = h7.join().unwrap();
    let (sizes6, pb6) = h6.join().unwrap();
    producer.join().unwrap();

    // Figure 5: consumers receive ceil(16/b) batches of exactly b samples
    // per producer batch.
    assert_eq!(sizes4, vec![4; 16]);
    assert_eq!(sizes7, vec![7; 12]);
    assert_eq!(sizes6, vec![6; 12]);

    // Every consumer covers every sample of every producer batch; repeats
    // stay within ceil(P/b)*b - P.
    for (pb, expected_repeats) in [(&pb4, 0usize), (&pb7, 5), (&pb6, 2)] {
        assert_eq!(pb.len(), 4, "4 producer batches");
        for labels in pb.values() {
            let unique: BTreeSet<i64> = labels.iter().copied().collect();
            assert_eq!(unique.len(), 16, "full coverage of the producer batch");
            assert_eq!(labels.len(), 16 + expected_repeats);
        }
    }

    // All consumers saw the same sample universe (same data, same rate).
    let all4: BTreeSet<i64> = pb4.values().flatten().copied().collect();
    let all7: BTreeSet<i64> = pb7.values().flatten().copied().collect();
    assert_eq!(all4, all7);
    assert_eq!(all4.len(), 64);
}

#[test]
fn flexible_rejects_oversized_consumer_batch() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t7";
    let mut cfg = producer_cfg(ep, 1);
    cfg.flexible = Some(FlexibleConfig::new(8));
    cfg.first_consumer_timeout = Some(Duration::from_millis(400));
    let producer = TensorProducer::spawn(loader(16, 4), &ctx, cfg).unwrap();
    let mut ccfg = consumer_cfg(ep);
    ccfg.batch_size = Some(64);
    let err = TensorConsumer::connect(&ctx, ccfg).unwrap_err();
    assert!(matches!(err, crate::TsError::Join(_)), "{err:?}");
    let stats = producer.join().unwrap();
    assert_eq!(stats.joins_rejected, 1);
}

#[test]
fn order_variation_decorrelates_consumers() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t8";
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 1.0;
    cfg.flexible = Some(FlexibleConfig {
        producer_batch: 16,
        order: OrderConfig {
            offsets: true,
            shuffle: true,
            seed: 7,
        },
    });
    let producer = TensorProducer::spawn(loader(32, 8), &ctx, cfg).unwrap();
    let connect = |id: u64| {
        let mut cfg = consumer_cfg(ep);
        cfg.batch_size = Some(4);
        cfg.consumer_id = Some(id);
        TensorConsumer::connect(&ctx, cfg).unwrap()
    };
    let spawn_consumer = |mut c: TensorConsumer| {
        std::thread::spawn(move || {
            let mut batches: Vec<Vec<i64>> = Vec::new();
            for b in c.by_ref() {
                batches.push(b.labels.to_vec_i64().unwrap());
            }
            batches
        })
    };
    // connect both before either consumes (the epoch is tiny)
    let (c1, c2) = (connect(11), connect(22));
    let h1 = spawn_consumer(c1);
    let h2 = spawn_consumer(c2);
    let b1 = h1.join().unwrap();
    let b2 = h2.join().unwrap();
    producer.join().unwrap();
    assert_eq!(b1.len(), 8); // 2 producer batches × 4 carved batches
    assert_eq!(b2.len(), 8);
    // Different offsets/shuffles: the batch streams must differ...
    assert_ne!(b1, b2);
    // ...but the sample universe is identical.
    let s1: BTreeSet<i64> = b1.iter().flatten().copied().collect();
    let s2: BTreeSet<i64> = b2.iter().flatten().copied().collect();
    assert_eq!(s1, s2);
    assert_eq!(s1.len(), 32);
}

#[test]
fn rubberband_admits_and_replays_early_joiner() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t9";
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 0.25; // generous window: 4 of 16 batches
    cfg.buffer_size = 2;
    let producer = TensorProducer::spawn(loader(64, 4), &ctx, cfg).unwrap();
    // First consumer starts immediately and consumes slowly.
    let mut c1 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut first_labels: Vec<i64> = Vec::new();
    for _ in 0..2 {
        let b = c1.next().unwrap();
        first_labels.extend(b.labels.to_vec_i64().unwrap());
    }
    // Late joiner inside the window: must see the epoch from the start.
    let mut c2 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let h1 = std::thread::spawn(move || {
        let mut labels = first_labels;
        for b in c1.by_ref() {
            labels.extend(b.labels.to_vec_i64().unwrap());
        }
        labels
    });
    let mut labels2: Vec<i64> = Vec::new();
    for b in c2.by_ref() {
        labels2.extend(b.labels.to_vec_i64().unwrap());
    }
    let labels1 = h1.join().unwrap();
    let stats = producer.join().unwrap();
    let expected: Vec<i64> = (0..64).collect();
    assert_eq!(labels1, expected);
    assert_eq!(labels2, expected, "late joiner replayed the epoch prefix");
    assert!(stats.batches_replayed > 0);
}

#[test]
fn late_joiner_waits_for_next_epoch() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t10";
    let mut cfg = producer_cfg(ep, 2);
    cfg.rubberband_cutoff = 0.02; // 16 batches/epoch → window of 1 batch
    let producer = TensorProducer::spawn(loader(64, 4), &ctx, cfg).unwrap();
    let mut c1 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    // Drive well past the join window.
    let mut consumed = 0;
    let mut first_epochs: Vec<u64> = Vec::new();
    for b in c1.by_ref() {
        consumed += 1;
        first_epochs.push(b.epoch);
        if consumed == 6 {
            break;
        }
    }
    let h2 = {
        let ctx = ctx.clone();
        let ep = ep.to_string();
        std::thread::spawn(move || {
            let mut c2 = TensorConsumer::connect(&ctx, consumer_cfg(&ep)).unwrap();
            let joined = c2.joined_epoch();
            let mut labels = Vec::new();
            let mut epochs = BTreeSet::new();
            for b in c2.by_ref() {
                epochs.insert(b.epoch);
                labels.extend(b.labels.to_vec_i64().unwrap());
            }
            (joined, labels, epochs)
        })
    };
    // keep consuming to let epoch 0 finish
    for _ in c1.by_ref() {}
    drop(c1);
    let (joined, labels2, epochs2) = h2.join().unwrap();
    producer.join().unwrap();
    assert_eq!(joined, 1, "join deferred to the next epoch");
    assert_eq!(epochs2, BTreeSet::from([1]));
    assert_eq!(labels2, (0..64).collect::<Vec<i64>>());
}

#[test]
fn dead_consumer_is_detached_and_others_continue() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t11";
    let mut cfg = producer_cfg(ep, 1);
    cfg.heartbeat_timeout = Duration::from_millis(150);
    cfg.rubberband_cutoff = 1.0; // admit the hand-rolled consumer whenever it joins
    let producer = TensorProducer::spawn(loader(64, 4), &ctx, cfg).unwrap();
    let mut good = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    // A "dead" consumer: joins by hand, then never acks or heartbeats.
    {
        use crate::protocol::messages::{CtrlMsg, PayloadMode};
        let sub = ts_socket::SubSocket::connect(&ctx.sockets, &format!("{ep}/data"));
        sub.subscribe(&crate::protocol::messages::topics::consumer(999));
        let push = ts_socket::PushSocket::connect(&ctx.sockets, &format!("{ep}/ctrl"));
        push.send(ts_socket::Multipart::single(
            CtrlMsg::Join {
                consumer_id: 999,
                batch_size: 0,
                mode: PayloadMode::Shm,
            }
            .encode(),
        ))
        .unwrap();
        // wait for the admit reply, subscribe, declare ready, then vanish
        let (_, _) = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        sub.subscribe(crate::protocol::messages::topics::BATCH);
        push.send(ts_socket::Multipart::single(
            CtrlMsg::Ready { consumer_id: 999 }.encode(),
        ))
        .unwrap();
        // sockets drop here — consumer 999 is gone without a Leave
    }
    let mut n = 0;
    for _ in good.by_ref() {
        n += 1;
    }
    assert_eq!(n, 16, "surviving consumer finished the epoch");
    assert_eq!(good.stop_reason(), Some(StopReason::End));
    let stats = producer.join().unwrap();
    assert_eq!(stats.consumers_detached, 1);
}

#[test]
fn producer_without_consumers_times_out() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t12";
    let mut cfg = producer_cfg(ep, 1);
    cfg.first_consumer_timeout = Some(Duration::from_millis(100));
    let producer = TensorProducer::spawn(loader(16, 4), &ctx, cfg).unwrap();
    let stats = producer.join().unwrap();
    assert_eq!(stats.epochs_completed, 0);
    assert_eq!(stats.batches_published, 0);
}

#[test]
fn consumer_connect_times_out_without_producer() {
    let ctx = TsContext::host_only();
    let mut cfg = consumer_cfg("inproc://t13");
    cfg.recv_timeout = Duration::from_millis(100);
    let err = TensorConsumer::connect(&ctx, cfg).unwrap_err();
    assert!(matches!(err, crate::TsError::Timeout(_)));
}

#[test]
fn consumer_drop_mid_epoch_lets_producer_finish() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t14";
    let mut cfg = producer_cfg(ep, 1);
    // Tiny test epochs (16 batches) make the default 2% join window a
    // single batch; widen it so the second consumer joins epoch 0.
    cfg.rubberband_cutoff = 0.5;
    let producer = TensorProducer::spawn(loader(64, 4), &ctx, cfg).unwrap();
    let mut c1 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut c2 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let _ = c1.next().unwrap();
    let _ = c1.next().unwrap();
    drop(c1); // clean leave
    let mut n = 2; // c1 consumed 2
    for _ in c2.by_ref() {
        n += 1;
    }
    assert_eq!(n - 2, 16, "c2 saw the whole epoch");
    let stats = producer.join().unwrap();
    assert_eq!(stats.epochs_completed, 1);
    assert_eq!(stats.peak_consumers, 2);
}

#[test]
fn local_pipeline_transforms_privately() {
    use ts_data::{Pipeline, RandomCrop};

    // Dataset field is [2] f32 — too small for crops; build an image
    // dataset instead.
    let ctx = TsContext::host_only();
    let ep = "inproc://t15";
    let dataset =
        Arc::new(ts_data::SyntheticImageDataset::new(32, 16, 16, 3).with_encoded_len(256));
    let image_loader = ts_data::DataLoader::new(
        dataset,
        ts_data::DataLoaderConfig {
            batch_size: 8,
            num_workers: 0,
            shuffle: false,
            ..Default::default()
        },
    );
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 1.0;
    let producer = TensorProducer::spawn(image_loader, &ctx, cfg).unwrap();

    let cropped = {
        let ctx = ctx.clone();
        let mut cc = consumer_cfg(ep);
        cc.local_pipeline = Some(Arc::new(
            Pipeline::new(7).with(RandomCrop { out_h: 8, out_w: 8 }),
        ));
        std::thread::spawn(move || {
            let mut c = TensorConsumer::connect(&ctx, cc).unwrap();
            let mut shapes = Vec::new();
            let mut storages = Vec::new();
            let mut labels = Vec::new();
            for b in c.by_ref() {
                shapes.push(b.fields[0].shape().to_vec());
                storages.push(b.fields[0].storage_id());
                labels.extend(b.labels.to_vec_i64().unwrap());
            }
            (shapes, storages, labels)
        })
    };
    let raw = {
        let ctx = ctx.clone();
        let cc = consumer_cfg(ep);
        std::thread::spawn(move || {
            let mut c = TensorConsumer::connect(&ctx, cc).unwrap();
            let mut shapes = Vec::new();
            let mut storages = Vec::new();
            let mut labels = Vec::new();
            for b in c.by_ref() {
                shapes.push(b.fields[0].shape().to_vec());
                storages.push(b.fields[0].storage_id());
                labels.extend(b.labels.to_vec_i64().unwrap());
            }
            (shapes, storages, labels)
        })
    };
    let (crop_shapes, crop_storages, crop_labels) = cropped.join().unwrap();
    let (raw_shapes, raw_storages, raw_labels) = raw.join().unwrap();
    producer.join().unwrap();
    // the cropped consumer trains on private 8x8 copies...
    assert!(crop_shapes.iter().all(|s| s == &[8, 3, 8, 8]));
    // ...while the raw consumer keeps the shared 16x16 storage
    assert!(raw_shapes.iter().all(|s| s == &[8, 3, 16, 16]));
    assert!(crop_storages.iter().zip(&raw_storages).all(|(a, b)| a != b));
    // same samples in the same order underneath
    assert_eq!(crop_labels, raw_labels);
}

#[test]
fn vec_source_round_trips_custom_batches() {
    use crate::runtime::producer::VecSource;

    let ctx = TsContext::host_only();
    let ep = "inproc://t16";
    // "Hugging-Face-style" batches built by hand
    let batches: Vec<ts_data::Batch> = (0..5)
        .map(|i| ts_data::Batch {
            epoch: 0,
            index: i,
            fields: vec![Tensor::from_f32(
                &[(i * 2) as f32, (i * 2 + 1) as f32],
                &[2, 1],
                DeviceId::Cpu,
            )
            .unwrap()],
            labels: Tensor::from_i64(&[i as i64, i as i64], &[2], DeviceId::Cpu).unwrap(),
            sample_indices: vec![i * 2, i * 2 + 1],
            last_in_epoch: i == 4,
        })
        .collect();
    let source = VecSource::new(batches).unwrap();
    let producer = TensorProducer::spawn(source, &ctx, producer_cfg(ep, 2)).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut per_epoch = vec![0u32; 2];
    for b in consumer.by_ref() {
        per_epoch[b.epoch as usize] += 1;
    }
    assert_eq!(per_epoch, vec![5, 5]);
    let stats = producer.join().unwrap();
    assert_eq!(stats.batches_published, 10);
}

#[test]
fn vec_source_rejects_ragged_batches() {
    use crate::runtime::producer::VecSource;
    let mk = |n: usize| ts_data::Batch {
        epoch: 0,
        index: 0,
        fields: vec![Tensor::zeros(&[n, 1], ts_tensor::DType::F32, DeviceId::Cpu)],
        labels: Tensor::zeros(&[n], ts_tensor::DType::I64, DeviceId::Cpu),
        sample_indices: (0..n).collect(),
        last_in_epoch: false,
    };
    assert!(VecSource::new(vec![]).is_err());
    assert!(VecSource::new(vec![mk(4), mk(3)]).is_err());
    assert!(VecSource::new(vec![mk(4), mk(4)]).is_ok());
}

#[test]
fn aborted_producer_ends_consumers_cleanly() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t17";
    let producer = TensorProducer::spawn(loader(4096, 4), &ctx, producer_cfg(ep, 8)).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut seen = 0u64;
    for _ in consumer.by_ref().take(3) {
        seen += 1;
    }
    producer.abort();
    // drain whatever is still in flight; must terminate with End, not hang
    for _ in consumer.by_ref() {
        seen += 1;
    }
    assert_eq!(consumer.stop_reason(), Some(StopReason::End));
    assert!(seen < 2048, "abort must cut the run short, saw {seen}");
    let stats = producer.join().unwrap();
    assert!(stats.batches_published < 2048);
    assert!(ctx.registry.is_empty());
}

#[test]
fn flexible_mode_covers_multiple_epochs() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t18";
    let mut cfg = producer_cfg(ep, 2);
    cfg.flexible = Some(FlexibleConfig::new(8));
    cfg.rubberband_cutoff = 1.0;
    let producer = TensorProducer::spawn(loader(32, 4), &ctx, cfg).unwrap();
    let mut cc = consumer_cfg(ep);
    cc.batch_size = Some(5);
    let mut consumer = TensorConsumer::connect(&ctx, cc).unwrap();
    let mut per_epoch: HashMap<u64, BTreeSet<i64>> = HashMap::new();
    for b in consumer.by_ref() {
        assert_eq!(b.batch_size(), 5);
        per_epoch
            .entry(b.epoch)
            .or_default()
            .extend(b.labels.to_vec_i64().unwrap());
    }
    producer.join().unwrap();
    assert_eq!(per_epoch.len(), 2);
    for (epoch, labels) in per_epoch {
        assert_eq!(labels, (0..32).collect::<BTreeSet<i64>>(), "epoch {epoch}");
    }
}

#[test]
fn consumer_times_out_when_admitted_but_starved() {
    use crate::protocol::messages::{topics, CtrlMsg, DataMsg, JoinDecision};
    use ts_socket::{Multipart, PubSocket, PullSocket};

    let ctx = TsContext::host_only();
    let ep = "inproc://t19";
    // A fake producer that admits and then goes silent.
    let publisher = PubSocket::bind(&ctx.sockets, &format!("{ep}/data")).unwrap();
    let ctrl = PullSocket::bind(&ctx.sockets, &format!("{ep}/ctrl")).unwrap();
    let fake = std::thread::spawn(move || {
        loop {
            let Ok(msg) = ctrl.recv_timeout(Duration::from_secs(2)) else {
                return;
            };
            let Ok(m) = CtrlMsg::decode(&msg.frames()[0]) else {
                continue;
            };
            if let CtrlMsg::Join { consumer_id, .. } = m {
                let reply = DataMsg::JoinReply {
                    consumer_id,
                    decision: JoinDecision::AdmitReplay {
                        epoch: 0,
                        replay_from: 0,
                        num_batches: 100,
                        start_seq: 0,
                    },
                };
                publisher
                    .send(
                        &topics::consumer(consumer_id),
                        Multipart::single(reply.encode()),
                    )
                    .unwrap();
                // ...and never publish any batch
            }
        }
    });
    let mut cc = consumer_cfg(ep);
    cc.recv_timeout = Duration::from_millis(200);
    let mut consumer = TensorConsumer::connect(&ctx, cc).unwrap();
    assert!(consumer.next().is_none());
    assert_eq!(consumer.stop_reason(), Some(StopReason::Timeout));
    drop(consumer);
    fake.join().unwrap();
}

#[test]
fn metrics_registry_tracks_producer_and_consumers() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t20";
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 1.0;
    let producer = TensorProducer::spawn(loader(32, 4), &ctx, cfg).unwrap();
    let mut c1 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut c2 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let h = std::thread::spawn(move || c2.by_ref().count());
    let n1 = c1.by_ref().count();
    let n2 = h.join().unwrap();
    drop(c1);
    let stats = producer.join().unwrap();
    assert_eq!(n1 + n2, 16);
    let m = &ctx.metrics;
    assert_eq!(m.counter("producer.batches").get(), stats.batches_published);
    assert_eq!(m.counter("consumer.batches").get(), 16);
    assert_eq!(m.counter("consumer.samples").get(), 64);
    assert!(m.counter("consumer.acks").get() >= 14);
    assert_eq!(m.counter("producer.detached").get(), 0);
}

#[test]
fn producer_crash_surfaces_as_producer_gone() {
    let ctx = TsContext::host_only();
    let ep = "inproc://t21";
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 1.0;
    let producer = TensorProducer::spawn(loader(64, 4), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let _ = consumer.next().unwrap();
    // Simulate a producer crash: drop the handle without clean shutdown.
    // Drop aborts + joins the thread, which still publishes End — so to
    // model a *hard* crash we instead look at what happens when the socket
    // vanishes: kill via abort and drain.
    producer.abort();
    let _rest: Vec<_> = consumer.by_ref().collect();
    // Clean abort still ends with End; the ProducerGone path is covered by
    // the socket-level test below.
    assert!(matches!(
        consumer.stop_reason(),
        Some(StopReason::End) | Some(StopReason::ProducerGone)
    ));
}

#[test]
fn socket_teardown_mid_stream_is_producer_gone() {
    use crate::protocol::messages::{topics, CtrlMsg, DataMsg, JoinDecision};
    use ts_socket::{Multipart, PubSocket, PullSocket};

    let ctx = TsContext::host_only();
    let ep = "inproc://t22";
    let publisher = PubSocket::bind(&ctx.sockets, &format!("{ep}/data")).unwrap();
    let ctrl = PullSocket::bind(&ctx.sockets, &format!("{ep}/ctrl")).unwrap();
    let fake = std::thread::spawn(move || {
        // admit the first joiner, then drop both sockets (hard crash)
        loop {
            let Ok(msg) = ctrl.recv_timeout(Duration::from_secs(2)) else {
                return;
            };
            if let Ok(CtrlMsg::Join { consumer_id, .. }) = CtrlMsg::decode(&msg.frames()[0]) {
                let reply = DataMsg::JoinReply {
                    consumer_id,
                    decision: JoinDecision::AdmitReplay {
                        epoch: 0,
                        replay_from: 0,
                        num_batches: 10,
                        start_seq: 0,
                    },
                };
                publisher
                    .send(
                        &topics::consumer(consumer_id),
                        Multipart::single(reply.encode()),
                    )
                    .unwrap();
                // wait for the Ready confirmation, then "crash"
                loop {
                    let Ok(m) = ctrl.recv_timeout(Duration::from_secs(2)) else {
                        return;
                    };
                    if matches!(CtrlMsg::decode(&m.frames()[0]), Ok(CtrlMsg::Ready { .. })) {
                        return; // sockets drop: crash
                    }
                }
            }
        }
    });
    let mut cc = consumer_cfg(ep);
    cc.recv_timeout = Duration::from_secs(2);
    let mut consumer = TensorConsumer::connect(&ctx, cc).unwrap();
    fake.join().unwrap();
    assert!(consumer.next().is_none());
    assert_eq!(consumer.stop_reason(), Some(StopReason::ProducerGone));
}

/// Full per-batch trace including payload bytes, for byte-identity
/// assertions: (epoch, shard, index, labels, field bytes, last).
type ByteTrace = Vec<(u64, usize, u64, Vec<i64>, Vec<u8>, bool)>;

fn consume_trace(mut consumer: TensorConsumer) -> (ByteTrace, Option<StopReason>) {
    let mut trace = Vec::new();
    for b in consumer.by_ref() {
        trace.push((
            b.epoch,
            b.shard,
            b.index_in_epoch,
            b.labels.to_vec_i64().unwrap(),
            b.fields[0].gather_bytes(),
            b.last_in_epoch,
        ));
    }
    (trace, consumer.stop_reason())
}

fn sharded_loaders(n: usize, batch: usize, shards: usize, shuffle: bool) -> Vec<DataLoader> {
    DataLoader::sharded(
        Arc::new(IndexDataset { len: n }),
        DataLoaderConfig {
            batch_size: batch,
            num_workers: 0,
            shuffle,
            seed: 7,
            drop_last: true,
            ..Default::default()
        },
        shards,
    )
}

#[test]
fn single_shard_group_is_byte_identical_to_plain_producer() {
    // Acceptance criterion: with shards == 1 the coordinator path must
    // produce a byte-identical batch stream to the plain producer.
    let plain = {
        let ctx = TsContext::host_only();
        let ep = "inproc://shard-id-plain";
        let producer = TensorProducer::spawn(loader(48, 4), &ctx, producer_cfg(ep, 2)).unwrap();
        let consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
        let (trace, reason) = consume_trace(consumer);
        assert_eq!(reason, Some(StopReason::End));
        producer.join().unwrap();
        trace
    };
    let grouped = {
        let ctx = TsContext::host_only();
        let ep = "inproc://shard-id-group";
        let group = ShardedProducerGroup::spawn(
            sharded_loaders(48, 4, 1, false),
            &ctx,
            producer_cfg(ep, 2),
        )
        .unwrap();
        let mut cc = consumer_cfg(ep);
        cc.shards = 1;
        let consumer = TensorConsumer::connect(&ctx, cc).unwrap();
        let (trace, reason) = consume_trace(consumer);
        assert_eq!(reason, Some(StopReason::End));
        let stats = group.join().unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].epochs_completed, 2);
        trace
    };
    assert_eq!(plain, grouped, "shards=1 must degenerate byte-for-byte");
}

#[test]
fn sharded_group_covers_each_epoch_exactly_once_and_is_bit_stable() {
    // 2 and 3 shards over a shuffled epoch: the interleaved stream covers
    // the dataset exactly once per epoch, in an order that is identical
    // across independent runs (bit-stability of the (epoch, shard, seq)
    // interleave).
    for shards in [2usize, 3] {
        let mut runs: Vec<ByteTrace> = Vec::new();
        for run in 0..2 {
            let ctx = TsContext::host_only();
            let ep = format!("inproc://shard-cover-{shards}-{run}");
            let group = ShardedProducerGroup::spawn(
                sharded_loaders(48, 4, shards, true),
                &ctx,
                producer_cfg(&ep, 2),
            )
            .unwrap();
            let mut cc = consumer_cfg(&ep);
            cc.shards = shards;
            let consumer = TensorConsumer::connect(&ctx, cc).unwrap();
            assert_eq!(consumer.num_shards(), shards);
            let (trace, reason) = consume_trace(consumer);
            assert_eq!(reason, Some(StopReason::End), "shards={shards} run={run}");
            let stats = group.join().unwrap();
            assert_eq!(stats.len(), shards);
            for (s, st) in stats.iter().enumerate() {
                assert_eq!(st.epochs_completed, 2, "shard {s}");
            }
            // Coverage: every epoch delivers all 48 labels exactly once.
            let mut per_epoch: HashMap<u64, Vec<i64>> = HashMap::new();
            for (epoch, _, _, labels, _, _) in &trace {
                per_epoch.entry(*epoch).or_default().extend(labels);
            }
            assert_eq!(per_epoch.len(), 2);
            for (epoch, mut labels) in per_epoch {
                labels.sort_unstable();
                assert_eq!(
                    labels,
                    (0..48).collect::<Vec<i64>>(),
                    "epoch {epoch} shards {shards}"
                );
            }
            // Interleave contract: delivery is sorted by (epoch, index, shard).
            let keys: Vec<(u64, u64, usize)> =
                trace.iter().map(|(e, s, i, ..)| (*e, *i, *s)).collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "(epoch, shard, seq) order violated");
            runs.push(trace);
        }
        assert_eq!(
            runs[0], runs[1],
            "shards={shards}: stream must be bit-stable"
        );
    }
}

#[test]
fn sharded_mid_epoch_join_replays_every_shard() {
    // Acceptance criterion: a consumer joining mid-epoch replays a
    // consistent full epoch from *all* shards, not just the shard that
    // processed its join first.
    let ctx = TsContext::host_only();
    let ep = "inproc://shard-midjoin";
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 1.0; // whole epoch joinable
    cfg.buffer_size = 2;
    let group = ShardedProducerGroup::spawn(sharded_loaders(64, 4, 2, false), &ctx, cfg).unwrap();
    let mut cc = consumer_cfg(ep);
    cc.shards = 2;
    // First consumer starts the epoch and consumes a few batches.
    let mut c1 = TensorConsumer::connect(&ctx, cc.clone()).unwrap();
    let mut labels1: Vec<i64> = Vec::new();
    for _ in 0..4 {
        let b = c1.next().unwrap();
        labels1.extend(b.labels.to_vec_i64().unwrap());
    }
    // Second consumer joins mid-epoch: the group must admit it ONCE and
    // replay the epoch prefix of both shards.
    let c2 = TensorConsumer::connect(&ctx, cc).unwrap();
    let h1 = std::thread::spawn(move || {
        for b in c1.by_ref() {
            labels1.extend(b.labels.to_vec_i64().unwrap());
        }
        (labels1, c1.stop_reason())
    });
    let (trace2, reason2) = consume_trace(c2);
    let (labels1, reason1) = h1.join().unwrap();
    let stats = group.join().unwrap();
    assert_eq!(reason1, Some(StopReason::End));
    assert_eq!(reason2, Some(StopReason::End));
    // Both consumers saw the complete epoch (all 64 samples).
    let mut sorted1 = labels1.clone();
    sorted1.sort_unstable();
    assert_eq!(sorted1, (0..64).collect::<Vec<i64>>());
    let mut labels2: Vec<i64> = trace2.iter().flat_map(|t| t.3.clone()).collect();
    labels2.sort_unstable();
    assert_eq!(
        labels2,
        (0..64).collect::<Vec<i64>>(),
        "mid-epoch joiner must replay the full epoch from every shard"
    );
    // The joiner really got batches from both shards, via replay.
    let shards_seen: BTreeSet<usize> = trace2.iter().map(|t| t.1).collect();
    assert_eq!(shards_seen, BTreeSet::from([0, 1]));
    assert!(
        stats.iter().all(|s| s.batches_replayed > 0),
        "every shard replayed its prefix: {stats:?}"
    );
}

#[test]
fn sharded_staging_engines_report_per_shard_gauges() {
    // Each shard pipeline owns its own staging engine + slab rotation;
    // gauges are namespaced `staging.s<shard>.*` so one shard finishing
    // (and zeroing its gauges) cannot clobber another's, while the
    // `staging.h2d_bytes` counter aggregates across shards.
    let ctx = TsContext::with_gpus(1, 1 << 30, false);
    let ep = "inproc://shard-staging";
    let mut cfg = producer_cfg(ep, 1);
    cfg.device = DeviceId::Gpu(0);
    let group = ShardedProducerGroup::spawn(sharded_loaders(64, 4, 2, false), &ctx, cfg).unwrap();
    let mut cc = consumer_cfg(ep);
    cc.shards = 2;
    let mut consumer = TensorConsumer::connect(&ctx, cc).unwrap();
    let mut batches = 0u64;
    for b in consumer.by_ref() {
        assert_eq!(b.fields[0].device(), DeviceId::Gpu(0));
        batches += 1;
    }
    assert_eq!(batches, 16, "2 shards × 8 batches");
    let stats = group.join().unwrap();
    let gauges: std::collections::HashMap<String, f64> =
        ctx.metrics.gauge_snapshot().into_iter().collect();
    for shard in 0..2 {
        for name in ["slab_occupancy", "copy_queue_depth", "h2d_bytes_per_sec"] {
            assert!(
                gauges.contains_key(&format!("staging.s{shard}.{name}")),
                "missing staging.s{shard}.{name} in {gauges:?}"
            );
        }
    }
    assert_eq!(
        ctx.metrics.counter("staging.h2d_bytes").get(),
        stats.iter().map(|s| s.bytes_staged).sum::<u64>(),
        "counter aggregates both shards"
    );
    assert_eq!(ctx.devices.memory(DeviceId::Gpu(0)).unwrap().in_use(), 0);
}

#[test]
fn sharded_group_recycles_per_shard_arena_slots() {
    // Each shard's publish pipeline recycles through its own slot pool.
    let ctx = TsContext::host_only();
    let arena_path =
        std::env::temp_dir().join(format!("ts-sharded-pool-{}.arena", std::process::id()));
    ctx.create_arena(&arena_path, 32, 4096).unwrap();
    let pools: Vec<_> = (0..2)
        .map(|s| ctx.enable_shard_slot_recycling(s, 8).unwrap())
        .collect();
    let ep = "inproc://shard-pools";
    let mut cfg = producer_cfg(ep, 2);
    cfg.rubberband_cutoff = 0.02;
    let group = ShardedProducerGroup::spawn(sharded_loaders(64, 4, 2, false), &ctx, cfg).unwrap();
    let mut cc = consumer_cfg(ep);
    cc.shards = 2;
    let consumer = TensorConsumer::connect(&ctx, cc).unwrap();
    let (trace, reason) = consume_trace(consumer);
    assert_eq!(reason, Some(StopReason::End));
    assert_eq!(trace.len(), 32, "2 epochs × 2 shards × 8 batches");
    group.join().unwrap();
    for (s, pool) in pools.iter().enumerate() {
        let stats = pool.stats();
        assert!(stats.hits > 0, "shard {s} never recycled a slot: {stats:?}");
        assert!(stats.returned > 0, "shard {s} never reclaimed: {stats:?}");
    }
    assert!(ctx.registry.is_empty());
    for pool in &pools {
        pool.drain();
    }
    assert_eq!(ctx.arena().unwrap().slots_in_use(), 0);
}

#[test]
fn aborted_producer_join_returns_partial_stats_promptly() {
    // Regression: `join` on an aborted producer must return the partial
    // ProducerStats instead of erroring or blocking out the ack-drain
    // timeout.
    let ctx = TsContext::host_only();
    let ep = "inproc://abort-join";
    let mut cfg = producer_cfg(ep, 8);
    cfg.heartbeat_timeout = Duration::from_secs(30); // a hang would be obvious
    let producer = TensorProducer::spawn(loader(4096, 4), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut seen = 0u64;
    for _ in consumer.by_ref().take(3) {
        seen += 1;
    }
    assert_eq!(seen, 3);
    // Abort mid-epoch with acks still outstanding, then join immediately.
    producer.abort();
    let started = std::time::Instant::now();
    let stats = producer.join().expect("abort + join must yield stats");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "join blocked {:?} after abort",
        started.elapsed()
    );
    assert_eq!(stats.epochs_completed, 0, "aborted mid first epoch");
    assert!(stats.batches_published >= 3, "partial counters preserved");
    assert!(stats.batches_published < 1024);
    assert_eq!(stats.peak_consumers, 1);
    // The consumer still ends cleanly on the producer's End, even when
    // the abort raced ahead and left stale announces in flight (their
    // payloads are skipped, not fatal).
    for _ in consumer.by_ref() {}
    assert_eq!(
        consumer.stop_reason(),
        Some(StopReason::End),
        "last_error: {:?}",
        consumer.last_error()
    );
}

#[test]
fn stale_announces_from_an_aborted_producer_are_skipped_not_fatal() {
    // An aborting producer releases every live batch the moment `join`
    // is called — announces already on the wire for those batches now
    // reference freed payloads. The consumer must skip them (counted in
    // consumer.dangling_skipped) and still end on the producer's End
    // instead of wedging with a Protocol stop.
    let ctx = TsContext::host_only();
    let ep = "inproc://abort-stale";
    let producer = TensorProducer::spawn(loader(4096, 4), &ctx, producer_cfg(ep, 8)).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    // Take one batch without ever acking it: the producer fills its
    // publish window (buffer_size ahead of the oldest unacked) and
    // parks, so at least one announced batch is guaranteed to be
    // unconsumed when the abort releases it.
    assert!(consumer.next().is_some());
    std::thread::sleep(Duration::from_millis(200));
    producer.abort();
    let stats = producer.join().expect("abort + join must yield stats");
    assert!(stats.batches_published >= 2, "window never filled");
    for _ in consumer.by_ref() {}
    assert_eq!(
        consumer.stop_reason(),
        Some(StopReason::End),
        "last_error: {:?}",
        consumer.last_error()
    );
    assert!(
        ctx.metrics.counter("consumer.dangling_skipped").get() >= 1,
        "the stale announce was not skipped"
    );
}

#[test]
fn producer_map_runs_once_per_batch() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let ctx = TsContext::host_only();
    let ep = "inproc://t23";
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 1.0;
    let calls = Arc::new(AtomicU64::new(0));
    let calls_in_map = calls.clone();
    // The Figure-7 pattern as API: a frozen "encoder" replacing the raw
    // field with an embedding, computed once per batch in the producer.
    cfg.producer_map = Some(Arc::new(move |mut batch: ts_data::Batch| {
        calls_in_map.fetch_add(1, Ordering::Relaxed);
        let values: Vec<f32> = batch
            .labels
            .to_vec_i64()
            .unwrap()
            .iter()
            .map(|&l| l as f32 * 0.5)
            .collect();
        batch.fields = vec![Tensor::from_f32(&values, &[values.len(), 1], DeviceId::Cpu).unwrap()];
        batch
    }));
    let producer = TensorProducer::spawn(loader(16, 4), &ctx, cfg).unwrap();
    let c1 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let c2 = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let h = std::thread::spawn(move || {
        let mut c2 = c2;
        let mut embeddings = Vec::new();
        for b in c2.by_ref() {
            embeddings.push(b.fields[0].to_vec_f32().unwrap());
        }
        embeddings
    });
    let mut c1 = c1;
    let mut embeddings1 = Vec::new();
    for b in c1.by_ref() {
        assert_eq!(b.fields[0].shape(), &[4, 1]);
        embeddings1.push(b.fields[0].to_vec_f32().unwrap());
    }
    let embeddings2 = h.join().unwrap();
    producer.join().unwrap();
    assert_eq!(
        embeddings1, embeddings2,
        "both trained on the same embeddings"
    );
    assert_eq!(embeddings1[0], vec![0.0, 0.5, 1.0, 1.5]);
    // once per batch — NOT once per batch per consumer
    assert_eq!(calls.load(Ordering::Relaxed), 4);
}

// ---------------------------------------------------------------------------
// The unified builder API (Producer / Consumer facades)
// ---------------------------------------------------------------------------

use crate::runtime::builder::{Consumer, Producer};
use crate::runtime::staging::StagingMode;
use crate::{HandshakeError, TsError};

/// `consume_trace` for the builder facade: unwraps the `Result` items
/// (asserting a clean stream) so traces compare directly against legacy
/// ones.
fn consume_trace_builder(mut consumer: Consumer) -> (ByteTrace, Option<StopReason>) {
    let mut trace = Vec::new();
    for b in consumer.by_ref() {
        let b = b.expect("clean stream");
        trace.push((
            b.epoch,
            b.shard,
            b.index_in_epoch,
            b.labels.to_vec_i64().unwrap(),
            b.fields[0].gather_bytes(),
            b.last_in_epoch,
        ));
    }
    (trace, consumer.stop_reason())
}

#[test]
fn builder_stream_is_byte_identical_to_legacy_at_one_and_many_shards() {
    // The acceptance criterion of the API redesign: a consumer built with
    // only `Consumer::builder().connect(endpoint)` sees the exact bytes
    // the legacy TensorConsumer saw, at 1 shard and at N shards — the
    // consumer is NOT told the shard count; the handshake is.
    for shards in [1usize, 2, 3] {
        let legacy = {
            let ctx = TsContext::host_only();
            let ep = format!("inproc://builder-id-legacy-{shards}");
            let group = ShardedProducerGroup::spawn(
                sharded_loaders(48, 4, shards, true),
                &ctx,
                producer_cfg(&ep, 2),
            )
            .unwrap();
            let mut cc = consumer_cfg(&ep);
            cc.shards = shards;
            let consumer = TensorConsumer::connect(&ctx, cc).unwrap();
            let (trace, reason) = consume_trace(consumer);
            assert_eq!(reason, Some(StopReason::End));
            group.join().unwrap();
            trace
        };
        let built = {
            let ctx = TsContext::host_only();
            let ep = format!("inproc://builder-id-built-{shards}");
            let producer = Producer::builder()
                .context(&ctx)
                .config(producer_cfg(&ep, 2))
                .spawn_sharded(sharded_loaders(48, 4, shards, true))
                .unwrap();
            assert_eq!(producer.num_shards(), shards);
            let consumer = Consumer::builder()
                .context(&ctx)
                .heartbeat_interval(Duration::from_millis(50))
                .recv_timeout(Duration::from_secs(5))
                .connect(&ep)
                .unwrap();
            // The topology was learned, not configured.
            assert_eq!(consumer.num_shards(), shards);
            assert_eq!(consumer.welcome().shards as usize, shards);
            assert_eq!(consumer.welcome().batch_size, 4);
            assert!(consumer.welcome().arena.is_none());
            let (trace, reason) = consume_trace_builder(consumer);
            assert_eq!(reason, Some(StopReason::End));
            let stats = producer.join().unwrap();
            assert_eq!(stats.epochs_completed, 2);
            trace
        };
        assert_eq!(
            legacy, built,
            "builder stream must be byte-identical to legacy at {shards} shard(s)"
        );
    }
}

#[test]
fn builder_auto_arena_endpoint_only_attach_over_ipc() {
    // The zero-configuration attach: the producer auto-sizes and creates
    // the arena from the loader's geometry; the consumer gets NOTHING but
    // the endpoint URI — a fresh default context, no arena path, no shard
    // count — and learns everything over the handshake.
    let legacy = {
        let ctx = TsContext::host_only();
        let ep = "inproc://builder-arena-legacy";
        let producer = TensorProducer::spawn(loader(32, 4), &ctx, producer_cfg(ep, 2)).unwrap();
        let consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
        let (trace, reason) = consume_trace(consumer);
        assert_eq!(reason, Some(StopReason::End));
        producer.join().unwrap();
        trace
    };

    let tag = std::process::id();
    let tmp = std::env::temp_dir();
    let ep = format!("ipc://{}", tmp.join(format!("ts-bld-{tag}.sock")).display());
    let arena_path = tmp.join(format!("ts-bld-{tag}.arena"));
    let producer = Producer::builder()
        .config(producer_cfg(&ep, 2))
        .arena(&arena_path)
        .spawn(loader(32, 4))
        .unwrap();
    let arena = producer.arena().expect("builder provisioned arena").clone();
    assert!(arena.nslots() >= 2, "auto-sized slot count");
    assert!(
        arena.slot_size() >= 4 * 2 * 4,
        "slot must hold the 4x2 f32 field"
    );

    // Endpoint-only: fresh context, no shard count, no arena path.
    let consumer = Consumer::builder()
        .heartbeat_interval(Duration::from_millis(50))
        .recv_timeout(Duration::from_secs(5))
        .connect(&ep)
        .unwrap();
    let ad = consumer.welcome().arena.clone().expect("arena advertised");
    assert_eq!(ad.path, arena.path().display().to_string());
    assert_eq!(ad.nslots as usize, arena.nslots());
    assert_eq!(ad.slot_size as usize, arena.slot_size());
    let (trace, reason) = consume_trace_builder(consumer);
    assert_eq!(reason, Some(StopReason::End));
    producer.join().unwrap();
    assert_eq!(arena.slots_in_use(), 0, "arena fully drained");
    assert_eq!(
        legacy, trace,
        "arena-backed builder stream must be byte-identical to the legacy inproc stream"
    );
}

#[test]
fn builder_staging_modes_stay_byte_identical() {
    // Off / Serial / Overlapped through the builder all deliver the same
    // bytes — and the same bytes as the legacy consumer on the same mode.
    let mut traces = Vec::new();
    for mode in [
        StagingMode::Off,
        StagingMode::Serial,
        StagingMode::Overlapped,
    ] {
        let ctx = TsContext::with_gpus(1, 64 << 20, false);
        let ep = format!("inproc://builder-staging-{mode:?}");
        let mut cfg = producer_cfg(&ep, 1);
        cfg.device = DeviceId::Gpu(0);
        let producer = Producer::builder()
            .context(&ctx)
            .config(cfg)
            .staging(mode)
            .spawn(loader_with_workers(32, 4, 2))
            .unwrap();
        let consumer = Consumer::builder()
            .context(&ctx)
            .heartbeat_interval(Duration::from_millis(50))
            .recv_timeout(Duration::from_secs(5))
            .connect(&ep)
            .unwrap();
        assert_eq!(consumer.staging_mode(), Some(mode));
        let (trace, reason) = consume_trace_builder(consumer);
        assert_eq!(reason, Some(StopReason::End));
        producer.join().unwrap();
        traces.push(trace);
    }
    assert_eq!(traces[0], traces[1], "off == serial");
    assert_eq!(traces[1], traces[2], "serial == overlapped");
}

#[test]
fn builder_flexible_mode_carves_consumer_batches() {
    let ctx = TsContext::host_only();
    let ep = "inproc://builder-flex";
    let producer = Producer::builder()
        .context(&ctx)
        .config(producer_cfg(ep, 1))
        .flexible(FlexibleConfig::new(8))
        .spawn(loader(32, 4))
        .unwrap();
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .batch_size(2)
        .heartbeat_interval(Duration::from_millis(50))
        .recv_timeout(Duration::from_secs(5))
        .connect(ep)
        .unwrap();
    assert_eq!(consumer.welcome().flex_producer_batch, 8);
    let mut samples = 0u64;
    for b in consumer.by_ref() {
        let b = b.expect("clean stream");
        assert_eq!(b.batch_size(), 2);
        samples += b.batch_size() as u64;
    }
    assert_eq!(consumer.stop_reason(), Some(StopReason::End));
    assert_eq!(samples, 32, "full epoch at the carved batch size");
    producer.join().unwrap();
}

#[test]
fn builder_consumer_surfaces_timeout_as_err_item() {
    // The Result-iterator contract: an abnormal stop yields exactly one
    // Err item, then the stream ends. A fake producer answers the attach
    // handshake, admits the join, and then starves the consumer.
    use crate::protocol::messages::{
        caps, topics, CtrlMsg, DataMsg, JoinDecision, WelcomeInfo, HANDSHAKE_VERSION,
    };
    use ts_socket::{Multipart, PubSocket, PullSocket};

    let ctx = TsContext::host_only();
    let ep = "inproc://builder-timeout";
    let publisher = PubSocket::bind(&ctx.sockets, &format!("{ep}/data")).unwrap();
    let ctrl = PullSocket::bind(&ctx.sockets, &format!("{ep}/ctrl")).unwrap();
    let fake = std::thread::spawn(move || loop {
        let Ok(msg) = ctrl.recv_timeout(Duration::from_secs(2)) else {
            return;
        };
        let Ok(m) = CtrlMsg::decode(&msg.frames()[0]) else {
            continue;
        };
        match m {
            CtrlMsg::Hello { token, .. } => {
                let welcome = DataMsg::Welcome {
                    token,
                    info: WelcomeInfo {
                        version: HANDSHAKE_VERSION,
                        shards: 1,
                        batch_size: 4,
                        flex_producer_batch: 0,
                        staging: 0,
                        arena: None,
                        endpoint_overrides: Vec::new(),
                        payload_modes: caps::SHM,
                        log: None,
                    },
                };
                publisher
                    .send(&topics::hello(token), Multipart::single(welcome.encode()))
                    .unwrap();
            }
            CtrlMsg::Join { consumer_id, .. } => {
                let reply = DataMsg::JoinReply {
                    consumer_id,
                    decision: JoinDecision::AdmitReplay {
                        epoch: 0,
                        replay_from: 0,
                        num_batches: 100,
                        start_seq: 0,
                    },
                };
                publisher
                    .send(
                        &topics::consumer(consumer_id),
                        Multipart::single(reply.encode()),
                    )
                    .unwrap();
                // ...and never publish any batch
            }
            _ => {}
        }
    });
    let mut consumer = Consumer::builder()
        .context(&ctx)
        .recv_timeout(Duration::from_millis(200))
        .connect(ep)
        .unwrap();
    let mut errs = 0;
    for item in consumer.by_ref() {
        match item {
            Ok(_) => panic!("no batch was ever published"),
            Err(e) => {
                errs += 1;
                assert_eq!(e, TsError::Timeout("batch from producer"));
            }
        }
    }
    assert_eq!(errs, 1, "exactly one Err item, then None");
    assert!(consumer.next().is_none(), "stream stays ended");
    assert_eq!(consumer.stop_reason(), Some(StopReason::Timeout));
    drop(consumer);
    fake.join().unwrap();
}

#[test]
fn sample_geometry_hints_match_the_decoded_batch() {
    use crate::runtime::producer::EpochSource;
    let l = loader(16, 4);
    let g = l.sample_geometry().expect("loader reports geometry");
    assert_eq!(g.field_bytes, vec![8], "2 x f32 per sample");
    assert_eq!(g.label_bytes, 8);
    assert_eq!(g.tensors_per_batch(), 2);
    assert_eq!(g.max_tensor_bytes(4), 32);
}

#[test]
fn builder_shards_override_mismatch_is_a_typed_error() {
    let ctx = TsContext::host_only();
    let ep = "inproc://builder-topology-mismatch";
    let producer = Producer::builder()
        .context(&ctx)
        .config(producer_cfg(ep, 1))
        .spawn_sharded(sharded_loaders(16, 4, 2, false))
        .unwrap();
    let err = Consumer::builder()
        .context(&ctx)
        .shards(3)
        .handshake_timeout(Duration::from_secs(5))
        .connect(ep)
        .unwrap_err();
    assert_eq!(
        err,
        TsError::Handshake(HandshakeError::Topology {
            requested: 3,
            advertised: 2,
        })
    );
    // The correct override attaches fine.
    let consumer = Consumer::builder()
        .context(&ctx)
        .shards(2)
        .heartbeat_interval(Duration::from_millis(50))
        .recv_timeout(Duration::from_secs(5))
        .connect(ep)
        .unwrap();
    let (_, reason) = consume_trace_builder(consumer);
    assert_eq!(reason, Some(StopReason::End));
    producer.join().unwrap();
}

#[test]
fn two_standalone_gpu_producers_get_disjoint_gauge_namespaces() {
    // Two collocated standalone GPU producers in ONE context must not
    // clobber each other's staging gauges: the first keeps the bare
    // `staging.` names, the second gets `staging.p1.` — like two shards
    // of a group get `staging.s<n>.`.
    let ctx = TsContext::with_gpus(1, 64 << 20, false);
    let spawn = |ep: &str| {
        let mut cfg = producer_cfg(ep, 1);
        cfg.device = DeviceId::Gpu(0);
        Producer::builder()
            .context(&ctx)
            .config(cfg)
            .spawn(loader_with_workers(16, 4, 1))
            .unwrap()
    };
    let pa = spawn("inproc://gauge-ns-a");
    let pb = spawn("inproc://gauge-ns-b");
    for ep in ["inproc://gauge-ns-a", "inproc://gauge-ns-b"] {
        let consumer = Consumer::builder()
            .context(&ctx)
            .heartbeat_interval(Duration::from_millis(50))
            .recv_timeout(Duration::from_secs(5))
            .connect(ep)
            .unwrap();
        let (_, reason) = consume_trace_builder(consumer);
        assert_eq!(reason, Some(StopReason::End));
    }
    pa.join().unwrap();
    pb.join().unwrap();
    assert!(
        ctx.metrics.gauge("staging.h2d_bytes_per_sec").get() > 0.0,
        "first engine reports under the bare namespace"
    );
    assert!(
        ctx.metrics.gauge("staging.p1.h2d_bytes_per_sec").get() > 0.0,
        "second standalone engine reports under its own namespace"
    );
}

// ---------------------------------------------------------------------------
// Zero-copy publish: lease-placed announcements, cursor coalescing, and the
// detach-under-replay fix.
// ---------------------------------------------------------------------------

#[test]
fn steady_state_publish_moves_zero_payload_bytes() {
    // Tentpole acceptance: with an arena + slot pool bound, the feeder
    // collates straight into leased slots and the publish loop only adopts
    // the placements — `stage.publish_copy_bytes` counts any payload byte
    // the publish path still moves, the same way PR 2's test counted
    // steady-state allocations, and it must stay at zero.
    let ctx = TsContext::host_only();
    let arena_path =
        std::env::temp_dir().join(format!("ts-zero-copy-steady-{}.arena", std::process::id()));
    ctx.create_arena(&arena_path, 64, 4096).unwrap();
    let pool = ctx.enable_slot_recycling(16).unwrap();
    let ep = "inproc://zero-copy-steady";
    let mut cfg = producer_cfg(ep, 2);
    cfg.rubberband_cutoff = 0.02;
    let producer = TensorProducer::spawn(loader_with_workers(64, 4, 2), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let copies = ctx.metrics.counter("stage.publish_copy_bytes");
    let mut consumed = 0u64;
    let mut warmed_copies = None;
    for _ in consumer.by_ref() {
        consumed += 1;
        if consumed == 8 {
            warmed_copies = Some(copies.get());
        }
    }
    assert_eq!(consumed, 32, "2 epochs × 16 batches");
    let stats = producer.join().unwrap();
    assert_eq!(stats.batches_published, 32);
    assert_eq!(
        copies.get(),
        warmed_copies.unwrap(),
        "publish moved payload bytes after warm-up"
    );
    assert_eq!(
        copies.get(),
        0,
        "lease-eligible host tensors must never take the copying path"
    );
    // The zero-copy path still recycles: leases come out of the pool.
    let ps = pool.stats();
    assert!(ps.hits > 0, "no leased slot was recycled: {ps:?}");
    assert!(ctx.registry.is_empty());
    pool.drain();
    assert_eq!(ctx.arena().unwrap().slots_in_use(), 0);
}

#[test]
fn sharded_gpu_staged_publish_stays_zero_copy() {
    // The CI smoke scenario: a sharded GPU-staged run with per-shard slot
    // pools. The feeder leases and collates on the host, staging H2D-reads
    // from the leased slot, and publish adopts the placement — no shard's
    // copy counter may move.
    use crate::runtime::staging::{StagingConfig, StagingMode};
    let ctx = TsContext::with_gpus(1, 1 << 30, false);
    let arena_path =
        std::env::temp_dir().join(format!("ts-gpu-zero-copy-{}.arena", std::process::id()));
    ctx.create_arena(&arena_path, 64, 4096).unwrap();
    let pools: Vec<_> = (0..2)
        .map(|s| ctx.enable_shard_slot_recycling(s, 8).unwrap())
        .collect();
    let ep = "inproc://gpu-zero-copy";
    let mut cfg = producer_cfg(ep, 2);
    cfg.device = DeviceId::Gpu(0);
    cfg.staging = StagingConfig {
        mode: StagingMode::Overlapped,
        ..Default::default()
    };
    cfg.rubberband_cutoff = 0.02;
    let group = ShardedProducerGroup::spawn(sharded_loaders(64, 4, 2, false), &ctx, cfg).unwrap();
    let mut cc = consumer_cfg(ep);
    cc.shards = 2;
    let consumer = TensorConsumer::connect(&ctx, cc).unwrap();
    let (trace, reason) = consume_trace(consumer);
    assert_eq!(reason, Some(StopReason::End));
    assert_eq!(trace.len(), 32, "2 epochs × 2 shards × 8 batches");
    let stats = group.join().unwrap();
    assert!(stats.iter().all(|s| s.bytes_staged > 0), "staging ran");
    for s in 0..2u32 {
        assert_eq!(
            ctx.metrics
                .counter(&format!("stage.s{s}.publish_copy_bytes"))
                .get(),
            0,
            "shard {s} copied payload bytes on the staged publish path"
        );
    }
    assert!(ctx.registry.is_empty());
    for pool in &pools {
        pool.drain();
    }
    assert_eq!(ctx.arena().unwrap().slots_in_use(), 0);
    assert_eq!(ctx.devices.memory(DeviceId::Gpu(0)).unwrap().in_use(), 0);
}

#[test]
fn zero_copy_publish_is_byte_identical_across_shards_staging_and_payload() {
    // Acceptance criterion: the lease-placed stream is byte-identical to
    // the heap-published stream across shards {1,2} × staging
    // {Off,Overlapped} × payload modes {shm,streamed}.
    use crate::protocol::messages::PayloadMode;
    use crate::runtime::staging::{StagingConfig, StagingMode};
    for shards in [1usize, 2] {
        for (stag_tag, staging_mode) in [
            ("off", StagingMode::Off),
            ("overlap", StagingMode::Overlapped),
        ] {
            for (mode_tag, payload_mode) in
                [("shm", PayloadMode::Shm), ("stream", PayloadMode::Stream)]
            {
                let tag = format!("shards={shards} staging={stag_tag} payload={mode_tag}");
                let mut traces: Vec<ByteTrace> = Vec::new();
                for leased in [false, true] {
                    let ctx = TsContext::with_gpus(1, 1 << 30, false);
                    if leased {
                        let arena_path = std::env::temp_dir().join(format!(
                            "ts-ident-{shards}-{stag_tag}-{mode_tag}-{}.arena",
                            std::process::id()
                        ));
                        ctx.create_arena(&arena_path, 64, 4096).unwrap();
                        for s in 0..shards {
                            ctx.enable_shard_slot_recycling(s as u32, 8).unwrap();
                        }
                    }
                    let ep = format!("inproc://ident-{shards}-{stag_tag}-{mode_tag}-{leased}");
                    let mut cfg = producer_cfg(&ep, 2);
                    if staging_mode != StagingMode::Off {
                        cfg.device = DeviceId::Gpu(0);
                        cfg.staging = StagingConfig {
                            mode: staging_mode,
                            ..Default::default()
                        };
                    }
                    let group = ShardedProducerGroup::spawn(
                        sharded_loaders(48, 4, shards, false),
                        &ctx,
                        cfg,
                    )
                    .unwrap();
                    let mut cc = consumer_cfg(&ep);
                    cc.shards = shards;
                    cc.mode = payload_mode;
                    let consumer = TensorConsumer::connect(&ctx, cc).unwrap();
                    let (trace, reason) = consume_trace(consumer);
                    assert_eq!(reason, Some(StopReason::End), "{tag} leased={leased}");
                    assert_eq!(trace.len(), 24, "{tag} leased={leased}");
                    group.join().unwrap();
                    traces.push(trace);
                }
                assert_eq!(traces[0], traces[1], "lease-placed stream differs: {tag}");
            }
        }
    }
}

#[test]
fn stream_consumer_leaving_mid_replay_stops_the_stream_encoder() {
    // Regression: a stream-mode consumer that detaches mid-replay used to
    // leave the replay branch encoding (and sending) every remaining
    // pinned batch to a topic nobody read, until the next ctrl poll. The
    // replay loop now polls control between batches and bails the moment
    // the consumer is gone — `stage.stream_tx_bytes` must stop growing.
    use crate::protocol::messages::{topics, CtrlMsg, DataMsg, JoinDecision, PayloadMode};
    let ctx = TsContext::host_only();
    let ep = "inproc://replay-detach";
    let mut cfg = producer_cfg(ep, 1);
    cfg.rubberband_cutoff = 1.0; // the whole epoch stays replayable
                                 // Big batches (16×16×3 f32 images, 12 KiB of field payload per batch)
                                 // so a runaway replay is unmistakable in the byte counter.
    let dataset =
        Arc::new(ts_data::SyntheticImageDataset::new(96, 16, 16, 3).with_encoded_len(256));
    let image_loader = ts_data::DataLoader::new(
        dataset,
        ts_data::DataLoaderConfig {
            batch_size: 4,
            num_workers: 0,
            shuffle: false,
            drop_last: true,
            ..Default::default()
        },
    );
    let producer = TensorProducer::spawn(image_loader, &ctx, cfg).unwrap();
    let mut good = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut consumed = 0usize;
    for _ in good.by_ref() {
        consumed += 1;
        if consumed == 20 {
            break;
        }
    }
    let tx = ctx.metrics.counter("stage.stream_tx_bytes");
    assert_eq!(tx.get(), 0, "the shm consumer never streams");
    // A stream-mode consumer joins (admitted with a 20-batch replay),
    // declares ready, and leaves immediately — the Leave lands while the
    // replay is starting.
    {
        let sub = ts_socket::SubSocket::connect(&ctx.sockets, &format!("{ep}/data"));
        sub.subscribe(&topics::consumer(4242));
        let push = ts_socket::PushSocket::connect(&ctx.sockets, &format!("{ep}/ctrl"));
        push.send(ts_socket::Multipart::single(
            CtrlMsg::Join {
                consumer_id: 4242,
                batch_size: 0,
                mode: PayloadMode::Stream,
            }
            .encode(),
        ))
        .unwrap();
        let (_, m) = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        match DataMsg::decode(&m.frames()[0]) {
            Ok(DataMsg::JoinReply {
                decision: JoinDecision::AdmitReplay { replay_from, .. },
                ..
            }) => assert_eq!(replay_from, 0, "cutoff 1.0 replays the whole epoch"),
            other => panic!("expected AdmitReplay, got {other:?}"),
        }
        push.send(ts_socket::Multipart::single(
            CtrlMsg::Ready { consumer_id: 4242 }.encode(),
        ))
        .unwrap();
        push.send(ts_socket::Multipart::single(
            CtrlMsg::Leave { consumer_id: 4242 }.encode(),
        ))
        .unwrap();
    }
    for _ in good.by_ref() {
        consumed += 1;
    }
    assert_eq!(consumed, 24);
    assert_eq!(good.stop_reason(), Some(StopReason::End));
    producer.join().unwrap();
    let per_batch = 4 * 16 * 16 * 3 * 4; // field payload bytes per batch
    let full_replay = (20 * per_batch) as u64;
    let sent = tx.get();
    assert!(
        sent < full_replay / 2,
        "replay kept encoding after the leave: {sent} bytes streamed \
         (a full 20-batch replay is ≥ {full_replay})"
    );
}

#[test]
fn publish_cursor_broadcasts_coalesce_to_latest_wins() {
    // Every publish offers (epoch, seq, index) into the coalescing cell;
    // the housekeeping flush broadcasts at most one Cursor per 25ms. Under
    // a fast publish loop most offers are displaced (coalesced), and a
    // consumer holds exactly one latest-wins snapshot per shard — not a
    // backlog.
    let ctx = TsContext::host_only();
    let ep = "inproc://cursor-coalesce";
    let producer =
        TensorProducer::spawn(loader_with_workers(1024, 4, 2), &ctx, producer_cfg(ep, 2)).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let mut consumed = 0u64;
    for _ in consumer.by_ref() {
        consumed += 1;
        // Stretch the run across several 25ms flush windows.
        if consumed.is_multiple_of(64) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert_eq!(consumed, 512, "2 epochs × 256 batches");
    let stats = producer.join().unwrap();
    assert_eq!(stats.batches_published, 512);
    assert!(
        ctx.metrics.counter("stage.cursor_coalesced").get() > 0,
        "512 publishes in well under 512 flush windows must displace stale cursors"
    );
    let (epoch, seq, index) = consumer
        .latest_cursor(0)
        .expect("the consumer saw at least one cursor broadcast");
    assert!(epoch <= 1, "cursor epoch {epoch} out of range");
    assert!(seq < 512, "cursor seq {seq} out of range");
    assert!(index < 256, "cursor index {index} out of range");
    assert!(ctx.metrics.gauge("consumer.cursor_lag").get() >= 0.0);
}

#[test]
fn cursor_cadence_bounds_lag_and_never_moves_backwards_across_epochs() {
    // The cadence contract of the cursor channel, observed across epoch
    // boundaries: under a publisher running flat out the coalescing cell
    // keeps displacing stale positions (`stage.cursor_coalesced` grows),
    // the consumer's observed lag stays bounded by the publish window
    // (the producer cannot outrun its unacked buffer), and the
    // latest-wins cursor state never steps backwards in `(epoch, seq)` —
    // not even when `index_in_epoch` resets to 0 at an epoch boundary.
    let ctx = TsContext::host_only();
    let ep = "inproc://cursor-cadence";
    let mut cfg = producer_cfg(ep, 3);
    cfg.buffer_size = 4;
    let buffer_size = cfg.buffer_size;
    let producer = TensorProducer::spawn(loader_with_workers(512, 4, 2), &ctx, cfg).unwrap();
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    let lag_gauge = ctx.metrics.gauge("consumer.cursor_lag");
    let mut consumed = 0u64;
    let mut max_lag = 0.0f64;
    let mut prev_cursor: Option<(u64, u64, u64)> = None;
    let mut epochs_observed = BTreeSet::new();
    while consumer.next().is_some() {
        consumed += 1;
        max_lag = max_lag.max(lag_gauge.get());
        if let Some(cur @ (epoch, seq, _)) = consumer.latest_cursor(0) {
            epochs_observed.insert(epoch);
            if let Some((pe, ps, _)) = prev_cursor {
                assert!(
                    (epoch, seq) >= (pe, ps),
                    "cursor moved backwards: ({pe},{ps}) -> ({epoch},{seq})"
                );
            }
            prev_cursor = Some(cur);
        }
        // Stretch each epoch across several 25ms flush windows so cursors
        // from every epoch (and the boundary itself) get broadcast.
        if consumed.is_multiple_of(16) {
            std::thread::sleep(Duration::from_millis(8));
        }
    }
    assert_eq!(consumed, 384, "3 epochs × 128 batches");
    let stats = producer.join().unwrap();
    assert_eq!(stats.batches_published, 384);
    assert!(
        ctx.metrics.counter("stage.cursor_coalesced").get() > 0,
        "a fast publisher must displace stale cursor positions"
    );
    assert!(
        prev_cursor.is_some(),
        "the consumer never observed a cursor broadcast"
    );
    assert!(
        epochs_observed.len() >= 2,
        "cursors were only observed in epochs {epochs_observed:?}; the \
         never-backwards assertion did not cross an epoch boundary"
    );
    assert!(
        max_lag <= (buffer_size + 2) as f64,
        "cursor lag {max_lag} exceeded the publish window ({buffer_size})"
    );
}

#[test]
fn unknown_data_tag_is_counted_and_skipped_by_the_consumer() {
    // Forward compatibility on the consumer's data path: a "newer"
    // producer broadcasting a message kind this build does not know must
    // be counted under `consumer.data_unknown` and skipped — the stream
    // still ends cleanly on the real End frame behind it.
    use crate::protocol::messages::{topics, CtrlMsg, DataMsg, JoinDecision};
    use ts_socket::{Multipart, PubSocket, PullSocket};

    let ctx = TsContext::host_only();
    let ep = "inproc://unknown-data-tag";
    let publisher = PubSocket::bind(&ctx.sockets, &format!("{ep}/data")).unwrap();
    let ctrl = PullSocket::bind(&ctx.sockets, &format!("{ep}/ctrl")).unwrap();
    let fake = std::thread::spawn(move || {
        let mut sent = false;
        loop {
            let Ok(msg) = ctrl.recv_timeout(Duration::from_secs(2)) else {
                return;
            };
            let Ok(m) = CtrlMsg::decode(&msg.frames()[0]) else {
                continue;
            };
            match m {
                CtrlMsg::Join { consumer_id, .. } => {
                    let reply = DataMsg::JoinReply {
                        consumer_id,
                        decision: JoinDecision::AdmitReplay {
                            epoch: 0,
                            replay_from: 0,
                            num_batches: 1,
                            start_seq: 0,
                        },
                    };
                    publisher
                        .send(
                            &topics::consumer(consumer_id),
                            Multipart::single(reply.encode()),
                        )
                        .unwrap();
                }
                CtrlMsg::Ready { .. } if !sent => {
                    sent = true;
                    // Tag 99 does not exist in this build: a valid-length
                    // frame from a future protocol version, then End.
                    publisher
                        .send(
                            topics::BATCH,
                            Multipart::single(bytes::Bytes::from_static(&[
                                99, 0, 0, 0, 0, 0, 0, 0, 0, 7, 7, 7,
                            ])),
                        )
                        .unwrap();
                    publisher
                        .send(topics::BATCH, Multipart::single(DataMsg::End.encode()))
                        .unwrap();
                }
                _ => {}
            }
        }
    });
    let mut consumer = TensorConsumer::connect(&ctx, consumer_cfg(ep)).unwrap();
    assert!(consumer.next().is_none(), "only an End was ever published");
    assert_eq!(consumer.stop_reason(), Some(StopReason::End));
    assert_eq!(
        ctx.metrics.counter("consumer.data_unknown").get(),
        1,
        "the alien frame must be counted exactly once"
    );
    drop(consumer);
    fake.join().unwrap();
}

#[test]
fn replay_start_never_panics_when_retention_outruns_the_splice_point() {
    use crate::runtime::producer::replay_start;
    // The regression: `Ord::clamp(rmin, live_seq)` asserts min <= max and
    // panicked the producer control loop when retention had trimmed past
    // a rubberband joiner's splice point (rmin > live_seq). The resolver
    // must degrade to "nothing replayable behind the splice point".
    assert_eq!(replay_start(96, 96, 0), 0, "cursor-less want = rmin");
    assert_eq!(replay_start(0, 96, 40), 40, "explicit seq behind retention");
    assert_eq!(replay_start(u64::MAX, 96, 40), 40, "absurd remote seq");
    // Ordinary resolutions are unchanged.
    assert_eq!(replay_start(5, 2, 10), 5, "in-range want wins");
    assert_eq!(replay_start(1, 2, 10), 2, "floored at retained_min");
    assert_eq!(replay_start(50, 2, 10), 10, "capped at the splice point");
    assert_eq!(replay_start(7, 7, 7), 7);
}
