//! Control-plane stats scrape client.
//!
//! The observability counterpart of the attach handshake: where HELLO
//! asks a producer "describe yourself", [`scrape_stats`] asks "report
//! your metrics". Same stateless pattern on the same channels — a
//! [`crate::protocol::messages::CtrlMsg::StatsRequest`] is pushed to the
//! base control endpoint and the producer answers with a
//! [`crate::protocol::messages::DataMsg::Stats`] on the one-shot reply
//! topic, from whatever wait loop it happens to be in (mid-epoch, at an
//! epoch barrier, or draining final acks). The request is re-sent every
//! poll round, so replies lost to subscription propagation on remote
//! transports are simply answered again.
//!
//! The scraped [`StatsPayload`] carries the producer context's *entire*
//! metrics registry — counters, gauges and the per-stage latency
//! histograms with their full bucket lists — deterministically sorted by
//! name. All shards of a group share one registry (per-shard metrics are
//! name-spaced, e.g. `stage.s1.publish_ack_ns`), so scraping the base
//! endpoint observes the whole group. This is what the `ts-top` CLI and
//! the counter-coherence tests consume; it needs no consumer attach, no
//! join, and leaves no trace in the producer's consumer state.

use crate::protocol::messages::{
    topics, CtrlMsg, DataMsg, StatsPayload, TracePayload, STATS_VERSION, TRACE_VERSION,
};
use crate::runtime::consumer::rand_id;
use crate::runtime::context::TsContext;
use crate::{Result, TsError};
use std::time::{Duration, Instant};
use ts_socket::{Endpoint, EndpointMap, Multipart, PushSocket, RecvError, SubSocket};

/// Scrapes the metrics registry of the producer listening on `endpoint`
/// (the same base URI consumers attach to — as a string or a parsed
/// [`Endpoint`] — over any transport).
///
/// Returns within `timeout` or fails with [`TsError::Timeout`] — a
/// producer that already published `End` and shut down no longer
/// answers. The producer keeps serving batches while answering; a scrape
/// is a read-only snapshot, never an attach.
pub fn scrape_stats<E>(ctx: &TsContext, endpoint: E, timeout: Duration) -> Result<StatsPayload>
where
    E: TryInto<Endpoint>,
    E::Error: Into<TsError>,
{
    let endpoint = endpoint.try_into().map_err(Into::into)?.to_string();
    let map = EndpointMap::new(&endpoint, 1);
    let token = rand_id();
    let sub = SubSocket::connect(&ctx.sockets, &map.data(0));
    sub.subscribe(&topics::stats(token));
    let push = PushSocket::connect(&ctx.sockets, &map.ctrl(0));
    let dup_counter = ctx.metrics.counter("producer.stats_dup");
    let deadline = Instant::now() + timeout;
    // Each re-sent request carries a fresh sequence stamp, and only the
    // reply echoing the *in-flight* stamp is accepted. Without it, a late
    // duplicate snapshot from round N (the request is re-sent every 50ms,
    // and remote transports can hold a reply past the next resend) would
    // be read as round N+1's answer — a stale snapshot served as fresh.
    let mut seq: u32 = 0;
    loop {
        // A send failure only means the producer is not reachable *yet*
        // (bind/connect order is free on every transport): keep retrying
        // until the deadline.
        seq = seq.wrapping_add(1);
        let request = CtrlMsg::StatsRequest {
            token,
            version: STATS_VERSION,
            seq,
        }
        .encode();
        let _ = push.send(Multipart::single(request));
        match sub.recv_timeout(Duration::from_millis(50)) {
            Ok((_, msg)) => {
                if let Some(frame) = msg.frames().first() {
                    if let Ok(DataMsg::Stats {
                        token: t,
                        seq: s,
                        payload,
                    }) = DataMsg::decode(frame)
                    {
                        // `s == 0` is a v1 producer that cannot echo
                        // stamps — its replies are all equally current,
                        // so accept them rather than time out on an old
                        // peer. Any other mismatch is a stale round's
                        // late duplicate: drop it, count it.
                        if t == token && (s == seq || s == 0) {
                            return Ok(payload);
                        }
                        if t == token {
                            dup_counter.inc();
                        }
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Closed) => {
                return Err(TsError::Socket(
                    "producer disconnected during stats scrape".into(),
                ))
            }
        }
        if Instant::now() > deadline {
            return Err(TsError::Timeout("stats snapshot"));
        }
    }
}

/// Scrapes the batch flight recorder of the producer listening on
/// `endpoint`: the last `max` (clamped to 256 by the producer) completed
/// per-batch trace records, newest last, plus the recorder's current
/// clock so callers can place the records in time.
///
/// Same stateless control-plane pattern as [`scrape_stats`] — a
/// [`crate::protocol::messages::CtrlMsg::TraceRequest`] is re-sent every
/// poll round and only the reply echoing the in-flight stamp is
/// accepted. All shards of a group share one flight recorder, so
/// scraping the base endpoint observes every shard's spans. This is what
/// `ts-top --trace` renders into a Chrome trace-event file.
pub fn scrape_trace<E>(
    ctx: &TsContext,
    endpoint: E,
    max: u32,
    timeout: Duration,
) -> Result<TracePayload>
where
    E: TryInto<Endpoint>,
    E::Error: Into<TsError>,
{
    let endpoint = endpoint.try_into().map_err(Into::into)?.to_string();
    let map = EndpointMap::new(&endpoint, 1);
    let token = rand_id();
    let sub = SubSocket::connect(&ctx.sockets, &map.data(0));
    sub.subscribe(&topics::trace(token));
    let push = PushSocket::connect(&ctx.sockets, &map.ctrl(0));
    let dup_counter = ctx.metrics.counter("producer.trace_dup");
    let deadline = Instant::now() + timeout;
    let mut seq: u32 = 0;
    loop {
        seq = seq.wrapping_add(1);
        let request = CtrlMsg::TraceRequest {
            token,
            version: TRACE_VERSION,
            seq,
            max,
        }
        .encode();
        let _ = push.send(Multipart::single(request));
        match sub.recv_timeout(Duration::from_millis(50)) {
            Ok((_, msg)) => {
                if let Some(frame) = msg.frames().first() {
                    if let Ok(DataMsg::Trace {
                        token: t,
                        seq: s,
                        payload,
                    }) = DataMsg::decode(frame)
                    {
                        if t == token && (s == seq || s == 0) {
                            return Ok(payload);
                        }
                        if t == token {
                            dup_counter.inc();
                        }
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Closed) => {
                return Err(TsError::Socket(
                    "producer disconnected during trace scrape".into(),
                ))
            }
        }
        if Instant::now() > deadline {
            return Err(TsError::Timeout("trace snapshot"));
        }
    }
}
