//! The unified builder API: one [`Producer`], one [`Consumer`],
//! endpoint-only attach.
//!
//! The paper's pitch is that a training script adopts TensorSocket by
//! swapping one line. The legacy surface grew away from that: producers
//! picked between two divergent entry points (`TensorProducer::spawn` vs
//! `ShardedProducerGroup::spawn`) and a consumer had to out-of-band
//! mirror the producer's shard count, arena path and batch schema —
//! exactly the silent-misconfiguration trap the data-loading literature
//! warns about. This module folds all of it under two facades:
//!
//! * [`Producer::builder()`] — one handle subsuming the plain and the
//!   sharded producer (one source = the degenerate one-shard case). It
//!   auto-creates and auto-sizes the shared-memory arena and its
//!   recycling slot pool from the loader's own geometry and pipeline
//!   hints ([`crate::runtime::producer::SampleGeometry`]), instead of
//!   asking the user to compute slot depths by hand.
//! * [`Consumer::builder()`]`.connect(endpoint)` — a consumer needs
//!   **literally only the endpoint URI**. Everything else arrives over a
//!   versioned HELLO/WELCOME handshake on the control channel: shard
//!   count (and with it every shard's data/ctrl endpoint, via
//!   [`ts_socket::EndpointMap`]), the arena path and slot geometry, the
//!   batch schema and the staging mode. Mismatches surface as typed
//!   [`HandshakeError`]s — never as hangs or silently wrong training
//!   streams.
//!
//! The wire protocol and delivery engine are unchanged: a [`Consumer`]'s
//! batch stream is byte-identical to the legacy `TensorConsumer`'s (the
//! runtime test-suite asserts it across sharded/arena/staging
//! topologies), and the legacy types remain as thin `#[deprecated]`
//! shims over the same internals.

use crate::protocol::messages::{
    caps, topics, CtrlMsg, DataMsg, PayloadMode, WelcomeInfo, HANDSHAKE_VERSION,
};
use crate::protocol::rubberband::RubberbandPolicy;
use crate::runtime::config::{ConsumerConfig, FlexibleConfig, ProducerConfig, ProducerMap};
use crate::runtime::consumer::{rand_id, ConsumerBatch, StopReason, TensorConsumer};
use crate::runtime::context::TsContext;
use crate::runtime::coordinator::{EpochCoordinator, ShardedProducerGroup};
use crate::runtime::producer::{EpochSource, ProducerStats, TensorProducer};
use crate::runtime::staging::{StagingConfig, StagingMode};
use crate::{HandshakeError, Result, TsError};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ts_device::DeviceId;
use ts_shm::ShmArena;
use ts_socket::{Endpoint, EndpointMap, Multipart, PushSocket, RecvError, SubSocket};

// ---------------------------------------------------------------------------
// Producer
// ---------------------------------------------------------------------------

/// How the builder provisions the shared-memory arena.
enum ArenaSpec {
    /// Auto-size slot count and slot size from the sources' geometry.
    Auto { path: PathBuf },
    /// Explicit geometry (size-changing pipelines, exotic sources).
    Sized {
        path: PathBuf,
        nslots: usize,
        slot_size: usize,
    },
}

/// Builder for a [`Producer`]; start from [`Producer::builder`].
pub struct ProducerBuilder {
    cfg: ProducerConfig,
    ctx: Option<TsContext>,
    arena: Option<ArenaSpec>,
    /// A malformed endpoint handed to a `Self`-returning method; surfaced
    /// at spawn so the chain stays fluent.
    endpoint_err: Option<TsError>,
}

impl ProducerBuilder {
    fn new() -> Self {
        Self {
            cfg: ProducerConfig::default(),
            ctx: None,
            arena: None,
            endpoint_err: None,
        }
    }

    /// Base endpoint (`inproc://`, `ipc://`, `tcp://` — as a URI string
    /// or a parsed [`Endpoint`]); data/ctrl and per-shard endpoints all
    /// derive from it. A malformed URI fails the eventual
    /// [`ProducerBuilder::spawn`] with [`TsError::Endpoint`].
    pub fn endpoint<E>(mut self, endpoint: E) -> Self
    where
        E: TryInto<Endpoint>,
        E::Error: Into<TsError>,
    {
        match endpoint.try_into() {
            Ok(ep) => self.cfg.endpoint = ep.to_string(),
            Err(e) => self.endpoint_err = Some(e.into()),
        }
        self
    }

    /// Overrides shard `shard`'s base endpoint — the multi-host escape
    /// hatch: that shard binds (and is advertised at) the given URI
    /// instead of the one derived from the base endpoint by scheme rules.
    /// Advertised verbatim in the v2 WELCOME, so consumers follow the
    /// override with no out-of-band configuration.
    pub fn shard_endpoint<E>(mut self, shard: u32, endpoint: E) -> Self
    where
        E: TryInto<Endpoint>,
        E::Error: Into<TsError>,
    {
        match endpoint.try_into() {
            Ok(ep) => {
                let uri = ep.to_string();
                match self
                    .cfg
                    .shard_endpoints
                    .binary_search_by_key(&shard, |(s, _)| *s)
                {
                    Ok(i) => self.cfg.shard_endpoints[i].1 = uri,
                    Err(i) => self.cfg.shard_endpoints.insert(i, (shard, uri)),
                }
            }
            Err(e) => self.endpoint_err = Some(e.into()),
        }
        self
    }

    /// Epochs to run.
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    /// Consumer-side batch buffer size N (paper default 2).
    pub fn buffer_size(mut self, n: usize) -> Self {
        self.cfg.buffer_size = n;
        self
    }

    /// Rubberband join window as a fraction of the epoch (paper: 0.02).
    pub fn rubberband_cutoff(mut self, cutoff: f64) -> Self {
        self.cfg.rubberband_cutoff = cutoff;
        self
    }

    /// Consumers silent for longer than this are detached.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.heartbeat_timeout = timeout;
        self
    }

    /// Device batches are staged on before being shared.
    pub fn device(mut self, device: DeviceId) -> Self {
        self.cfg.device = device;
        self
    }

    /// Device staging shape (GPU producers); defaults to
    /// [`StagingMode::Overlapped`] with pool and queue depths derived
    /// from the publish window.
    pub fn staging(mut self, mode: StagingMode) -> Self {
        self.cfg.staging.mode = mode;
        self
    }

    /// Full staging configuration, for explicit slab/queue depths.
    pub fn staging_config(mut self, staging: StagingConfig) -> Self {
        self.cfg.staging = staging;
        self
    }

    /// Flexible batch sizing (§3.2.6): producer batches of `producer_batch`
    /// samples carved per consumer.
    pub fn flexible(mut self, flexible: FlexibleConfig) -> Self {
        self.cfg.flexible = Some(flexible);
        self
    }

    /// Producer-side batch stage applied once per batch before sharing.
    pub fn producer_map(mut self, map: ProducerMap) -> Self {
        self.cfg.producer_map = Some(map);
        self
    }

    /// Keeps a durable batch log under `dir` (one subdirectory per
    /// shard): every published batch is teed to disk by a background
    /// spiller, the v3 WELCOME advertises the retained range, and
    /// consumers attaching with [`ConsumerBuilder::group`] replay the
    /// logged tail before splicing onto the live stream. The directory
    /// must be empty (or fresh) — sequence numbers restart per run, so
    /// spawning over an old log fails rather than serving stale bytes.
    /// Incompatible with [`ProducerBuilder::flexible`].
    pub fn log(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.log = Some(ts_log::LogConfig::new(dir.into()));
        self
    }

    /// Durable batch log with explicit segment/retention geometry (see
    /// [`ts_log::LogConfig`]); [`ProducerBuilder::log`] with defaults
    /// otherwise.
    pub fn log_config(mut self, cfg: ts_log::LogConfig) -> Self {
        self.cfg.log = Some(cfg);
        self
    }

    /// Stop waiting for the first consumer after this long (`None` =
    /// forever).
    pub fn first_consumer_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.cfg.first_consumer_timeout = timeout;
        self
    }

    /// Bound on one control-poll round (stop-flag/liveness checks; the
    /// publish loop parks on the control channel regardless).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.cfg.poll_interval = interval;
        self
    }

    /// How tolerant the stall watchdog is: a batch (or an idle publish
    /// loop) is only called stalled once it exceeds this multiple of the
    /// relevant stage's rolling p99 (with a small absolute floor).
    /// Verdicts land in `watchdog.stalls.*` counters, the stats snapshot
    /// and the `ts-top` header. Default 4.0; values below 1.0 are
    /// clamped up.
    pub fn watchdog_stall_multiple(mut self, multiple: f64) -> Self {
        self.cfg.watchdog_stall_multiple = multiple;
        self
    }

    /// Explicit feeder→publish hand-off queue capacity (default: the
    /// source's `num_workers × prefetch_factor` hint).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.cfg.pipeline_depth = Some(depth);
        self
    }

    /// Runtime context to spawn in. Defaults to a fresh
    /// [`TsContext::host_only`] — share one explicitly for `inproc://`
    /// deployments or simulated-GPU devices.
    pub fn context(mut self, ctx: &TsContext) -> Self {
        self.ctx = Some(ctx.clone());
        self
    }

    /// Starts from an explicit [`ProducerConfig`] (escape hatch for knobs
    /// without a dedicated builder method, e.g. `poll_interval`).
    pub fn config(mut self, cfg: ProducerConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Backs payloads with a shared-memory arena at `path`, **auto-sized**
    /// from the sources: slot size from the per-sample geometry hint
    /// ([`EpochSource::sample_geometry`]) × the (producer-)batch size, and
    /// slot count from the publish window + rubberband pin headroom ×
    /// tensors per batch × shards. A matching recycling slot pool is bound
    /// per shard, so steady-state publishing performs zero arena
    /// allocations. The geometry is advertised over the attach handshake —
    /// consumers map the arena without being told its path.
    ///
    /// Fails at spawn when the source cannot report its geometry; use
    /// [`ProducerBuilder::arena_sized`] then.
    pub fn arena(mut self, path: impl Into<PathBuf>) -> Self {
        self.arena = Some(ArenaSpec::Auto { path: path.into() });
        self
    }

    /// Backs payloads with a shared-memory arena of explicit geometry
    /// (for size-changing transform pipelines or sources without a
    /// geometry hint).
    pub fn arena_sized(
        mut self,
        path: impl Into<PathBuf>,
        nslots: usize,
        slot_size: usize,
    ) -> Self {
        self.arena = Some(ArenaSpec::Sized {
            path: path.into(),
            nslots,
            slot_size,
        });
        self
    }

    /// Spawns a single-pipeline producer over `source` (the degenerate
    /// one-shard case of [`ProducerBuilder::spawn_sharded`]).
    pub fn spawn(self, source: impl EpochSource) -> Result<Producer> {
        self.spawn_sharded(vec![source])
    }

    /// Spawns one producer pipeline per source — source `i` must own
    /// shard `i`'s disjoint partition (`DataLoader::sharded`) — in
    /// lockstep under an epoch coordinator. One source spawns a plain
    /// producer with no coordination overhead.
    pub fn spawn_sharded<S: EpochSource>(self, sources: Vec<S>) -> Result<Producer> {
        if let Some(e) = self.endpoint_err {
            return Err(e);
        }
        if sources.is_empty() {
            return Err(TsError::Config("producer needs at least one source".into()));
        }
        if let Some((shard, _)) = self
            .cfg
            .shard_endpoints
            .iter()
            .find(|(s, _)| *s as usize >= sources.len())
        {
            return Err(TsError::Config(format!(
                "shard_endpoint({shard}, ..) targets a shard the {}-source topology \
                 does not have",
                sources.len()
            )));
        }
        let ctx = self.ctx.unwrap_or_else(TsContext::host_only);
        let cfg = self.cfg;
        let shards = sources.len();
        let arena = match self.arena {
            None => None,
            Some(spec) => Some(Self::provision_arena(&ctx, &cfg, &sources, spec)?),
        };
        let endpoint = cfg.endpoint.clone();
        let engine = if shards == 1 {
            let source = sources.into_iter().next().expect("one source");
            Engine::Single(TensorProducer::spawn_impl(source, &ctx, cfg)?)
        } else {
            Engine::Group(ShardedProducerGroup::spawn_impl(sources, &ctx, cfg)?)
        };
        Ok(Producer {
            engine,
            endpoint,
            ctx,
            arena,
        })
    }

    /// Creates (and binds) the arena plus its per-shard recycling pools,
    /// sizing both from the sources when the spec is `Auto`.
    fn provision_arena<S: EpochSource>(
        ctx: &TsContext,
        cfg: &ProducerConfig,
        sources: &[S],
        spec: ArenaSpec,
    ) -> Result<Arc<ShmArena>> {
        let shards = sources.len();
        // In-flight announcements per shard: the publish window plus the
        // rubberband pin set (pinned batches stay registered past full
        // acknowledgement until the join window closes) plus a margin for
        // releases still in flight.
        let policy = RubberbandPolicy {
            cutoff: cfg.rubberband_cutoff,
        };
        let per_shard_live = |source: &S| -> usize {
            let expected = match &cfg.flexible {
                None => source.batches_per_epoch() as u64,
                Some(flex) => ((source.batches_per_epoch() * source.batch_size()) as u64)
                    .div_ceil(flex.producer_batch as u64),
            };
            // Zero-copy publish leases slots *ahead* of the publish
            // cursor: every prepared item parked in the feeder queue (and
            // in the overlapped staging hand-off) already owns its slot.
            // Size that ahead-of-publish set in, or a fast feeder would
            // exhaust the pool and knock the hot path back to the copying
            // fallback.
            let (workers, prefetch) = source.pipeline_hint();
            let feeder_ahead = cfg.pipeline_depth.unwrap_or(workers * prefetch).max(1)
                + cfg.staging.queue_depth.unwrap_or(cfg.buffer_size)
                + 1;
            cfg.buffer_size + policy.pinned_batches(expected) as usize + feeder_ahead + 2
        };
        let (path, nslots, slot_size, tensors_per_batch) = match spec {
            ArenaSpec::Sized {
                path,
                nslots,
                slot_size,
            } => (path, nslots, slot_size, None),
            ArenaSpec::Auto { path } => {
                let geometry = sources[0].sample_geometry().ok_or_else(|| {
                    TsError::Config(
                        "source reports no sample geometry; size the arena explicitly \
                         with ProducerBuilder::arena_sized"
                            .into(),
                    )
                })?;
                // Under flexible sizing the registered tensors are producer
                // batches, which can briefly overshoot `producer_batch` by
                // up to one loader batch before the preparer flushes.
                let max_batch = match &cfg.flexible {
                    None => sources[0].batch_size(),
                    Some(flex) => flex.producer_batch + sources[0].batch_size(),
                };
                let slot_size = geometry.max_tensor_bytes(max_batch).next_multiple_of(4096);
                let tensors = geometry.tensors_per_batch();
                let nslots: usize = sources
                    .iter()
                    .map(|s| per_shard_live(s) * tensors)
                    .sum::<usize>()
                    .max(2);
                (path, nslots, slot_size, Some(tensors))
            }
        };
        let arena = ctx.create_arena(&path, nslots, slot_size)?;
        // Bind a recycling pool per shard so steady-state publishing
        // rewrites fully-acked slots in place. Depth mirrors the live-set
        // math above; explicit-geometry callers get it derived from the
        // arena itself.
        for (shard, source) in sources.iter().enumerate() {
            let depth = match tensors_per_batch {
                Some(tensors) => per_shard_live(source) * tensors,
                None => (nslots / shards).max(1),
            };
            if shards == 1 {
                ctx.enable_slot_recycling(depth)?;
            } else {
                ctx.enable_shard_slot_recycling(shard as u32, depth)?;
            }
        }
        Ok(arena)
    }
}

/// The two engine shapes a [`Producer`] subsumes.
enum Engine {
    Single(TensorProducer),
    Group(ShardedProducerGroup),
}

/// The producing end of a TensorSocket: one handle over the data-loading
/// pipeline(s), whether one shard or many.
///
/// Built with [`Producer::builder`]:
///
/// ```no_run
/// use tensorsocket::{Producer, Consumer};
/// use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
/// use std::sync::Arc;
///
/// let dataset = Arc::new(SyntheticImageDataset::imagenet_like(1024, 0));
/// let loader = DataLoader::new(dataset, DataLoaderConfig::default());
/// let producer = Producer::builder()
///     .endpoint("ipc:///tmp/ts.sock")
///     .arena("/dev/shm/ts.arena") // auto-sized from the loader
///     .epochs(2)
///     .spawn(loader)
///     .unwrap();
///
/// // any consumer process, knowing ONLY the endpoint:
/// let consumer = Consumer::builder().connect("ipc:///tmp/ts.sock").unwrap();
/// for batch in consumer {
///     let batch = batch.unwrap();
///     let _ = batch.fields[0].shape();
/// }
/// producer.join().unwrap();
/// ```
pub struct Producer {
    engine: Engine,
    endpoint: String,
    ctx: TsContext,
    arena: Option<Arc<ShmArena>>,
}

impl std::fmt::Debug for Producer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("endpoint", &self.endpoint)
            .field("shards", &self.num_shards())
            .field("arena", &self.arena.as_ref().map(|a| a.path().to_owned()))
            .finish()
    }
}

impl Producer {
    /// Starts building a producer.
    pub fn builder() -> ProducerBuilder {
        ProducerBuilder::new()
    }

    /// Number of shard pipelines (1 for a plain producer).
    pub fn num_shards(&self) -> usize {
        match &self.engine {
            Engine::Single(_) => 1,
            Engine::Group(g) => g.num_shards(),
        }
    }

    /// The base endpoint URI consumers attach to.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The runtime context the producer spawned in (its registry, device
    /// books and metrics).
    pub fn context(&self) -> &TsContext {
        &self.ctx
    }

    /// The shared-memory arena the builder provisioned, if any.
    pub fn arena(&self) -> Option<&Arc<ShmArena>> {
        self.arena.as_ref()
    }

    /// The epoch coordinator, when sharded (inspection and tests).
    pub fn coordinator(&self) -> Option<&Arc<EpochCoordinator>> {
        match &self.engine {
            Engine::Single(_) => None,
            Engine::Group(g) => Some(g.coordinator()),
        }
    }

    /// Requests every pipeline to stop after the batch in flight.
    pub fn abort(&self) {
        match &self.engine {
            Engine::Single(p) => p.abort(),
            Engine::Group(g) => g.abort(),
        }
    }

    /// Waits for every pipeline to finish; returns the stats aggregated
    /// across shards (see [`Producer::join_shards`] for per-shard
    /// numbers). Like the legacy join, an aborted producer returns its
    /// partial stats rather than an error.
    pub fn join(self) -> Result<ProducerStats> {
        let per_shard = self.join_shards()?;
        let mut total = ProducerStats::default();
        for s in &per_shard {
            total.batches_published += s.batches_published;
            total.batches_replayed += s.batches_replayed;
            total.bytes_staged += s.bytes_staged;
            total.consumers_detached += s.consumers_detached;
            total.joins_rejected += s.joins_rejected;
            total.peak_consumers = total.peak_consumers.max(s.peak_consumers);
        }
        // Epochs complete only when every shard finished them.
        total.epochs_completed = per_shard
            .iter()
            .map(|s| s.epochs_completed)
            .min()
            .unwrap_or(0);
        Ok(total)
    }

    /// Waits for every pipeline to finish; returns per-shard stats
    /// (index = shard).
    pub fn join_shards(self) -> Result<Vec<ProducerStats>> {
        let shards = self.num_shards();
        let stats = match self.engine {
            Engine::Single(p) => vec![p.join()?],
            Engine::Group(g) => g.join()?,
        };
        // The builder provisioned the recycling pools, so it also drains
        // them: idle recycled slots hold a producer reference each, and
        // without this the arena would report them in use forever.
        if self.arena.is_some() {
            if let Some(pool) = self.ctx.registry.slot_pool() {
                pool.drain();
            }
            for shard in 0..shards as u32 {
                if let Some(pool) = self.ctx.registry.shard_slot_pool(shard) {
                    pool.drain();
                }
            }
        }
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// Consumer
// ---------------------------------------------------------------------------

/// Builder for a [`Consumer`]; start from [`Consumer::builder`].
pub struct ConsumerBuilder {
    cfg: ConsumerConfig,
    ctx: Option<TsContext>,
    shards_override: Option<usize>,
    handshake_timeout: Duration,
    hello_version: u32,
    payload_mode: Option<PayloadMode>,
}

impl ConsumerBuilder {
    fn new() -> Self {
        Self {
            cfg: ConsumerConfig::default(),
            ctx: None,
            shards_override: None,
            handshake_timeout: Duration::from_secs(10),
            hello_version: HANDSHAKE_VERSION,
            payload_mode: None,
        }
    }

    /// Runtime context to attach from. Defaults to a fresh
    /// [`TsContext::host_only`] — which is correct for `ipc://`/`tcp://`
    /// attaches from an independent process; share the producer's context
    /// for `inproc://`.
    pub fn context(mut self, ctx: &TsContext) -> Self {
        self.ctx = Some(ctx.clone());
        self
    }

    /// Desired batch size under flexible sizing (ignored otherwise).
    pub fn batch_size(mut self, n: usize) -> Self {
        self.cfg.batch_size = Some(n);
        self
    }

    /// Interval between heartbeats (must be well below the producer's
    /// timeout).
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.cfg.heartbeat_interval = interval;
        self
    }

    /// How long `next` waits for data before giving up.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.recv_timeout = timeout;
        self
    }

    /// How long [`ConsumerBuilder::connect`] waits for the producer's
    /// WELCOME before failing with a timeout (default 10 s).
    pub fn handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Fixed consumer id (`None` picks a random one).
    pub fn consumer_id(mut self, id: u64) -> Self {
        self.cfg.consumer_id = Some(id);
        self
    }

    /// Consumer-local augmentation applied to every received batch's
    /// primary field (finer-grained sharing, §5).
    pub fn local_pipeline(mut self, pipeline: Arc<ts_data::Pipeline>) -> Self {
        self.cfg.local_pipeline = Some(pipeline);
        self
    }

    /// Names this consumer's **group**: when the producer keeps a durable
    /// log (v3 WELCOME advertises it), connect sends `Replay` per shard
    /// and resumes from the group's persisted cursor — a consumer
    /// restarted after a crash (`kill -9` included) replays the logged
    /// range it never acked, then splices onto the live stream
    /// byte-identically. Resume is cursor-exact when this is the only
    /// consumer; rejoining alongside active consumers re-delivers the
    /// current epoch from its start (epoch-coherent — the rubberband
    /// admission point caps the replay cursor; already-acked batches are
    /// re-delivered identically and leave the cursor untouched). Without
    /// a log (or on older producers) the name is inert and the consumer
    /// joins live-only.
    pub fn group(mut self, name: impl Into<String>) -> Self {
        self.cfg.group = Some(name.into());
        self
    }

    /// Insists on a shard count instead of trusting the advertisement.
    /// Normally unnecessary — the handshake learns the topology — but a
    /// deployment that *knows* its shape can assert it; a mismatch fails
    /// with [`HandshakeError::Topology`] instead of training on the wrong
    /// topology.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards_override = Some(shards);
        self
    }

    /// Overrides the HELLO version (handshake-evolution tests).
    #[doc(hidden)]
    pub fn hello_version(mut self, version: u32) -> Self {
        self.hello_version = version;
        self
    }

    /// Forces the payload mode instead of negotiating it at attach:
    /// [`PayloadMode::Shm`] insists on pointer-passing (the arena must
    /// open, or connect fails with [`HandshakeError::ArenaMissing`]);
    /// [`PayloadMode::Stream`] insists on byte streaming (the producer
    /// must grant it, or connect fails with [`HandshakeError::Mode`]).
    /// Unset, the consumer prefers shm and falls back to streaming when
    /// the advertised arena cannot be opened — the remote-host case.
    /// The `TS_FORCE_PAYLOAD_MODE` environment variable (`shm` /
    /// `stream`) forces the mode too, with this method taking precedence.
    pub fn payload_mode(mut self, mode: PayloadMode) -> Self {
        self.payload_mode = Some(mode);
        self
    }

    /// Attaches to the producer at `endpoint` — the **only** required
    /// parameter. The HELLO/WELCOME handshake on the control channel
    /// reports the shard count, arena geometry and batch schema; this
    /// call validates them (typed [`HandshakeError`]s on mismatch), maps
    /// the advertised arena if one backs the payload path, joins every
    /// shard and returns the iterating consumer.
    pub fn connect<E>(self, endpoint: E) -> Result<Consumer>
    where
        E: TryInto<Endpoint>,
        E::Error: Into<TsError>,
    {
        let endpoint = endpoint.try_into().map_err(Into::into)?.to_string();
        let ctx = self.ctx.unwrap_or_else(TsContext::host_only);
        // Forced payload mode: the builder knob wins over the
        // TS_FORCE_PAYLOAD_MODE environment variable; neither set means
        // negotiate (prefer shm, fall back to streaming).
        let forced = self.payload_mode.or_else(|| {
            match std::env::var("TS_FORCE_PAYLOAD_MODE").ok().as_deref() {
                Some("stream") => Some(PayloadMode::Stream),
                Some("shm") => Some(PayloadMode::Shm),
                _ => None,
            }
        });
        let our_caps = match forced {
            Some(mode) => mode.cap_bit(),
            None => caps::KNOWN,
        };
        let welcome = handshake(
            &ctx,
            &endpoint,
            self.handshake_timeout,
            self.hello_version,
            our_caps,
        )?;
        if welcome.version != self.hello_version {
            return Err(HandshakeError::Version {
                ours: self.hello_version,
                theirs: welcome.version,
            }
            .into());
        }
        let advertised = welcome.shards.max(1) as usize;
        if let Some(requested) = self.shards_override {
            if requested != advertised {
                return Err(HandshakeError::Topology {
                    requested,
                    advertised,
                }
                .into());
            }
        }
        // What the producer will serve us. A v1 WELCOME has no grant mask
        // and means shm-only.
        let granted = if welcome.version >= 2 {
            welcome.payload_modes
        } else {
            caps::SHM
        };
        let mut mode = forced.unwrap_or(PayloadMode::Shm);
        if granted & mode.cap_bit() == 0 {
            return Err(HandshakeError::Mode {
                requested: mode,
                granted,
            }
            .into());
        }
        if mode == PayloadMode::Shm {
            if let Some(ad) = &welcome.arena {
                // An arena already bound (same process as the producer, or
                // a caller that pre-opened it) wins; otherwise map the
                // advertised one. A consumer that cannot map it — another
                // host — falls back to the streamed path when the producer
                // grants it and the caller did not insist on shm.
                if ctx.registry.arena().is_none() {
                    if let Err(e) = ctx.open_arena(&ad.path) {
                        if forced.is_none() && granted & caps::STREAM != 0 {
                            mode = PayloadMode::Stream;
                        } else {
                            return Err(HandshakeError::ArenaMissing {
                                path: ad.path.clone(),
                                reason: e.to_string(),
                            }
                            .into());
                        }
                    }
                }
            }
        }
        let cfg = ConsumerConfig {
            endpoint,
            shards: advertised,
            mode,
            endpoint_overrides: welcome.endpoint_overrides.clone(),
            log_available: welcome.log.is_some(),
            ..self.cfg
        };
        let inner = TensorConsumer::connect_impl(&ctx, cfg)?;
        Ok(Consumer {
            inner,
            welcome,
            error_reported: false,
        })
    }
}

/// Performs the HELLO/WELCOME exchange on the base endpoint's channels.
/// Stateless and retrying: the HELLO is re-sent every poll round, so a
/// WELCOME published while this consumer's subscription was still
/// propagating (remote transports) is simply answered again.
fn handshake(
    ctx: &TsContext,
    endpoint: &str,
    timeout: Duration,
    version: u32,
    caps: u32,
) -> Result<WelcomeInfo> {
    let map = EndpointMap::new(endpoint, 1);
    let token = rand_id();
    let sub = SubSocket::connect(&ctx.sockets, &map.data(0));
    sub.subscribe(&topics::hello(token));
    let push = PushSocket::connect(&ctx.sockets, &map.ctrl(0));
    let hello = CtrlMsg::Hello {
        token,
        version,
        caps,
    }
    .encode();
    let deadline = Instant::now() + timeout;
    loop {
        // A send failure just means the producer is not reachable *yet*
        // (bind/connect order is free on every transport): keep retrying
        // until the deadline.
        let _ = push.send(Multipart::single(hello.clone()));
        match sub.recv_timeout(Duration::from_millis(50)) {
            Ok((_, msg)) => {
                if let Some(frame) = msg.frames().first() {
                    if let Ok(DataMsg::Welcome { token: t, info }) = DataMsg::decode(frame) {
                        if t == token {
                            return Ok(info);
                        }
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Closed) => {
                return Err(TsError::Socket(
                    "producer disconnected during handshake".into(),
                ))
            }
        }
        if Instant::now() > deadline {
            return Err(TsError::Timeout("handshake WELCOME"));
        }
    }
}

/// The consuming end of a TensorSocket, attached with nothing but an
/// endpoint URI (see [`Consumer::builder`]).
///
/// Iterate it like a data loader. Unlike the legacy `TensorConsumer`,
/// items are `Result`s: a clean end of stream (the producer published
/// `End` on every shard) terminates iteration with `None`, while
/// detachment, timeouts and protocol violations surface **once** as an
/// `Err` item before the stream ends — no sentinel-checking after the
/// loop. Dropping the consumer detaches it cleanly (acks the batch in
/// flight, notifies every shard, stops the heartbeat).
pub struct Consumer {
    inner: TensorConsumer,
    welcome: WelcomeInfo,
    error_reported: bool,
}

impl std::fmt::Debug for Consumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("id", &self.inner.id())
            .field("shards", &self.inner.num_shards())
            .field("stop_reason", &self.inner.stop_reason())
            .finish()
    }
}

impl Consumer {
    /// Starts building a consumer.
    pub fn builder() -> ConsumerBuilder {
        ConsumerBuilder::new()
    }

    /// The consumer's id.
    pub fn id(&self) -> u64 {
        self.inner.id()
    }

    /// Epoch this consumer was admitted into.
    pub fn joined_epoch(&self) -> u64 {
        self.inner.joined_epoch()
    }

    /// Number of producer shards this consumer is subscribed to (learned
    /// from the handshake).
    pub fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    /// The producer's WELCOME self-description this consumer attached
    /// against.
    pub fn welcome(&self) -> &WelcomeInfo {
        &self.welcome
    }

    /// The payload mode negotiated at attach: shm pointer-passing, or
    /// length-prefixed byte streaming for consumers that could not map
    /// the producer's arena (or forced the mode).
    pub fn payload_mode(&self) -> PayloadMode {
        self.inner.payload_mode()
    }

    /// The producer's advertised staging mode, when it is one this
    /// consumer knows.
    pub fn staging_mode(&self) -> Option<StagingMode> {
        StagingMode::from_wire_code(self.welcome.staging)
    }

    /// Why iteration stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.inner.stop_reason()
    }

    /// Batches consumed so far.
    pub fn batches_consumed(&self) -> u64 {
        self.inner.batches_consumed()
    }

    /// Samples consumed so far.
    pub fn samples_consumed(&self) -> u64 {
        self.inner.samples_consumed()
    }

    /// Batch pointers currently buffered locally (§3.2.5).
    pub fn buffered(&self) -> usize {
        self.inner.buffered()
    }

    /// The latest `(epoch, seq, index_in_epoch)` the producer announced
    /// on the coalescing cursor channel for `shard`, if any flush has
    /// arrived. Latest-wins: this is where the producer *is*, not a log
    /// of where it has been — stale positions are displaced, never
    /// queued.
    pub fn latest_cursor(&self, shard: usize) -> Option<(u64, u64, u64)> {
        self.inner.latest_cursor(shard)
    }
}

impl Iterator for Consumer {
    type Item = Result<ConsumerBatch>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(batch) = self.inner.next() {
            return Some(Ok(batch));
        }
        if self.error_reported {
            return None;
        }
        match self.inner.stop_reason() {
            None | Some(StopReason::End) => None,
            Some(reason) => {
                self.error_reported = true;
                Some(Err(match reason {
                    StopReason::Detached => TsError::Detached,
                    StopReason::Timeout => TsError::Timeout("batch from producer"),
                    StopReason::ProducerGone => TsError::Socket("producer disconnected".into()),
                    StopReason::Protocol => self
                        .inner
                        .last_error()
                        .cloned()
                        .unwrap_or_else(|| TsError::Wire("protocol violation".into())),
                    StopReason::End => unreachable!("handled above"),
                }))
            }
        }
    }
}
