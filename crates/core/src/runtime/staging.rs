//! The device-staging stage of the producer pipeline.
//!
//! The paper's producer stages every collated batch on GPU 0 before
//! announcing it (§3.2.4). Earlier revisions of this runtime modeled that
//! as a per-batch `DeviceCtx::transfer` on the publish thread: a fresh
//! device allocation, a copy, and a free per batch — correct accounting,
//! but an allocation per batch and a copy serialized with publishing.
//! This module replaces that hot path with the staging subsystem from
//! `ts-staging`:
//!
//! * a [`DeviceSlabPool`] of pre-allocated VRAM slabs, sized from the
//!   publish window and rotated in lockstep with the host
//!   [`ts_tensor::SlotPool`] — after warm-up, staging performs **zero
//!   device allocations** (each staged tensor rewrites a leased slab,
//!   returned when producer and consumers drop it);
//! * an asynchronous **H2D copy stage** between the feeder and the
//!   publish loop (`StagingEngine::spawn_copy_stage`): the copy of
//!   batch *n* overlaps the host collation of batch *n + 1* and the
//!   publish/ack round of batch *n − 1*, so the modeled PCIe time leaves
//!   the critical path.
//!
//! The backend is pluggable ([`ts_staging::DeviceBackend`]); the default
//! [`SimBackend`] routes allocation and traffic through the context's
//! `ts-device` books, so Tables 3–4 accounting is unchanged to the byte.
//! Each producer pipeline owns its own engine and pool — one per shard in
//! a [`crate::ShardedProducerGroup`], mirroring the per-shard host slot
//! pool binding.
//!
//! Exported staging metrics (via the context's [`ts_metrics::Registry`]):
//! counter `staging.h2d_bytes` (aggregated across engines), gauges
//! `staging.slab_occupancy` (slabs in use), `staging.copy_queue_depth`
//! (staged batches waiting for the publish loop) and
//! `staging.h2d_bytes_per_sec` (average copy throughput), plus two
//! latency histograms: `staging.h2d_ns` (slab lease + H2D copy + fence
//! per batch) and `staging.copy_wait_ns` (how long a staged batch waited
//! in the overlapped hand-off queue for the publish loop). Gauges and
//! histograms are per-engine: a shard of a
//! [`crate::ShardedProducerGroup`] reports them as `staging.s<shard>.
//! <name>` so concurrent shards never clobber each other.

use crate::runtime::config::ProducerConfig;
use crate::runtime::context::TsContext;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ts_device::DeviceId;

use ts_staging::{DeviceBackend, DeviceSlabPool, SimBackend, StagingError};
use ts_tensor::{contiguous_strides, Storage, Tensor};

/// How the producer stages batches on its device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StagingMode {
    /// Legacy path: a per-batch device allocation + copy on the publish
    /// thread (`DeviceCtx::transfer`), freed on release. Kept as the
    /// baseline the staged paths are benchmarked against.
    Off,
    /// Slab-pooled staging, with the copy performed on the publish thread
    /// right before the announce — the "serial copy-then-publish"
    /// shape: zero steady-state allocations, but the copy still occupies
    /// the critical path.
    Serial,
    /// Slab-pooled staging with the copy on a dedicated stage between
    /// the feeder and the publish loop, overlapping the copy of batch
    /// *n* with collation of *n + 1* and publishing of *n − 1*. Falls
    /// back to [`StagingMode::Serial`] in the inline (`num_workers == 0`)
    /// producer shape, which has no feeder stage to overlap with.
    #[default]
    Overlapped,
}

impl StagingMode {
    /// The one-byte encoding used in the attach handshake's WELCOME.
    pub fn wire_code(self) -> u8 {
        match self {
            StagingMode::Off => 0,
            StagingMode::Serial => 1,
            StagingMode::Overlapped => 2,
        }
    }

    /// Decodes a WELCOME staging byte (unknown codes map to `None`).
    pub fn from_wire_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(StagingMode::Off),
            1 => Some(StagingMode::Serial),
            2 => Some(StagingMode::Overlapped),
            _ => None,
        }
    }
}

/// Configuration of the device-staging stage (ignored when the producer
/// device is the CPU, where there is nothing to stage).
#[derive(Debug, Clone, Default)]
pub struct StagingConfig {
    /// Staging shape; defaults to [`StagingMode::Overlapped`].
    pub mode: StagingMode,
    /// Capacity of the copy-stage hand-off queue (staged batches waiting
    /// for the publish loop). `None` sizes it like the publish window
    /// (`buffer_size`).
    pub queue_depth: Option<usize>,
    /// Slabs in the VRAM rotation. `None` derives it from the publish
    /// window: `(buffer_size + queue depth + rubberband headroom) ×
    /// tensors per batch`.
    pub slab_depth: Option<usize>,
    /// Modeled H2D copy bandwidth in bytes/second for the simulated
    /// backend. `None` uses the topology's link bandwidth (PCIe gen4 by
    /// default); benchmarks lower it to make overlap effects visible at
    /// small batch sizes.
    pub h2d_bandwidth: Option<f64>,
}

/// A shared-memory arena slot the feeder already collated a tensor into
/// (the zero-copy publish path): the lease still holds the slot's
/// producer reference, so an item dropped before publishing frees its
/// slots automatically. At publish time the loop adopts the lease into
/// the registry ([`ts_tensor::SharedRegistry::register_placed`]) instead
/// of copying bytes into a fresh placement.
pub(crate) struct Placement {
    /// The leased slot holding the tensor's bytes.
    pub lease: ts_shm::ShmLease,
    /// Which recycling pool the slot came from (`Some(shard)` for one
    /// pipeline of a sharded group, `None` for the default pool), so the
    /// registration reclaims into the right pool on release.
    pub pool_key: Option<u32>,
}

/// A batch the feeder stage finished preparing: producer map applied and
/// (under flexible sizing) loader batches fused into one producer batch.
/// The staging stage may additionally have placed its tensors on the
/// producer device (`staged`), in which case the publish stage only
/// registers and announces.
pub(crate) struct PreparedItem {
    /// Loader-batch index (default mode) or producer-batch index (flex).
    pub index_in_epoch: u64,
    /// True when this is the epoch's final announcement.
    pub last_in_epoch: bool,
    pub fields: Vec<Tensor>,
    pub labels: Tensor,
    /// Per-tensor arena placements the feeder collated in place, aligned
    /// with `fields` and then `labels` last (`fields.len() + 1` entries
    /// when the lease path ran, empty otherwise). Device staging replaces
    /// the *tensors* but keeps the placements: the host slot keeps holding
    /// the exact bytes the device copy was made from, so consumers attach
    /// it byte-identically while the publish loop still moves nothing.
    pub placements: Vec<Option<Placement>>,
    /// True once the staging stage placed the tensors on the device
    /// through the slab pool (release must NOT account a device free —
    /// the slab returns to the rotation instead).
    pub staged: bool,
    /// Bytes the staging stage copied to the device for this item.
    pub staged_bytes: u64,
    /// Flight-recorder span offsets stamped before the batch has a
    /// sequence number (`seq` is only assigned at publish): `(start, end)`
    /// in the context ring's clock, `(0, 0)` = not measured. The publish
    /// loop writes them into the [`ts_metrics::TraceRing`] under the
    /// final `(epoch, shard, seq)` key. Feeder fetch + collate:
    pub fetch_span: (u64, u64),
    /// Wait in the overlapped hand-off queue; the start is stamped by the
    /// copy stage, the end by the publish loop at dequeue.
    pub copy_wait_span: (u64, u64),
    /// Slab lease + H2D copy + fence.
    pub h2d_span: (u64, u64),
}

/// Feeder/staging → publish-stage messages.
pub(crate) enum FeederMsg {
    Item(PreparedItem),
    /// All of this epoch's items were sent.
    EpochDone(u64),
    /// Preparation or staging failed; the producer stops.
    Failed,
}

/// One producer pipeline's staging engine: the backend, the slab pool
/// (created lazily at the first item, when tensor geometry is known) and
/// the optional copy-stage thread.
pub(crate) struct StagingEngine {
    backend: Arc<SimBackend>,
    device: DeviceId,
    mode: StagingMode,
    queue_depth: usize,
    slab_depth: Option<usize>,
    buffer_size: usize,
    /// Batches the rubberband policy can pin past full acknowledgement
    /// (their slabs stay leased until the join window closes). Set by the
    /// producer loop once the epoch geometry is known, *before* the first
    /// item is staged, so the default pool depth covers the pin set and
    /// the zero-allocation steady state holds at any epoch length.
    pin_headroom: std::sync::atomic::AtomicUsize,
    pool: Mutex<Option<Arc<DeviceSlabPool>>>,
    copy_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Per-engine gauges, resolved once at build (the staging hot path
    /// must not re-format names or re-hash the registry per batch). Their
    /// names carry a per-shard prefix — `staging.` for a standalone
    /// producer, `staging.s<shard>.` for one shard of a group — so
    /// concurrent shard engines never clobber each other (one shard
    /// shutting down must not zero the occupancy another still reports).
    /// The occupancy gauge itself lives inside the pool's
    /// [`ts_staging::OccupancyHook`], which also keeps it current for
    /// returns that land after shutdown.
    occupancy_gauge: std::sync::Arc<ts_metrics::Gauge>,
    queue_gauge: std::sync::Arc<ts_metrics::Gauge>,
    rate_gauge: std::sync::Arc<ts_metrics::Gauge>,
    /// Pre-resolved `staging.h2d_bytes` counter (shared across engines —
    /// it aggregates, unlike the per-shard gauges).
    h2d_counter: std::sync::Arc<ts_metrics::Counter>,
    /// Per-engine H2D copy time per batch (lease + copy + fence), ns.
    h2d_hist: std::sync::Arc<ts_metrics::Histogram>,
    /// Per-engine time a staged batch waited in the overlapped hand-off
    /// queue for the publish loop to take it, ns.
    copy_wait_hist: std::sync::Arc<ts_metrics::Histogram>,
    /// The context's flight recorder, for per-batch H2D / copy-wait span
    /// stamps (the histograms keep the aggregates).
    trace: std::sync::Arc<ts_metrics::TraceRing>,
    h2d_bytes: AtomicU64,
    /// Clock base of `h2d_bytes_per_sec`: the first copy, NOT engine
    /// construction — a producer can idle a long time waiting for its
    /// first consumer, and that idle must not dilute the reported copy
    /// throughput.
    first_copy: std::sync::OnceLock<Instant>,
}

impl std::fmt::Debug for StagingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagingEngine")
            .field("device", &self.device)
            .field("mode", &self.mode)
            .field("queue_depth", &self.queue_depth)
            .finish_non_exhaustive()
    }
}

impl StagingEngine {
    /// Builds the engine for a producer, or `None` when there is nothing
    /// to stage (CPU device, staging off, or no route to the device — the
    /// last falls back to the legacy path, which surfaces the same error
    /// on first use). `shard` is `Some` for one pipeline of a sharded
    /// group, which namespaces the engine's gauges per shard.
    pub(crate) fn build(
        ctx: &TsContext,
        cfg: &ProducerConfig,
        shard: Option<u32>,
    ) -> Option<Arc<StagingEngine>> {
        if !cfg.device.is_gpu() || cfg.staging.mode == StagingMode::Off {
            return None;
        }
        let memory = ctx.devices.memory(cfg.device).ok()?.clone();
        let backend = SimBackend::new(
            ctx.devices.topology(),
            memory,
            ctx.devices.traffic().clone(),
            cfg.device,
        )
        .ok()?;
        let backend = match cfg.staging.h2d_bandwidth {
            Some(bps) => backend.with_bandwidth(bps),
            None => backend,
        };
        let prefix = match shard {
            Some(s) => format!("staging.s{s}."),
            None => {
                // Per-context engine ordinal: the first standalone engine
                // keeps the bare `staging.` names (the common one-producer
                // case, and what tests/dashboards read); any further
                // standalone engine in the SAME context gets its own
                // `staging.p<n>.` namespace — two collocated GPU
                // producers must not clobber each other's gauges, exactly
                // like two shards of a group.
                let ordinal = ctx.metrics.counter("staging.engines").fetch_inc();
                if ordinal == 0 {
                    "staging.".to_string()
                } else {
                    format!("staging.p{ordinal}.")
                }
            }
        };
        Some(Arc::new(StagingEngine {
            backend: Arc::new(backend),
            device: cfg.device,
            mode: cfg.staging.mode,
            queue_depth: cfg.staging.queue_depth.unwrap_or(cfg.buffer_size).max(1),
            slab_depth: cfg.staging.slab_depth,
            buffer_size: cfg.buffer_size,
            pin_headroom: std::sync::atomic::AtomicUsize::new(0),
            pool: Mutex::new(None),
            copy_thread: Mutex::new(None),
            occupancy_gauge: ctx.metrics.gauge(&format!("{prefix}slab_occupancy")),
            queue_gauge: ctx.metrics.gauge(&format!("{prefix}copy_queue_depth")),
            rate_gauge: ctx.metrics.gauge(&format!("{prefix}h2d_bytes_per_sec")),
            h2d_counter: ctx.metrics.counter("staging.h2d_bytes"),
            h2d_hist: ctx.metrics.histogram(&format!("{prefix}h2d_ns")),
            copy_wait_hist: ctx.metrics.histogram(&format!("{prefix}copy_wait_ns")),
            trace: ctx.trace.clone(),
            h2d_bytes: AtomicU64::new(0),
            first_copy: std::sync::OnceLock::new(),
        }))
    }

    /// Records how many batches the rubberband policy can pin past full
    /// acknowledgement this run. Called by the producer loop once the
    /// epoch geometry is known — before any item is staged — so
    /// [`StagingEngine::pool_for`] sizes the rotation to cover the pin
    /// set.
    pub(crate) fn set_pin_headroom(&self, batches: usize) {
        self.pin_headroom.store(batches, Ordering::Relaxed);
    }

    /// True when this engine wants the copy stage between feeder and
    /// publish loop.
    pub(crate) fn overlapped(&self) -> bool {
        self.mode == StagingMode::Overlapped
    }

    /// Rolling p99 of the per-batch H2D copy time, for the producer's
    /// stall watchdog (loader-bound vs H2D-bound classification).
    pub(crate) fn h2d_p99(&self) -> u64 {
        self.h2d_hist.snapshot().p99()
    }

    /// The slab pool, created at the first staged item so slabs are sized
    /// to the real batch geometry (`slab = largest tensor of the item`,
    /// depth = window + queue + rubberband headroom, in tensors).
    fn pool_for(&self, item: &PreparedItem) -> Arc<DeviceSlabPool> {
        let mut slot = self.pool.lock();
        if let Some(pool) = slot.as_ref() {
            return pool.clone();
        }
        let tensors_per_item = item.fields.len() + 1;
        let slab_bytes = item
            .fields
            .iter()
            .chain(std::iter::once(&item.labels))
            .map(|t| t.view_bytes())
            .max()
            .unwrap_or(1)
            .max(1);
        // The rotation must cover every lease simultaneously out in
        // steady state: the publish window, the copy-stage look-ahead,
        // the rubberband pin set (pinned batches hold their slabs past
        // full acknowledgement until the join window closes), and a
        // margin for releases still in flight.
        let pin = self.pin_headroom.load(Ordering::Relaxed);
        let depth = self
            .slab_depth
            .unwrap_or((self.buffer_size + self.queue_depth + pin + 2) * tensors_per_item);
        let pool = Arc::new(DeviceSlabPool::new(
            self.backend.clone() as Arc<dyn DeviceBackend>,
            slab_bytes,
            depth,
        ));
        // The occupancy gauge rides the pool's hook so it stays current
        // on every lease AND every return — including returns landing
        // after shutdown, when a slow consumer drops its last batch.
        let gauge = self.occupancy_gauge.clone();
        pool.set_occupancy_hook(Box::new(move |leased| gauge.set(leased as f64)));
        pool.warm_up();
        *slot = Some(pool.clone());
        pool
    }

    /// Stages one tensor: leases a slab, copies the bytes through the
    /// backend (accounting traffic and modeled copy time) and rebuilds
    /// the tensor over the slab buffer, wired to return the slab when the
    /// last reference drops.
    fn stage_tensor(
        &self,
        t: &Tensor,
        pool: &Arc<DeviceSlabPool>,
    ) -> Result<(Tensor, u64), StagingError> {
        if t.device() == self.device {
            return Ok((t.clone(), 0));
        }
        let needed = t.view_bytes();
        let mut lease = pool.lease(needed)?;
        match t.bytes() {
            Ok(src) => self.backend.copy_h2d(src, lease.buf_mut())?,
            // Non-contiguous sources (not produced by collation, but the
            // contract allows them) gather first.
            Err(_) => self.backend.copy_h2d(&t.gather_bytes(), lease.buf_mut())?,
        }
        self.backend.fence()?;
        let (buf, ticket) = lease.into_parts();
        let storage = Storage::new_with_reclaim(
            buf,
            self.device,
            Box::new(move |returned| ticket.restore(returned)),
        );
        let staged = Tensor::from_parts(
            Arc::new(storage),
            t.dtype(),
            t.shape().to_vec(),
            contiguous_strides(t.shape()),
            0,
        )
        .expect("staged copy always matches the source geometry");
        Ok((staged, needed as u64))
    }

    /// Stages every tensor of a prepared item onto the device. On return
    /// the item carries device tensors, `staged = true` and the bytes
    /// copied; gauges and counters are updated.
    pub(crate) fn stage_item(&self, item: PreparedItem) -> Result<PreparedItem, StagingError> {
        let copy_start = Instant::now();
        let span_start = self.trace.now_ns().max(1);
        let pool = self.pool_for(&item);
        let mut staged_bytes = 0u64;
        let mut fields = Vec::with_capacity(item.fields.len());
        for t in &item.fields {
            let (staged, bytes) = self.stage_tensor(t, &pool)?;
            staged_bytes += bytes;
            fields.push(staged);
        }
        let (labels, label_bytes) = self.stage_tensor(&item.labels, &pool)?;
        staged_bytes += label_bytes;
        let total = self.h2d_bytes.fetch_add(staged_bytes, Ordering::Relaxed) + staged_bytes;
        // The counter aggregates across engines (shards); the gauges are
        // per-engine and namespaced per shard (see the field docs). The
        // occupancy gauge is maintained by the pool's hook.
        self.h2d_counter.add(staged_bytes);
        let elapsed = self
            .first_copy
            .get_or_init(Instant::now)
            .elapsed()
            .as_secs_f64();
        if elapsed > 0.0 {
            self.rate_gauge.set(total as f64 / elapsed);
        }
        self.h2d_hist.record_duration(copy_start.elapsed());
        Ok(PreparedItem {
            staged: true,
            staged_bytes,
            fields,
            labels,
            h2d_span: (span_start, self.trace.now_ns()),
            ..item
        })
    }

    /// Spawns the H2D copy stage: consumes prepared items from `input`,
    /// stages them, and hands staged items downstream over a queue of
    /// `queue_depth` — the bounded look-ahead that lets the copy of batch
    /// *n* overlap collation of *n + 1* and publishing of *n − 1*.
    pub(crate) fn spawn_copy_stage(
        self: &Arc<Self>,
        input: Receiver<FeederMsg>,
        stop: Arc<AtomicBool>,
    ) -> Receiver<FeederMsg> {
        let (tx, rx) = channel::bounded::<FeederMsg>(self.queue_depth);
        let engine = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("tensorsocket-staging".to_string())
            .spawn(move || engine.copy_stage_main(input, tx, stop))
            .expect("spawn staging thread");
        *self.copy_thread.lock() = Some(handle);
        rx
    }

    fn copy_stage_main(
        &self,
        input: Receiver<FeederMsg>,
        tx: Sender<FeederMsg>,
        stop: Arc<AtomicBool>,
    ) {
        let queue_gauge = self.queue_gauge.clone();
        while let Ok(msg) = input.recv() {
            let forward = match msg {
                FeederMsg::Item(item) => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match self.stage_item(item) {
                        Ok(mut staged) => {
                            // Open the copy-wait span here; the publish
                            // loop closes it at dequeue — per-batch what
                            // `copy_wait_hist` reports in aggregate.
                            staged.copy_wait_span.0 = self.trace.now_ns().max(1);
                            FeederMsg::Item(staged)
                        }
                        Err(_) => {
                            // Device OOM mid-run: stop producing, exactly
                            // like the legacy path.
                            let _ = tx.send(FeederMsg::Failed);
                            return;
                        }
                    }
                }
                other => other,
            };
            // Time a staged batch's wait in the hand-off queue: how long
            // the publish loop made it sit (publish-bound signal), only
            // meaningful for items, not epoch markers.
            let is_item = matches!(forward, FeederMsg::Item(_));
            let wait_start = Instant::now();
            if tx.send(forward).is_err() {
                return; // publish stage went away
            }
            if is_item {
                self.copy_wait_hist.record_duration(wait_start.elapsed());
            }
            queue_gauge.set(tx.len() as f64);
        }
    }

    /// Joins the copy stage (its channels must already be disconnected)
    /// and drains the slab rotation, releasing the pooled device memory.
    /// Slabs still referenced by live consumers free their accounting
    /// when those references drop.
    pub(crate) fn shutdown(&self) {
        if let Some(handle) = self.copy_thread.lock().take() {
            let _ = handle.join();
        }
        if let Some(pool) = self.pool.lock().as_ref() {
            pool.drain();
        }
        // The copy stage is gone, so its queue is empty by construction;
        // the occupancy gauge needs no reset — the pool's hook keeps it
        // exact as outstanding consumer references drain.
        self.queue_gauge.set(0.0);
    }
}
