//! The [`TensorConsumer`]: the lightweight iterator a training script swaps
//! in for its data loader (§3.2.2, Figure 3c).
//!
//! `connect` performs the join handshake (rubberband admission or
//! wait-for-epoch), spawns a heartbeat thread, and subscribes to the data
//! stream. Iteration yields [`ConsumerBatch`]es rebuilt zero-copy from
//! payloads; finishing a batch (calling `next` again, or dropping the
//! consumer) acknowledges it to the producer, which releases the memory
//! once every consumer has done so.
//!
//! ## Sharded producer groups and the `(epoch, shard, seq)` contract
//!
//! With [`ConsumerConfig::shards`] `> 1` the consumer joins every shard of
//! a [`crate::ShardedProducerGroup`] and merges their streams through a
//! [`ShardInterleave`]: announcements are delivered sorted by
//! `(epoch, index_in_epoch, shard)` — round-robin across shards aligned
//! at an epoch boundary, with exhausted shards dropping out of the
//! rotation on uneven tails. Because each shard's stream is itself
//! totally ordered by its sequence numbers, the merged stream is
//! **bit-stable**: the same dataset, seed and shard count produce the
//! same batch sequence on every run and for every consumer, regardless
//! of socket timing. With `shards == 1` the code path is byte-identical
//! to consuming a plain producer. Acks, heartbeats and leaves flow to
//! each shard's own control endpoint; the epoch ends for the consumer
//! when every shard published its last batch, and the stream ends when
//! every shard published `End`.

use crate::protocol::messages::{
    topics, AnnounceContent, BatchAnnounce, CtrlMsg, DataMsg, JoinDecision, PayloadMode, ReplayFrom,
};
use crate::protocol::order::ShardInterleave;
use crate::runtime::config::ConsumerConfig;
use crate::runtime::context::TsContext;
use crate::{Result, TsError};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ts_metrics::SpanKind;
use ts_socket::{Multipart, PushSocket, RecvError, SubSocket};
use ts_tensor::{collate, Tensor, TensorError, TensorPayload};

/// A batch as seen by one consumer.
#[derive(Debug, Clone)]
pub struct ConsumerBatch {
    /// Epoch the batch belongs to.
    pub epoch: u64,
    /// Producer shard the batch came from (0 for a plain producer).
    pub shard: usize,
    /// Global sequence number of the announcement it came from (per
    /// shard).
    pub seq: u64,
    /// Batch index within the epoch (producer-batch index under flexible
    /// sizing; per shard for a sharded group).
    pub index_in_epoch: u64,
    /// Position within the producer batch under flexible sizing (0 in
    /// default mode).
    pub sub_index: usize,
    /// Tensor fields (zero-copy views of producer memory when contiguous).
    pub fields: Vec<Tensor>,
    /// Labels.
    pub labels: Tensor,
    /// True when this came from the final announcement of the epoch (of
    /// its shard, for a sharded group).
    pub last_in_epoch: bool,
}

impl ConsumerBatch {
    /// Number of samples in the batch.
    pub fn batch_size(&self) -> usize {
        self.labels.shape().first().copied().unwrap_or(0)
    }
}

/// Why iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The producer published `End` (all epochs done, on every shard).
    End,
    /// The producer detached this consumer (missed heartbeats).
    Detached,
    /// No message arrived within `recv_timeout`.
    Timeout,
    /// The producer's socket vanished.
    ProducerGone,
    /// A payload could not be rebuilt (protocol violation).
    Protocol,
}

/// One shard's connection state: its sockets plus the in-order delivery
/// bookkeeping (expected sequence number and reorder buffer).
struct ShardLink {
    sub: SubSocket,
    ctrl: PushSocket,
    /// Next global seq expected from this shard.
    next_expected: u64,
    /// Announcements that arrived ahead of order (replay interleaving).
    reorder: BTreeMap<u64, BatchAnnounce>,
}

/// The consuming end of a TensorSocket.
///
/// Iterate it like a data loader; it ends when the producer publishes
/// `End` (every shard of a sharded group). Check
/// [`TensorConsumer::stop_reason`] to distinguish clean completion from
/// detachment or timeouts.
pub struct TensorConsumer {
    ctx: TsContext,
    cfg: ConsumerConfig,
    id: u64,
    links: Vec<ShardLink>,
    /// The deterministic merge cursor over the shard streams.
    interleave: ShardInterleave,
    hb_stop: Arc<AtomicBool>,
    hb_thread: Option<std::thread::JoinHandle<()>>,
    /// Epoch joined at admission.
    joined_epoch: u64,
    /// Decoded batches awaiting delivery (flexible mode yields several per
    /// announcement).
    queue: VecDeque<ConsumerBatch>,
    /// `(shard, seq, epoch, yielded_ns)` to acknowledge when the current
    /// batch is finished. `yielded_ns` (flight-recorder clock) opens the
    /// `release` span: it closes when the ack actually leaves, so the
    /// recorded span is the time the trainer held the batch.
    pending_ack: Option<(usize, u64, u64, u64)>,
    /// Set when iteration stopped.
    stopped: Option<StopReason>,
    last_error: Option<TsError>,
    batches_consumed: u64,
    samples_consumed: u64,
    /// Pre-resolved `consumer.wait_ns` histogram: time spent inside
    /// [`TensorConsumer::pump`] until a batch was available (how starved
    /// the training loop is by the pipeline).
    wait_hist: std::sync::Arc<ts_metrics::Histogram>,
    /// Pre-resolved `consumer.interarrival_ns` histogram: time between
    /// successive `next()` yields (the paced batch cadence the trainer
    /// actually observes, including its own compute time).
    interarrival_hist: std::sync::Arc<ts_metrics::Histogram>,
    /// Pre-resolved `consumer.stream_rx_ns` histogram: time to rebuild a
    /// batch from streamed bytes (the per-batch cost of the non-shm path).
    stream_rx_hist: std::sync::Arc<ts_metrics::Histogram>,
    /// Latest coalesced publish cursor seen per shard: `(epoch, seq,
    /// index_in_epoch)`. State, not history — the producer's coalescing
    /// cell collapsed every intermediate position, so this is only ever
    /// "where the shard is now".
    latest_cursors: Vec<Option<(u64, u64, u64)>>,
    /// Pre-resolved `consumer.cursor_lag` gauge: announcements the most
    /// recently heard-from shard has published beyond what this consumer
    /// has ingested.
    cursor_lag: std::sync::Arc<ts_metrics::Gauge>,
    /// Pre-resolved `consumer.data_unknown` counter: data-path frames with
    /// a tag this build does not know (a newer producer's message kinds).
    /// They are logged once and skipped — forward compatibility, not an
    /// error.
    data_unknown: std::sync::Arc<ts_metrics::Counter>,
    /// Pre-resolved `consumer.dangling_skipped` counter: announces whose
    /// payload memory the producer had already released by rebuild time
    /// (an abort or detach with announces still in flight). Skipped, not
    /// fatal — the stream still ends on the producer's `End`.
    dangling_skipped: std::sync::Arc<ts_metrics::Counter>,
    /// When the previous batch was yielded, for inter-arrival timing.
    last_yield: Option<Instant>,
}

impl std::fmt::Debug for TensorConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TensorConsumer")
            .field("id", &self.id)
            .field("shards", &self.links.len())
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl TensorConsumer {
    /// Connects to a producer (or every shard of a sharded producer
    /// group, per [`ConsumerConfig::shards`]) and completes the join
    /// handshake with each.
    ///
    /// Blocks until admitted everywhere — which may span an epoch boundary
    /// when the join arrives too late for rubberbanding — or until
    /// `recv_timeout` passes without any producer activity.
    #[deprecated(
        since = "0.2.0",
        note = "use `tensorsocket::Consumer::builder().connect(endpoint)` — the attach \
                handshake learns shard count, arena and schema from the producer, so \
                only the endpoint is needed"
    )]
    pub fn connect(ctx: &TsContext, cfg: ConsumerConfig) -> Result<TensorConsumer> {
        Self::connect_impl(ctx, cfg)
    }

    /// The non-deprecated connect path shared by the legacy shim and the
    /// [`crate::Consumer`] builder (which fills `cfg` from the producer's
    /// WELCOME instead of asking the caller).
    pub(crate) fn connect_impl(ctx: &TsContext, cfg: ConsumerConfig) -> Result<TensorConsumer> {
        let shards = cfg.shards.max(1);
        let id = cfg.consumer_id.unwrap_or_else(rand_id);
        let mut links = Vec::with_capacity(shards);
        for shard in 0..shards {
            let sub = SubSocket::connect(&ctx.sockets, &cfg.shard_data_endpoint(shard));
            sub.subscribe(&topics::consumer(id));
            sub.subscribe(topics::CTRL);
            // Coalesced publish-cursor state (latest-wins; see
            // `topics::CURSOR`) — cheap to carry, never gates delivery.
            sub.subscribe(topics::CURSOR);
            let ctrl = PushSocket::connect(&ctx.sockets, &cfg.shard_ctrl_endpoint(shard));
            links.push(ShardLink {
                sub,
                ctrl,
                next_expected: 0,
                reorder: BTreeMap::new(),
            });
        }
        let hb_stop = Arc::new(AtomicBool::new(false));
        let hb_thread = spawn_heartbeat(ctx, &cfg, shards, id, hb_stop.clone());

        let data_unknown = ctx.metrics.counter("consumer.data_unknown");
        let handshake = Self::handshake_all(&links, &cfg, id, &data_unknown);
        let (joined_epoch, starts) = match handshake {
            Ok(v) => v,
            Err(e) => {
                hb_stop.store(true, Ordering::Relaxed);
                let _ = hb_thread.join();
                return Err(e);
            }
        };
        let mut cursors = Vec::with_capacity(shards);
        for (link, (epoch, start_seq, replay_from)) in links.iter_mut().zip(&starts) {
            link.next_expected = *start_seq;
            cursors.push((*epoch, *replay_from));
        }
        // Durable-log resume: a named group member attaching to a logging
        // producer asks each shard to replay from the group's persisted
        // cursor. The answered `LogInfo` moves the shard's delivery
        // cursor BACK to the replay start — the logged range streams
        // first and splices gaplessly onto the live stream admitted
        // above (`start_seq` is exactly where the replay ends).
        if let (Some(group), true) = (&cfg.group, cfg.log_available) {
            for (shard, link) in links.iter_mut().enumerate() {
                match Self::log_replay_handshake(link, &cfg, id, group, &data_unknown) {
                    Ok(Some((start_seq, start_epoch, start_index)))
                        if start_seq < link.next_expected =>
                    {
                        link.next_expected = start_seq;
                        cursors[shard] = (start_epoch, start_index);
                    }
                    Ok(_) => {} // nothing retained behind our splice point
                    Err(e) => {
                        hb_stop.store(true, Ordering::Relaxed);
                        let _ = hb_thread.join();
                        return Err(e);
                    }
                }
            }
        }
        Ok(TensorConsumer {
            ctx: ctx.clone(),
            cfg,
            id,
            links,
            interleave: ShardInterleave::new(cursors),
            hb_stop,
            hb_thread: Some(hb_thread),
            joined_epoch,
            queue: VecDeque::new(),
            pending_ack: None,
            stopped: None,
            last_error: None,
            batches_consumed: 0,
            samples_consumed: 0,
            wait_hist: ctx.metrics.histogram("consumer.wait_ns"),
            interarrival_hist: ctx.metrics.histogram("consumer.interarrival_ns"),
            stream_rx_hist: ctx.metrics.histogram("consumer.stream_rx_ns"),
            latest_cursors: vec![None; shards],
            cursor_lag: ctx.metrics.gauge("consumer.cursor_lag"),
            data_unknown,
            dangling_skipped: ctx.metrics.counter("consumer.dangling_skipped"),
            last_yield: None,
        })
    }

    /// Sends `Join` to every shard up front (so the group coordinator
    /// decides one admission for all of them), then completes each
    /// shard's handshake in shard order. Returns the joined epoch and the
    /// per-shard `(epoch, start_seq, replay_from)` admission positions.
    #[allow(clippy::type_complexity)]
    fn handshake_all(
        links: &[ShardLink],
        cfg: &ConsumerConfig,
        id: u64,
        data_unknown: &ts_metrics::Counter,
    ) -> Result<(u64, Vec<(u64, u64, u64)>)> {
        for link in links {
            link.ctrl
                .send(Multipart::single(
                    CtrlMsg::Join {
                        consumer_id: id,
                        batch_size: cfg.batch_size.unwrap_or(0) as u32,
                        mode: cfg.mode,
                    }
                    .encode(),
                ))
                .map_err(|e| TsError::Socket(format!("join send: {e}")))?;
        }
        let mut starts = Vec::with_capacity(links.len());
        for link in links {
            starts.push(Self::await_admit(
                &link.sub,
                &link.ctrl,
                cfg,
                id,
                data_unknown,
            )?);
        }
        let joined_epoch = starts.first().map(|s| s.0).unwrap_or(0);
        Ok((joined_epoch, starts))
    }

    /// Waits for one shard's `AdmitReplay`, subscribes its batch topic and
    /// confirms readiness. Returns `(epoch, start_seq, replay_from)`.
    fn await_admit(
        sub: &SubSocket,
        ctrl: &PushSocket,
        cfg: &ConsumerConfig,
        id: u64,
        data_unknown: &ts_metrics::Counter,
    ) -> Result<(u64, u64, u64)> {
        // The deadline is refreshed on every producer message so waiting out
        // a long epoch after a WaitEpoch reply does not trip the timeout as
        // long as the producer shows signs of life.
        let mut deadline = Instant::now() + cfg.recv_timeout;
        loop {
            if Instant::now() > deadline {
                return Err(TsError::Timeout("join reply"));
            }
            let msg = match sub
                .recv_timeout(cfg.recv_timeout.min(std::time::Duration::from_millis(50)))
            {
                Ok((_, m)) => m,
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Closed) => {
                    return Err(TsError::Socket("producer disconnected".into()))
                }
            };
            deadline = Instant::now() + cfg.recv_timeout;
            let Some(frame) = msg.frames().first() else {
                continue;
            };
            let Ok(data) = DataMsg::decode(frame) else {
                continue;
            };
            match data {
                DataMsg::JoinReply {
                    consumer_id,
                    decision,
                } if consumer_id == id => match decision {
                    JoinDecision::AdmitReplay {
                        epoch,
                        replay_from,
                        start_seq,
                        ..
                    } => {
                        // Only now subscribe to the shared stream, then tell
                        // the producer we will not miss anything.
                        sub.subscribe(topics::BATCH);
                        ctrl.send(Multipart::single(
                            CtrlMsg::Ready { consumer_id: id }.encode(),
                        ))
                        .map_err(|e| TsError::Socket(format!("ready send: {e}")))?;
                        return Ok((epoch, start_seq, replay_from));
                    }
                    JoinDecision::WaitEpoch { .. } => {
                        // keep waiting; the producer will send AdmitReplay
                        // at the epoch boundary
                    }
                    JoinDecision::Reject { reason } => return Err(TsError::Join(reason)),
                },
                DataMsg::End => return Err(TsError::Join("producer already ended".into())),
                DataMsg::Unknown { tag } => {
                    // A newer producer speaking message kinds this build
                    // does not know: count, log once, keep waiting.
                    let seen_before = data_unknown.fetch_inc();
                    if seen_before == 0 {
                        eprintln!(
                            "tensorsocket: consumer ignoring unknown data tag {tag} \
                             (newer producer?)"
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// Sends `CtrlMsg::Replay { group, Cursor }` on one shard's control
    /// channel and waits for the producer's `LogInfo` answer, resending
    /// on the usual subscription-propagation races. Replayed batch frames
    /// can overtake the answer (the producer streams them right after
    /// it): they are stashed in the shard's reorder buffer, where normal
    /// pumping picks them up once `next_expected` rewinds to the replay
    /// start. A producer that never answers within `recv_timeout` (an
    /// older build behind a proxy advertising v3, or a log that failed
    /// after WELCOME) degrades to live-only attach, not an error.
    fn log_replay_handshake(
        link: &mut ShardLink,
        cfg: &ConsumerConfig,
        id: u64,
        group: &str,
        data_unknown: &ts_metrics::Counter,
    ) -> Result<Option<(u64, u64, u64)>> {
        let request = CtrlMsg::Replay {
            consumer_id: id,
            group: group.to_string(),
            from: ReplayFrom::Cursor,
        }
        .encode();
        let deadline = Instant::now() + cfg.recv_timeout;
        loop {
            link.ctrl
                .send(Multipart::single(request.clone()))
                .map_err(|e| TsError::Socket(format!("replay send: {e}")))?;
            loop {
                if Instant::now() > deadline {
                    return Ok(None); // no answer: attach live-only
                }
                let msg = match link.sub.recv_timeout(std::time::Duration::from_millis(50)) {
                    Ok((_, m)) => m,
                    Err(RecvError::Timeout) => break, // resend the request
                    Err(RecvError::Closed) => {
                        return Err(TsError::Socket("producer disconnected".into()))
                    }
                };
                let Some(frame) = msg.frames().first() else {
                    continue;
                };
                let Ok(data) = DataMsg::decode(frame) else {
                    continue;
                };
                match data {
                    DataMsg::LogInfo {
                        consumer_id,
                        start_seq,
                        start_epoch,
                        start_index,
                        ..
                    } if consumer_id == id => {
                        return Ok(Some((start_seq, start_epoch, start_index)));
                    }
                    DataMsg::Batch(a) => {
                        // Same filter as `pump`: a stream-mode consumer
                        // only buffers frames that carry bytes.
                        if cfg.mode == PayloadMode::Stream
                            && !matches!(a.content, AnnounceContent::Streamed { .. })
                        {
                            continue;
                        }
                        link.reorder.insert(a.seq, a);
                    }
                    DataMsg::Unknown { tag } => {
                        let seen_before = data_unknown.fetch_inc();
                        if seen_before == 0 {
                            eprintln!(
                                "tensorsocket: consumer ignoring unknown data tag {tag} \
                                 (newer producer?)"
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// The consumer's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Epoch this consumer was admitted into.
    pub fn joined_epoch(&self) -> u64 {
        self.joined_epoch
    }

    /// Number of producer shards this consumer is subscribed to.
    pub fn num_shards(&self) -> usize {
        self.links.len()
    }

    /// The payload mode this consumer attached with.
    pub fn payload_mode(&self) -> PayloadMode {
        self.cfg.mode
    }

    /// Why iteration stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// The error behind a [`StopReason::Protocol`] stop, if any.
    pub fn last_error(&self) -> Option<&TsError> {
        self.last_error.as_ref()
    }

    /// Batches consumed so far.
    pub fn batches_consumed(&self) -> u64 {
        self.batches_consumed
    }

    /// Samples consumed so far.
    pub fn samples_consumed(&self) -> u64 {
        self.samples_consumed
    }

    /// Batch pointers currently buffered locally (the consumer-side batch
    /// buffer of §3.2.5), summed over shard subscriptions.
    pub fn buffered(&self) -> usize {
        self.queue.len() + self.links.iter().map(|l| l.sub.queued()).sum::<usize>()
    }

    /// The latest coalesced publish cursor heard from `shard`:
    /// `(epoch, seq, index_in_epoch)`, or `None` before the first cursor
    /// frame. This is *state*, not an event stream — the producer
    /// broadcasts it latest-wins at a bounded cadence, so a consumer
    /// waking from a stall observes one current position, never a
    /// backlog. Do not infer batch delivery from it.
    pub fn latest_cursor(&self, shard: usize) -> Option<(u64, u64, u64)> {
        self.latest_cursors.get(shard).copied().flatten()
    }

    fn unpack(&self, p: &TensorPayload) -> Result<Tensor> {
        Ok(p.unpack(&self.ctx.registry)?)
    }

    fn unpack_segments(&self, segs: &[TensorPayload]) -> Result<Tensor> {
        let tensors: Result<Vec<Tensor>> = segs.iter().map(|p| self.unpack(p)).collect();
        let tensors = tensors?;
        match tensors.len() {
            0 => Err(TsError::Wire("empty segment list".into())),
            1 => Ok(tensors.into_iter().next().expect("len 1")),
            // A wrapped (repeating) batch: materialize the concatenation.
            _ => Ok(collate::cat0(&tensors)?),
        }
    }

    /// Applies the consumer-local augmentation pipeline (if configured) to
    /// the primary field, sample by sample. The result is a private copy;
    /// the shared storage stays untouched for other consumers (§5,
    /// finer-grained sharing).
    fn apply_local(&self, batch: &mut ConsumerBatch) -> Result<()> {
        let Some(pipeline) = &self.cfg.local_pipeline else {
            return Ok(());
        };
        let Some(field) = batch.fields.first() else {
            return Ok(());
        };
        if field.ndim() < 2 {
            return Ok(());
        }
        let b = field.shape()[0];
        let mut transformed = Vec::with_capacity(b);
        for i in 0..b {
            let sample = field.select(0, i)?;
            // unique per (announce, position) so augmentations vary per
            // sample but stay reproducible
            let virtual_index = (batch.seq as usize)
                .wrapping_mul(1_000_003)
                .wrapping_add(batch.sub_index * 4_099 + i);
            let out = pipeline
                .apply(&sample, batch.epoch, virtual_index)
                .map_err(|e| TsError::Transform(e.to_string()))?;
            transformed.push(out);
        }
        batch.fields[0] = collate::stack0(&transformed)?;
        Ok(())
    }

    fn enqueue(&mut self, mut batch: ConsumerBatch) -> Result<()> {
        self.apply_local(&mut batch)?;
        self.queue.push_back(batch);
        Ok(())
    }

    fn ingest(&mut self, shard: usize, a: BatchAnnounce) -> Result<()> {
        self.links[shard].next_expected = a.seq + 1;
        self.interleave.advance(shard, a.last_in_epoch);
        // The rebuild span: announce decoded -> host tensors materialized
        // (zero-copy unpacks, flex carving, or stream rx). Stitches onto
        // the producer's record for the same (epoch, shard, seq) when both
        // sides share a flight recorder (in-process consumers).
        let (rb_epoch, rb_seq) = (a.epoch, a.seq);
        let rebuild_open = self.ctx.trace.now_ns().max(1);
        match a.content {
            AnnounceContent::Shared { fields, labels } => {
                let fields: Result<Vec<Tensor>> = fields.iter().map(|p| self.unpack(p)).collect();
                let labels = self.unpack(&labels)?;
                self.enqueue(ConsumerBatch {
                    epoch: a.epoch,
                    shard,
                    seq: a.seq,
                    index_in_epoch: a.index_in_epoch,
                    sub_index: 0,
                    fields: fields?,
                    labels,
                    last_in_epoch: a.last_in_epoch,
                })?;
            }
            AnnounceContent::Flex { batches } => {
                for (k, fb) in batches.iter().enumerate() {
                    let fields: Result<Vec<Tensor>> = fb
                        .fields
                        .iter()
                        .map(|segs| self.unpack_segments(segs))
                        .collect();
                    let labels = self.unpack_segments(&fb.labels)?;
                    self.enqueue(ConsumerBatch {
                        epoch: a.epoch,
                        shard,
                        seq: a.seq,
                        index_in_epoch: a.index_in_epoch,
                        sub_index: k,
                        fields: fields?,
                        labels,
                        last_in_epoch: a.last_in_epoch,
                    })?;
                }
            }
            AnnounceContent::Streamed { fields, labels } => {
                // The negotiated non-shm path: the announce carries the
                // bytes themselves; rebuild host tensors from them.
                let rx_start = Instant::now();
                let fields: Result<Vec<Tensor>> = fields
                    .iter()
                    .map(|t| t.to_tensor(ts_device::DeviceId::Cpu))
                    .collect();
                let labels = labels.to_tensor(ts_device::DeviceId::Cpu)?;
                let fields = fields?;
                self.stream_rx_hist.record_duration(rx_start.elapsed());
                self.enqueue(ConsumerBatch {
                    epoch: a.epoch,
                    shard,
                    seq: a.seq,
                    index_in_epoch: a.index_in_epoch,
                    sub_index: 0,
                    fields,
                    labels,
                    last_in_epoch: a.last_in_epoch,
                })?;
            }
        }
        self.ctx.trace.record(
            rb_epoch,
            shard as u32,
            rb_seq,
            SpanKind::Rebuild,
            rebuild_open,
            self.ctx.trace.now_ns(),
        );
        Ok(())
    }

    /// Pulls messages until the queue has something to yield or iteration
    /// stops. With several shards, always drains the shard whose
    /// announcement is globally next per the `(epoch, shard, seq)`
    /// contract — blocking on *that* shard's socket, since nothing else
    /// may be delivered first.
    fn pump(&mut self) {
        let wait_start = Instant::now();
        // Opens the recv span: how long this consumer sat on the socket
        // before each announce landed. Reset after every recorded batch so
        // consecutive announces in one pump each get their own wait.
        let mut recv_open = self.ctx.trace.now_ns().max(1);
        while self.queue.is_empty() && self.stopped.is_none() {
            let Some(target) = self.interleave.next_shard() else {
                // Every shard published End: clean end of stream.
                self.stopped = Some(StopReason::End);
                return;
            };
            // Serve the reorder buffer first.
            let next_expected = self.links[target].next_expected;
            if let Some(a) = self.links[target].reorder.remove(&next_expected) {
                self.ingest_or_skip(target, a);
                continue;
            }
            let msg = match self.links[target].sub.recv_timeout(self.cfg.recv_timeout) {
                Ok((_, m)) => m,
                Err(RecvError::Timeout) => {
                    self.stopped = Some(StopReason::Timeout);
                    return;
                }
                Err(RecvError::Closed) => {
                    self.stopped = Some(StopReason::ProducerGone);
                    return;
                }
            };
            let Some(frame) = msg.frames().first() else {
                continue;
            };
            let Ok(data) = DataMsg::decode(frame) else {
                continue;
            };
            match data {
                DataMsg::Batch(a) => {
                    // A stream-mode consumer shares the batch topic with
                    // the shm subscribers and therefore sees their pointer
                    // announces too; its own copy of the bytes arrives on
                    // its private topic at the same seq. Skip the pointer
                    // frames without touching the in-order cursor.
                    if self.cfg.mode == PayloadMode::Stream
                        && !matches!(a.content, AnnounceContent::Streamed { .. })
                    {
                        continue;
                    }
                    let next_expected = self.links[target].next_expected;
                    if a.seq < next_expected {
                        continue; // duplicate of a replayed batch
                    }
                    self.ctx.trace.record(
                        a.epoch,
                        target as u32,
                        a.seq,
                        SpanKind::Recv,
                        recv_open,
                        self.ctx.trace.now_ns(),
                    );
                    recv_open = self.ctx.trace.now_ns().max(1);
                    if a.seq == next_expected {
                        self.ingest_or_skip(target, a);
                    } else {
                        self.links[target].reorder.insert(a.seq, a);
                    }
                }
                DataMsg::Detached { consumer_id } if consumer_id == self.id => {
                    self.stopped = Some(StopReason::Detached);
                }
                DataMsg::End => {
                    self.interleave.end_shard(target);
                }
                DataMsg::Cursor {
                    shard,
                    epoch,
                    seq,
                    index_in_epoch,
                } => {
                    // Pure state: record where the shard's publish stream
                    // is and how far behind this consumer runs. Never
                    // touches the in-order delivery cursor — delivery is
                    // inferred only from Batch announces.
                    let shard = shard as usize;
                    if shard < self.links.len() {
                        self.latest_cursors[shard] = Some((epoch, seq, index_in_epoch));
                        let lag = (seq + 1).saturating_sub(self.links[shard].next_expected);
                        self.cursor_lag.set(lag as f64);
                    }
                }
                DataMsg::Unknown { tag } => {
                    // Forward compatibility on the data path: a newer
                    // producer may broadcast message kinds this build does
                    // not know. Count them, log the first, and keep
                    // pumping — never stop iteration over an unknown tag.
                    let seen_before = self.data_unknown.fetch_inc();
                    if seen_before == 0 {
                        eprintln!(
                            "tensorsocket: consumer ignoring unknown data tag {tag} \
                             (newer producer?)"
                        );
                    }
                }
                _ => {}
            }
        }
        if !self.queue.is_empty() {
            // Only batch waits count: a pump that ended the stream is not
            // a latency sample.
            self.wait_hist.record_duration(wait_start.elapsed());
        }
    }

    /// Ingests an in-order announce, downgrading a dangling payload to a
    /// counted skip. A payload dangles when the producer released the
    /// batch's memory after announcing it — which only a producer that is
    /// aborting (or has detached this consumer) does, leaving stale
    /// announces in flight. The batch is unrecoverable either way, so
    /// wedging iteration on it would hide the producer's `End`; skip it
    /// and keep pumping. Any other ingest failure still stops the stream.
    fn ingest_or_skip(&mut self, shard: usize, a: BatchAnnounce) {
        let (epoch, seq) = (a.epoch, a.seq);
        match self.ingest(shard, a) {
            Ok(()) => {}
            Err(TsError::Tensor(e @ TensorError::DanglingPayload { .. })) => {
                let seen_before = self.dangling_skipped.fetch_inc();
                if seen_before == 0 {
                    eprintln!(
                        "tensorsocket: consumer skipping stale batch \
                         (epoch {epoch}, seq {seq}): {e} — the producer \
                         released it before we rebuilt (abort?)"
                    );
                }
            }
            Err(e) => {
                self.last_error = Some(e);
                self.stopped = Some(StopReason::Protocol);
            }
        }
    }

    fn send_pending_ack(&mut self) {
        if let Some((shard, seq, epoch, yielded_ns)) = self.pending_ack.take() {
            // The release span: batch yielded to the trainer -> ack dispatch.
            // This is the trainer's hold time — the window the producer
            // cannot reclaim the memory for. Stamped before the send so the
            // producer's ack span (which closes on receipt) always ends at or
            // after this one.
            self.ctx.trace.record(
                epoch,
                shard as u32,
                seq,
                SpanKind::Release,
                yielded_ns,
                self.ctx.trace.now_ns(),
            );
            let _ = self.links[shard].ctrl.send(Multipart::single(
                CtrlMsg::Ack {
                    consumer_id: self.id,
                    seq,
                }
                .encode(),
            ));
            self.ctx.metrics.counter("consumer.acks").inc();
        }
    }
}

impl Iterator for TensorConsumer {
    type Item = ConsumerBatch;

    fn next(&mut self) -> Option<ConsumerBatch> {
        // Finishing the previous batch: acknowledge it (§3.2.3 — "once a
        // consumer has finished a batch and moves on to the next, it will
        // notify the producer").
        self.send_pending_ack();
        if self.stopped.is_some() && self.queue.is_empty() {
            return None;
        }
        if self.queue.is_empty() {
            self.pump();
        }
        let batch = self.queue.pop_front()?;
        if self
            .queue
            .iter()
            .all(|b| b.seq != batch.seq || b.shard != batch.shard)
        {
            // Last carved batch of this announcement: ack when finished.
            self.pending_ack = Some((
                batch.shard,
                batch.seq,
                batch.epoch,
                self.ctx.trace.now_ns().max(1),
            ));
        }
        if let Some(prev) = self.last_yield.replace(Instant::now()) {
            self.interarrival_hist.record_duration(prev.elapsed());
        }
        self.batches_consumed += 1;
        self.samples_consumed += batch.batch_size() as u64;
        self.ctx.metrics.counter("consumer.batches").inc();
        self.ctx
            .metrics
            .counter("consumer.samples")
            .add(batch.batch_size() as u64);
        Some(batch)
    }
}

impl Drop for TensorConsumer {
    fn drop(&mut self) {
        self.send_pending_ack();
        for link in &self.links {
            let _ = link.ctrl.send(Multipart::single(
                CtrlMsg::Leave {
                    consumer_id: self.id,
                }
                .encode(),
            ));
        }
        self.hb_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.hb_thread.take() {
            let _ = h.join();
        }
    }
}

pub(crate) fn rand_id() -> u64 {
    use rand::RngCore;
    rand::thread_rng().next_u64() | 1
}

fn spawn_heartbeat(
    ctx: &TsContext,
    cfg: &ConsumerConfig,
    shards: usize,
    id: u64,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let mut pushes: Vec<Option<PushSocket>> = (0..shards)
        .map(|s| {
            Some(PushSocket::connect(
                &ctx.sockets,
                &cfg.shard_ctrl_endpoint(s),
            ))
        })
        .collect();
    let interval = cfg.heartbeat_interval;
    std::thread::Builder::new()
        .name(format!("ts-heartbeat-{id}"))
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // A dead shard stops receiving heartbeats; the SURVIVING
                // shards must keep getting them, or they would expire a
                // perfectly healthy consumer mid-stream.
                for push in pushes.iter_mut() {
                    let Some(socket) = push else { continue };
                    if socket
                        .send(Multipart::single(
                            CtrlMsg::Heartbeat { consumer_id: id }.encode(),
                        ))
                        .is_err()
                    {
                        *push = None; // this shard's producer is gone
                    }
                }
                if pushes.iter().all(|p| p.is_none()) {
                    return; // every producer gone
                }
                std::thread::sleep(interval);
            }
        })
        .expect("spawn heartbeat thread")
}
