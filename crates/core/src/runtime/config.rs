//! Runtime configuration.

use crate::protocol::messages::PayloadMode;
use crate::protocol::order::OrderConfig;
use crate::runtime::staging::StagingConfig;
use std::sync::Arc;
use std::time::Duration;
use ts_data::Batch;
use ts_device::DeviceId;

/// A producer-side batch transformation (§3.3.4, Figure 7): runs once per
/// batch in the producer before sharing, e.g. a frozen encoder generating
/// embeddings. Receives the collated batch and returns the batch to share.
pub type ProducerMap = Arc<dyn Fn(Batch) -> Batch + Send + Sync>;

/// Flexible batch sizing configuration (§3.2.6–3.2.7).
#[derive(Debug, Clone)]
pub struct FlexibleConfig {
    /// Producer batch size. The paper recommends at least twice the largest
    /// consumer batch so the repeated share never exceeds 50%.
    pub producer_batch: usize,
    /// Batch-order variation (offsets / shuffling).
    pub order: OrderConfig,
}

impl FlexibleConfig {
    /// Flexible sizing with the given producer batch and no order variation.
    pub fn new(producer_batch: usize) -> Self {
        Self {
            producer_batch,
            order: OrderConfig::default(),
        }
    }
}

/// Producer configuration.
#[derive(Clone)]
pub struct ProducerConfig {
    /// Endpoint base name; data goes on `<endpoint>/data`, control on
    /// `<endpoint>/ctrl`.
    pub endpoint: String,
    /// Consumer-side batch buffer size N (paper default: 2 is enough for
    /// similar tasks, §3.2.5).
    pub buffer_size: usize,
    /// Rubberband join window as a fraction of the epoch (paper: 0.02).
    pub rubberband_cutoff: f64,
    /// Consumers silent for longer than this are detached.
    pub heartbeat_timeout: Duration,
    /// Epochs to run.
    pub epochs: u64,
    /// Device batches are staged on before being shared (the paper puts the
    /// producer on GPU 0). `DeviceId::Cpu` skips the device hop.
    pub device: DeviceId,
    /// How batches are staged on a GPU device: through the pre-allocated
    /// VRAM slab rotation with the copy overlapped against collation (the
    /// default), serially on the publish thread, or via the legacy
    /// per-batch allocate+copy path. See [`crate::StagingMode`]. Ignored
    /// when `device` is the CPU.
    pub staging: StagingConfig,
    /// Flexible batch sizing; `None` means default (identical batches).
    pub flexible: Option<FlexibleConfig>,
    /// Producer-side batch stage applied before sharing (e.g. frozen CLIP
    /// inference for DALL-E training, Figure 7). Runs once per batch no
    /// matter how many consumers attach.
    pub producer_map: Option<ProducerMap>,
    /// How long the producer waits in one control-poll round.
    ///
    /// Since the publish loop parks on the control channel (waking
    /// immediately on acks/joins), this only bounds how long stop-flag and
    /// heartbeat-expiry checks can be deferred — not publish latency.
    pub poll_interval: Duration,
    /// Stop waiting for the first consumer after this long (None = forever).
    pub first_consumer_timeout: Option<Duration>,
    /// Capacity of the feeder→publish hand-off queue (prepared batches
    /// loaded ahead of the publish cursor). `None` sizes it from the
    /// source's pipeline hint: `num_workers × prefetch_factor`. Only used
    /// when the source reports `num_workers >= 1`; a serial source loads
    /// inline.
    pub pipeline_depth: Option<usize>,
    /// Sparse per-shard endpoint overrides: shard `i` binds (and is
    /// advertised at) the given base URI instead of the one derived from
    /// [`ProducerConfig::endpoint`] by scheme rules — the multi-host
    /// escape hatch, where each shard pipeline runs as its own process or
    /// on its own host. Sorted by shard; advertised verbatim in the v2
    /// WELCOME so consumers follow without out-of-band configuration.
    pub shard_endpoints: Vec<(u32, String)>,
    /// Stall-watchdog sensitivity: a batch stuck in one stage longer than
    /// this multiple of that stage's rolling p99 (with a small absolute
    /// floor, so a cold pipeline is not all "stalls") trips a
    /// `watchdog.stalls.*` counter and a verdict — loader-bound /
    /// H2D-bound / ack-bound / consumer-straggler — surfaced in the stats
    /// snapshot and the `ts-top` header.
    pub watchdog_stall_multiple: f64,
    /// Durable epoch batch log (`ts-log`): every published batch is teed
    /// into an mmap'd segment log by a background spiller, off the
    /// publish hot path. Enables replay-based late join ([`crate::Consumer`]
    /// groups resume from their persisted cursor after a crash) and lets
    /// rubberband pins be shed once their batch is durably logged. `None`
    /// (the default) disables the subsystem entirely. Incompatible with
    /// flexible sizing — per-consumer carved views have no streamed
    /// serialization to store — which fails at spawn.
    pub log: Option<ts_log::LogConfig>,
}

impl std::fmt::Debug for ProducerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProducerConfig")
            .field("endpoint", &self.endpoint)
            .field("buffer_size", &self.buffer_size)
            .field("rubberband_cutoff", &self.rubberband_cutoff)
            .field("epochs", &self.epochs)
            .field("device", &self.device)
            .field("staging", &self.staging)
            .field("flexible", &self.flexible)
            .field("producer_map", &self.producer_map.as_ref().map(|_| "<fn>"))
            .field("pipeline_depth", &self.pipeline_depth)
            .field(
                "log",
                &self.log.as_ref().map(|l| l.dir.display().to_string()),
            )
            .finish_non_exhaustive()
    }
}

impl Default for ProducerConfig {
    fn default() -> Self {
        Self {
            endpoint: "inproc://tensorsocket".to_string(),
            buffer_size: 2,
            rubberband_cutoff: 0.02,
            heartbeat_timeout: Duration::from_secs(2),
            epochs: 1,
            device: DeviceId::Cpu,
            staging: StagingConfig::default(),
            flexible: None,
            producer_map: None,
            poll_interval: Duration::from_millis(1),
            first_consumer_timeout: Some(Duration::from_secs(30)),
            pipeline_depth: None,
            shard_endpoints: Vec::new(),
            watchdog_stall_multiple: 4.0,
            log: None,
        }
    }
}

/// Derives the per-channel endpoint from a base endpoint URI.
///
/// Moved to [`ts_socket::channel_endpoint`] so producer, consumer and the
/// attach handshake all share one derivation; re-exported here for
/// back-compatibility.
pub use ts_socket::channel_endpoint;

impl ProducerConfig {
    /// The scheme-aware endpoint layout rooted at this config's base URI
    /// (a single-shard map; a sharded group derives each shard's layout
    /// from its own shard base, honoring [`ProducerConfig::shard_endpoints`]
    /// overrides).
    pub fn endpoints(&self) -> ts_socket::EndpointMap {
        ts_socket::EndpointMap::with_overrides(&self.endpoint, 1, self.shard_endpoints.clone())
    }

    /// The data (PUB/SUB) endpoint name.
    pub fn data_endpoint(&self) -> String {
        self.endpoints().data(0)
    }

    /// The control (PUSH/PULL) endpoint name.
    pub fn ctrl_endpoint(&self) -> String {
        self.endpoints().ctrl(0)
    }
}

/// Consumer configuration.
#[derive(Debug, Clone)]
pub struct ConsumerConfig {
    /// Endpoint base name; must match the producer's (the *group* base
    /// endpoint when consuming from a sharded producer group).
    pub endpoint: String,
    /// Number of producer shards to subscribe to (a
    /// [`crate::ShardedProducerGroup`]'s shard count). The consumer joins
    /// every shard and interleaves their streams deterministically by
    /// `(epoch, shard, seq)`. The default `1` consumes a plain single
    /// producer, byte-identically to the unsharded code path.
    pub shards: usize,
    /// Desired batch size (flexible mode only; ignored in default mode).
    pub batch_size: Option<usize>,
    /// Interval between heartbeats. Must be well below the producer's
    /// timeout.
    pub heartbeat_interval: Duration,
    /// How long `connect` waits for the join reply, and how long `next`
    /// waits for data before giving up.
    pub recv_timeout: Duration,
    /// Fixed consumer id; `None` picks a random one.
    pub consumer_id: Option<u64>,
    /// Consumer-local augmentation applied to the primary tensor field of
    /// every received batch (finer-grained sharing, §5: decode once in the
    /// producer, augment per training process). The transform output is a
    /// private copy; the shared storage is untouched, so other consumers
    /// still see the original bytes.
    pub local_pipeline: Option<std::sync::Arc<ts_data::Pipeline>>,
    /// How batch payload bytes reach this consumer: shm pointer-passing
    /// (the default) or length-prefixed byte streaming. Normally resolved
    /// by [`crate::Consumer`]'s attach negotiation rather than set by
    /// hand; the legacy connect path keeps the v1 behavior (`Shm`).
    pub mode: PayloadMode,
    /// Sparse `(shard, base URI)` endpoint overrides, learned from the
    /// producer's v2 WELCOME: shards listed here are attached at the given
    /// URI instead of the one derived from the base endpoint.
    pub endpoint_overrides: Vec<(u32, String)>,
    /// Consumer-group name for durable-log replay. When set (and the
    /// producer's v3 WELCOME advertises a log), connect sends
    /// `CtrlMsg::Replay { group, from: Cursor }` per shard after
    /// admission: the producer registers the group's persisted cursor,
    /// streams retained records from its log and the consumer splices
    /// them bit-identically in front of the live stream. `None` keeps the
    /// log-less join behavior.
    pub group: Option<String>,
    /// Whether the producer advertised a durable log in its WELCOME
    /// (filled by [`crate::Consumer`]'s attach negotiation; the legacy
    /// connect path leaves it `false` and never requests replay).
    pub log_available: bool,
}

impl Default for ConsumerConfig {
    fn default() -> Self {
        Self {
            endpoint: "inproc://tensorsocket".to_string(),
            shards: 1,
            batch_size: None,
            heartbeat_interval: Duration::from_millis(200),
            recv_timeout: Duration::from_secs(30),
            consumer_id: None,
            local_pipeline: None,
            mode: PayloadMode::Shm,
            endpoint_overrides: Vec::new(),
            group: None,
            log_available: false,
        }
    }
}

impl ConsumerConfig {
    /// The scheme-aware endpoint layout this consumer subscribes to: one
    /// [`ts_socket::EndpointMap`] over `shards` shard pipelines rooted at
    /// the base endpoint, honoring any per-shard overrides advertised by
    /// the producer's WELCOME.
    pub fn endpoints(&self) -> ts_socket::EndpointMap {
        ts_socket::EndpointMap::with_overrides(
            &self.endpoint,
            self.shards,
            self.endpoint_overrides.clone(),
        )
    }

    /// The data (PUB/SUB) endpoint name.
    pub fn data_endpoint(&self) -> String {
        self.endpoints().data(0)
    }

    /// The control (PUSH/PULL) endpoint name.
    pub fn ctrl_endpoint(&self) -> String {
        self.endpoints().ctrl(0)
    }

    /// Shard `shard`'s data endpoint (shard 0 is the base endpoint, so a
    /// one-shard config degenerates to [`ConsumerConfig::data_endpoint`]).
    pub fn shard_data_endpoint(&self, shard: usize) -> String {
        self.endpoints().data(shard)
    }

    /// Shard `shard`'s control endpoint.
    pub fn shard_ctrl_endpoint(&self, shard: usize) -> String {
        self.endpoints().ctrl(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = ProducerConfig::default();
        assert_eq!(p.buffer_size, 2);
        assert!((p.rubberband_cutoff - 0.02).abs() < 1e-9);
        assert_eq!(p.data_endpoint(), "inproc://tensorsocket/data");
        assert_eq!(p.ctrl_endpoint(), "inproc://tensorsocket/ctrl");
        let c = ConsumerConfig::default();
        assert_eq!(c.data_endpoint(), p.data_endpoint());
        assert!(c.heartbeat_interval < p.heartbeat_timeout);
    }

    #[test]
    fn endpoint_derivation_follows_scheme() {
        assert_eq!(
            channel_endpoint("ipc:///tmp/ts.sock", "data"),
            "ipc:///tmp/ts.sock.data"
        );
        assert_eq!(
            channel_endpoint("ipc:///tmp/ts.sock", "ctrl"),
            "ipc:///tmp/ts.sock.ctrl"
        );
        assert_eq!(
            channel_endpoint("tcp://127.0.0.1:6000", "data"),
            "tcp://127.0.0.1:6000"
        );
        assert_eq!(
            channel_endpoint("tcp://127.0.0.1:6000", "ctrl"),
            "tcp://127.0.0.1:6001"
        );
        assert_eq!(channel_endpoint("inproc://ts", "data"), "inproc://ts/data");
        // Top-of-range base must not overflow; the derived out-of-range
        // ctrl port is rejected later by endpoint parsing, not here.
        assert_eq!(channel_endpoint("tcp://h:65535", "ctrl"), "tcp://h:65536");
        assert!(ts_socket::EndpointAddr::parse("tcp://h:65536").is_err());
    }

    #[test]
    fn shard_zero_endpoints_match_unsharded() {
        let c = ConsumerConfig::default();
        assert_eq!(c.shards, 1);
        assert_eq!(c.shard_data_endpoint(0), c.data_endpoint());
        assert_eq!(c.shard_ctrl_endpoint(0), c.ctrl_endpoint());
        assert_eq!(c.shard_data_endpoint(1), "inproc://tensorsocket/s1/data");
        let tcp = ConsumerConfig {
            endpoint: "tcp://127.0.0.1:7000".into(),
            ..Default::default()
        };
        // shard 1 claims ports 7002 (data) / 7003 (ctrl): disjoint from
        // shard 0's 7000/7001.
        assert_eq!(tcp.shard_data_endpoint(1), "tcp://127.0.0.1:7002");
        assert_eq!(tcp.shard_ctrl_endpoint(1), "tcp://127.0.0.1:7003");
    }
}
