//! The threaded TensorSocket runtime.

pub mod config;
pub mod consumer;
pub mod context;
pub mod coordinator;
pub mod producer;

pub use config::{ConsumerConfig, FlexibleConfig, ProducerConfig};
pub use coordinator::{EpochCoordinator, GroupJoin, ShardedProducerGroup};

#[cfg(test)]
mod tests;
