//! The threaded TensorSocket runtime.

pub mod builder;
pub mod config;
pub mod consumer;
pub mod context;
pub mod coordinator;
pub mod producer;
pub mod scrape;
pub mod staging;

pub use builder::{Consumer, ConsumerBuilder, Producer, ProducerBuilder};
pub use config::{ConsumerConfig, FlexibleConfig, ProducerConfig};
pub use coordinator::{EpochCoordinator, GroupJoin, ShardedProducerGroup};
pub use scrape::{scrape_stats, scrape_trace};
pub use staging::{StagingConfig, StagingMode};

#[cfg(test)]
mod tests;
