//! The threaded TensorSocket runtime.

pub mod config;
pub mod consumer;
pub mod context;
pub mod producer;

pub use config::{ConsumerConfig, FlexibleConfig, ProducerConfig};

#[cfg(test)]
mod tests;
