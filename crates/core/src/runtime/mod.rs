//! The threaded TensorSocket runtime.

pub mod config;
pub mod consumer;
pub mod context;
pub mod coordinator;
pub mod producer;
pub mod staging;

pub use config::{ConsumerConfig, FlexibleConfig, ProducerConfig};
pub use coordinator::{EpochCoordinator, GroupJoin, ShardedProducerGroup};
pub use staging::{StagingConfig, StagingMode};

#[cfg(test)]
mod tests;
