//! The epoch coordinator for sharded producer groups.
//!
//! One feeder+publisher pair per node is the paper's shape; on many-GPU
//! nodes a single producer saturates one NUMA domain, so the dataset is
//! sharded across `N` producer pipelines — one [`crate::TensorProducer`]
//! per shard, each owning a disjoint partition of the epoch (see
//! `ts_data::ShardedSampler`). Sharding only pays off if epoch and shard
//! boundaries stay consistent under worker skew; the
//! [`EpochCoordinator`] is the in-process authority that keeps them so:
//!
//! * **Lockstep epoch boundaries** — a generation barrier: no shard
//!   starts publishing epoch `e + 1` until every live shard finished `e`.
//!   Shards keep servicing their control channels (acks, heartbeats,
//!   joins) while parked at the barrier, so consumers never starve.
//! * **One admission decision per consumer** — each shard receives its
//!   own copy of a consumer's `Join`, at slightly different times. The
//!   first shard to ask decides — against the *group* state (every
//!   shard's publish progress vs. its rubberband pin window) — and the
//!   decision is memoized, so every shard answers the same consumer the
//!   same way. A joiner admitted mid-epoch therefore replays a consistent
//!   epoch prefix from **every** shard, not just the one that processed
//!   its join first.
//! * **A shared rubberband pin set** — a shard may only release its
//!   pinned epoch prefix once no shard can admit a joiner anymore *and*
//!   no decided admission is still waiting to be applied on it. This
//!   closes the race where shard `B` publishes past its pin boundary in
//!   the instant between shard `A` admitting a consumer and `B`
//!   processing that consumer's join: the batches `B` published in that
//!   window stay pinned and are replayed.
//!
//! The coordinator is deliberately poll-based (no condvars): producer
//! loops already park on their control channels with a bounded wait, and
//! the barrier piggybacks on that rhythm.
//!
//! # Cross-process backing
//!
//! The coordinator state machine has two homes. [`EpochCoordinator::new`]
//! keeps it behind an in-process mutex — the right shape when every shard
//! pipeline lives in one process (what [`ShardedProducerGroup`] spawns).
//! [`EpochCoordinator::create_shared`] /
//! [`EpochCoordinator::attach_shared`] put the *same* state machine in a
//! `MAP_SHARED` file (a [`ts_shm::ShmCoordCell`], sibling of the payload
//! arena), so shard pipelines running as separate producer processes on
//! one node still share lockstep barriers, memoized join decisions and
//! the group pin set. Every method below is backing-agnostic.

use crate::runtime::config::ProducerConfig;
use crate::runtime::context::TsContext;
use crate::runtime::producer::{EpochSource, ProducerStats, TensorProducer};
use crate::{Result, TsError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ts_shm::{CoordDecision, ShmCoordCell};

/// The group-level outcome of a consumer's join, shared by every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupJoin {
    /// Admit now; each shard replays its pinned epoch prefix.
    AdmitReplay,
    /// Admit at each shard's current position (no consumer was active, so
    /// there is nothing to halt and nothing that must be replayed).
    AdmitAtCurrent,
    /// Defer to the next coordinated epoch boundary.
    WaitNextEpoch,
}

impl From<CoordDecision> for GroupJoin {
    fn from(d: CoordDecision) -> Self {
        match d {
            CoordDecision::AdmitReplay => GroupJoin::AdmitReplay,
            CoordDecision::AdmitAtCurrent => GroupJoin::AdmitAtCurrent,
            CoordDecision::WaitNextEpoch => GroupJoin::WaitNextEpoch,
        }
    }
}

/// Where the coordinator state machine lives: an in-process mutex, or a
/// shared-memory cell mapped by every shard process.
#[derive(Debug)]
enum CoordBacking {
    Local(Mutex<CoordInner>),
    Shared(ShmCoordCell),
}

#[derive(Debug)]
struct CoordInner {
    /// Completed barrier count; shards wait for a target generation.
    generation: u64,
    /// Shards arrived at the pending barrier.
    arrived: u32,
    /// Epoch the pending barrier opens.
    pending_epoch: u64,
    /// Epoch the group currently publishes (set when a barrier opens);
    /// every join decision is stamped with it, so a shard still parked
    /// at an already-open barrier can tell the decision belongs to an
    /// epoch it has not begun yet and defer instead of applying its
    /// stale pre-boundary state.
    epoch: u64,
    /// Live shards (a retired shard no longer counts toward the barrier).
    active: Vec<bool>,
    /// Per-shard publish progress within the current epoch.
    published: Vec<u64>,
    /// Per-shard rubberband pin boundary for the current epoch.
    pin_limit: Vec<u64>,
    /// Memoized join decisions for the current epoch, by consumer id.
    decisions: HashMap<u64, GroupJoin>,
    /// Per shard: admissions decided but not yet applied locally
    /// (consumer id → decision time, for expiry).
    unapplied: Vec<HashMap<u64, Instant>>,
    stopped: bool,
}

/// Coordinates `N` shard producers: lockstep epoch boundaries, memoized
/// group join decisions, and the shared rubberband pin set. See the
/// module docs for the invariants.
#[derive(Debug)]
pub struct EpochCoordinator {
    shards: usize,
    /// An unapplied admission older than this is abandoned (the consumer
    /// died, or its join never reached the shard) so it cannot wedge the
    /// barrier or pin memory forever.
    apply_timeout: Duration,
    backing: CoordBacking,
}

impl EpochCoordinator {
    /// A coordinator for `shards` producer pipelines in one process.
    /// `apply_timeout` bounds how long a decided admission may stay
    /// unapplied (use the producer's heartbeat timeout).
    pub fn new(shards: usize, apply_timeout: Duration) -> Self {
        assert!(shards >= 1, "coordinator needs at least one shard");
        Self {
            shards,
            apply_timeout,
            backing: CoordBacking::Local(Mutex::new(CoordInner {
                generation: 0,
                arrived: 0,
                pending_epoch: 0,
                epoch: 0,
                active: vec![true; shards],
                published: vec![0; shards],
                pin_limit: vec![0; shards],
                decisions: HashMap::new(),
                unapplied: vec![HashMap::new(); shards],
                stopped: false,
            })),
        }
    }

    /// A coordinator whose state lives in the shared-memory file at
    /// `path`, for shard pipelines that run as separate processes on one
    /// node. The creating process owns the file (and unlinks it on drop);
    /// every other shard process joins via
    /// [`EpochCoordinator::attach_shared`]. Fails with
    /// [`TsError::Arena`] on mapping errors or when `shards` exceeds
    /// [`ts_shm::MAX_COORD_SHARDS`].
    pub fn create_shared(
        path: impl AsRef<Path>,
        shards: usize,
        apply_timeout: Duration,
    ) -> Result<Self> {
        let cell = ShmCoordCell::create(path, shards, apply_timeout)
            .map_err(|e| TsError::Arena(e.to_string()))?;
        Ok(Self {
            shards,
            apply_timeout,
            backing: CoordBacking::Shared(cell),
        })
    }

    /// Attaches to a coordination file created by another process with
    /// [`EpochCoordinator::create_shared`]; the shard count comes from
    /// the file header.
    pub fn attach_shared(path: impl AsRef<Path>, apply_timeout: Duration) -> Result<Self> {
        let cell =
            ShmCoordCell::open(path, apply_timeout).map_err(|e| TsError::Arena(e.to_string()))?;
        Ok(Self {
            shards: cell.shards(),
            apply_timeout,
            backing: CoordBacking::Shared(cell),
        })
    }

    /// Number of shards the coordinator was built for.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The shared coordination file backing this coordinator, when it was
    /// built with [`EpochCoordinator::create_shared`] /
    /// [`EpochCoordinator::attach_shared`]; `None` for the in-process
    /// backing.
    pub fn coordination_file(&self) -> Option<&Path> {
        match &self.backing {
            CoordBacking::Local(_) => None,
            CoordBacking::Shared(cell) => Some(cell.path()),
        }
    }

    /// The epoch most recently announced to the barrier (diagnostics).
    pub fn pending_epoch(&self) -> u64 {
        match &self.backing {
            CoordBacking::Local(inner) => inner.lock().pending_epoch,
            CoordBacking::Shared(cell) => cell.pending_epoch(),
        }
    }

    fn try_open(&self, inner: &mut CoordInner) {
        let now = Instant::now();
        for shard_unapplied in &mut inner.unapplied {
            shard_unapplied.retain(|_, decided| now.duration_since(*decided) < self.apply_timeout);
        }
        let active = inner.active.iter().filter(|a| **a).count() as u32;
        let applied_everywhere = inner
            .unapplied
            .iter()
            .zip(&inner.active)
            .all(|(u, active)| !active || u.is_empty());
        if active > 0 && inner.arrived >= active && applied_everywhere {
            inner.generation += 1;
            inner.arrived = 0;
            inner.epoch = inner.pending_epoch;
            inner.published.iter_mut().for_each(|p| *p = 0);
            inner.decisions.clear();
        }
    }

    /// A shard announces it finished the previous epoch and is ready to
    /// publish `epoch` (expecting `pin_limit` pinned batches under the
    /// rubberband policy). Returns the barrier generation to wait for via
    /// [`EpochCoordinator::reached`].
    pub fn arrive(&self, shard: u32, epoch: u64, pin_limit: u64) -> u64 {
        match &self.backing {
            CoordBacking::Local(mutex) => {
                let mut inner = mutex.lock();
                inner.pin_limit[shard as usize] = pin_limit;
                inner.published[shard as usize] = 0;
                inner.pending_epoch = epoch;
                inner.arrived += 1;
                let target = inner.generation + 1;
                self.try_open(&mut inner);
                target
            }
            CoordBacking::Shared(cell) => cell.arrive(shard, epoch, pin_limit),
        }
    }

    /// True once barrier generation `target` has opened. Re-evaluates the
    /// barrier so expired unapplied admissions cannot wedge it.
    pub fn reached(&self, target: u64) -> bool {
        match &self.backing {
            CoordBacking::Local(mutex) => {
                let mut inner = mutex.lock();
                if inner.generation < target {
                    self.try_open(&mut inner);
                }
                inner.generation >= target
            }
            CoordBacking::Shared(cell) => cell.reached(target),
        }
    }

    /// A shard reports its publish progress within the current epoch.
    pub fn note_published(&self, shard: u32, published_in_epoch: u64) {
        match &self.backing {
            CoordBacking::Local(mutex) => {
                mutex.lock().published[shard as usize] = published_in_epoch
            }
            CoordBacking::Shared(cell) => cell.note_published(shard, published_in_epoch),
        }
    }

    fn group_window_open(inner: &CoordInner) -> bool {
        inner.arrived == 0
            && inner
                .published
                .iter()
                .zip(&inner.pin_limit)
                .zip(&inner.active)
                .all(|((p, limit), active)| !active || *p <= *limit)
    }

    /// True while shard `shard` must keep its epoch prefix pinned: either
    /// the group join window is still open (a consumer admitted by any
    /// shard would replay from all of them), or an already-decided
    /// admission has not been applied on this shard yet.
    pub fn pin_window_open(&self, shard: u32) -> bool {
        match &self.backing {
            CoordBacking::Local(mutex) => {
                let inner = mutex.lock();
                Self::group_window_open(&inner) || !inner.unapplied[shard as usize].is_empty()
            }
            CoordBacking::Shared(cell) => cell.pin_window_open(shard),
        }
    }

    /// Decides (or recalls) the group outcome for consumer `id`'s join,
    /// returning the decision and the **epoch it was made for** (the
    /// group's current epoch). A caller whose own admission state
    /// (`pin_epoch`) lags the decision epoch — it is still parked at a
    /// barrier that already opened — must not apply the admission with
    /// its stale pre-boundary state; it defers to its next
    /// `begin_epoch`, which admits with the decision epoch's state.
    ///
    /// `no_consumers_locally` is the calling shard's "nobody is training"
    /// hint, which selects the admit-at-current-position path the paper
    /// allows mid-epoch. The first shard to ask decides against global
    /// state; everyone else gets the memo.
    pub fn decide_join(&self, id: u64, no_consumers_locally: bool) -> (GroupJoin, u64) {
        let mutex = match &self.backing {
            CoordBacking::Local(mutex) => mutex,
            CoordBacking::Shared(cell) => {
                let (decision, epoch) = cell.decide_join(id, no_consumers_locally);
                return (decision.into(), epoch);
            }
        };
        let mut inner = mutex.lock();
        if let Some(d) = inner.decisions.get(&id) {
            return (*d, inner.epoch);
        }
        let decision = if inner.stopped || inner.arrived > 0 {
            // A shard already crossed into the next epoch boundary: defer
            // everyone to the boundary so no shard admits into an epoch
            // another shard has finished.
            GroupJoin::WaitNextEpoch
        } else if inner
            .published
            .iter()
            .zip(&inner.active)
            .all(|(p, active)| !active || *p == 0)
        {
            GroupJoin::AdmitReplay
        } else if no_consumers_locally {
            GroupJoin::AdmitAtCurrent
        } else if Self::group_window_open(&inner) {
            GroupJoin::AdmitReplay
        } else {
            GroupJoin::WaitNextEpoch
        };
        inner.decisions.insert(id, decision);
        if matches!(decision, GroupJoin::AdmitReplay | GroupJoin::AdmitAtCurrent) {
            let now = Instant::now();
            let active = inner.active.clone();
            for (unapplied, active) in inner.unapplied.iter_mut().zip(active) {
                if active {
                    unapplied.insert(id, now);
                }
            }
        }
        (decision, inner.epoch)
    }

    /// Shard `shard` applied consumer `id`'s admission (replayed its pins
    /// and armed its window).
    pub fn applied(&self, shard: u32, id: u64) {
        match &self.backing {
            CoordBacking::Local(mutex) => {
                let mut inner = mutex.lock();
                inner.unapplied[shard as usize].remove(&id);
                self.try_open(&mut inner);
            }
            CoordBacking::Shared(cell) => cell.applied(shard, id),
        }
    }

    /// Consumer `id` left or was detached: forget any admission still
    /// waiting to be applied for it.
    pub fn abandon(&self, id: u64) {
        match &self.backing {
            CoordBacking::Local(mutex) => {
                let mut inner = mutex.lock();
                for unapplied in &mut inner.unapplied {
                    unapplied.remove(&id);
                }
                self.try_open(&mut inner);
            }
            CoordBacking::Shared(cell) => cell.abandon(id),
        }
    }

    /// Shard `shard`'s producer loop exited; it no longer counts toward
    /// barriers or admission decisions.
    pub fn retire(&self, shard: u32) {
        match &self.backing {
            CoordBacking::Local(mutex) => {
                let mut inner = mutex.lock();
                if std::mem::replace(&mut inner.active[shard as usize], false) {
                    inner.unapplied[shard as usize].clear();
                    self.try_open(&mut inner);
                }
            }
            CoordBacking::Shared(cell) => cell.retire(shard),
        }
    }

    /// Asks every shard to wind down (set on group abort / spawn failure).
    pub fn stop(&self) {
        match &self.backing {
            CoordBacking::Local(mutex) => mutex.lock().stopped = true,
            CoordBacking::Shared(cell) => cell.stop(),
        }
    }

    /// True once [`EpochCoordinator::stop`] was called (by any process,
    /// for the shared backing).
    pub fn is_stopped(&self) -> bool {
        match &self.backing {
            CoordBacking::Local(mutex) => mutex.lock().stopped,
            CoordBacking::Shared(cell) => cell.is_stopped(),
        }
    }
}

/// A sharded producer group: `N` feeder+publish pipelines, one per
/// disjoint dataset shard, in lockstep under one [`EpochCoordinator`].
///
/// Shard `i` publishes on the base of [`ts_socket::EndpointMap`] shard
/// `i` — the scheme-derived default, or the pinned
/// [`ProducerConfig::shard_endpoints`] override (shard 0 *is* the base
/// endpoint and cannot be overridden: it answers the handshake). A
/// [`crate::TensorConsumer`] with
/// [`crate::ConsumerConfig::shards`] set subscribes to all of them and
/// interleaves the streams deterministically by `(epoch, shard, seq)`,
/// so training sees one bit-stable stream regardless of shard count —
/// and with one shard, a byte-identical stream to a plain
/// [`TensorProducer`].
///
/// ```no_run
/// # use std::sync::Arc;
/// # use tensorsocket::{ProducerConfig, ConsumerConfig, ShardedProducerGroup, TensorConsumer, TsContext};
/// # use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
/// let ctx = TsContext::host_only();
/// let dataset = Arc::new(SyntheticImageDataset::imagenet_like(1024, 0));
/// let loaders = DataLoader::sharded(dataset, DataLoaderConfig::default(), 2);
/// let group = ShardedProducerGroup::spawn(loaders, &ctx, ProducerConfig::default()).unwrap();
/// let consumer = TensorConsumer::connect(
///     &ctx,
///     ConsumerConfig { shards: 2, ..Default::default() },
/// )
/// .unwrap();
/// for batch in consumer { /* one interleaved, bit-stable stream */ }
/// group.join().unwrap();
/// ```
pub struct ShardedProducerGroup {
    producers: Vec<TensorProducer>,
    coordinator: Arc<EpochCoordinator>,
}

impl std::fmt::Debug for ShardedProducerGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedProducerGroup")
            .field("shards", &self.producers.len())
            .finish()
    }
}

impl ShardedProducerGroup {
    /// Spawns one producer pipeline per source (source `i` must own shard
    /// `i`'s partition — e.g. `DataLoader::sharded(dataset, cfg, n)`),
    /// publishing on per-shard endpoints derived from `cfg.endpoint`.
    #[deprecated(
        since = "0.2.0",
        note = "use `tensorsocket::Producer::builder()…spawn_sharded(sources)` — one \
                facade for plain and sharded producers, with arena/pool/staging \
                auto-sizing"
    )]
    pub fn spawn<S: EpochSource>(
        sources: Vec<S>,
        ctx: &TsContext,
        cfg: ProducerConfig,
    ) -> Result<ShardedProducerGroup> {
        Self::spawn_impl(sources, ctx, cfg)
    }

    /// The non-deprecated spawn path shared by the legacy shim and the
    /// [`crate::Producer`] builder.
    pub(crate) fn spawn_impl<S: EpochSource>(
        sources: Vec<S>,
        ctx: &TsContext,
        cfg: ProducerConfig,
    ) -> Result<ShardedProducerGroup> {
        if sources.is_empty() {
            return Err(TsError::Config(
                "sharded group needs at least one source".into(),
            ));
        }
        if sources.len() > 1 && cfg.shard_endpoints.iter().any(|(s, _)| *s == 0) {
            return Err(TsError::Config(
                "shard 0 is the handshake endpoint consumers hello at; set it via the \
                 base endpoint, not a shard_endpoint(0, ..) override"
                    .into(),
            ));
        }
        // Every shard's base comes from one override-aware map; the full
        // override table stays only on shard 0, whose WELCOME advertises
        // it (a non-zero shard's own single-shard endpoint layout must
        // root at its resolved base, not re-apply group overrides).
        let group_map = ts_socket::EndpointMap::with_overrides(
            &cfg.endpoint,
            sources.len(),
            cfg.shard_endpoints.clone(),
        );
        let coordinator = Arc::new(EpochCoordinator::new(sources.len(), cfg.heartbeat_timeout));
        let mut producers = Vec::with_capacity(sources.len());
        for (shard, source) in sources.into_iter().enumerate() {
            let mut shard_cfg = cfg.clone();
            shard_cfg.endpoint = group_map.shard_base(shard);
            if shard != 0 {
                shard_cfg.shard_endpoints = Vec::new();
            }
            match TensorProducer::spawn_sharded(
                source,
                ctx,
                shard_cfg,
                coordinator.clone(),
                shard as u32,
            ) {
                Ok(p) => producers.push(p),
                Err(e) => {
                    // Unwind the shards already running.
                    coordinator.stop();
                    for p in &producers {
                        p.abort();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ShardedProducerGroup {
            producers,
            coordinator,
        })
    }

    /// Number of shard pipelines in the group.
    pub fn num_shards(&self) -> usize {
        self.producers.len()
    }

    /// The group's coordinator (inspection and tests).
    pub fn coordinator(&self) -> &Arc<EpochCoordinator> {
        &self.coordinator
    }

    /// Requests every shard to stop after the batch in flight.
    pub fn abort(&self) {
        self.coordinator.stop();
        for p in &self.producers {
            p.abort();
        }
    }

    /// Waits for every shard to finish; returns per-shard stats (index =
    /// shard). Like [`TensorProducer::join`], an aborted group still
    /// returns the partial stats of each shard.
    pub fn join(self) -> Result<Vec<ProducerStats>> {
        self.producers.into_iter().map(|p| p.join()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn barrier_opens_only_when_all_shards_arrive() {
        let c = EpochCoordinator::new(3, T);
        let g0 = c.arrive(0, 0, 1);
        assert!(!c.reached(g0));
        let g1 = c.arrive(1, 0, 1);
        assert_eq!(g0, g1);
        assert!(!c.reached(g0));
        let _ = c.arrive(2, 0, 1);
        assert!(c.reached(g0), "all shards arrived");
        // Next epoch needs a fresh round of arrivals.
        let g_next = c.arrive(0, 1, 1);
        assert!(!c.reached(g_next));
    }

    #[test]
    fn retired_shards_stop_counting_toward_the_barrier() {
        let c = EpochCoordinator::new(2, T);
        let g = c.arrive(0, 0, 1);
        assert!(!c.reached(g));
        c.retire(1);
        assert!(c.reached(g), "lone survivor proceeds");
    }

    #[test]
    fn join_decisions_are_memoized_per_consumer() {
        let c = EpochCoordinator::new(2, T);
        let g = c.arrive(0, 0, 2);
        let _ = c.arrive(1, 0, 2);
        assert!(c.reached(g));
        c.note_published(0, 1);
        c.note_published(1, 1);
        // Within every shard's pin window: admit, and the memo repeats it.
        assert_eq!(c.decide_join(7, false).0, GroupJoin::AdmitReplay);
        // Shard 1 races past its pin boundary before applying…
        c.note_published(1, 5);
        // …but must still answer consumer 7 the same way,
        assert_eq!(c.decide_join(7, false).0, GroupJoin::AdmitReplay);
        // …and keep pinning until it applies the admission.
        assert!(c.pin_window_open(1));
        c.applied(0, 7);
        c.applied(1, 7);
        assert!(!c.pin_window_open(1), "window closed once applied");
        // A fresh consumer now waits: shard 1 is past its pin window.
        assert_eq!(c.decide_join(8, false).0, GroupJoin::WaitNextEpoch);
    }

    #[test]
    fn joins_defer_once_any_shard_reaches_the_boundary() {
        let c = EpochCoordinator::new(2, T);
        let g = c.arrive(0, 0, 10);
        let _ = c.arrive(1, 0, 10);
        assert!(c.reached(g));
        c.note_published(0, 1);
        c.note_published(1, 1);
        // Shard 0 finishes the epoch and arrives for the next one.
        let _ = c.arrive(0, 1, 10);
        // Even though shard 1 is still inside its pin window, the group
        // defers: admitting now would straddle the epoch boundary.
        assert_eq!(c.decide_join(9, false).0, GroupJoin::WaitNextEpoch);
    }

    #[test]
    fn unapplied_admissions_block_and_then_release_the_barrier() {
        let c = EpochCoordinator::new(2, Duration::from_millis(40));
        let g = c.arrive(0, 0, 5);
        let _ = c.arrive(1, 0, 5);
        assert!(c.reached(g));
        c.note_published(0, 1);
        assert_eq!(c.decide_join(3, false).0, GroupJoin::AdmitReplay);
        c.applied(0, 3); // shard 1 never applies (consumer vanished)
        let g2 = c.arrive(0, 1, 5);
        let _ = c.arrive(1, 1, 5);
        assert!(
            !c.reached(g2),
            "barrier waits for shard 1's unapplied admission"
        );
        std::thread::sleep(Duration::from_millis(60));
        assert!(c.reached(g2), "expired admission is abandoned");
    }

    #[test]
    fn no_consumer_hint_admits_at_current_position() {
        let c = EpochCoordinator::new(2, T);
        let g = c.arrive(0, 0, 1);
        let _ = c.arrive(1, 0, 1);
        assert!(c.reached(g));
        c.note_published(0, 3);
        c.note_published(1, 3);
        assert_eq!(c.decide_join(4, true).0, GroupJoin::AdmitAtCurrent);
        // The memo answers the other shard identically.
        assert_eq!(c.decide_join(4, false).0, GroupJoin::AdmitAtCurrent);
    }

    fn coord_temp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ts-core-coord-{}-{}-{tag}.coord",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn shared_backing_runs_the_same_barrier_protocol() {
        // Two coordinator instances over one file stand in for two shard
        // producer processes; the semantics must match the local backing.
        let path = coord_temp_path("barrier");
        let a = EpochCoordinator::create_shared(&path, 2, T).unwrap();
        let b = EpochCoordinator::attach_shared(&path, T).unwrap();
        assert_eq!(b.num_shards(), 2);
        assert_eq!(a.coordination_file(), Some(path.as_path()));
        let g = a.arrive(0, 0, 2);
        assert!(!a.reached(g));
        assert_eq!(b.arrive(1, 0, 2), g);
        assert!(a.reached(g) && b.reached(g));
        a.note_published(0, 1);
        b.note_published(1, 1);
        // Memoized admission, visible from both mappings.
        assert_eq!(a.decide_join(7, false).0, GroupJoin::AdmitReplay);
        assert_eq!(b.decide_join(7, false).0, GroupJoin::AdmitReplay);
        assert!(b.pin_window_open(1));
        a.applied(0, 7);
        b.applied(1, 7);
        b.note_published(1, 5);
        assert!(!b.pin_window_open(1));
        assert_eq!(b.decide_join(8, false).0, GroupJoin::WaitNextEpoch);
        // Stop propagates across mappings.
        a.stop();
        assert!(b.is_stopped());
    }

    #[test]
    fn attach_shared_rejects_a_non_coordinator_file() {
        let path = coord_temp_path("bogus");
        std::fs::write(&path, vec![0u8; 16]).unwrap();
        assert!(matches!(
            EpochCoordinator::attach_shared(&path, T),
            Err(TsError::Arena(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn abandon_clears_unapplied_everywhere() {
        let c = EpochCoordinator::new(2, T);
        let g = c.arrive(0, 0, 5);
        let _ = c.arrive(1, 0, 5);
        assert!(c.reached(g));
        c.note_published(0, 1);
        assert_eq!(c.decide_join(11, false).0, GroupJoin::AdmitReplay);
        assert!(c.pin_window_open(1));
        c.abandon(11);
        c.note_published(1, 6); // past the pin limit, nothing unapplied
        assert!(!c.pin_window_open(1));
    }
}
