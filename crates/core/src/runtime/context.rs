//! The shared runtime context.

use crate::{Result, TsError};
use std::path::Path;
use std::sync::Arc;
use ts_device::Topology;
use ts_metrics::{Registry, TraceRing};
use ts_shm::ShmArena;
use ts_socket::Context as SocketContext;
use ts_tensor::{DeviceCtx, SharedRegistry};

/// Everything producer and consumers share within one node:
/// the message broker, the storage handle table, and the device books.
///
/// Cloning is cheap and shares state — one `TsContext` models one machine
/// **within one process**. For the paper's real deployment model —
/// independent training *processes* collocated on a machine — each process
/// builds its own context, the endpoints use `ipc://` (or `tcp://`)
/// URIs, and batch bytes travel through a shared-memory arena:
///
/// * the producer process calls [`TsContext::create_arena`] before
///   spawning its [`crate::TensorProducer`];
/// * each consumer process calls [`TsContext::open_arena`] on the same
///   path before [`crate::TensorConsumer::connect`].
///
/// Only announce/ack metadata then crosses the sockets; payload bytes are
/// written once into the arena and mapped zero-copy by every consumer.
#[derive(Debug, Clone)]
pub struct TsContext {
    /// Message broker (ZeroMQ context equivalent).
    pub sockets: SocketContext,
    /// Storage handle table (CUDA IPC handle equivalent).
    pub registry: SharedRegistry,
    /// Device topology, memory and traffic books.
    pub devices: Arc<DeviceCtx>,
    /// Shared metrics registry: counters (`producer.batches`,
    /// `producer.replays`, `producer.bytes_staged`, `producer.detached`,
    /// `producer.ctrl_unknown`, `consumer.batches`, `consumer.samples`,
    /// `consumer.acks`, `staging.h2d_bytes`), per-stage latency
    /// histograms (`stage.*_ns`, `staging.*_ns`, `consumer.*_ns`) and
    /// gauges — see the crate-level *Observability* section for the full
    /// reference table. Every producer answers a control-plane
    /// [`crate::runtime::scrape::scrape_stats`] request with a snapshot
    /// of this registry, which is what the `ts-top` CLI renders.
    pub metrics: Registry,
    /// The batch flight recorder: every producer shard, staging stage and
    /// in-process consumer sharing this context stamps per-batch span
    /// timelines (keyed by `(epoch, shard, seq)`) into this one ring, so
    /// one record covers a batch's whole cross-stage life. Producers
    /// answer [`crate::runtime::scrape::scrape_trace`] requests with its
    /// last-N completed records, and the stall watchdog parks its last
    /// verdict here.
    pub trace: Arc<TraceRing>,
}

impl TsContext {
    /// A context over an explicit device configuration.
    pub fn new(devices: DeviceCtx) -> Self {
        Self {
            sockets: SocketContext::new(),
            registry: SharedRegistry::new(),
            devices: Arc::new(devices),
            metrics: Registry::new(),
            trace: Arc::new(TraceRing::new()),
        }
    }

    /// A host-only context (no GPUs); the default for tests and examples.
    pub fn host_only() -> Self {
        Self::new(DeviceCtx::host_only())
    }

    /// A context with `gpus` GPUs of `vram_bytes` each, NVLink-connected
    /// when `nvlink` is set.
    pub fn with_gpus(gpus: u8, vram_bytes: u64, nvlink: bool) -> Self {
        let vram: Vec<u64> = (0..gpus).map(|_| vram_bytes).collect();
        Self::new(DeviceCtx::new(Topology::new(gpus, nvlink), &vram))
    }

    /// Creates a shared-memory payload arena backing this context's
    /// registry (producer-process side). `nslots` bounds how many storages
    /// can be live at once — size it to
    /// `buffer_size × (fields + labels) × consumers` plus rubberband
    /// headroom; `slot_size` must hold the largest staged tensor.
    ///
    /// The file is unlinked when the arena (last `Arc`) drops.
    pub fn create_arena(
        &self,
        path: impl AsRef<Path>,
        nslots: usize,
        slot_size: usize,
    ) -> Result<Arc<ShmArena>> {
        let arena =
            ShmArena::create(path, nslots, slot_size).map_err(|e| TsError::Arena(e.to_string()))?;
        self.registry.bind_arena(arena.clone());
        Ok(arena)
    }

    /// Opens the producer's arena file (consumer-process side) and binds
    /// it to this context's registry, so payloads announcing arena
    /// placements rebuild zero-copy.
    pub fn open_arena(&self, path: impl AsRef<Path>) -> Result<Arc<ShmArena>> {
        let arena = ShmArena::open(path).map_err(|e| TsError::Arena(e.to_string()))?;
        self.registry.bind_arena(arena.clone());
        Ok(arena)
    }

    /// The shared-memory arena bound to this context's registry, if any.
    pub fn arena(&self) -> Option<Arc<ShmArena>> {
        self.registry.arena()
    }

    /// Wraps the bound arena in a recycling [`ts_tensor::SlotPool`] of at
    /// most `depth` idle slots (producer-process side, after
    /// [`TsContext::create_arena`]): slots whose batch was fully acked are
    /// rewritten in place for the next batch, so steady-state publishing
    /// performs zero arena allocations. Returns the pool; its
    /// [`ts_tensor::SlotPool::stats`] expose the hit/miss counters and
    /// [`ts_tensor::SlotPool::drain`] releases idle slots back to the
    /// arena (e.g. after the producer joins, so `slots_in_use` reaches 0).
    ///
    /// Size `depth` like the in-flight set: `buffer_size × (fields per
    /// batch + 1 label tensor)` plus rubberband headroom.
    pub fn enable_slot_recycling(&self, depth: usize) -> Result<ts_tensor::SlotPool> {
        let arena = self.registry.arena().ok_or_else(|| {
            TsError::Arena("no arena bound: call create_arena before enabling recycling".into())
        })?;
        let pool = ts_tensor::SlotPool::new(arena, depth);
        self.registry.bind_slot_pool(pool.clone());
        Ok(pool)
    }

    /// Per-shard slot recycling for a [`crate::ShardedProducerGroup`]:
    /// binds one recycling pool of `depth` idle slots for shard `shard`,
    /// over the same arena. Each shard's publish pipeline then recycles
    /// its own slots — no cross-shard contention on one free list, and
    /// per-shard [`ts_tensor::SlotPool::stats`] stay attributable. Call
    /// once per shard after [`TsContext::create_arena`]; shards without
    /// their own pool fall back to the default pool (if
    /// [`TsContext::enable_slot_recycling`] was called) or raw arena
    /// allocation.
    pub fn enable_shard_slot_recycling(
        &self,
        shard: u32,
        depth: usize,
    ) -> Result<ts_tensor::SlotPool> {
        let arena = self.registry.arena().ok_or_else(|| {
            TsError::Arena("no arena bound: call create_arena before enabling recycling".into())
        })?;
        let pool = ts_tensor::SlotPool::new(arena, depth);
        self.registry.bind_shard_slot_pool(shard, pool.clone());
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::DeviceId;

    #[test]
    fn contexts_share_registry_across_clones() {
        let ctx = TsContext::host_only();
        let view = ctx.clone();
        let t = ts_tensor::Tensor::zeros(&[4], ts_tensor::DType::U8, DeviceId::Cpu);
        ctx.registry.register(t.storage());
        assert!(view.registry.lookup(t.storage_id()).is_ok());
    }

    #[test]
    fn gpu_context_has_books() {
        let ctx = TsContext::with_gpus(2, 1_000, true);
        assert!(ctx.devices.memory(DeviceId::Gpu(1)).is_ok());
        assert!(ctx.devices.memory(DeviceId::Gpu(2)).is_err());
    }
}
