//! Wire messages and their binary codec.
//!
//! Two channels, as in the paper (§3.2.3):
//!
//! * **data** (PUB → SUB): [`DataMsg`] — epoch markers, batch announcements
//!   carrying [`ts_tensor::TensorPayload`]s (pointers, not data), join
//!   replies and detach notices;
//! * **control** (PUSH → PULL): [`CtrlMsg`] — joins, readiness, acks,
//!   heartbeats and leaves from consumers.
//!
//! The codec is a hand-rolled little-endian format: fixed header tag byte,
//! length-prefixed repeated sections. No serde — messages are small and the
//! layout is part of the reproduction (payload size must not scale with
//! batch size).

use crate::{Result, TsError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ts_tensor::TensorPayload;

/// Topic names used on the data socket.
pub mod topics {
    /// Shared batch announcements (default mode).
    pub const BATCH: &[u8] = b"batch";
    /// Broadcast control notices (epoch start, end, detach).
    pub const CTRL: &[u8] = b"ctrl";
    /// Coalesced publish-cursor announcements ([`super::DataMsg::Cursor`]):
    /// latest-wins *state*, re-broadcast at a bounded cadence rather than
    /// per event. A consumer that subscribes sees where each shard's
    /// stream currently stands; it is never guaranteed to see (and after
    /// a stall will provably *not* see) the intermediate cursors.
    pub const CURSOR: &[u8] = b"cur";

    /// Per-consumer topic (join replies, replays, flexible-mode batches).
    pub fn consumer(id: u64) -> Vec<u8> {
        format!("cons/{id}").into_bytes()
    }

    /// Per-handshake topic ([`super::DataMsg::Welcome`] replies to a
    /// [`super::CtrlMsg::Hello`], keyed by the caller's one-shot token).
    pub fn hello(token: u64) -> Vec<u8> {
        format!("hs/{token}").into_bytes()
    }

    /// Per-scrape topic ([`super::DataMsg::Stats`] replies to a
    /// [`super::CtrlMsg::StatsRequest`], keyed by the caller's one-shot
    /// token — same stateless pattern as the attach handshake).
    pub fn stats(token: u64) -> Vec<u8> {
        format!("st/{token}").into_bytes()
    }

    /// Per-scrape topic ([`super::DataMsg::Trace`] replies to a
    /// [`super::CtrlMsg::TraceRequest`], keyed by the caller's one-shot
    /// token — the flight-recorder sibling of [`stats`]).
    pub fn trace(token: u64) -> Vec<u8> {
        format!("tr/{token}").into_bytes()
    }
}

/// Version of the HELLO/WELCOME attach handshake. A consumer sends it in
/// [`CtrlMsg::Hello`]; the producer always answers with its own version in
/// [`WelcomeInfo::version`], and the *consumer* decides compatibility —
/// an old producer talking to a new consumer (or vice versa) surfaces as
/// a typed version error on the consumer, never a silent misparse.
///
/// **v2** extends v1 with a `Hello` capability bitfield ([`caps`]),
/// per-shard endpoint overrides and a granted payload-mode mask in the
/// WELCOME, and a per-consumer [`PayloadMode`] in the `Join`. Every
/// extension rides in *trailing* bytes that a v1 decoder never reads,
/// so the two versions interoperate: a v2 producer answers a v1 `Hello`
/// with a byte-identical v1 WELCOME, and a v1 consumer's `Join` decodes
/// on a v2 producer with the v1 defaults (shm pointer-passing).
///
/// **v3** (this build) adds the durable-log advertisement: the WELCOME
/// grows a trailing [`LogAd`] section (presence flag + retained range),
/// and two new messages appear — [`CtrlMsg::Replay`] (tag 8), by which
/// a consumer group asks for a log-backed catch-up stream, and
/// [`DataMsg::LogInfo`] (tag 9), the producer's reply fixing the replay
/// start and live-splice cutover. The same trailing-bytes discipline
/// holds: the WELCOME tail is gated on the *encoded* version (a v3
/// producer answers a v2 `Hello` with a byte-identical v2 WELCOME), and
/// the new tags land in the ranges both sides already decode as
/// `Unknown`, so a v2 producer log-ignores a `Replay` and a v2 consumer
/// log-ignores a `LogInfo` instead of wedging.
pub const HANDSHAKE_VERSION: u32 = 3;

/// `Hello` capability bits (handshake v2): what the consumer can do,
/// declared before it knows anything about the producer. Unknown bits
/// are ignored and counted (`producer.hello_unknown_caps`), never an
/// error — a v3 consumer must be able to attach to a v2 producer on the
/// v2 subset.
pub mod caps {
    /// The consumer can map a shared-memory arena on this host.
    pub const SHM: u32 = 1 << 0;
    /// The consumer can receive length-prefixed streamed payload bytes
    /// over the data socket (the remote-host path).
    pub const STREAM: u32 = 1 << 1;
    /// Every capability bit this build understands.
    pub const KNOWN: u32 = SHM | STREAM;
}

/// How batch payload bytes reach one consumer — negotiated **per
/// consumer** at attach time (handshake v2), not fixed at build time.
/// A consumer that proves it can open the advertised arena gets
/// pointer-passing; one that cannot (a remote host) gets its batches
/// streamed as length-prefixed bytes on its private topic, behind the
/// same [`DataMsg::Batch`] contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PayloadMode {
    /// Shm pointer-passing: a tiny announce carrying arena placements.
    #[default]
    Shm,
    /// Length-prefixed byte streaming over the data socket.
    Stream,
}

impl PayloadMode {
    /// The one-byte encoding used in the v2 `Join`.
    pub fn wire_code(self) -> u8 {
        match self {
            PayloadMode::Shm => 0,
            PayloadMode::Stream => 1,
        }
    }

    /// Decodes a payload-mode byte (unknown codes map to `None`).
    pub fn from_wire_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(PayloadMode::Shm),
            1 => Some(PayloadMode::Stream),
            _ => None,
        }
    }

    /// The [`caps`] bit (and WELCOME grant bit) for this mode.
    pub fn cap_bit(self) -> u32 {
        match self {
            PayloadMode::Shm => caps::SHM,
            PayloadMode::Stream => caps::STREAM,
        }
    }
}

/// Version of the stats-scrape exchange ([`CtrlMsg::StatsRequest`] /
/// [`DataMsg::Stats`]). The scraper sends its version and the producer
/// echoes its own in [`StatsPayload::version`]; like the attach
/// handshake, the *client* decides compatibility.
///
/// **v2** adds a trailing per-attempt sequence number to both sides:
/// the scraper stamps every (re-)send of a request, the producer echoes
/// the stamp on its reply, and the scraper drops replies whose stamp is
/// not the one currently in flight — a duplicate answer to a resent
/// round can no longer masquerade as the *next* round's snapshot. v1
/// frames (no stamp) decode with `seq == 0`.
///
/// **v3** appends producer uptime, a monotonic snapshot timestamp and the
/// stall watchdog's last verdict after the histogram sections — again as
/// trailing bytes gated on the encoded version, so v2 frames decode on a
/// v3 build with zeroed extras and a v3 reply to a v2 scraper would stay
/// parseable (older builds ignore trailing bytes they never read).
pub const STATS_VERSION: u32 = 3;

/// Version of the flight-recorder scrape exchange
/// ([`CtrlMsg::TraceRequest`] / [`DataMsg::Trace`]). Same client-decides
/// pattern as [`STATS_VERSION`].
pub const TRACE_VERSION: u32 = 1;

/// The shared-memory arena advertisement inside a [`WelcomeInfo`]: the
/// backing file path plus slot geometry, so a consumer process maps the
/// producer's arena with zero out-of-band configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaAd {
    /// Path of the arena's backing file on the shared host.
    pub path: String,
    /// Number of slots.
    pub nslots: u64,
    /// Capacity of each slot in bytes.
    pub slot_size: u64,
}

/// The durable batch log advertisement inside a [`WelcomeInfo`]
/// (handshake v3): the producer keeps an on-disk log of published
/// batches and can serve [`CtrlMsg::Replay`] requests over the retained
/// sequence range. The range is a snapshot taken when the WELCOME was
/// built — retention and appends move it — so consumers treat it as a
/// hint; the authoritative replay start arrives in [`DataMsg::LogInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogAd {
    /// Oldest retained global sequence number at WELCOME time.
    pub retained_min: u64,
    /// Newest retained global sequence number at WELCOME time.
    pub retained_max: u64,
}

/// Where a [`CtrlMsg::Replay`] wants its log-backed stream to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayFrom {
    /// The group's persisted cursor — the batch after the last one any
    /// member of the group acknowledged; the oldest retained record when
    /// the group has no cursor yet. This is the crash-restart resume
    /// point.
    #[default]
    Cursor,
    /// The oldest retained record, regardless of any cursor.
    Oldest,
    /// An explicit global sequence number (clamped to the retained
    /// range by the producer).
    Seq(u64),
}

/// Everything a consumer learns from the attach handshake: the producer
/// answers a [`CtrlMsg::Hello`] with this self-description, and the
/// consumer derives all remaining configuration from it — shard count
/// (and with the base endpoint, every shard's data/ctrl endpoint via
/// `ts_socket::EndpointMap`), the arena placement, and the batch schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WelcomeInfo {
    /// The producer's handshake version ([`HANDSHAKE_VERSION`]).
    pub version: u32,
    /// Shard pipelines in the topology (1 for a plain producer).
    pub shards: u32,
    /// Loader batch size (samples per announcement in default mode).
    pub batch_size: u32,
    /// Producer batch size under flexible sizing; 0 in default mode.
    pub flex_producer_batch: u32,
    /// Device staging mode (0 off / 1 serial / 2 overlapped);
    /// informational.
    pub staging: u8,
    /// The shared-memory arena, when one backs the payload path.
    pub arena: Option<ArenaAd>,
    /// Sparse `(shard, base URI)` endpoint overrides (v2): shards whose
    /// base endpoint is *not* derived from the base URI by scheme rules —
    /// e.g. a shard pipeline on another host. Empty from v1 producers.
    pub endpoint_overrides: Vec<(u32, String)>,
    /// Bitmask ([`caps`] bits) of payload modes the producer can serve
    /// this consumer. A v1 producer implies [`caps::SHM`] only.
    pub payload_modes: u32,
    /// The durable batch log, when the producer keeps one (v3). `None`
    /// from v1/v2 producers and from v3 producers running without a
    /// (healthy) log. A logging producer that has not retained anything
    /// yet advertises the *inverted* range `retained_min > retained_max`
    /// (canonically `{1, 0}`) — "log enabled, nothing stored" — so group
    /// consumers still send [`CtrlMsg::Replay`] and register their
    /// cursors from the very first batch.
    pub log: Option<LogAd>,
}

/// Messages consumers push to the producer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Request to join with the desired consumer batch size.
    Join {
        /// Self-assigned consumer id (random u64).
        consumer_id: u64,
        /// Desired batch size (only meaningful under flexible sizing).
        batch_size: u32,
        /// The payload mode this consumer selected after the handshake
        /// (v2; a v1 `Join` implies [`PayloadMode::Shm`]).
        mode: PayloadMode,
    },
    /// The consumer subscribed to the batch topic and is ready to receive.
    Ready {
        /// Consumer id.
        consumer_id: u64,
    },
    /// The consumer finished batch `seq` (global sequence number).
    Ack {
        /// Consumer id.
        consumer_id: u64,
        /// Global batch sequence number.
        seq: u64,
    },
    /// Liveness signal.
    Heartbeat {
        /// Consumer id.
        consumer_id: u64,
    },
    /// Clean departure.
    Leave {
        /// Consumer id.
        consumer_id: u64,
    },
    /// Attach handshake: "describe yourself". Sent to the *base* control
    /// endpoint before anything else; the producer answers with a
    /// [`DataMsg::Welcome`] on the [`topics::hello`] topic of `token`.
    /// Stateless on the producer side — a consumer that missed the reply
    /// (subscription still propagating on remote transports) simply
    /// retries with the same token.
    Hello {
        /// One-shot reply-routing token chosen by the caller (not a
        /// consumer id; the real join happens afterwards).
        token: u64,
        /// The caller's [`HANDSHAKE_VERSION`].
        version: u32,
        /// Capability bitfield ([`caps`]; v2 — a v1 `Hello` carries no
        /// capability bytes and decodes as `0`, i.e. "v1 semantics").
        caps: u32,
    },
    /// Observability scrape: "report your metrics". Stateless like
    /// [`CtrlMsg::Hello`] — answered with a [`DataMsg::Stats`] on the
    /// [`topics::stats`] topic of `token` from every producer wait loop;
    /// a scraper that missed the reply retries with the same token.
    StatsRequest {
        /// One-shot reply-routing token chosen by the scraper.
        token: u64,
        /// The scraper's [`STATS_VERSION`].
        version: u32,
        /// Per-attempt stamp (v2): incremented on every resend of the
        /// same token, echoed in [`DataMsg::Stats::seq`] so stale
        /// duplicate replies are identifiable. `0` from a v1 scraper.
        seq: u32,
    },
    /// Flight-recorder scrape: "report your last completed batch
    /// timelines". Stateless like [`CtrlMsg::StatsRequest`] — answered
    /// with a [`DataMsg::Trace`] on the [`topics::trace`] topic of
    /// `token` from every producer wait loop.
    TraceRequest {
        /// One-shot reply-routing token chosen by the scraper.
        token: u64,
        /// The scraper's [`TRACE_VERSION`].
        version: u32,
        /// Per-attempt stamp, echoed in [`DataMsg::Trace::seq`] exactly
        /// like the stats exchange's.
        seq: u32,
        /// Most completed records the scraper wants (the producer may
        /// cap it further).
        max: u32,
    },
    /// Ask for a log-backed replay stream (handshake v3; tag 8). Sent
    /// after the Join/Ready exchange by a consumer whose WELCOME carried
    /// a [`LogAd`]. The producer registers `group`, resolves the actual
    /// start (cursor/oldest/explicit, clamped to the retained range and
    /// to the consumer's live-stream start), answers with a
    /// [`DataMsg::LogInfo`] on the consumer's private topic, then streams
    /// the log range as ordinary streamed-payload batch announcements.
    /// Stateless against duplicates: a re-sent `Replay` for a consumer
    /// whose stream is already running or done only re-sends the
    /// `LogInfo`. A v2 producer decodes this as `Unknown` and ignores it
    /// — the consumer falls back to pure rubberband semantics.
    Replay {
        /// Consumer id (already joined).
        consumer_id: u64,
        /// Named consumer group whose persisted cursor scopes the replay
        /// and advances with this consumer's acks.
        group: String,
        /// Requested start position.
        from: ReplayFrom,
    },
    /// A control frame whose tag this build does not know. Produced only
    /// by [`CtrlMsg::decode`] for forward compatibility: a producer
    /// receiving a message from a newer peer logs-and-ignores it instead
    /// of failing with a wire error. (Truncated frames are still
    /// rejected.)
    Unknown {
        /// The unrecognized tag byte.
        tag: u8,
    },
}

/// The producer's decision on a join request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinDecision {
    /// Admitted into the running epoch; batches `replay_from..` of `epoch`
    /// will be (re)sent on the consumer's private topic (rubberbanding).
    AdmitReplay {
        /// Epoch being joined.
        epoch: u64,
        /// First epoch-batch index that will be replayed.
        replay_from: u64,
        /// Batches in this epoch.
        num_batches: u64,
        /// Global sequence number of the epoch's first batch; the consumer
        /// starts expecting this and deduplicates replays against live
        /// announcements with it.
        start_seq: u64,
    },
    /// Admission deferred to the start of `epoch`.
    WaitEpoch {
        /// Epoch at which the consumer will be admitted.
        epoch: u64,
    },
    /// Join rejected (e.g. batch-size mismatch in default mode).
    Reject {
        /// Human-readable reason.
        reason: String,
    },
}

/// One consumer batch under flexible sizing: per-field segment payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlexBatchPayload {
    /// For each tensor field, the segments composing this batch.
    pub fields: Vec<Vec<TensorPayload>>,
    /// Label segments.
    pub labels: Vec<TensorPayload>,
}

/// One tensor shipped as raw bytes (streamed payload mode): dtype,
/// shape, and the dense row-major bytes — everything a remote consumer
/// needs to rebuild the tensor without mapping the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamedTensor {
    /// Element type.
    pub dtype: ts_tensor::DType,
    /// Dense row-major shape.
    pub shape: Vec<u64>,
    /// The tensor's bytes, length-prefixed on the wire.
    pub bytes: Bytes,
}

impl StreamedTensor {
    /// Captures `tensor` as dense row-major bytes for streaming.
    pub fn from_tensor(tensor: &ts_tensor::Tensor) -> Self {
        Self {
            dtype: tensor.dtype(),
            shape: tensor.shape().iter().map(|&d| d as u64).collect(),
            bytes: Bytes::from(tensor.gather_bytes()),
        }
    }

    /// Rebuilds the tensor on `device` (host memory; the consumer stages
    /// it onward exactly like an arena-unpacked tensor).
    pub fn to_tensor(&self, device: ts_device::DeviceId) -> Result<ts_tensor::Tensor> {
        let shape: Vec<usize> = self.shape.iter().map(|&d| d as usize).collect();
        ts_tensor::Tensor::from_bytes(self.bytes.to_vec(), self.dtype, &shape, device)
            .map_err(|e| TsError::Wire(format!("streamed tensor: {e}")))
    }
}

/// What a batch announcement carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnounceContent {
    /// Default mode: every consumer trains on the same tensors.
    Shared {
        /// Collated tensor fields.
        fields: Vec<TensorPayload>,
        /// Labels.
        labels: TensorPayload,
    },
    /// Flexible mode: this consumer's carved batches for one producer batch.
    Flex {
        /// The consumer batches, in visit order.
        batches: Vec<FlexBatchPayload>,
    },
    /// Streamed mode (v2): the batch's bytes themselves, length-prefixed,
    /// for consumers that cannot map the arena (remote hosts). Sent on
    /// the consumer's private topic; rides the same [`DataMsg::Batch`]
    /// contract as the other kinds, so a future RDMA/ucx bulk transport
    /// can replace the byte transport without a handshake bump.
    Streamed {
        /// Collated tensor fields, as raw bytes.
        fields: Vec<StreamedTensor>,
        /// Labels, as raw bytes.
        labels: StreamedTensor,
    },
}

/// A batch announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAnnounce {
    /// Global (cross-epoch) sequence number; acks reference this.
    pub seq: u64,
    /// Epoch the batch belongs to.
    pub epoch: u64,
    /// Batch index within the epoch.
    pub index_in_epoch: u64,
    /// True for the epoch's final batch.
    pub last_in_epoch: bool,
    /// Payload content.
    pub content: AnnounceContent,
}

/// Messages the producer publishes on the data socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataMsg {
    /// A new epoch begins.
    EpochStart {
        /// Epoch number.
        epoch: u64,
        /// Batches the epoch will publish.
        num_batches: u64,
    },
    /// A batch announcement.
    Batch(BatchAnnounce),
    /// Reply to a join request (sent on the consumer's private topic).
    JoinReply {
        /// The consumer being answered.
        consumer_id: u64,
        /// The decision.
        decision: JoinDecision,
    },
    /// The producer detached a consumer (missed heartbeats).
    Detached {
        /// The detached consumer.
        consumer_id: u64,
    },
    /// All epochs complete; the producer is shutting down.
    End,
    /// Reply to a [`CtrlMsg::Hello`], published on the hello token's
    /// topic: the producer's self-description, from which a consumer
    /// derives every attach parameter (see [`WelcomeInfo`]).
    Welcome {
        /// The hello token being answered.
        token: u64,
        /// The topology self-description.
        info: WelcomeInfo,
    },
    /// Reply to a [`CtrlMsg::StatsRequest`], published on the stats
    /// token's topic: a wire-encoded snapshot of the producer's metrics
    /// registry, histogram buckets included.
    Stats {
        /// The stats token being answered.
        token: u64,
        /// Echo of the request's per-attempt stamp
        /// ([`CtrlMsg::StatsRequest::seq`]); `0` when answering a v1
        /// scraper. The scraper only accepts the stamp it currently has
        /// in flight, so a duplicate answer to a resent round cannot be
        /// mistaken for a fresh snapshot.
        seq: u32,
        /// The metrics snapshot.
        payload: StatsPayload,
    },
    /// Coalesced publish-cursor announcement on [`topics::CURSOR`]:
    /// where shard `shard`'s stream currently stands. This is *state*,
    /// not an event — the producer collapses per-publish updates through
    /// a latest-wins cell ([`ts_socket::coalesce`]) and broadcasts at a
    /// bounded cadence, so a consumer waking from a stall reads one
    /// current cursor instead of a backlog. Consumers must not infer
    /// batch delivery from it; it only bounds how far behind they are.
    Cursor {
        /// The announcing shard.
        shard: u32,
        /// Epoch the cursor is in.
        epoch: u64,
        /// Global sequence number of the latest announcement published.
        seq: u64,
        /// Batch index within the epoch of that announcement.
        index_in_epoch: u64,
    },
    /// Reply to a [`CtrlMsg::TraceRequest`], published on the trace
    /// token's topic: the flight recorder's most recently completed
    /// batch records.
    Trace {
        /// The trace token being answered.
        token: u64,
        /// Echo of the request's per-attempt stamp (same duplicate
        /// protection as [`DataMsg::Stats::seq`]).
        seq: u32,
        /// The trace records.
        payload: TracePayload,
    },
    /// Reply to a [`CtrlMsg::Replay`] (handshake v3; tag 9), published
    /// on the consumer's private topic: the producer's binding decision
    /// on where the log-backed stream starts and where it hands over to
    /// the live stream. `start_seq` is the first replayed sequence
    /// number; `live_seq` is the consumer's live-stream start recorded
    /// at admission — the replay covers `start_seq..live_seq` and the
    /// live subscription covers `live_seq..`, so the spliced stream is
    /// gapless and duplicate-free by construction. When
    /// `start_seq == live_seq` there is nothing to replay (fresh group
    /// at the stream head). A v2 consumer decodes this as `Unknown` and
    /// log-ignores it.
    LogInfo {
        /// The consumer being answered.
        consumer_id: u64,
        /// First sequence number the log replay will send.
        start_seq: u64,
        /// Epoch of `start_seq` (cutover cursor for the interleave).
        start_epoch: u64,
        /// Index-in-epoch of `start_seq`.
        start_index: u64,
        /// First sequence number the *live* stream will deliver; the
        /// replay stops just before it.
        live_seq: u64,
        /// Oldest retained sequence number at reply time.
        retained_min: u64,
        /// Newest retained sequence number at reply time.
        retained_max: u64,
    },
    /// A data frame whose tag this build does not know. Produced only by
    /// [`DataMsg::decode`] for forward compatibility: a consumer
    /// receiving a frame from a newer producer logs-and-ignores it
    /// (counted as `consumer.data_unknown`) instead of wedging the
    /// stream. (Truncated frames are still rejected.)
    Unknown {
        /// The unrecognized tag byte.
        tag: u8,
    },
}

/// A wire-portable snapshot of a [`ts_metrics::Registry`]: every counter,
/// gauge and histogram, each list deterministically sorted by name.
///
/// Gauges travel as raw `f64` bit patterns (`gauge_bits`) so the message
/// stays byte-exact and `Eq`; [`StatsPayload::gauges`] decodes them back.
/// Histograms ship their sparse bucket lists, so the scraper can compute
/// any quantile (or merge shards) without the producer pre-aggregating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsPayload {
    /// The producer's [`STATS_VERSION`].
    pub version: u32,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values as `f64::to_bits`, sorted by name.
    pub gauge_bits: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, ts_metrics::HistogramSnapshot)>,
    /// Producer wall-clock uptime in nanoseconds at snapshot time (v3;
    /// `0` from older producers). Lets `ts-top` show "up 4m12s" and
    /// distinguishes a freshly restarted producer from a long-lived one.
    pub uptime_ns: u64,
    /// Monotonic snapshot timestamp in nanoseconds, on the producer's
    /// flight-recorder clock (v3; `0` from older producers). Two
    /// snapshots' counter deltas divided by their `snapshot_ns` delta
    /// give exact rates regardless of scrape jitter.
    pub snapshot_ns: u64,
    /// The stall watchdog's last verdict (v3; empty when no stall has
    /// been detected, and from older producers).
    pub verdict: String,
}

impl StatsPayload {
    /// Captures `metrics` into a wire-portable payload stamped with this
    /// build's [`STATS_VERSION`].
    pub fn from_registry(metrics: &ts_metrics::Registry) -> Self {
        let snap = metrics.snapshot();
        Self {
            version: STATS_VERSION,
            counters: snap.counters,
            gauge_bits: snap
                .gauges
                .into_iter()
                .map(|(k, v)| (k, v.to_bits()))
                .collect(),
            histograms: snap.histograms,
            // The v3 extras are runtime state, not registry state: the
            // producer's reply path fills them in before encoding.
            uptime_ns: 0,
            snapshot_ns: 0,
            verdict: String::new(),
        }
    }

    /// Gauge values decoded back to `f64`, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.gauge_bits
            .iter()
            .map(|(k, bits)| (k.clone(), f64::from_bits(*bits)))
            .collect()
    }

    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram snapshot by exact name.
    pub fn histogram(&self, name: &str) -> Option<&ts_metrics::HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

/// A wire-portable batch of flight-recorder records — the reply to a
/// [`CtrlMsg::TraceRequest`]: the most recently completed per-batch span
/// timelines, newest first, plus the producer's recorder clock so a
/// scraper can place them relative to "now".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TracePayload {
    /// The producer's [`TRACE_VERSION`].
    pub version: u32,
    /// The producer's flight-recorder clock ([`ts_metrics::TraceRing::now_ns`])
    /// at reply time; every span offset in `records` is on this clock.
    pub now_ns: u64,
    /// Completed batch records, newest first.
    pub records: Vec<ts_metrics::TraceRecordSnap>,
}

// ---------------------------------------------------------------------------
// codec helpers
// ---------------------------------------------------------------------------

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>> {
    if buf.len() < 4 {
        return Err(TsError::Wire("truncated length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.len() < len {
        return Err(TsError::Wire("truncated bytes".into()));
    }
    let out = buf[..len].to_vec();
    buf.advance(len);
    Ok(out)
}

fn put_payload(buf: &mut BytesMut, p: &TensorPayload) {
    put_bytes(buf, &p.encode());
}

fn get_payload(buf: &mut &[u8]) -> Result<TensorPayload> {
    let raw = get_bytes(buf)?;
    TensorPayload::decode(&raw).map_err(|e| TsError::Wire(format!("payload: {e}")))
}

fn put_payload_vec(buf: &mut BytesMut, v: &[TensorPayload]) {
    buf.put_u32_le(v.len() as u32);
    for p in v {
        put_payload(buf, p);
    }
}

fn get_payload_vec(buf: &mut &[u8]) -> Result<Vec<TensorPayload>> {
    if buf.len() < 4 {
        return Err(TsError::Wire("truncated vec length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if n > 1 << 20 {
        return Err(TsError::Wire("implausible vec length".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_payload(buf)?);
    }
    Ok(out)
}

fn need(buf: &[u8], n: usize) -> Result<()> {
    if buf.len() < n {
        return Err(TsError::Wire(format!("need {n} bytes, have {}", buf.len())));
    }
    Ok(())
}

fn put_streamed(buf: &mut BytesMut, t: &StreamedTensor) {
    buf.put_u8(t.dtype.tag());
    buf.put_u32_le(t.shape.len() as u32);
    for &d in &t.shape {
        buf.put_u64_le(d);
    }
    put_bytes(buf, &t.bytes);
}

fn get_streamed(buf: &mut &[u8]) -> Result<StreamedTensor> {
    need(buf, 5)?;
    let dtype = ts_tensor::DType::from_tag(buf.get_u8())
        .ok_or_else(|| TsError::Wire("bad streamed dtype tag".into()))?;
    let ndim = buf.get_u32_le() as usize;
    if ndim > 64 {
        return Err(TsError::Wire("implausible streamed rank".into()));
    }
    need(buf, ndim * 8)?;
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        shape.push(buf.get_u64_le());
    }
    let bytes = Bytes::from(get_bytes(buf)?);
    Ok(StreamedTensor {
        dtype,
        shape,
        bytes,
    })
}

// ---------------------------------------------------------------------------
// CtrlMsg codec
// ---------------------------------------------------------------------------

impl CtrlMsg {
    /// The consumer id carried by any control message (the one-shot reply
    /// token, for a [`CtrlMsg::Hello`] — not a real consumer id).
    pub fn consumer_id(&self) -> u64 {
        match self {
            CtrlMsg::Join { consumer_id, .. }
            | CtrlMsg::Ready { consumer_id }
            | CtrlMsg::Ack { consumer_id, .. }
            | CtrlMsg::Heartbeat { consumer_id }
            | CtrlMsg::Leave { consumer_id }
            | CtrlMsg::Replay { consumer_id, .. } => *consumer_id,
            CtrlMsg::Hello { token, .. }
            | CtrlMsg::StatsRequest { token, .. }
            | CtrlMsg::TraceRequest { token, .. } => *token,
            CtrlMsg::Unknown { .. } => 0,
        }
    }

    /// Encodes to a single frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(24);
        match self {
            CtrlMsg::Join {
                consumer_id,
                batch_size,
                mode,
            } => {
                buf.put_u8(0);
                buf.put_u64_le(*consumer_id);
                buf.put_u32_le(*batch_size);
                // v2 trailing byte; a v1 producer stops reading before it.
                buf.put_u8(mode.wire_code());
            }
            CtrlMsg::Ready { consumer_id } => {
                buf.put_u8(1);
                buf.put_u64_le(*consumer_id);
            }
            CtrlMsg::Ack { consumer_id, seq } => {
                buf.put_u8(2);
                buf.put_u64_le(*consumer_id);
                buf.put_u64_le(*seq);
            }
            CtrlMsg::Heartbeat { consumer_id } => {
                buf.put_u8(3);
                buf.put_u64_le(*consumer_id);
            }
            CtrlMsg::Leave { consumer_id } => {
                buf.put_u8(4);
                buf.put_u64_le(*consumer_id);
            }
            CtrlMsg::Hello {
                token,
                version,
                caps,
            } => {
                buf.put_u8(5);
                buf.put_u64_le(*token);
                buf.put_u32_le(*version);
                // v2 trailing field; a v1 producer stops reading before it.
                buf.put_u32_le(*caps);
            }
            CtrlMsg::StatsRequest {
                token,
                version,
                seq,
            } => {
                buf.put_u8(6);
                buf.put_u64_le(*token);
                buf.put_u32_le(*version);
                // v2 trailing stamp; a v1 producer stops reading before it.
                buf.put_u32_le(*seq);
            }
            CtrlMsg::TraceRequest {
                token,
                version,
                seq,
                max,
            } => {
                buf.put_u8(7);
                buf.put_u64_le(*token);
                buf.put_u32_le(*version);
                buf.put_u32_le(*seq);
                buf.put_u32_le(*max);
            }
            CtrlMsg::Replay {
                consumer_id,
                group,
                from,
            } => {
                buf.put_u8(8);
                buf.put_u64_le(*consumer_id);
                put_bytes(&mut buf, group.as_bytes());
                match from {
                    ReplayFrom::Cursor => buf.put_u8(0),
                    ReplayFrom::Oldest => buf.put_u8(1),
                    ReplayFrom::Seq(seq) => {
                        buf.put_u8(2);
                        buf.put_u64_le(*seq);
                    }
                }
            }
            CtrlMsg::Unknown { tag } => {
                // Only decode produces this variant; re-encoding keeps the
                // minimal well-formed shape (tag + zeroed u64).
                buf.put_u8(*tag);
                buf.put_u64_le(0);
            }
        }
        buf.freeze()
    }

    /// Decodes a frame.
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        need(buf, 9)?;
        let tag = buf.get_u8();
        let consumer_id = buf.get_u64_le();
        Ok(match tag {
            0 => {
                need(buf, 4)?;
                let batch_size = buf.get_u32_le();
                // v2 appends a payload-mode byte; a v1 Join ends here and
                // implies the v1 behaviour (shm pointer-passing).
                let mode = if buf.is_empty() {
                    PayloadMode::Shm
                } else {
                    let code = buf.get_u8();
                    PayloadMode::from_wire_code(code)
                        .ok_or_else(|| TsError::Wire(format!("bad payload mode {code}")))?
                };
                CtrlMsg::Join {
                    consumer_id,
                    batch_size,
                    mode,
                }
            }
            1 => CtrlMsg::Ready { consumer_id },
            2 => {
                need(buf, 8)?;
                CtrlMsg::Ack {
                    consumer_id,
                    seq: buf.get_u64_le(),
                }
            }
            3 => CtrlMsg::Heartbeat { consumer_id },
            4 => CtrlMsg::Leave { consumer_id },
            5 => {
                need(buf, 4)?;
                let version = buf.get_u32_le();
                // v2 appends a capability bitfield; a v1 Hello ends here
                // and declares nothing (v1 semantics).
                let caps = if buf.len() >= 4 { buf.get_u32_le() } else { 0 };
                CtrlMsg::Hello {
                    token: consumer_id,
                    version,
                    caps,
                }
            }
            6 => {
                need(buf, 4)?;
                let version = buf.get_u32_le();
                // v2 appends the per-attempt stamp; a v1 request ends here.
                let seq = if buf.len() >= 4 { buf.get_u32_le() } else { 0 };
                CtrlMsg::StatsRequest {
                    token: consumer_id,
                    version,
                    seq,
                }
            }
            7 => {
                need(buf, 12)?;
                CtrlMsg::TraceRequest {
                    token: consumer_id,
                    version: buf.get_u32_le(),
                    seq: buf.get_u32_le(),
                    max: buf.get_u32_le(),
                }
            }
            8 => {
                let group = String::from_utf8_lossy(&get_bytes(&mut buf)?).into_owned();
                need(buf, 1)?;
                let from = match buf.get_u8() {
                    0 => ReplayFrom::Cursor,
                    1 => ReplayFrom::Oldest,
                    2 => {
                        need(buf, 8)?;
                        ReplayFrom::Seq(buf.get_u64_le())
                    }
                    t => return Err(TsError::Wire(format!("bad replay-from tag {t}"))),
                };
                CtrlMsg::Replay {
                    consumer_id,
                    group,
                    from,
                }
            }
            // Forward compatibility: a well-formed frame (tag + at least
            // the u64 id every ctrl message starts with) whose tag we do
            // not know is surfaced as `Unknown`, never a hard error —
            // older producers must survive newer clients. Truncated
            // frames were already rejected by the `need(buf, 9)` above.
            t => CtrlMsg::Unknown { tag: t },
        })
    }
}

// ---------------------------------------------------------------------------
// DataMsg codec
// ---------------------------------------------------------------------------

impl DataMsg {
    /// Encodes to a single frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            DataMsg::EpochStart { epoch, num_batches } => {
                buf.put_u8(0);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*num_batches);
            }
            DataMsg::Batch(b) => {
                buf.put_u8(1);
                buf.put_u64_le(b.seq);
                buf.put_u64_le(b.epoch);
                buf.put_u64_le(b.index_in_epoch);
                buf.put_u8(b.last_in_epoch as u8);
                match &b.content {
                    AnnounceContent::Shared { fields, labels } => {
                        buf.put_u8(0);
                        put_payload_vec(&mut buf, fields);
                        put_payload(&mut buf, labels);
                    }
                    AnnounceContent::Flex { batches } => {
                        buf.put_u8(1);
                        buf.put_u32_le(batches.len() as u32);
                        for fb in batches {
                            buf.put_u32_le(fb.fields.len() as u32);
                            for segs in &fb.fields {
                                put_payload_vec(&mut buf, segs);
                            }
                            put_payload_vec(&mut buf, &fb.labels);
                        }
                    }
                    AnnounceContent::Streamed { fields, labels } => {
                        buf.put_u8(2);
                        buf.put_u32_le(fields.len() as u32);
                        for t in fields {
                            put_streamed(&mut buf, t);
                        }
                        put_streamed(&mut buf, labels);
                    }
                }
            }
            DataMsg::JoinReply {
                consumer_id,
                decision,
            } => {
                buf.put_u8(2);
                buf.put_u64_le(*consumer_id);
                match decision {
                    JoinDecision::AdmitReplay {
                        epoch,
                        replay_from,
                        num_batches,
                        start_seq,
                    } => {
                        buf.put_u8(0);
                        buf.put_u64_le(*epoch);
                        buf.put_u64_le(*replay_from);
                        buf.put_u64_le(*num_batches);
                        buf.put_u64_le(*start_seq);
                    }
                    JoinDecision::WaitEpoch { epoch } => {
                        buf.put_u8(1);
                        buf.put_u64_le(*epoch);
                    }
                    JoinDecision::Reject { reason } => {
                        buf.put_u8(2);
                        put_bytes(&mut buf, reason.as_bytes());
                    }
                }
            }
            DataMsg::Detached { consumer_id } => {
                buf.put_u8(3);
                buf.put_u64_le(*consumer_id);
            }
            DataMsg::End => {
                buf.put_u8(4);
            }
            DataMsg::Welcome { token, info } => {
                buf.put_u8(5);
                buf.put_u64_le(*token);
                buf.put_u32_le(info.version);
                buf.put_u32_le(info.shards);
                buf.put_u32_le(info.batch_size);
                buf.put_u32_le(info.flex_producer_batch);
                buf.put_u8(info.staging);
                match &info.arena {
                    None => buf.put_u8(0),
                    Some(ad) => {
                        buf.put_u8(1);
                        put_bytes(&mut buf, ad.path.as_bytes());
                        buf.put_u64_le(ad.nslots);
                        buf.put_u64_le(ad.slot_size);
                    }
                }
                // v2 tail, gated on the *encoded* version so a v2
                // producer answering a v1 Hello emits a byte-identical
                // v1 WELCOME.
                if info.version >= 2 {
                    buf.put_u32_le(info.endpoint_overrides.len() as u32);
                    for (shard, uri) in &info.endpoint_overrides {
                        buf.put_u32_le(*shard);
                        put_bytes(&mut buf, uri.as_bytes());
                    }
                    buf.put_u32_le(info.payload_modes);
                }
                // v3 tail (durable-log advertisement), same gating: a v3
                // producer answering a v2 Hello emits a byte-identical
                // v2 WELCOME.
                if info.version >= 3 {
                    match &info.log {
                        None => buf.put_u8(0),
                        Some(ad) => {
                            buf.put_u8(1);
                            buf.put_u64_le(ad.retained_min);
                            buf.put_u64_le(ad.retained_max);
                        }
                    }
                }
            }
            DataMsg::Stats {
                token,
                seq,
                payload,
            } => {
                buf.put_u8(6);
                buf.put_u64_le(*token);
                buf.put_u32_le(payload.version);
                // v2 stamp echo, gated on the *encoded* version so a reply
                // to a v1 scraper stays byte-identical to a v1 reply.
                if payload.version >= 2 {
                    buf.put_u32_le(*seq);
                }
                buf.put_u32_le(payload.counters.len() as u32);
                for (name, v) in &payload.counters {
                    put_bytes(&mut buf, name.as_bytes());
                    buf.put_u64_le(*v);
                }
                buf.put_u32_le(payload.gauge_bits.len() as u32);
                for (name, bits) in &payload.gauge_bits {
                    put_bytes(&mut buf, name.as_bytes());
                    buf.put_u64_le(*bits);
                }
                buf.put_u32_le(payload.histograms.len() as u32);
                for (name, h) in &payload.histograms {
                    put_bytes(&mut buf, name.as_bytes());
                    buf.put_u64_le(h.count);
                    buf.put_u64_le(h.sum);
                    buf.put_u64_le(h.max);
                    buf.put_u32_le(h.buckets.len() as u32);
                    for &(idx, c) in &h.buckets {
                        buf.put_u32_le(idx);
                        buf.put_u64_le(c);
                    }
                }
                // v3 tail (uptime + snapshot stamp + watchdog verdict),
                // gated on the *encoded* version so a v2 payload stays
                // byte-identical to a v2 build's encoding.
                if payload.version >= 3 {
                    buf.put_u64_le(payload.uptime_ns);
                    buf.put_u64_le(payload.snapshot_ns);
                    put_bytes(&mut buf, payload.verdict.as_bytes());
                }
            }
            DataMsg::Cursor {
                shard,
                epoch,
                seq,
                index_in_epoch,
            } => {
                buf.put_u8(7);
                buf.put_u32_le(*shard);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*seq);
                buf.put_u64_le(*index_in_epoch);
            }
            DataMsg::Trace {
                token,
                seq,
                payload,
            } => {
                buf.put_u8(8);
                buf.put_u64_le(*token);
                buf.put_u32_le(payload.version);
                buf.put_u32_le(*seq);
                buf.put_u64_le(payload.now_ns);
                buf.put_u32_le(payload.records.len() as u32);
                for r in &payload.records {
                    buf.put_u64_le(r.epoch);
                    buf.put_u32_le(r.shard);
                    buf.put_u64_le(r.seq);
                    buf.put_u8(r.complete as u8);
                    buf.put_u8(r.spans.len() as u8);
                    for &(kind, start, end) in &r.spans {
                        buf.put_u8(kind);
                        buf.put_u64_le(start);
                        buf.put_u64_le(end);
                    }
                }
            }
            DataMsg::LogInfo {
                consumer_id,
                start_seq,
                start_epoch,
                start_index,
                live_seq,
                retained_min,
                retained_max,
            } => {
                buf.put_u8(9);
                buf.put_u64_le(*consumer_id);
                buf.put_u64_le(*start_seq);
                buf.put_u64_le(*start_epoch);
                buf.put_u64_le(*start_index);
                buf.put_u64_le(*live_seq);
                buf.put_u64_le(*retained_min);
                buf.put_u64_le(*retained_max);
            }
            DataMsg::Unknown { tag } => {
                // Only decode produces this variant; re-encoding keeps the
                // minimal well-formed shape (tag + zeroed u64).
                buf.put_u8(*tag);
                buf.put_u64_le(0);
            }
        }
        buf.freeze()
    }

    /// Decodes a frame.
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            0 => {
                need(buf, 16)?;
                DataMsg::EpochStart {
                    epoch: buf.get_u64_le(),
                    num_batches: buf.get_u64_le(),
                }
            }
            1 => {
                need(buf, 26)?;
                let seq = buf.get_u64_le();
                let epoch = buf.get_u64_le();
                let index_in_epoch = buf.get_u64_le();
                let last_in_epoch = buf.get_u8() != 0;
                let kind = buf.get_u8();
                let content = match kind {
                    0 => {
                        let fields = get_payload_vec(&mut buf)?;
                        let labels = get_payload(&mut buf)?;
                        AnnounceContent::Shared { fields, labels }
                    }
                    1 => {
                        need(buf, 4)?;
                        let n = buf.get_u32_le() as usize;
                        if n > 1 << 20 {
                            return Err(TsError::Wire("implausible flex batch count".into()));
                        }
                        let mut batches = Vec::with_capacity(n);
                        for _ in 0..n {
                            need(buf, 4)?;
                            let nf = buf.get_u32_le() as usize;
                            if nf > 1 << 16 {
                                return Err(TsError::Wire("implausible field count".into()));
                            }
                            let mut fields = Vec::with_capacity(nf);
                            for _ in 0..nf {
                                fields.push(get_payload_vec(&mut buf)?);
                            }
                            let labels = get_payload_vec(&mut buf)?;
                            batches.push(FlexBatchPayload { fields, labels });
                        }
                        AnnounceContent::Flex { batches }
                    }
                    2 => {
                        need(buf, 4)?;
                        let nf = buf.get_u32_le() as usize;
                        if nf > 1 << 16 {
                            return Err(TsError::Wire("implausible streamed field count".into()));
                        }
                        let mut fields = Vec::with_capacity(nf);
                        for _ in 0..nf {
                            fields.push(get_streamed(&mut buf)?);
                        }
                        let labels = get_streamed(&mut buf)?;
                        AnnounceContent::Streamed { fields, labels }
                    }
                    k => return Err(TsError::Wire(format!("bad content kind {k}"))),
                };
                DataMsg::Batch(BatchAnnounce {
                    seq,
                    epoch,
                    index_in_epoch,
                    last_in_epoch,
                    content,
                })
            }
            2 => {
                need(buf, 9)?;
                let consumer_id = buf.get_u64_le();
                let dtag = buf.get_u8();
                let decision = match dtag {
                    0 => {
                        need(buf, 32)?;
                        JoinDecision::AdmitReplay {
                            epoch: buf.get_u64_le(),
                            replay_from: buf.get_u64_le(),
                            num_batches: buf.get_u64_le(),
                            start_seq: buf.get_u64_le(),
                        }
                    }
                    1 => {
                        need(buf, 8)?;
                        JoinDecision::WaitEpoch {
                            epoch: buf.get_u64_le(),
                        }
                    }
                    2 => JoinDecision::Reject {
                        reason: String::from_utf8_lossy(&get_bytes(&mut buf)?).into_owned(),
                    },
                    t => return Err(TsError::Wire(format!("bad decision tag {t}"))),
                };
                DataMsg::JoinReply {
                    consumer_id,
                    decision,
                }
            }
            3 => {
                need(buf, 8)?;
                DataMsg::Detached {
                    consumer_id: buf.get_u64_le(),
                }
            }
            4 => DataMsg::End,
            5 => {
                // Fixed prefix: token (8) + four u32s (16) + staging (1)
                // + arena flag (1).
                need(buf, 26)?;
                let token = buf.get_u64_le();
                let version = buf.get_u32_le();
                let shards = buf.get_u32_le();
                let batch_size = buf.get_u32_le();
                let flex_producer_batch = buf.get_u32_le();
                let staging = buf.get_u8();
                let arena = match buf.get_u8() {
                    0 => None,
                    1 => {
                        let path = String::from_utf8_lossy(&get_bytes(&mut buf)?).into_owned();
                        need(buf, 16)?;
                        Some(ArenaAd {
                            path,
                            nslots: buf.get_u64_le(),
                            slot_size: buf.get_u64_le(),
                        })
                    }
                    f => return Err(TsError::Wire(format!("bad arena flag {f}"))),
                };
                // The v2 tail is *required* when the version field says 2+
                // (truncation anywhere stays an error); a v1 WELCOME ends
                // at the arena section and implies shm-only semantics.
                let (endpoint_overrides, payload_modes) = if version >= 2 {
                    need(buf, 4)?;
                    let n = buf.get_u32_le() as usize;
                    if n > 1 << 16 {
                        return Err(TsError::Wire("implausible override count".into()));
                    }
                    let mut overrides = Vec::with_capacity(n);
                    for _ in 0..n {
                        need(buf, 4)?;
                        let shard = buf.get_u32_le();
                        let uri = String::from_utf8_lossy(&get_bytes(&mut buf)?).into_owned();
                        overrides.push((shard, uri));
                    }
                    need(buf, 4)?;
                    (overrides, buf.get_u32_le())
                } else {
                    (Vec::new(), caps::SHM)
                };
                // The v3 tail is likewise *required* when the version
                // field says 3+; v1/v2 WELCOMEs end above and imply "no
                // durable log".
                let log = if version >= 3 {
                    need(buf, 1)?;
                    match buf.get_u8() {
                        0 => None,
                        1 => {
                            need(buf, 16)?;
                            Some(LogAd {
                                retained_min: buf.get_u64_le(),
                                retained_max: buf.get_u64_le(),
                            })
                        }
                        f => return Err(TsError::Wire(format!("bad log flag {f}"))),
                    }
                } else {
                    None
                };
                DataMsg::Welcome {
                    token,
                    info: WelcomeInfo {
                        version,
                        shards,
                        batch_size,
                        flex_producer_batch,
                        staging,
                        arena,
                        endpoint_overrides,
                        payload_modes,
                        log,
                    },
                }
            }
            6 => {
                // Fixed prefix: token (8) + version (4).
                need(buf, 12)?;
                let token = buf.get_u64_le();
                let version = buf.get_u32_le();
                // The v2 stamp is *required* when the version field says
                // 2+ (truncation anywhere stays an error); a v1 reply ends
                // its prefix here and carries stamp 0.
                let seq = if version >= 2 {
                    need(buf, 4)?;
                    buf.get_u32_le()
                } else {
                    0
                };
                let get_len = |buf: &mut &[u8]| -> Result<usize> {
                    need(buf, 4)?;
                    let n = buf.get_u32_le() as usize;
                    if n > 1 << 20 {
                        return Err(TsError::Wire("implausible stats section length".into()));
                    }
                    Ok(n)
                };
                let get_name = |buf: &mut &[u8]| -> Result<String> {
                    Ok(String::from_utf8_lossy(&get_bytes(buf)?).into_owned())
                };
                let n = get_len(&mut buf)?;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_name(&mut buf)?;
                    need(buf, 8)?;
                    counters.push((name, buf.get_u64_le()));
                }
                let n = get_len(&mut buf)?;
                let mut gauge_bits = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_name(&mut buf)?;
                    need(buf, 8)?;
                    gauge_bits.push((name, buf.get_u64_le()));
                }
                let n = get_len(&mut buf)?;
                let mut histograms = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_name(&mut buf)?;
                    need(buf, 24)?;
                    let count = buf.get_u64_le();
                    let sum = buf.get_u64_le();
                    let max = buf.get_u64_le();
                    let nb = get_len(&mut buf)?;
                    let mut buckets = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        need(buf, 12)?;
                        let idx = buf.get_u32_le();
                        buckets.push((idx, buf.get_u64_le()));
                    }
                    histograms.push((
                        name,
                        ts_metrics::HistogramSnapshot {
                            count,
                            sum,
                            max,
                            buckets,
                        },
                    ));
                }
                // The v3 tail is *required* when the version field says
                // 3+ (truncation anywhere stays an error); older frames
                // end at the histogram section and carry zeroed extras.
                let (uptime_ns, snapshot_ns, verdict) = if version >= 3 {
                    need(buf, 16)?;
                    let uptime = buf.get_u64_le();
                    let stamp = buf.get_u64_le();
                    let verdict = String::from_utf8_lossy(&get_bytes(&mut buf)?).into_owned();
                    (uptime, stamp, verdict)
                } else {
                    (0, 0, String::new())
                };
                DataMsg::Stats {
                    token,
                    seq,
                    payload: StatsPayload {
                        version,
                        counters,
                        gauge_bits,
                        histograms,
                        uptime_ns,
                        snapshot_ns,
                        verdict,
                    },
                }
            }
            7 => {
                need(buf, 28)?;
                DataMsg::Cursor {
                    shard: buf.get_u32_le(),
                    epoch: buf.get_u64_le(),
                    seq: buf.get_u64_le(),
                    index_in_epoch: buf.get_u64_le(),
                }
            }
            8 => {
                // Fixed prefix: token (8) + version (4) + seq (4) +
                // now_ns (8) + record count (4).
                need(buf, 28)?;
                let token = buf.get_u64_le();
                let version = buf.get_u32_le();
                let seq = buf.get_u32_le();
                let now_ns = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if n > 1 << 16 {
                    return Err(TsError::Wire("implausible trace record count".into()));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    need(buf, 22)?;
                    let epoch = buf.get_u64_le();
                    let shard = buf.get_u32_le();
                    let rec_seq = buf.get_u64_le();
                    let complete = buf.get_u8() != 0;
                    let nspans = buf.get_u8() as usize;
                    if nspans > 64 {
                        return Err(TsError::Wire("implausible trace span count".into()));
                    }
                    need(buf, nspans * 17)?;
                    let mut spans = Vec::with_capacity(nspans);
                    for _ in 0..nspans {
                        let kind = buf.get_u8();
                        let start = buf.get_u64_le();
                        spans.push((kind, start, buf.get_u64_le()));
                    }
                    records.push(ts_metrics::TraceRecordSnap {
                        epoch,
                        shard,
                        seq: rec_seq,
                        complete,
                        spans,
                    });
                }
                DataMsg::Trace {
                    token,
                    seq,
                    payload: TracePayload {
                        version,
                        now_ns,
                        records,
                    },
                }
            }
            9 => {
                need(buf, 56)?;
                DataMsg::LogInfo {
                    consumer_id: buf.get_u64_le(),
                    start_seq: buf.get_u64_le(),
                    start_epoch: buf.get_u64_le(),
                    start_index: buf.get_u64_le(),
                    live_seq: buf.get_u64_le(),
                    retained_min: buf.get_u64_le(),
                    retained_max: buf.get_u64_le(),
                }
            }
            // Forward compatibility: a well-formed frame (tag + at least
            // 8 more bytes, the minimum any real data message carries)
            // whose tag we do not know is surfaced as `Unknown`, never a
            // hard error — an older consumer must survive a newer
            // producer adding topics. Truncated frames are still rejected.
            t => {
                need(buf, 8)?;
                DataMsg::Unknown { tag: t }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_device::DeviceId;
    use ts_tensor::{DType, Tensor};

    fn payload(shape: &[usize]) -> TensorPayload {
        TensorPayload::pack(&Tensor::zeros(shape, DType::U8, DeviceId::Gpu(0)))
    }

    #[test]
    fn ctrl_round_trips() {
        let msgs = [
            CtrlMsg::Join {
                consumer_id: 7,
                batch_size: 128,
                mode: PayloadMode::Shm,
            },
            CtrlMsg::Join {
                consumer_id: 7,
                batch_size: 128,
                mode: PayloadMode::Stream,
            },
            CtrlMsg::Ready { consumer_id: 7 },
            CtrlMsg::Ack {
                consumer_id: 7,
                seq: 42,
            },
            CtrlMsg::Heartbeat { consumer_id: 7 },
            CtrlMsg::Leave { consumer_id: 7 },
            CtrlMsg::Hello {
                token: 7,
                version: HANDSHAKE_VERSION,
                caps: caps::KNOWN,
            },
            CtrlMsg::StatsRequest {
                token: 7,
                version: STATS_VERSION,
                seq: 3,
            },
            CtrlMsg::TraceRequest {
                token: 7,
                version: TRACE_VERSION,
                seq: 5,
                max: 64,
            },
            CtrlMsg::Replay {
                consumer_id: 7,
                group: "hp-trial-3".to_string(),
                from: ReplayFrom::Cursor,
            },
            CtrlMsg::Replay {
                consumer_id: 7,
                group: String::new(),
                from: ReplayFrom::Oldest,
            },
            CtrlMsg::Replay {
                consumer_id: 7,
                group: "trial/юникод".to_string(),
                from: ReplayFrom::Seq(123_456),
            },
        ];
        for m in msgs {
            assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
            assert_eq!(m.consumer_id(), 7);
        }
    }

    #[test]
    fn replay_rejects_truncation_and_bad_from_tags() {
        let m = CtrlMsg::Replay {
            consumer_id: 9,
            group: "grp".to_string(),
            from: ReplayFrom::Seq(77),
        };
        let good = m.encode();
        for cut in 1..good.len() {
            assert!(
                CtrlMsg::decode(&good[..good.len() - cut]).is_err(),
                "replay truncated by {cut} must be rejected"
            );
        }
        // An unknown replay-from tag is rejected, not misread.
        let mut bad = good[..good.len() - 9].to_vec();
        bad.push(9);
        assert!(CtrlMsg::decode(&bad).is_err());
    }

    #[test]
    fn v1_ctrl_frames_decode_with_v1_defaults_on_a_v2_build() {
        // Hand-encoded v1 frames: no capability field, no mode byte.
        let mut hello = vec![5u8];
        hello.extend_from_slice(&7u64.to_le_bytes());
        hello.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            CtrlMsg::decode(&hello).unwrap(),
            CtrlMsg::Hello {
                token: 7,
                version: 1,
                caps: 0,
            },
            "a v1 Hello declares no capabilities"
        );
        let mut join = vec![0u8];
        join.extend_from_slice(&9u64.to_le_bytes());
        join.extend_from_slice(&128u32.to_le_bytes());
        assert_eq!(
            CtrlMsg::decode(&join).unwrap(),
            CtrlMsg::Join {
                consumer_id: 9,
                batch_size: 128,
                mode: PayloadMode::Shm,
            },
            "a v1 Join implies shm pointer-passing"
        );
        // An unknown payload-mode byte is rejected, not misread.
        join.push(9);
        assert!(CtrlMsg::decode(&join).is_err());
    }

    #[test]
    fn v2_ctrl_extensions_ride_in_trailing_bytes_a_v1_decoder_never_reads() {
        // The v1 decoder read exactly 13 bytes of a Hello/Join; the v2
        // encoding must be byte-identical up to there so a v1 producer
        // parses a v2 frame as its v1 projection.
        let hello = CtrlMsg::Hello {
            token: 7,
            version: HANDSHAKE_VERSION,
            caps: caps::KNOWN,
        }
        .encode();
        let mut v1_prefix = vec![5u8];
        v1_prefix.extend_from_slice(&7u64.to_le_bytes());
        v1_prefix.extend_from_slice(&HANDSHAKE_VERSION.to_le_bytes());
        assert_eq!(&hello[..13], &v1_prefix[..]);
        let join = CtrlMsg::Join {
            consumer_id: 9,
            batch_size: 64,
            mode: PayloadMode::Stream,
        }
        .encode();
        let mut v1_prefix = vec![0u8];
        v1_prefix.extend_from_slice(&9u64.to_le_bytes());
        v1_prefix.extend_from_slice(&64u32.to_le_bytes());
        assert_eq!(&join[..13], &v1_prefix[..]);
    }

    #[test]
    fn unknown_ctrl_tags_decode_as_unknown_not_error() {
        // Forward compatibility: any well-formed frame with a tag from
        // the future decodes as `Unknown` so an older producer can
        // log-and-ignore it instead of failing.
        for tag in [9u8, 99, 250, 255] {
            let mut frame = vec![tag];
            frame.extend_from_slice(&1234u64.to_le_bytes());
            frame.extend_from_slice(&[0xAB; 7]); // trailing future payload
            let m = CtrlMsg::decode(&frame).unwrap();
            assert_eq!(m, CtrlMsg::Unknown { tag });
            assert_eq!(m.consumer_id(), 0);
            // Re-encoding keeps a decodable well-formed shape.
            assert_eq!(CtrlMsg::decode(&m.encode()).unwrap(), m);
        }
        // Truncated unknown-tag frames are still rejected.
        assert!(CtrlMsg::decode(&[99, 0, 0, 0]).is_err());
    }

    #[test]
    fn welcome_round_trips_with_and_without_arena() {
        let bare = DataMsg::Welcome {
            token: 99,
            info: WelcomeInfo {
                version: HANDSHAKE_VERSION,
                shards: 1,
                batch_size: 32,
                flex_producer_batch: 0,
                staging: 2,
                arena: None,
                endpoint_overrides: Vec::new(),
                payload_modes: caps::SHM | caps::STREAM,
                log: None,
            },
        };
        let with_arena = DataMsg::Welcome {
            token: 1,
            info: WelcomeInfo {
                version: HANDSHAKE_VERSION,
                shards: 4,
                batch_size: 128,
                flex_producer_batch: 256,
                staging: 0,
                arena: Some(ArenaAd {
                    path: "/dev/shm/ts.arena".into(),
                    nslots: 64,
                    slot_size: 1 << 20,
                }),
                endpoint_overrides: vec![
                    (1, "tcp://10.0.0.2:9000".to_string()),
                    (3, "tcp://10.0.0.3:9000".to_string()),
                ],
                payload_modes: caps::SHM,
                log: Some(LogAd {
                    retained_min: 128,
                    retained_max: 511,
                }),
            },
        };
        // A welcome truncated at ANY byte is rejected with a wire error,
        // never misparsed and never a panic — both shapes, every length
        // (the v2 tail included: a version-2 welcome without its
        // override table or mode mask is truncated, not "a v1 welcome").
        for m in [bare, with_arena] {
            let good = m.encode();
            assert_eq!(DataMsg::decode(&good).unwrap(), m, "{m:?}");
            for cut in 1..good.len() {
                assert!(
                    DataMsg::decode(&good[..good.len() - cut]).is_err(),
                    "{m:?} truncated by {cut} must be rejected"
                );
            }
        }
    }

    #[test]
    fn v2_producer_answers_v1_hello_with_a_byte_identical_v1_welcome() {
        // Encoding a WelcomeInfo whose version field says 1 must produce
        // exactly the v1 byte stream — no v2 tail — so a v1 consumer's
        // decoder parses it to the last byte.
        let v1_reply = DataMsg::Welcome {
            token: 42,
            info: WelcomeInfo {
                version: 1,
                shards: 2,
                batch_size: 32,
                flex_producer_batch: 0,
                staging: 2,
                arena: None,
                endpoint_overrides: Vec::new(),
                payload_modes: caps::SHM,
                log: None,
            },
        };
        let wire = v1_reply.encode();
        let mut expected = vec![5u8];
        expected.extend_from_slice(&42u64.to_le_bytes());
        expected.extend_from_slice(&1u32.to_le_bytes());
        expected.extend_from_slice(&2u32.to_le_bytes());
        expected.extend_from_slice(&32u32.to_le_bytes());
        expected.extend_from_slice(&0u32.to_le_bytes());
        expected.push(2); // staging
        expected.push(0); // no arena
        assert_eq!(&wire[..], &expected[..], "v1 WELCOME must be bit-exact");
        // And the v2 build decodes a v1 WELCOME back with the v1-implied
        // semantics: no overrides, shm-only payload modes.
        let decoded = DataMsg::decode(&wire).unwrap();
        assert_eq!(decoded, v1_reply);
    }

    #[test]
    fn v3_producer_answers_v2_hello_with_a_byte_identical_v2_welcome() {
        // Encoding a WelcomeInfo whose version field says 2 must stop at
        // the v2 tail — no log section — so a v2 consumer's decoder
        // parses it to the last byte. (The log ad is dropped with the
        // tail: a v2 consumer could not use it anyway.)
        let v2_reply = DataMsg::Welcome {
            token: 42,
            info: WelcomeInfo {
                version: 2,
                shards: 2,
                batch_size: 32,
                flex_producer_batch: 0,
                staging: 2,
                arena: None,
                endpoint_overrides: vec![(1, "tcp://10.0.0.2:9000".to_string())],
                payload_modes: caps::SHM | caps::STREAM,
                log: None,
            },
        };
        let wire = v2_reply.encode();
        let mut expected = vec![5u8];
        expected.extend_from_slice(&42u64.to_le_bytes());
        expected.extend_from_slice(&2u32.to_le_bytes());
        expected.extend_from_slice(&2u32.to_le_bytes());
        expected.extend_from_slice(&32u32.to_le_bytes());
        expected.extend_from_slice(&0u32.to_le_bytes());
        expected.push(2); // staging
        expected.push(0); // no arena
        expected.extend_from_slice(&1u32.to_le_bytes()); // one override
        expected.extend_from_slice(&1u32.to_le_bytes());
        let uri = b"tcp://10.0.0.2:9000";
        expected.extend_from_slice(&(uri.len() as u32).to_le_bytes());
        expected.extend_from_slice(uri);
        expected.extend_from_slice(&(caps::SHM | caps::STREAM).to_le_bytes());
        assert_eq!(&wire[..], &expected[..], "v2 WELCOME must be bit-exact");
        // The v3 build decodes a v2 WELCOME back with "no durable log".
        assert_eq!(DataMsg::decode(&wire).unwrap(), v2_reply);
        // And a frame *claiming* v3 without the log section is truncated,
        // not "a v2 welcome".
        let mut claims_v3 = wire.to_vec();
        claims_v3[9..13].copy_from_slice(&3u32.to_le_bytes());
        assert!(DataMsg::decode(&claims_v3).is_err());
    }

    #[test]
    fn log_info_round_trips_and_rejects_any_truncation() {
        let m = DataMsg::LogInfo {
            consumer_id: 7,
            start_seq: 100,
            start_epoch: 2,
            start_index: 10,
            live_seq: 145,
            retained_min: 64,
            retained_max: 144,
        };
        let good = m.encode();
        assert_eq!(DataMsg::decode(&good).unwrap(), m);
        for cut in 1..good.len() {
            assert!(
                DataMsg::decode(&good[..good.len() - cut]).is_err(),
                "log info truncated by {cut} must be rejected"
            );
        }
    }

    #[test]
    fn streamed_announce_round_trips_and_rebuilds_the_tensor() {
        let batch = Tensor::rand_u8(&[4, 3, 8, 8], DeviceId::Cpu, 11);
        let labels = Tensor::zeros(&[4], DType::I64, DeviceId::Cpu);
        let m = DataMsg::Batch(BatchAnnounce {
            seq: 7,
            epoch: 1,
            index_in_epoch: 7,
            last_in_epoch: false,
            content: AnnounceContent::Streamed {
                fields: vec![StreamedTensor::from_tensor(&batch)],
                labels: StreamedTensor::from_tensor(&labels),
            },
        });
        let wire = m.encode();
        let decoded = DataMsg::decode(&wire).unwrap();
        assert_eq!(decoded, m);
        // The rebuilt tensor is byte-identical to the source.
        let DataMsg::Batch(BatchAnnounce {
            content: AnnounceContent::Streamed { fields, .. },
            ..
        }) = decoded
        else {
            panic!("wrong shape");
        };
        let rebuilt = fields[0].to_tensor(DeviceId::Cpu).unwrap();
        assert_eq!(rebuilt.shape(), batch.shape());
        assert!(rebuilt.data_eq(&batch));
        // Truncation at ANY byte is rejected.
        for cut in 1..wire.len() {
            assert!(DataMsg::decode(&wire[..wire.len() - cut]).is_err());
        }
        // Unlike the shm announce, the streamed frame scales with the
        // batch — that is the negotiated trade for crossing hosts.
        assert!(wire.len() > batch.view_bytes());
    }

    #[test]
    fn data_msgs_round_trip() {
        let msgs = [
            DataMsg::EpochStart {
                epoch: 3,
                num_batches: 1000,
            },
            DataMsg::Batch(BatchAnnounce {
                seq: 99,
                epoch: 3,
                index_in_epoch: 9,
                last_in_epoch: true,
                content: AnnounceContent::Shared {
                    fields: vec![payload(&[128, 3, 224, 224]), payload(&[128, 77])],
                    labels: payload(&[128]),
                },
            }),
            DataMsg::JoinReply {
                consumer_id: 5,
                decision: JoinDecision::AdmitReplay {
                    epoch: 0,
                    replay_from: 0,
                    num_batches: 100,
                    start_seq: 300,
                },
            },
            DataMsg::JoinReply {
                consumer_id: 5,
                decision: JoinDecision::WaitEpoch { epoch: 1 },
            },
            DataMsg::JoinReply {
                consumer_id: 5,
                decision: JoinDecision::Reject {
                    reason: "batch size mismatch".to_string(),
                },
            },
            DataMsg::Detached { consumer_id: 5 },
            DataMsg::End,
        ];
        for m in msgs {
            assert_eq!(DataMsg::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn flex_announce_round_trips() {
        let m = DataMsg::Batch(BatchAnnounce {
            seq: 1,
            epoch: 0,
            index_in_epoch: 1,
            last_in_epoch: false,
            content: AnnounceContent::Flex {
                batches: vec![
                    FlexBatchPayload {
                        fields: vec![vec![payload(&[7, 3, 8, 8])], vec![payload(&[7, 77])]],
                        labels: vec![payload(&[7])],
                    },
                    FlexBatchPayload {
                        fields: vec![
                            vec![payload(&[2, 3, 8, 8]), payload(&[5, 3, 8, 8])],
                            vec![payload(&[2, 77]), payload(&[5, 77])],
                        ],
                        labels: vec![payload(&[2]), payload(&[5])],
                    },
                ],
            },
        });
        assert_eq!(DataMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn announce_size_is_independent_of_batch_size() {
        let small = DataMsg::Batch(BatchAnnounce {
            seq: 0,
            epoch: 0,
            index_in_epoch: 0,
            last_in_epoch: false,
            content: AnnounceContent::Shared {
                fields: vec![payload(&[2, 3, 8, 8])],
                labels: payload(&[2]),
            },
        });
        let huge = DataMsg::Batch(BatchAnnounce {
            seq: 0,
            epoch: 0,
            index_in_epoch: 0,
            last_in_epoch: false,
            content: AnnounceContent::Shared {
                fields: vec![payload(&[512, 3, 224, 224])],
                labels: payload(&[512]),
            },
        });
        assert_eq!(small.encode().len(), huge.encode().len());
        assert!(huge.encode().len() < 256);
    }

    #[test]
    fn truncated_and_garbage_frames_rejected() {
        assert!(CtrlMsg::decode(&[]).is_err());
        assert!(CtrlMsg::decode(&[0, 1, 2]).is_err());
        // A well-formed frame with an unknown tag is NOT an error on
        // either channel (see the two `unknown_*` tests) — but truncated
        // frames always are, whatever the tag.
        assert!(DataMsg::decode(&[]).is_err());
        assert!(DataMsg::decode(&[77]).is_err());
        assert!(DataMsg::decode(&[99, 0, 0, 0]).is_err());
        let good = DataMsg::EpochStart {
            epoch: 0,
            num_batches: 1,
        }
        .encode();
        assert!(DataMsg::decode(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn unknown_data_tags_decode_as_unknown_not_error() {
        // Forward compatibility on the data path, the mirror of the ctrl
        // side: a v3 producer adding topics must not wedge a v2 consumer.
        for tag in [99u8, 250, 255] {
            let mut frame = vec![tag];
            frame.extend_from_slice(&1234u64.to_le_bytes());
            frame.extend_from_slice(&[0xAB; 5]); // trailing future payload
            let m = DataMsg::decode(&frame).unwrap();
            assert_eq!(m, DataMsg::Unknown { tag });
            // Re-encoding keeps a decodable well-formed shape.
            assert_eq!(DataMsg::decode(&m.encode()).unwrap(), m);
        }
        // Truncated unknown-tag frames are still rejected.
        assert!(DataMsg::decode(&[99, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn topics_are_prefix_disjoint() {
        assert!(!topics::consumer(1).starts_with(topics::BATCH));
        assert!(!topics::BATCH.starts_with(b"cons"));
        assert_eq!(topics::consumer(42), b"cons/42".to_vec());
        assert_eq!(topics::hello(42), b"hs/42".to_vec());
        assert!(!topics::hello(1).starts_with(topics::BATCH));
        assert!(!topics::hello(1).starts_with(topics::CTRL));
        assert!(!topics::hello(1).starts_with(b"cons"));
        assert_eq!(topics::stats(42), b"st/42".to_vec());
        assert!(!topics::stats(1).starts_with(topics::BATCH));
        assert!(!topics::stats(1).starts_with(topics::CTRL));
        assert!(!topics::stats(1).starts_with(b"cons"));
        assert!(!topics::stats(1).starts_with(b"hs"));
        assert!(!topics::hello(1).starts_with(b"st"));
        // The cursor topic must not capture (or be captured by) anything.
        assert!(!topics::CURSOR.starts_with(topics::BATCH));
        assert!(!topics::CURSOR.starts_with(topics::CTRL));
        assert!(!topics::consumer(1).starts_with(topics::CURSOR));
        assert!(!topics::CTRL.starts_with(topics::CURSOR));
        assert!(!topics::hello(1).starts_with(topics::CURSOR));
        assert!(!topics::stats(1).starts_with(topics::CURSOR));
        // The trace topic is its own prefix island too.
        assert_eq!(topics::trace(42), b"tr/42".to_vec());
        assert!(!topics::trace(1).starts_with(topics::BATCH));
        assert!(!topics::trace(1).starts_with(topics::CTRL));
        assert!(!topics::trace(1).starts_with(topics::CURSOR));
        assert!(!topics::trace(1).starts_with(b"cons"));
        assert!(!topics::trace(1).starts_with(b"hs"));
        assert!(!topics::trace(1).starts_with(b"st"));
        assert!(!topics::stats(1).starts_with(b"tr"));
        assert!(!topics::hello(1).starts_with(b"tr"));
    }

    #[test]
    fn stats_round_trips_and_rejects_any_truncation() {
        use ts_metrics::Registry;

        let empty = DataMsg::Stats {
            token: 3,
            seq: 0,
            payload: StatsPayload {
                version: STATS_VERSION,
                counters: vec![],
                gauge_bits: vec![],
                histograms: vec![],
                uptime_ns: 0,
                snapshot_ns: 0,
                verdict: String::new(),
            },
        };

        // A populated payload captured from a real registry, including
        // negative/fractional gauges and multi-bucket histograms.
        let r = Registry::new();
        r.counter("producer.batches").add(128);
        r.counter("consumer.acks").add(127);
        r.gauge("staging.s0.copy_queue_depth").set(2.5);
        r.gauge("stage.pin_depth").set(-1.0);
        for v in [100u64, 5_000, 5_100, 2_000_000, u64::MAX / 2] {
            r.histogram("stage.s0.feeder_fetch_ns").record(v);
        }
        r.histogram("consumer.wait_ns").record(42);
        let mut payload = StatsPayload::from_registry(&r);
        // Exercise the v3 tail with every field populated.
        payload.uptime_ns = 90_000_000_000;
        payload.snapshot_ns = 1_234_567;
        payload.verdict = "consumer-straggler consumer=3".to_string();
        let full = DataMsg::Stats {
            token: u64::MAX,
            seq: u32::MAX,
            payload,
        };

        for m in [empty, full] {
            let good = m.encode();
            assert_eq!(DataMsg::decode(&good).unwrap(), m, "{m:?}");
            // Truncation at ANY byte is a wire error, never a misparse.
            for cut in 1..good.len() {
                assert!(
                    DataMsg::decode(&good[..good.len() - cut]).is_err(),
                    "{m:?} truncated by {cut} must be rejected"
                );
            }
        }
    }

    #[test]
    fn v1_stats_frames_decode_with_stamp_zero_on_a_v2_build() {
        // A v1 scraper's request: tag + token + version 1, no stamp.
        let mut req = vec![6u8];
        req.extend_from_slice(&7u64.to_le_bytes());
        req.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            CtrlMsg::decode(&req).unwrap(),
            CtrlMsg::StatsRequest {
                token: 7,
                version: 1,
                seq: 0,
            },
            "a v1 StatsRequest carries stamp 0"
        );
        // A v1 producer's reply: version 1 in the payload, no stamp byte
        // anywhere — the empty sections follow the version directly.
        let mut reply = vec![6u8];
        reply.extend_from_slice(&9u64.to_le_bytes());
        reply.extend_from_slice(&1u32.to_le_bytes());
        for _ in 0..3 {
            reply.extend_from_slice(&0u32.to_le_bytes());
        }
        assert_eq!(
            DataMsg::decode(&reply).unwrap(),
            DataMsg::Stats {
                token: 9,
                seq: 0,
                payload: StatsPayload {
                    version: 1,
                    counters: vec![],
                    gauge_bits: vec![],
                    histograms: vec![],
                    uptime_ns: 0,
                    snapshot_ns: 0,
                    verdict: String::new(),
                },
            },
            "a v1 Stats reply carries stamp 0"
        );
    }

    #[test]
    fn v2_stats_frames_decode_with_zeroed_extras_on_a_v3_build() {
        // A v2 producer's reply ends at the (empty) histogram section:
        // no uptime/stamp/verdict tail. A v3 decoder must zero-fill.
        let mut reply = vec![6u8];
        reply.extend_from_slice(&9u64.to_le_bytes());
        reply.extend_from_slice(&2u32.to_le_bytes()); // payload version 2
        reply.extend_from_slice(&11u32.to_le_bytes()); // request seq stamp
        for _ in 0..3 {
            reply.extend_from_slice(&0u32.to_le_bytes());
        }
        let m = DataMsg::decode(&reply).unwrap();
        match m {
            DataMsg::Stats {
                token,
                seq,
                payload,
            } => {
                assert_eq!((token, seq), (9, 11));
                assert_eq!(payload.version, 2);
                assert_eq!(payload.uptime_ns, 0);
                assert_eq!(payload.snapshot_ns, 0);
                assert!(payload.verdict.is_empty());
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        // Conversely a frame *claiming* v3 without the tail is truncated.
        assert!(
            DataMsg::decode(
                &{
                    let mut r = vec![6u8];
                    r.extend_from_slice(&9u64.to_le_bytes());
                    r.extend_from_slice(&3u32.to_le_bytes());
                    r.extend_from_slice(&11u32.to_le_bytes());
                    for _ in 0..3 {
                        r.extend_from_slice(&0u32.to_le_bytes());
                    }
                    r
                }[..]
            )
            .is_err(),
            "a v3 payload without the tail must be rejected"
        );
    }

    #[test]
    fn trace_round_trips_and_rejects_any_truncation() {
        let empty = DataMsg::Trace {
            token: 5,
            seq: 1,
            payload: TracePayload {
                version: TRACE_VERSION,
                now_ns: 0,
                records: vec![],
            },
        };
        let full = DataMsg::Trace {
            token: u64::MAX,
            seq: u32::MAX,
            payload: TracePayload {
                version: TRACE_VERSION,
                now_ns: 123_456_789,
                records: vec![
                    ts_metrics::TraceRecordSnap {
                        epoch: 2,
                        shard: 1,
                        seq: 40,
                        complete: true,
                        spans: vec![(0, 100, 200), (3, 250, 300), (5, 300, 900)],
                    },
                    ts_metrics::TraceRecordSnap {
                        epoch: 2,
                        shard: 0,
                        seq: 41,
                        complete: false,
                        spans: vec![],
                    },
                ],
            },
        };
        for m in [empty, full] {
            let good = m.encode();
            assert_eq!(DataMsg::decode(&good).unwrap(), m, "{m:?}");
            for cut in 1..good.len() {
                assert!(
                    DataMsg::decode(&good[..good.len() - cut]).is_err(),
                    "{m:?} truncated by {cut} must be rejected"
                );
            }
        }
    }

    #[test]
    fn v1_trace_requests_decode_with_defaults_on_newer_builds() {
        // TraceRequest is born at v1, but keep the lenient-suffix habit:
        // extra trailing bytes from a future version must not break us.
        let mut req = CtrlMsg::TraceRequest {
            token: 7,
            version: TRACE_VERSION,
            seq: 2,
            max: 32,
        }
        .encode()
        .to_vec();
        req.extend_from_slice(&[0xFF; 8]);
        assert_eq!(
            CtrlMsg::decode(&req).unwrap(),
            CtrlMsg::TraceRequest {
                token: 7,
                version: TRACE_VERSION,
                seq: 2,
                max: 32,
            }
        );
    }

    #[test]
    fn cursor_round_trips_and_rejects_any_truncation() {
        let m = DataMsg::Cursor {
            shard: 3,
            epoch: 7,
            seq: 1_000_001,
            index_in_epoch: 41,
        };
        let good = m.encode();
        assert_eq!(DataMsg::decode(&good).unwrap(), m);
        for cut in 1..good.len() {
            assert!(
                DataMsg::decode(&good[..good.len() - cut]).is_err(),
                "cursor truncated by {cut} must be rejected"
            );
        }
    }

    #[test]
    fn stats_payload_accessors_decode_gauges_and_lookups() {
        use ts_metrics::Registry;

        let r = Registry::new();
        r.counter("producer.batches").add(7);
        r.gauge("stage.pin_depth").set(1.5);
        r.histogram("consumer.wait_ns").record(1000);
        let p = StatsPayload::from_registry(&r);
        assert_eq!(p.version, STATS_VERSION);
        assert_eq!(p.counter("producer.batches"), Some(7));
        assert_eq!(p.counter("missing"), None);
        assert_eq!(p.gauges(), vec![("stage.pin_depth".to_string(), 1.5)]);
        assert_eq!(p.histogram("consumer.wait_ns").unwrap().count, 1);
        assert!(p.histogram("missing").is_none());
        // Sections are deterministically name-sorted (registry contract).
        assert!(p.counters.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
