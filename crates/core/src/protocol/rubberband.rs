//! Rubberbanding: admitting consumers that join shortly after an epoch
//! started.
//!
//! "If a consumer joins before 2% of the dataset has been iterated on in an
//! epoch, the producer will halt all other consumers to let that consumer
//! synchronize. The percentage of the dataset that serves as the cutoff
//! point is configurable." (§3.2.5)
//!
//! The *halt* itself is not implemented here — it emerges from the
//! [`crate::BatchWindow`]: an admitted late joiner starts with its cursor at
//! the epoch's first batch, which blocks publishing until it catches up.

/// Outcome of a join request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// Admit now; replay the epoch's batches starting at `replay_from`
    /// (index within the epoch — always 0 in the paper's scheme).
    AdmitReplay {
        /// First epoch-batch index the consumer must be sent.
        replay_from: u64,
    },
    /// Too late for this epoch; admit when the next epoch starts.
    WaitNextEpoch,
}

/// The admission policy.
#[derive(Debug, Clone, Copy)]
pub struct RubberbandPolicy {
    /// Fraction of the epoch during which late joins are admitted (paper
    /// default 0.02). `0.0` disables rubberbanding entirely.
    pub cutoff: f64,
}

impl Default for RubberbandPolicy {
    fn default() -> Self {
        Self { cutoff: 0.02 }
    }
}

impl RubberbandPolicy {
    /// Number of batches from the start of an epoch that remain pinned for
    /// replay (the join window), for an epoch of `batches_per_epoch`.
    pub fn pinned_batches(&self, batches_per_epoch: u64) -> u64 {
        if self.cutoff <= 0.0 {
            return 0;
        }
        ((batches_per_epoch as f64) * self.cutoff).ceil() as u64
    }

    /// True while the join window of an epoch is still open after
    /// `published_in_epoch` of `batches_per_epoch` batches: a join landing
    /// now would be admitted with a full replay. This is also the pinning
    /// predicate — a producer (or every shard of a coordinated group) must
    /// keep the epoch prefix pinned exactly as long as this holds.
    pub fn window_open(&self, published_in_epoch: u64, batches_per_epoch: u64) -> bool {
        published_in_epoch == 0 || published_in_epoch <= self.pinned_batches(batches_per_epoch)
    }

    /// Decides a join that arrives after `published_in_epoch` batches of an
    /// epoch with `batches_per_epoch` total have been published.
    ///
    /// A join at the exact epoch boundary (`published_in_epoch == 0`) is
    /// always admitted.
    pub fn decide(&self, published_in_epoch: u64, batches_per_epoch: u64) -> JoinOutcome {
        if self.window_open(published_in_epoch, batches_per_epoch) {
            JoinOutcome::AdmitReplay { replay_from: 0 }
        } else {
            JoinOutcome::WaitNextEpoch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_boundary_always_admits() {
        let p = RubberbandPolicy { cutoff: 0.0 };
        assert_eq!(
            p.decide(0, 1000),
            JoinOutcome::AdmitReplay { replay_from: 0 }
        );
    }

    #[test]
    fn default_two_percent_window() {
        let p = RubberbandPolicy::default();
        // 2% of 1000 batches = 20 pinned batches
        assert_eq!(p.pinned_batches(1000), 20);
        assert_eq!(
            p.decide(20, 1000),
            JoinOutcome::AdmitReplay { replay_from: 0 }
        );
        assert_eq!(p.decide(21, 1000), JoinOutcome::WaitNextEpoch);
    }

    #[test]
    fn cutoff_rounds_up_for_small_epochs() {
        let p = RubberbandPolicy { cutoff: 0.02 };
        // 2% of 10 batches -> ceil(0.2) = 1 pinned batch
        assert_eq!(p.pinned_batches(10), 1);
        assert_eq!(p.decide(1, 10), JoinOutcome::AdmitReplay { replay_from: 0 });
        assert_eq!(p.decide(2, 10), JoinOutcome::WaitNextEpoch);
    }

    #[test]
    fn disabled_rubberbanding_waits_mid_epoch() {
        let p = RubberbandPolicy { cutoff: 0.0 };
        assert_eq!(p.pinned_batches(1000), 0);
        assert_eq!(p.decide(1, 1000), JoinOutcome::WaitNextEpoch);
    }

    #[test]
    fn generous_cutoff_admits_late() {
        let p = RubberbandPolicy { cutoff: 0.5 };
        assert_eq!(
            p.decide(499, 1000),
            JoinOutcome::AdmitReplay { replay_from: 0 }
        );
        assert_eq!(p.decide(501, 1000), JoinOutcome::WaitNextEpoch);
    }
}
