//! Batch-order variation (§3.2.7) and the sharded-stream interleave.
//!
//! With a single shared loader all consumers would see identical batches in
//! identical order. For hyper-parameter tuning it can help to decorrelate
//! them. Two composable mechanisms:
//!
//! 1. **Offsets** — each consumer carves its flexible batches from the
//!    producer batch at a different starting offset, so batch *contents*
//!    differ between consumers.
//! 2. **Shuffling** — each consumer visits its carved batches in a
//!    per-(consumer, producer-batch) pseudorandom order, so batch *order*
//!    differs between consumers.
//!
//! Both are deterministic given the seed, so runs remain reproducible.
//!
//! The third mechanism here is the opposite of decorrelation:
//! [`ShardInterleave`] is the deterministic merge order a consumer applies
//! to the streams of a sharded producer group, so that *every* consumer of
//! the group sees one bit-stable batch sequence regardless of shard count
//! or network timing — the `(epoch, shard, seq)` ordering contract.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Order-variation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OrderConfig {
    /// Give each consumer a distinct carving offset.
    pub offsets: bool,
    /// Shuffle each consumer's batch order within a producer batch.
    pub shuffle: bool,
    /// Seed for both mechanisms.
    pub seed: u64,
}

impl OrderConfig {
    /// The carving offset for the `consumer_index`-th consumer of
    /// `producer_batch` samples.
    ///
    /// Offsets spread consumers evenly across the producer batch, which
    /// maximizes content divergence between any two consumers.
    pub fn offset_for(
        &self,
        consumer_index: usize,
        num_consumers: usize,
        producer_batch: usize,
    ) -> usize {
        if !self.offsets || num_consumers == 0 || producer_batch == 0 {
            return 0;
        }
        (consumer_index * producer_batch) / num_consumers
    }

    /// The visit order of `n` planned batches for `consumer_id` within
    /// producer batch `pb_seq`.
    pub fn visit_order(&self, consumer_id: u64, pb_seq: u64, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        if self.shuffle && n > 1 {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    ^ consumer_id.wrapping_mul(0x9E3779B97F4A7C15)
                    ^ pb_seq.wrapping_mul(0xD1B54A32D192ED03),
            );
            order.shuffle(&mut rng);
        }
        order
    }
}

/// The deterministic merge cursor over a sharded producer group's streams.
///
/// Each shard publishes an ordered sequence of announcements, positioned
/// by `(epoch, index_in_epoch)`. A consumer subscribed to all shards must
/// deliver them in one global order so training is reproducible: the
/// **`(epoch, shard, seq)` contract** — announcements are delivered
/// sorted by `(epoch, index_in_epoch, shard)`, which for shards aligned
/// at an epoch boundary is a plain round-robin (`s0[0], s1[0], …, s0[1],
/// s1[1], …`) that naturally skips exhausted shards on uneven tails.
///
/// The cursor is pure bookkeeping: [`ShardInterleave::next_shard`] names
/// the shard whose announcement must be delivered next, and
/// [`ShardInterleave::advance`] moves that shard's position after the
/// delivery (rolling into its next epoch on `last_in_epoch`). A shard
/// whose stream ended is removed with [`ShardInterleave::end_shard`];
/// when all shards ended, `next_shard` returns `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInterleave {
    /// Per shard: `Some((epoch, index))` of the next expected
    /// announcement, `None` once the shard's stream ended.
    cursors: Vec<Option<(u64, u64)>>,
}

impl ShardInterleave {
    /// A cursor over `starts.len()` shards, shard `s` positioned at
    /// `starts[s] = (epoch, index_in_epoch)` (as told by its join reply —
    /// `(joined_epoch, replay_from)`).
    pub fn new(starts: Vec<(u64, u64)>) -> Self {
        Self {
            cursors: starts.into_iter().map(Some).collect(),
        }
    }

    /// Number of shards (ended ones included).
    pub fn num_shards(&self) -> usize {
        self.cursors.len()
    }

    /// The next expected `(epoch, index)` of a shard, `None` once ended.
    pub fn cursor(&self, shard: usize) -> Option<(u64, u64)> {
        self.cursors[shard]
    }

    /// The shard whose announcement is globally next — the live shard with
    /// the minimal `(epoch, index, shard)` cursor — or `None` when every
    /// shard has ended.
    pub fn next_shard(&self) -> Option<usize> {
        self.cursors
            .iter()
            .enumerate()
            .filter_map(|(s, c)| c.map(|(e, i)| (e, i, s)))
            .min()
            .map(|(_, _, s)| s)
    }

    /// Records that `shard`'s current announcement was delivered: its
    /// cursor moves to the next index, or to `(epoch + 1, 0)` when the
    /// delivered announcement closed the shard's epoch.
    pub fn advance(&mut self, shard: usize, last_in_epoch: bool) {
        if let Some((epoch, index)) = self.cursors[shard] {
            self.cursors[shard] = Some(if last_in_epoch {
                (epoch + 1, 0)
            } else {
                (epoch, index + 1)
            });
        }
    }

    /// Marks `shard`'s stream as ended (its producer published `End`).
    pub fn end_shard(&mut self, shard: usize) {
        self.cursors[shard] = None;
    }

    /// True when every shard's stream has ended.
    pub fn all_ended(&self) -> bool {
        self.cursors.iter().all(|c| c.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_identity() {
        let c = OrderConfig::default();
        assert_eq!(c.offset_for(2, 4, 100), 0);
        assert_eq!(c.visit_order(7, 3, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn offsets_spread_consumers_evenly() {
        let c = OrderConfig {
            offsets: true,
            ..Default::default()
        };
        assert_eq!(c.offset_for(0, 4, 128), 0);
        assert_eq!(c.offset_for(1, 4, 128), 32);
        assert_eq!(c.offset_for(2, 4, 128), 64);
        assert_eq!(c.offset_for(3, 4, 128), 96);
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let c = OrderConfig {
            shuffle: true,
            seed: 5,
            ..Default::default()
        };
        let a = c.visit_order(1, 0, 8);
        let b = c.visit_order(1, 0, 8);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_varies_across_consumers_and_producer_batches() {
        let c = OrderConfig {
            shuffle: true,
            seed: 5,
            ..Default::default()
        };
        // With 16 entries the chance of identical permutations is ~0.
        assert_ne!(c.visit_order(1, 0, 16), c.visit_order(2, 0, 16));
        assert_ne!(c.visit_order(1, 0, 16), c.visit_order(1, 1, 16));
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let c = OrderConfig {
            offsets: true,
            shuffle: true,
            seed: 0,
        };
        assert_eq!(c.offset_for(0, 0, 128), 0);
        assert_eq!(c.offset_for(1, 4, 0), 0);
        assert_eq!(c.visit_order(0, 0, 0), Vec::<usize>::new());
        assert_eq!(c.visit_order(0, 0, 1), vec![0]);
    }

    /// Drives an interleave over shards with the given per-epoch batch
    /// counts; returns the delivered (shard, epoch, index) sequence.
    fn drive(counts: &[u64], epochs: u64) -> Vec<(usize, u64, u64)> {
        let mut il = ShardInterleave::new(vec![(0, 0); counts.len()]);
        let mut out = Vec::new();
        while let Some(s) = il.next_shard() {
            let (epoch, index) = il.cursor(s).unwrap();
            if epoch == epochs {
                il.end_shard(s);
                continue;
            }
            out.push((s, epoch, index));
            il.advance(s, index + 1 == counts[s]);
        }
        assert!(il.all_ended());
        out
    }

    #[test]
    fn aligned_shards_round_robin() {
        let seq = drive(&[2, 2], 1);
        assert_eq!(seq, vec![(0, 0, 0), (1, 0, 0), (0, 0, 1), (1, 0, 1)]);
    }

    #[test]
    fn uneven_tails_drop_out_of_rotation() {
        // shard 0 has 3 batches, shard 1 has 2: shard 0 finishes alone.
        let seq = drive(&[3, 2], 2);
        assert_eq!(
            seq,
            vec![
                (0, 0, 0),
                (1, 0, 0),
                (0, 0, 1),
                (1, 0, 1),
                (0, 0, 2), // shard 1 exhausted: tail delivered from shard 0
                (0, 1, 0),
                (1, 1, 0),
                (0, 1, 1),
                (1, 1, 1),
                (0, 1, 2),
            ]
        );
    }

    #[test]
    fn interleave_is_sorted_by_epoch_index_shard() {
        let seq = drive(&[4, 2, 3], 2);
        let mut sorted = seq.clone();
        sorted.sort_by_key(|&(s, e, i)| (e, i, s));
        assert_eq!(
            seq, sorted,
            "delivery order is the (epoch, index, shard) sort"
        );
        assert_eq!(seq.len(), 2 * (4 + 2 + 3));
    }

    #[test]
    fn single_shard_is_a_plain_sequence() {
        let seq = drive(&[3], 1);
        assert_eq!(seq, vec![(0, 0, 0), (0, 0, 1), (0, 0, 2)]);
    }

    #[test]
    fn mid_epoch_starts_order_consistently() {
        // A mid-epoch joiner's cursors start at each shard's replay_from.
        let mut il = ShardInterleave::new(vec![(0, 2), (0, 1)]);
        assert_eq!(il.next_shard(), Some(1), "lowest index first");
        il.advance(1, false);
        assert_eq!(il.next_shard(), Some(0));
    }
}
