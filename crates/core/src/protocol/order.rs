//! Batch-order variation (§3.2.7).
//!
//! With a single shared loader all consumers would see identical batches in
//! identical order. For hyper-parameter tuning it can help to decorrelate
//! them. Two composable mechanisms:
//!
//! 1. **Offsets** — each consumer carves its flexible batches from the
//!    producer batch at a different starting offset, so batch *contents*
//!    differ between consumers.
//! 2. **Shuffling** — each consumer visits its carved batches in a
//!    per-(consumer, producer-batch) pseudorandom order, so batch *order*
//!    differs between consumers.
//!
//! Both are deterministic given the seed, so runs remain reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Order-variation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OrderConfig {
    /// Give each consumer a distinct carving offset.
    pub offsets: bool,
    /// Shuffle each consumer's batch order within a producer batch.
    pub shuffle: bool,
    /// Seed for both mechanisms.
    pub seed: u64,
}

impl OrderConfig {
    /// The carving offset for the `consumer_index`-th consumer of
    /// `producer_batch` samples.
    ///
    /// Offsets spread consumers evenly across the producer batch, which
    /// maximizes content divergence between any two consumers.
    pub fn offset_for(
        &self,
        consumer_index: usize,
        num_consumers: usize,
        producer_batch: usize,
    ) -> usize {
        if !self.offsets || num_consumers == 0 || producer_batch == 0 {
            return 0;
        }
        (consumer_index * producer_batch) / num_consumers
    }

    /// The visit order of `n` planned batches for `consumer_id` within
    /// producer batch `pb_seq`.
    pub fn visit_order(&self, consumer_id: u64, pb_seq: u64, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        if self.shuffle && n > 1 {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    ^ consumer_id.wrapping_mul(0x9E3779B97F4A7C15)
                    ^ pb_seq.wrapping_mul(0xD1B54A32D192ED03),
            );
            order.shuffle(&mut rng);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_identity() {
        let c = OrderConfig::default();
        assert_eq!(c.offset_for(2, 4, 100), 0);
        assert_eq!(c.visit_order(7, 3, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn offsets_spread_consumers_evenly() {
        let c = OrderConfig {
            offsets: true,
            ..Default::default()
        };
        assert_eq!(c.offset_for(0, 4, 128), 0);
        assert_eq!(c.offset_for(1, 4, 128), 32);
        assert_eq!(c.offset_for(2, 4, 128), 64);
        assert_eq!(c.offset_for(3, 4, 128), 96);
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let c = OrderConfig {
            shuffle: true,
            seed: 5,
            ..Default::default()
        };
        let a = c.visit_order(1, 0, 8);
        let b = c.visit_order(1, 0, 8);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_varies_across_consumers_and_producer_batches() {
        let c = OrderConfig {
            shuffle: true,
            seed: 5,
            ..Default::default()
        };
        // With 16 entries the chance of identical permutations is ~0.
        assert_ne!(c.visit_order(1, 0, 16), c.visit_order(2, 0, 16));
        assert_ne!(c.visit_order(1, 0, 16), c.visit_order(1, 1, 16));
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let c = OrderConfig {
            offsets: true,
            shuffle: true,
            seed: 0,
        };
        assert_eq!(c.offset_for(0, 0, 128), 0);
        assert_eq!(c.offset_for(1, 4, 0), 0);
        assert_eq!(c.visit_order(0, 0, 0), Vec::<usize>::new());
        assert_eq!(c.visit_order(0, 0, 1), vec![0]);
    }
}
