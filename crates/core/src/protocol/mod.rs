//! Pure protocol state machines.
//!
//! Everything in this module is deterministic, allocation-light, and takes
//! time as an explicit argument where it matters. The threaded runtime
//! (`crate::runtime`) and the virtual-time simulator (`ts-sim`) both drive
//! these exact types.

pub mod acks;
pub mod buffer;
pub mod flex;
pub mod heartbeat;
pub mod messages;
pub mod order;
pub mod rubberband;
