//! Consumer liveness tracking.
//!
//! "In order to be continuously aware of consumers, producers send and
//! receive heartbeat messages from their consumers over a different socket.
//! The producer will detach from consumers that it has not received a
//! heartbeat from in a while." (§3.2.3)
//!
//! Time is injected as nanoseconds so the same monitor runs under the
//! threaded runtime (wall clock) and the simulator (virtual clock).

use std::collections::HashMap;

/// Tracks the last heartbeat per consumer and expires the silent ones.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    timeout_ns: u64,
    last_seen: HashMap<u64, u64>,
}

impl HeartbeatMonitor {
    /// A monitor that detaches consumers silent for `timeout_ns`.
    pub fn new(timeout_ns: u64) -> Self {
        Self {
            timeout_ns: timeout_ns.max(1),
            last_seen: HashMap::new(),
        }
    }

    /// The configured timeout.
    pub fn timeout_ns(&self) -> u64 {
        self.timeout_ns
    }

    /// Records a heartbeat (or any sign of life — acks count too).
    pub fn beat(&mut self, consumer: u64, now_ns: u64) {
        self.last_seen
            .entry(consumer)
            .and_modify(|t| *t = (*t).max(now_ns))
            .or_insert(now_ns);
    }

    /// Stops tracking a consumer (clean leave or detach).
    pub fn remove(&mut self, consumer: u64) {
        self.last_seen.remove(&consumer);
    }

    /// Returns (and stops tracking) every consumer whose last sign of life
    /// is older than the timeout.
    pub fn expire(&mut self, now_ns: u64) -> Vec<u64> {
        let timeout = self.timeout_ns;
        let mut dead: Vec<u64> = self
            .last_seen
            .iter()
            .filter(|(_, &t)| now_ns.saturating_sub(t) > timeout)
            .map(|(&id, _)| id)
            .collect();
        dead.sort_unstable();
        for id in &dead {
            self.last_seen.remove(id);
        }
        dead
    }

    /// Consumers currently tracked.
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }

    /// True when `consumer` is tracked and fresh at `now_ns`.
    pub fn is_alive(&self, consumer: u64, now_ns: u64) -> bool {
        self.last_seen
            .get(&consumer)
            .is_some_and(|&t| now_ns.saturating_sub(t) <= self.timeout_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_consumers_stay_alive() {
        let mut hb = HeartbeatMonitor::new(100);
        hb.beat(1, 0);
        hb.beat(1, 50);
        assert!(hb.is_alive(1, 120));
        assert!(hb.expire(120).is_empty());
        assert_eq!(hb.tracked(), 1);
    }

    #[test]
    fn silent_consumers_expire_once() {
        let mut hb = HeartbeatMonitor::new(100);
        hb.beat(1, 0);
        hb.beat(2, 90);
        assert_eq!(hb.expire(150), vec![1]);
        // already expired; not reported again
        assert!(hb.expire(160).is_empty());
        assert_eq!(hb.expire(300), vec![2]);
        assert_eq!(hb.tracked(), 0);
    }

    #[test]
    fn beat_never_moves_backwards() {
        let mut hb = HeartbeatMonitor::new(100);
        hb.beat(1, 500);
        hb.beat(1, 100); // stale beat, ignored
        assert!(hb.is_alive(1, 550));
    }

    #[test]
    fn remove_stops_tracking() {
        let mut hb = HeartbeatMonitor::new(100);
        hb.beat(1, 0);
        hb.remove(1);
        assert!(!hb.is_alive(1, 1));
        assert!(hb.expire(1000).is_empty());
    }

    #[test]
    fn multiple_expiries_sorted() {
        let mut hb = HeartbeatMonitor::new(10);
        hb.beat(5, 0);
        hb.beat(1, 0);
        hb.beat(3, 100);
        assert_eq!(hb.expire(50), vec![1, 5]);
    }
}
