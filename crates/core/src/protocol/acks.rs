//! Release tracking: when may the producer free a batch's memory?
//!
//! "Whenever data is shared with a consumer, the producer will store a
//! reference to that data. […] The producer will release the associated
//! memory when all consumers are finished with it." (§3.2.3)

use std::collections::{BTreeMap, HashSet};

/// Tracks which consumers still owe an acknowledgement per batch.
#[derive(Debug, Clone, Default)]
pub struct AckTracker {
    pending: BTreeMap<u64, HashSet<u64>>,
}

impl AckTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that batch `seq` was shared with `consumers`.
    ///
    /// A batch shared with nobody is immediately releasable and is *not*
    /// stored.
    pub fn published(&mut self, seq: u64, consumers: impl IntoIterator<Item = u64>) {
        let set: HashSet<u64> = consumers.into_iter().collect();
        if !set.is_empty() {
            self.pending.insert(seq, set);
        }
    }

    /// Adds a late consumer (rubberband replay) to existing pending batches
    /// in `[from_seq, to_seq)` — it must ack the replayed batches too.
    pub fn add_consumer_to_range(&mut self, consumer: u64, from_seq: u64, to_seq: u64) {
        for (_, owers) in self.pending.range_mut(from_seq..to_seq) {
            owers.insert(consumer);
        }
    }

    /// Records an acknowledgement. Returns `true` when batch `seq` became
    /// fully acknowledged (releasable) by this ack.
    pub fn on_ack(&mut self, consumer: u64, seq: u64) -> bool {
        if let Some(owers) = self.pending.get_mut(&seq) {
            owers.remove(&consumer);
            if owers.is_empty() {
                self.pending.remove(&seq);
                return true;
            }
        }
        false
    }

    /// Removes a consumer from every pending batch (detach / leave),
    /// returning the batches that became releasable.
    pub fn remove_consumer(&mut self, consumer: u64) -> Vec<u64> {
        let mut released = Vec::new();
        self.pending.retain(|&seq, owers| {
            owers.remove(&consumer);
            if owers.is_empty() {
                released.push(seq);
                false
            } else {
                true
            }
        });
        released
    }

    /// Batches still awaiting acknowledgements.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Consumers still owing an ack for `seq`, if any.
    pub fn owers(&self, seq: u64) -> Option<&HashSet<u64>> {
        self.pending.get(&seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_after_all_acks() {
        let mut t = AckTracker::new();
        t.published(0, [1, 2, 3]);
        assert!(!t.on_ack(1, 0));
        assert!(!t.on_ack(2, 0));
        assert!(t.on_ack(3, 0));
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_and_unknown_acks_are_harmless() {
        let mut t = AckTracker::new();
        t.published(0, [1, 2]);
        assert!(!t.on_ack(1, 0));
        assert!(!t.on_ack(1, 0)); // duplicate
        assert!(!t.on_ack(9, 0)); // never shared with 9
        assert!(!t.on_ack(1, 5)); // unknown seq
        assert!(t.on_ack(2, 0));
    }

    #[test]
    fn detach_releases_batches_waiting_only_on_that_consumer() {
        let mut t = AckTracker::new();
        t.published(0, [1, 2]);
        t.published(1, [1, 2]);
        t.published(2, [2]);
        t.on_ack(1, 0);
        t.on_ack(1, 1);
        // consumer 2 vanishes: everything it was holding up releases
        let mut released = t.remove_consumer(2);
        released.sort_unstable();
        assert_eq!(released, vec![0, 1, 2]);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_consumer_set_is_immediately_releasable() {
        let mut t = AckTracker::new();
        t.published(7, []);
        assert!(t.is_empty());
    }

    #[test]
    fn rubberband_adds_consumer_to_pending_range() {
        let mut t = AckTracker::new();
        t.published(0, [1]);
        t.published(1, [1]);
        t.published(2, [1]);
        t.on_ack(1, 0); // seq 0 already released
        t.add_consumer_to_range(2, 0, 3);
        assert_eq!(t.owers(1).unwrap().len(), 2);
        assert!(!t.on_ack(1, 1));
        assert!(!t.on_ack(1, 2));
        assert!(t.on_ack(2, 1));
        assert!(t.on_ack(2, 2));
        assert!(t.is_empty());
    }

    #[test]
    fn pending_count_tracks_outstanding() {
        let mut t = AckTracker::new();
        for seq in 0..5 {
            t.published(seq, [1, 2]);
        }
        assert_eq!(t.pending_count(), 5);
        for seq in 0..5 {
            t.on_ack(1, seq);
        }
        assert_eq!(t.pending_count(), 5);
        for seq in 0..5 {
            t.on_ack(2, seq);
        }
        assert_eq!(t.pending_count(), 0);
    }
}
