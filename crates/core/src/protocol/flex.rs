//! Flexible batch sizing: carving per-consumer batches out of a producer
//! batch (§3.2.6, Figure 5).
//!
//! The producer collates loader batches into one contiguous *producer
//! batch* of `P` samples. A consumer requesting batch size `b` receives
//! `ceil(P / b)` batches per producer batch, carved as a circular run over
//! `[0, P)` starting at the consumer's offset. The final batch wraps around
//! and *repeats* early samples to reach `b`; the repeated amount per
//! producer batch is `ceil(P/b)·b − P ≤ b − 1`, matching the paper's bound
//! `max{b_c} − 1` across consumers.
//!
//! Because every consumer finishes exactly one producer batch per "round",
//! all consumers traverse the dataset at the same rate regardless of their
//! batch sizes — the invariant the sharing protocol needs.

use crate::{Result, TsError};

/// A contiguous run of samples within a producer batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First sample index within the producer batch.
    pub start: usize,
    /// Number of samples.
    pub len: usize,
}

/// One consumer batch: one or more segments totalling the batch size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedBatch {
    /// Segments in consumption order.
    pub segments: Vec<Segment>,
}

impl PlannedBatch {
    /// Total samples across segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// True when the batch contains no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The consumer batches carved from one producer batch for one consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlexPlan {
    /// Producer batch size the plan was computed for.
    pub producer_batch: usize,
    /// Consumer batch size.
    pub consumer_batch: usize,
    /// Carving offset within the producer batch.
    pub offset: usize,
    /// The planned batches, in order.
    pub batches: Vec<PlannedBatch>,
}

impl FlexPlan {
    /// Samples delivered in total (`ceil(P/b) · b`).
    pub fn delivered(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Samples repeated within the producer batch (`delivered − P`).
    pub fn repeated(&self) -> usize {
        self.delivered() - self.producer_batch
    }
}

/// Emits the segments of a circular run of `len` samples starting at
/// `start` over a producer batch of `p` samples.
fn circular_segments(mut start: usize, mut len: usize, p: usize) -> Vec<Segment> {
    let mut out = Vec::with_capacity(2);
    start %= p;
    while len > 0 {
        let take = len.min(p - start);
        out.push(Segment { start, len: take });
        len -= take;
        start = (start + take) % p;
    }
    out
}

/// Plans the batches for one consumer.
///
/// # Errors
/// Fails when `producer_batch` or `consumer_batch` is zero, or when the
/// consumer batch exceeds the producer batch (the paper recommends the
/// producer batch be at least twice the largest consumer batch; we only
/// *require* `b ≤ P`).
pub fn plan_flex(producer_batch: usize, consumer_batch: usize, offset: usize) -> Result<FlexPlan> {
    if producer_batch == 0 || consumer_batch == 0 {
        return Err(TsError::Config(
            "producer and consumer batch sizes must be positive".to_string(),
        ));
    }
    if consumer_batch > producer_batch {
        return Err(TsError::Config(format!(
            "consumer batch {consumer_batch} exceeds producer batch {producer_batch}"
        )));
    }
    let rounds = producer_batch.div_ceil(consumer_batch);
    let mut batches = Vec::with_capacity(rounds);
    for k in 0..rounds {
        let start = offset + k * consumer_batch;
        batches.push(PlannedBatch {
            segments: circular_segments(start, consumer_batch, producer_batch),
        });
    }
    Ok(FlexPlan {
        producer_batch,
        consumer_batch,
        offset: offset % producer_batch,
        batches,
    })
}

/// True when the plan's segments cover every index of the producer batch.
pub fn covers_producer_batch(plan: &FlexPlan) -> bool {
    let mut seen = vec![false; plan.producer_batch];
    for b in &plan.batches {
        for s in &b.segments {
            for slot in seen.iter_mut().skip(s.start).take(s.len) {
                *slot = true;
            }
        }
    }
    seen.into_iter().all(|x| x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_example_consumer_plans() {
        // Figure 5: producer batch 16, consumers request 4, 7 and 6.
        let p4 = plan_flex(16, 4, 0).unwrap();
        assert_eq!(p4.batches.len(), 4);
        assert_eq!(p4.repeated(), 0);

        let p7 = plan_flex(16, 7, 0).unwrap();
        assert_eq!(p7.batches.len(), 3);
        // 3 * 7 - 16 = 5 repeated samples
        assert_eq!(p7.repeated(), 5);
        assert_eq!(
            p7.batches[2].segments,
            vec![Segment { start: 14, len: 2 }, Segment { start: 0, len: 5 }]
        );

        let p6 = plan_flex(16, 6, 0).unwrap();
        assert_eq!(p6.batches.len(), 3);
        assert_eq!(p6.repeated(), 2);

        for p in [&p4, &p7, &p6] {
            assert!(covers_producer_batch(p));
            assert!(p.batches.iter().all(|b| b.len() == p.consumer_batch));
        }
    }

    #[test]
    fn repetition_bound_holds() {
        // paper: repeated share per producer batch < max consumer batch
        for p in [8usize, 16, 64, 100, 128] {
            for b in 1..=p {
                let plan = plan_flex(p, b, 0).unwrap();
                assert!(plan.repeated() < b, "P={p} b={b}");
                assert!(covers_producer_batch(&plan), "P={p} b={b}");
            }
        }
    }

    #[test]
    fn clean_division_has_single_segments() {
        let plan = plan_flex(128, 32, 0).unwrap();
        assert_eq!(plan.batches.len(), 4);
        assert!(plan.batches.iter().all(|b| b.segments.len() == 1));
        assert_eq!(plan.repeated(), 0);
    }

    #[test]
    fn offsets_shift_but_preserve_coverage() {
        let plan = plan_flex(16, 4, 5).unwrap();
        assert_eq!(plan.offset, 5);
        assert_eq!(plan.batches[0].segments[0], Segment { start: 5, len: 4 });
        // third batch wraps: [13..16) + [0..1)
        assert_eq!(
            plan.batches[2].segments,
            vec![Segment { start: 13, len: 3 }, Segment { start: 0, len: 1 }]
        );
        assert!(covers_producer_batch(&plan));
        assert_eq!(plan.repeated(), 0);
    }

    #[test]
    fn offset_larger_than_producer_batch_wraps() {
        let plan = plan_flex(8, 4, 19).unwrap();
        assert_eq!(plan.offset, 3);
        assert!(covers_producer_batch(&plan));
    }

    #[test]
    fn degenerate_sizes_rejected() {
        assert!(plan_flex(0, 4, 0).is_err());
        assert!(plan_flex(16, 0, 0).is_err());
        assert!(plan_flex(16, 17, 0).is_err());
    }

    #[test]
    fn consumer_batch_equal_to_producer_batch() {
        let plan = plan_flex(32, 32, 0).unwrap();
        assert_eq!(plan.batches.len(), 1);
        assert_eq!(plan.repeated(), 0);
        assert!(covers_producer_batch(&plan));
    }

    #[test]
    fn all_consumers_finish_in_one_round() {
        // the lockstep invariant: every consumer consumes exactly one
        // producer batch per round, regardless of batch size
        for b in [4usize, 6, 7, 16] {
            let plan = plan_flex(16, b, 0).unwrap();
            assert_eq!(plan.delivered(), plan.batches.len() * b);
            assert!(plan.delivered() >= 16);
        }
    }
}
