//! The publish window: TensorSocket's consumer-side batch buffer, seen from
//! the producer.
//!
//! "Instead of actively requesting the next batch on iteration, consumers
//! can hold up to N batches (i.e., pointers to the tensors of batches) in
//! their buffer. This allows for the producer to actively pre-fetch data,
//! and for the consumers to drift at most N batches apart." (§3.2.5)
//!
//! The window tracks, per consumer, how many batches it has finished
//! (acknowledged). The producer may publish batch `seq` only while every
//! consumer satisfies `seq - acked < N`. With no consumers connected the
//! window is closed — "there is no need for any data loading" (§3.2.1).

use std::collections::HashMap;

/// Producer-side gate implementing the bounded drift invariant.
#[derive(Debug, Clone)]
pub struct BatchWindow {
    capacity: u64,
    next_seq: u64,
    /// Per-consumer count of batches fully processed (cursor into the global
    /// sequence). A consumer admitted at seq `s` starts with cursor `s`.
    cursors: HashMap<u64, u64>,
}

impl BatchWindow {
    /// A window allowing consumers to hold up to `capacity` batches.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1) as u64,
            next_seq: 0,
            cursors: HashMap::new(),
        }
    }

    /// The buffer capacity N.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sequence number the next published batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Registered consumer ids.
    pub fn consumers(&self) -> impl Iterator<Item = u64> + '_ {
        self.cursors.keys().copied()
    }

    /// Number of registered consumers.
    pub fn consumer_count(&self) -> usize {
        self.cursors.len()
    }

    /// Registers a consumer whose first unprocessed batch is `at_seq`.
    pub fn add_consumer(&mut self, id: u64, at_seq: u64) {
        self.cursors.insert(id, at_seq);
    }

    /// Removes a consumer (left or detached).
    pub fn remove_consumer(&mut self, id: u64) {
        self.cursors.remove(&id);
    }

    /// True when the producer may publish the next batch: at least one
    /// consumer is connected and none would exceed its buffer.
    pub fn can_publish(&self) -> bool {
        if self.cursors.is_empty() {
            return false;
        }
        self.cursors
            .values()
            .all(|&acked| self.next_seq - acked < self.capacity)
    }

    /// Records that the next batch was published, returning its sequence
    /// number.
    pub fn published(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Records that `consumer` finished batch `seq`. Cursors only move
    /// forward; re-acks and out-of-order acks are tolerated.
    pub fn on_ack(&mut self, consumer: u64, seq: u64) {
        if let Some(cursor) = self.cursors.get_mut(&consumer) {
            let done = seq + 1;
            if done > *cursor {
                *cursor = done;
            }
        }
    }

    /// Largest number of batches any two consumers are apart.
    pub fn drift(&self) -> u64 {
        let min = self.cursors.values().min().copied().unwrap_or(0);
        let max = self.cursors.values().max().copied().unwrap_or(0);
        max - min
    }

    /// Batches published but not yet finished by the slowest consumer.
    pub fn outstanding(&self) -> u64 {
        match self.cursors.values().min() {
            Some(&min) => self.next_seq - min,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_without_consumers() {
        let w = BatchWindow::new(2);
        assert!(!w.can_publish());
        assert_eq!(w.outstanding(), 0);
    }

    #[test]
    fn basic_publish_ack_cycle() {
        let mut w = BatchWindow::new(2);
        w.add_consumer(1, 0);
        assert!(w.can_publish());
        assert_eq!(w.published(), 0);
        assert!(w.can_publish());
        assert_eq!(w.published(), 1);
        // buffer full (N=2, nothing acked)
        assert!(!w.can_publish());
        w.on_ack(1, 0);
        assert!(w.can_publish());
        assert_eq!(w.outstanding(), 1);
    }

    #[test]
    fn slowest_consumer_gates_publishing() {
        let mut w = BatchWindow::new(2);
        w.add_consumer(1, 0);
        w.add_consumer(2, 0);
        w.published();
        w.published();
        w.on_ack(1, 0);
        w.on_ack(1, 1);
        // consumer 2 has acked nothing
        assert!(!w.can_publish());
        assert_eq!(w.drift(), 2);
        w.on_ack(2, 0);
        assert!(w.can_publish());
        assert_eq!(w.drift(), 1);
    }

    #[test]
    fn drift_never_exceeds_capacity_under_random_acks() {
        // Simulate: publish whenever allowed, ack consumers unevenly, and
        // assert the invariant that outstanding <= N at all times.
        let n = 3;
        let mut w = BatchWindow::new(n);
        w.add_consumer(1, 0);
        w.add_consumer(2, 0);
        let mut acked1 = 0u64;
        let mut acked2 = 0u64;
        for round in 0..1000u64 {
            while w.can_publish() {
                w.published();
            }
            assert!(w.outstanding() <= n as u64);
            // consumer 1 acks aggressively, consumer 2 lags
            if acked1 < w.next_seq() {
                w.on_ack(1, acked1);
                acked1 += 1;
            }
            if round % 3 == 0 && acked2 < w.next_seq() {
                w.on_ack(2, acked2);
                acked2 += 1;
            }
            assert!(w.drift() <= n as u64);
        }
    }

    #[test]
    fn late_consumer_starts_at_given_seq() {
        let mut w = BatchWindow::new(2);
        w.add_consumer(1, 0);
        for _ in 0..10 {
            while w.can_publish() {
                w.published();
            }
            w.on_ack(1, w.next_seq() - 1); // instantly acks everything
        }
        let seq = w.next_seq();
        w.add_consumer(2, seq);
        assert!(w.can_publish());
        // newcomer replaying from an earlier seq halts the window until it
        // catches up (rubberbanding)
        w.add_consumer(3, seq.saturating_sub(5));
        assert!(!w.can_publish());
        w.on_ack(3, seq - 1);
        assert!(w.can_publish());
    }

    #[test]
    fn remove_consumer_reopens_window() {
        let mut w = BatchWindow::new(1);
        w.add_consumer(1, 0);
        w.add_consumer(2, 0);
        w.published();
        w.on_ack(1, 0);
        assert!(!w.can_publish());
        w.remove_consumer(2);
        assert!(w.can_publish());
        w.remove_consumer(1);
        assert!(!w.can_publish()); // empty again
    }

    #[test]
    fn reacks_and_stale_acks_ignored() {
        let mut w = BatchWindow::new(4);
        w.add_consumer(1, 0);
        for _ in 0..4 {
            w.published();
        }
        w.on_ack(1, 2); // jumps cursor to 3
        w.on_ack(1, 0); // stale, ignored
        assert_eq!(w.outstanding(), 1);
        w.on_ack(9, 3); // unknown consumer, ignored
        assert_eq!(w.consumer_count(), 1);
    }
}
