#![warn(missing_docs)]

//! # TensorSocket — shared data loading for deep-learning training
//!
//! A from-scratch Rust reproduction of *TensorSocket: Shared Data Loading
//! for Deep Learning Training* (SIGMOD 2025). One **producer** owns the
//! data-loading pipeline; any number of collocated **consumers** (training
//! processes) iterate over the batches it prepares. Batches are shared as
//! *pointers* ([`ts_tensor::TensorPayload`]) rather than bytes, so adding a
//! consumer adds no loading work and no data duplication.
//!
//! The public surface is two builders — one [`Producer`], one
//! [`Consumer`], endpoint-only attach:
//!
//! ```no_run
//! use std::sync::Arc;
//! use tensorsocket::{Producer, Consumer, TsContext};
//! use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
//!
//! let ctx = TsContext::host_only();
//! let dataset = Arc::new(SyntheticImageDataset::imagenet_like(1024, 0));
//! let loader = DataLoader::new(dataset, DataLoaderConfig::default());
//!
//! // producer.py
//! let producer = Producer::builder().context(&ctx).spawn(loader).unwrap();
//!
//! // consumer.py (normally another thread / logical process): only the
//! // endpoint — everything else arrives over the attach handshake.
//! let consumer = Consumer::builder().context(&ctx).connect("inproc://tensorsocket").unwrap();
//! for batch in consumer {
//!     let batch = batch.unwrap();
//!     // ... model training iteration ...
//!     let _ = batch.fields[0].shape();
//! }
//! producer.join().unwrap();
//! ```
//!
//! ## The attach handshake: a consumer needs only the endpoint
//!
//! [`Consumer::builder`]`.connect(endpoint)` opens with a versioned
//! HELLO/WELCOME exchange on the control channel. The producer's WELCOME
//! ([`WelcomeInfo`]) advertises the shard count (from which every shard's
//! data/ctrl endpoint derives via one scheme-aware
//! [`ts_socket::EndpointMap`], plus sparse per-shard overrides for
//! multi-host topologies), the shared-memory arena path and slot
//! geometry, the batch schema, the staging mode, and the payload-mode
//! grant mask — so nothing about the topology is mirrored out of band,
//! and nothing can be silently misconfigured. Mismatches fail fast as
//! typed [`HandshakeError`]s (`Version`, `Topology`, `ArenaMissing`,
//! `Mode`), never as hangs. The legacy `TensorProducer` /
//! `TensorConsumer` / `ShardedProducerGroup` entry points remain as
//! `#[deprecated]` shims over the same engine (see the migration table
//! in `examples/quickstart.rs`).
//!
//! ## Control plane vs. data plane, and payload-mode negotiation
//!
//! TensorSocket splits each shard into a **control plane** (PUSH/PULL:
//! joins, acks, heartbeats, hellos, stats scrapes) and a **data plane**
//! (PUB/SUB: batch announcements). On the data plane, *what an
//! announcement carries* is negotiated per consumer at attach (v2):
//!
//! * [`PayloadMode::Shm`] — the announce carries **pointers**
//!   ([`ts_tensor::TensorPayload`]) into shared memory; consumers on the
//!   producer's host map the arena and rebuild batches zero-copy. The
//!   paper's deployment model, and the default.
//! * [`PayloadMode::Stream`] — the announce carries the **bytes
//!   themselves**, length-prefixed ([`StreamedTensor`]), on the
//!   consumer's private topic. Chosen automatically when the advertised
//!   arena cannot be opened — a consumer on *another host* over
//!   `tcp://` — or forced via [`ConsumerBuilder::payload_mode`] /
//!   `TS_FORCE_PAYLOAD_MODE=stream|shm`.
//!
//! The consumer's HELLO carries its capability bits ([`caps`]), the
//! WELCOME answers with the producer's grant mask
//! ([`WelcomeInfo::payload_modes`]; flexible-sizing producers grant shm
//! only), and the chosen mode travels in the JOIN. Both modes share one
//! sequence space, window and ack accounting, so a mixed fleet — some
//! consumers on pointers, some on bytes — sees **bit-identical**
//! `(epoch, shard, seq)` batch streams, and either side can detach
//! without disturbing the other. v1 peers interoperate: a v1 consumer
//! attaching to a v2 producer gets a byte-identical v1 WELCOME and the
//! implied shm mode.
//!
//! ## Endpoint URIs and cross-process sharing
//!
//! The endpoint selects the transport: `inproc://name` (threads in one
//! process, the default), `ipc:///path.sock` (collocated OS processes
//! over Unix sockets) and `tcp://host:port`. For separate processes, add
//! `.arena(path)` to the producer builder: it creates a shared-memory
//! arena auto-sized from the loader's decoded sample geometry, batch
//! tensors are placed in it, and consumers map them zero-copy — the
//! sockets carry only announce/ack metadata, the paper's split between a
//! metadata channel and a bulk payload path. Consumers learn the arena
//! from the handshake. See `examples/multi_process.rs` for the full
//! topology.
//!
//! With an arena bound, publish is **zero-copy end to end**: the feeder
//! leases each batch's slot *before* collating ([`ts_tensor::SlotPool`])
//! and decodes straight into it ([`ts_tensor::cat0_leased`]), so the
//! publish loop merely adopts the placement into the
//! [`ts_tensor::SharedRegistry`] — no payload byte moves at publish
//! time, and epoch replays refcount the same placement. The invariant is
//! metered, not assumed: `stage.publish_copy_bytes` counts every byte
//! the copying fallback touches and must read 0 after warm-up (CI
//! asserts this on a live scrape). Publishes are additionally announced
//! on a **coalescing cursor channel** — a latest-wins cell flushed at a
//! bounded ~25 ms cadence, read via `Consumer::latest_cursor` — which
//! tells a waking consumer where the producer *is* without any backlog
//! to drain; it is lag observability, never flow control.
//!
//! ## Multi-producer sharding and the `(epoch, shard, seq)` contract
//!
//! On many-GPU nodes one producer pipeline saturates one NUMA domain;
//! [`ProducerBuilder::spawn_sharded`] runs `N` feeder+publish pipelines,
//! each owning a **disjoint partition** of the dataset (build the
//! per-shard loaders with `ts_data::DataLoader::sharded`), in lockstep
//! under an [`EpochCoordinator`] that keeps epoch boundaries aligned and
//! join admission consistent — a consumer joining mid-epoch replays the
//! epoch prefix from *every* shard, not just one.
//!
//! ```no_run
//! use std::sync::Arc;
//! use tensorsocket::{Producer, Consumer, TsContext};
//! use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
//!
//! let ctx = TsContext::host_only();
//! let dataset = Arc::new(SyntheticImageDataset::imagenet_like(1024, 0));
//! // One loader per shard, each owning a disjoint slice of every epoch.
//! let loaders = DataLoader::sharded(dataset, DataLoaderConfig::default(), 2);
//! let group = Producer::builder().context(&ctx).spawn_sharded(loaders).unwrap();
//!
//! // The consumer code is IDENTICAL to the unsharded case: it learns the
//! // shard count from the handshake and subscribes to both streams.
//! let consumer = Consumer::builder().context(&ctx).connect("inproc://tensorsocket").unwrap();
//! for batch in consumer {
//!     // batches arrive in (epoch, shard, seq) order: one bit-stable
//!     // stream regardless of shard count or socket timing
//!     let _ = batch.map(|b| (b.epoch, b.shard, b.seq));
//! }
//! group.join().unwrap();
//! ```
//!
//! **The ordering contract.** Each shard's stream is totally ordered by
//! its per-shard sequence numbers; the consumer merges the streams by
//! delivering announcements sorted by `(epoch, index_in_epoch, shard)`
//! ([`ShardInterleave`]). For shards aligned at an epoch boundary that
//! is a round-robin (`s0[0], s1[0], …, s0[1], s1[1], …`); a shard with
//! fewer batches (uneven `dataset_len % shards` tail) simply drops out
//! of the rotation once exhausted. Because the shard partition, each
//! shard's batch order, and the merge rule are all deterministic
//! functions of `(seed, epoch, shard count)`, training sees the same
//! batch sequence on every run and on every consumer — and with
//! `shards == 1` the group degenerates byte-for-byte to a plain
//! [`TensorProducer`]. Shard endpoints derive from the group base
//! endpoint (`ts_socket::shard_endpoint`): shard 0 *is* the base, so a
//! one-shard group is wire-compatible with an unsharded deployment.
//!
//! ## The producer pipeline and its tuning knobs
//!
//! The producer is a two-stage pipeline. A **feeder** stage prepares
//! batches ahead of the publish cursor — the loader's worker threads
//! decode and collate samples, the feeder applies the producer map and
//! (under flexible sizing) fuses loader batches into producer batches —
//! while the **publish** stage stages batches on the device, registers
//! them and announces pointers. The publish loop never sleeps on a fixed
//! poll: it parks on the control channel and wakes the moment an
//! ack/join/leave arrives. Knobs, in the order they usually matter:
//!
//! * `DataLoaderConfig::num_workers` — loader worker threads; `0` runs
//!   the whole pipeline serially on the publish thread, `>= 1` enables
//!   the feeder stage. Batch order is bit-identical either way.
//! * `DataLoaderConfig::prefetch_factor` — in-flight batches per worker;
//!   with `num_workers` it also sizes the feeder's hand-off queue.
//! * [`ProducerConfig::pipeline_depth`] — explicit hand-off queue
//!   capacity, when `num_workers × prefetch_factor` is not what you want.
//! * [`ProducerBuilder::arena`] — cross-process deployments: creates the
//!   shared-memory arena *and* its recycling slot pool, both auto-sized
//!   from the loader's decoded sample geometry, so steady-state
//!   publishing performs zero arena allocations (observable via the
//!   pool's stats; [`TsContext::enable_slot_recycling`] remains the
//!   manual-depth path).
//! * [`ProducerConfig::staging`] — device staging shape for GPU
//!   producers. The default [`StagingMode::Overlapped`] stages batches
//!   through a pre-allocated VRAM slab rotation (`ts-staging`'s
//!   `DeviceSlabPool` behind a pluggable `DeviceBackend`) with the H2D
//!   copy on its own stage, so the copy of batch *n* overlaps collation
//!   of *n + 1* and publishing of *n − 1* and warmed-up staging performs
//!   zero device allocations (assert via
//!   `ts_device::MemoryBook::alloc_count`). `Serial` keeps the pool but
//!   copies on the publish thread; `Off` is the legacy per-batch
//!   allocate+copy. Consumers see byte-identical batches in all three.
//!
//! ## Observability: stage histograms and the `ts-top` scrape
//!
//! Every pipeline stage records its latency into lock-free log-bucketed
//! histograms ([`ts_metrics::Histogram`]) in the context's shared
//! [`ts_metrics::Registry`] — a `record` is a handful of relaxed atomic
//! adds, so instrumentation never touches a lock on the hot path. A
//! running producer answers a versioned, stateless
//! [`CtrlMsg::StatsRequest`] from *any* of its wait loops (mid-epoch, at
//! an epoch barrier, draining final acks) with a [`DataMsg::Stats`]
//! snapshot of the whole registry — counters, gauges and full histogram
//! buckets, deterministically name-sorted. [`scrape_stats`] is the
//! client side, and the `ts-top` binary renders it live:
//!
//! ```text
//! ts-top ipc:///tmp/ts.sock            # live per-stage latency table
//! ts-top --json tcp://127.0.0.1:5555   # one-shot snapshot for scripts/CI
//! ```
//!
//! The scrape needs no consumer attach and leaves no state in the
//! producer. Metric names are per-stage prefixed: a plain producer uses
//! `stage.` (`staging.`), additional pipelines in the same context get
//! `stage.p<n>.`, and the shards of a group get `stage.s<shard>.` — all
//! shards share one registry, so scraping the group's base endpoint
//! observes every shard.
//!
//! | metric | kind | unit | meaning |
//! |---|---|---|---|
//! | `stage.[s<N>.]feeder_fetch_ns` | histogram | ns | fetch + collate of one batch from the loader (incl. producer map / flex fusing) |
//! | `stage.[s<N>.]publish_ack_ns` | histogram | ns | publish → final consumer ack round-trip per batch |
//! | `staging.[s<N>.]copy_wait_ns` | histogram | ns | backpressure wait handing an item to the H2D copy stage |
//! | `staging.[s<N>.]h2d_ns` | histogram | ns | slab lease + H2D copy + fence per staged batch |
//! | `consumer.wait_ns` | histogram | ns | consumer-side wait for the next batch to arrive |
//! | `consumer.interarrival_ns` | histogram | ns | time between consecutive batches yielded to training |
//! | `consumer.stream_rx_ns` | histogram | ns | rebuild of one batch from streamed bytes (non-shm consumers) |
//! | `stage.[s<N>.]pin_depth` | gauge | batches | rubberband replay pin set currently held |
//! | `consumer.cursor_lag` | gauge | batches | producer cursor position minus this consumer's, per the last cursor flush |
//! | `staging.[s<N>.]slab_occupancy` | gauge | slabs | VRAM rotation slabs currently leased |
//! | `staging.[s<N>.]copy_queue_depth` | gauge | items | items queued ahead of the copy stage |
//! | `staging.[s<N>.]h2d_bytes_per_sec` | gauge | B/s | smoothed H2D copy throughput |
//! | `producer.batches` | counter | batches | batches published (all shards) |
//! | `producer.bytes_staged` | counter | bytes | payload bytes placed on the staging device |
//! | `producer.replays` | counter | batches | rubberband replays sent to late joiners |
//! | `producer.detached` | counter | consumers | consumers detached on heartbeat expiry |
//! | `producer.ctrl_unknown` | counter | frames | unknown (future-version) control frames ignored |
//! | `producer.hello_unknown_caps` | counter | hellos | HELLOs carrying capability bits this producer does not know |
//! | `producer.stats_dup` | counter | replies | stats replies dropped for carrying a stale request stamp |
//! | `stage.[s<N>.]stream_tx_bytes` | counter | bytes | payload bytes sent over the streamed (non-shm) path |
//! | `stage.[s<N>.]publish_copy_bytes` | counter | bytes | payload bytes the *copying* publish fallback moved — **0** after warm-up with an arena bound (the zero-copy invariant CI asserts) |
//! | `stage.[s<N>.]cursor_coalesced` | counter | positions | stale cursor positions displaced (latest-wins) before a flush window |
//! | `consumer.batches` / `consumer.samples` | counter | batches / samples | consumed by this context's consumers |
//! | `consumer.acks` | counter | acks | batch acknowledgements sent back |
//! | `consumer.data_unknown` | counter | frames | unknown (future-version) data frames ignored on the consumer path |
//! | `consumer.dangling_skipped` | counter | batches | stale announces skipped because the producer (aborting) released the payload first |
//! | `staging.h2d_bytes` | counter | bytes | bytes through the H2D copy stage |
//! | `trace.dropped` | gauge | records | flight-recorder records evicted before completing (refreshed at scrape time) |
//! | `trace.capacity` | gauge | records | flight-recorder ring capacity (refreshed at scrape time) |
//! | `producer.trace_dup` | counter | replies | trace replies dropped for carrying a stale request stamp |
//! | `watchdog.stalls.consumer` | counter | stalls | watchdog verdicts: one straggling consumer holds the oldest batch |
//! | `watchdog.stalls.ack` | counter | stalls | watchdog verdicts: every consumer is late acking the oldest batch |
//! | `watchdog.stalls.loader` | counter | stalls | watchdog verdicts: publish loop idle, loader fetch is the bottleneck |
//! | `watchdog.stalls.h2d` | counter | stalls | watchdog verdicts: publish loop idle, H2D staging is the bottleneck |
//! | `stage.[s<N>.]log_append_bytes` | counter | bytes | encoded batch frames the log spiller appended durably |
//! | `log.append_errors` | counter | appends | spiller append failures (first one latches the log failed and drops it from WELCOMEs) |
//! | `log.[s<N>.]lag` | gauge | batches | published batches not yet durably appended (spiller backlog) |
//! | `log.[s<N>.]retained_min` / `log.[s<N>.]retained_max` | gauge | seq | retained offset range replayable from the log (`min > max` = enabled, nothing retained yet) |
//! | `producer.replay_requests` | counter | requests | `CtrlMsg::Replay` requests answered (resends included) |
//! | `replay.log_batches` | counter | batches | batches streamed out of the durable log to resuming consumers |
//! | `replay.log_bytes` | counter | bytes | stored frame bytes streamed out of the durable log |
//!
//! ### The batch flight recorder
//!
//! Histograms aggregate; the flight recorder *narrates*. Every batch's
//! passage through the pipeline is stamped into a lock-free ring of
//! per-batch trace records ([`TraceRing`], shared via
//! [`TsContext::trace`]) keyed by `(epoch, shard, seq)`: `fetch`,
//! `copy_wait`, `h2d`, `publish`, `announce` and `ack` spans on the
//! producer side, with `recv`, `rebuild` and `release` stitched onto the
//! *same record* by in-process consumers. A producer answers a stateless
//! [`CtrlMsg::TraceRequest`] with its last-N completed records
//! ([`scrape_trace`] is the client), and `ts-top --trace out.json`
//! renders them as a Chrome trace-event file — open it in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to see the
//! per-batch waterfalls:
//!
//! ```text
//! ts-top --trace trace.json ipc:///tmp/ts.sock
//! ```
//!
//! Alongside the recorder runs a low-frequency stall watchdog in the
//! producer's housekeeping loop: any batch stuck past a configurable
//! multiple ([`ProducerConfig::watchdog_stall_multiple`]) of the stage's
//! rolling p99 is classified — `loader-bound`, `h2d-bound`, `ack-bound`
//! or `consumer-straggler` with the offending consumer id — counted
//! under `watchdog.stalls.*`, and its verdict surfaces in the stats
//! snapshot (and the `ts-top` header).
//!
//! See `examples/observability.rs` for the full loop — including
//! `--serve`, which keeps a sharded GPU-staged producer alive to point
//! `ts-top` at.
//!
//! ## The durable batch log: crash-and-resume consumer groups
//!
//! Rubberband replay is bounded by memory: pinned batches hold arena
//! slots, so a late joiner can only catch up as far as the pin set
//! reaches. [`ProducerBuilder::log`] removes that bound with a
//! **durable epoch batch log** (`ts-log`): a background *spiller*
//! thread tees every published batch — encoded exactly as its streamed
//! wire frame — into mmap'd, CRC-framed, offset-addressed segments,
//! entirely off the publish hot path (`stage.[s<N>.]log_append_bytes`
//! counts the appends, `log.[s<N>.]lag` gauges the backlog). Once a
//! batch is both fully acked and durably on disk, its rubberband pin is
//! **shed**: the arena slot releases while the seq stays replayable —
//! pin depth stays bounded and `stage.publish_copy_bytes` stays 0, yet
//! replay reach extends to everything the log retains.
//!
//! The replay contract, over the same v3 handshake:
//!
//! * the WELCOME advertises the log ([`WelcomeInfo::log`], a
//!   [`LogAd`] with the retained `[min, max]` offset range; the
//!   inverted range `min > max` means "enabled, nothing retained yet");
//! * a consumer attaching with [`ConsumerBuilder::group`] sends
//!   [`CtrlMsg::Replay`]`{ group, from }` per shard after admission;
//! * the producer answers `LogInfo` naming the resolved replay start
//!   (the group's persisted cursor, floored at the retained range and
//!   capped at the consumer's live splice point) and streams the logged
//!   range — the stored frames ARE streamed-payload wire frames, so
//!   both shm and streamed consumers ingest them — which splices
//!   gaplessly onto the live stream admitted at `start_seq`;
//! * every ack advances the group's cursor in `ts-log`'s
//!   [`ts_log::CursorStore`], persisted at a bounded ~25 ms cadence
//!   (each write tmp+rename atomic), so a consumer killed mid-epoch
//!   (`kill -9` included) and restarted with the same group name
//!   resumes from its last *persisted* ack — at most one flush interval
//!   of batches is re-delivered, and re-delivery is idempotent
//!   (cursor regressions are ignored), so the merged stream stays
//!   byte-identical to an uninterrupted run;
//! * resume is cursor-exact when the rejoining member is the only
//!   consumer (admitted at the current stream position, logged gap
//!   replayed). Rejoining **alongside active consumers** admits on the
//!   rubberband path at the epoch start, so the current epoch is
//!   re-delivered from its first batch — epoch-coherent rather than
//!   cursor-exact, with the already-acked prefix ignored as cursor
//!   regressions;
//! * retention never outruns a reader: segment reclamation is floored
//!   at the minimum persisted cursor AND the oldest rubberband pin
//!   (shed pins replay from their log frames, so those segments must
//!   outlive the pin set);
//! * durability is scoped to process crash: host power loss can reorder
//!   page writeback against the log's commit protocol — see `ts-log`'s
//!   crate-level *Durability* section ([`ts_log::BatchLog::sync`] is
//!   the opt-in power-fail barrier).
//!
//! ```no_run
//! # use tensorsocket::{Producer, Consumer};
//! # use ts_data::{DataLoader, DataLoaderConfig, SyntheticImageDataset};
//! # use std::sync::Arc;
//! # let loader = DataLoader::new(
//! #     Arc::new(SyntheticImageDataset::imagenet_like(256, 0)),
//! #     DataLoaderConfig::default(),
//! # );
//! let producer = Producer::builder()
//!     .endpoint("ipc:///tmp/ts.sock")
//!     .arena("/dev/shm/ts.arena")
//!     .log("/var/tmp/ts-log") // durable batch log, fresh directory
//!     .spawn(loader)
//!     .unwrap();
//! // a trainer that survives kill -9: same group name on restart
//! let consumer = Consumer::builder()
//!     .group("trainers")
//!     .connect("ipc:///tmp/ts.sock")
//!     .unwrap();
//! ```
//!
//! The log is per-run: sequence numbers restart at 0 each spawn, so the
//! producer refuses a directory that already holds records. Without a
//! log (or on a v1/v2 producer) a `group` name is inert and the
//! consumer attaches live-only. See `examples/replay_smoke.rs` for the
//! crash-and-resume loop end to end.
//!
//! ## Crate layout
//!
//! * [`protocol`] — pure, time-injected state machines: publish window
//!   ([`protocol::buffer::BatchWindow`]), release tracking
//!   ([`protocol::acks::AckTracker`]), liveness ([`protocol::heartbeat::HeartbeatMonitor`]),
//!   late-join admission ([`protocol::rubberband::RubberbandPolicy`]), flexible batch
//!   planning ([`protocol::flex`]) and batch-order variation
//!   ([`protocol::order`]). The virtual-time simulator (`ts-sim`) drives
//!   these same state machines, so the evaluated protocol and the shipped
//!   protocol cannot diverge.
//! * [`runtime`] — the threaded runtime behind the [`Producer`] /
//!   [`Consumer`] facades: the producer pipelines over `ts-socket`
//!   PUB/SUB + PUSH/PULL with real payload sharing through the
//!   [`ts_tensor::SharedRegistry`], the sharded-group layer
//!   ([`EpochCoordinator`]), and the deprecated legacy entry points
//!   ([`TensorProducer`], [`TensorConsumer`], [`ShardedProducerGroup`]).

pub mod protocol;
pub mod runtime;

pub use protocol::acks::AckTracker;
pub use protocol::buffer::BatchWindow;
pub use protocol::flex::{plan_flex, FlexPlan, Segment};
pub use protocol::heartbeat::HeartbeatMonitor;
pub use protocol::messages::{
    caps, AnnounceContent, ArenaAd, BatchAnnounce, CtrlMsg, DataMsg, JoinDecision, LogAd,
    PayloadMode, ReplayFrom, StatsPayload, StreamedTensor, TracePayload, WelcomeInfo,
    HANDSHAKE_VERSION, STATS_VERSION, TRACE_VERSION,
};
pub use protocol::order::ShardInterleave;
pub use protocol::rubberband::RubberbandPolicy;
pub use runtime::builder::{Consumer, ConsumerBuilder, Producer, ProducerBuilder};
pub use runtime::consumer::{ConsumerBatch, TensorConsumer};
pub use runtime::context::TsContext;
pub use runtime::coordinator::{EpochCoordinator, GroupJoin, ShardedProducerGroup};
pub use runtime::producer::{EpochSource, ProducerStats, SampleGeometry, TensorProducer};
pub use runtime::scrape::{scrape_stats, scrape_trace};
pub use runtime::{ConsumerConfig, FlexibleConfig, ProducerConfig, StagingConfig, StagingMode};
pub use ts_metrics::{SpanKind, TraceRecordSnap, TraceRing};
pub use ts_socket::{Endpoint, EndpointError, Scheme};

/// Why an attach handshake failed — the typed mismatches a
/// [`Consumer`] surfaces instead of hanging (or silently training on the
/// wrong topology) when its view of the world disagrees with what the
/// producer advertises in its WELCOME.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// Handshake protocol version skew between consumer and producer.
    Version {
        /// The consumer's version.
        ours: u32,
        /// The producer's advertised version.
        theirs: u32,
    },
    /// The topology the consumer insists on does not match what the
    /// producer advertises (e.g. an explicit `shards` override).
    Topology {
        /// Shard count the consumer demanded.
        requested: usize,
        /// Shard count the producer advertises.
        advertised: usize,
    },
    /// The producer advertises a shared-memory arena the consumer cannot
    /// open (not on the same host, stale path, permissions).
    ArenaMissing {
        /// Advertised arena path.
        path: String,
        /// Why the open failed.
        reason: String,
    },
    /// The consumer insisted on a payload mode the producer's WELCOME
    /// does not grant (e.g. forced streaming against a flexible-sizing
    /// producer, which serves shm only).
    Mode {
        /// The mode the consumer demanded.
        requested: PayloadMode,
        /// The producer's grant mask ([`caps`] bits).
        granted: u32,
    },
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Version { ours, theirs } => {
                write!(f, "handshake version skew: ours {ours}, producer {theirs}")
            }
            HandshakeError::Topology {
                requested,
                advertised,
            } => write!(
                f,
                "topology mismatch: requested {requested} shard(s), producer advertises {advertised}"
            ),
            HandshakeError::ArenaMissing { path, reason } => {
                write!(f, "cannot open advertised arena {path}: {reason}")
            }
            HandshakeError::Mode { requested, granted } => write!(
                f,
                "payload mode {requested:?} not granted by producer (grant mask {granted:#x})"
            ),
        }
    }
}

/// Errors from the TensorSocket runtime and protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// Tensor-level failure (dangling payload, OOM, shape).
    Tensor(ts_tensor::TensorError),
    /// Messaging failure.
    Socket(String),
    /// Wire decode failure.
    Wire(String),
    /// Join handshake failed or was rejected.
    Join(String),
    /// The producer detached this consumer (missed heartbeats).
    Detached,
    /// Timed out waiting for the peer.
    Timeout(&'static str),
    /// Invalid configuration.
    Config(String),
    /// A consumer-local transform failed.
    Transform(String),
    /// Shared-memory arena failure (create/open/alloc).
    Arena(String),
    /// The attach handshake failed with a typed mismatch.
    Handshake(HandshakeError),
    /// A malformed endpoint URI, rejected at the API boundary.
    Endpoint(ts_socket::EndpointError),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::Tensor(e) => write!(f, "tensor error: {e}"),
            TsError::Socket(m) => write!(f, "socket error: {m}"),
            TsError::Wire(m) => write!(f, "wire error: {m}"),
            TsError::Join(m) => write!(f, "join failed: {m}"),
            TsError::Detached => write!(f, "detached by producer (missed heartbeats)"),
            TsError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            TsError::Config(m) => write!(f, "invalid config: {m}"),
            TsError::Transform(m) => write!(f, "local transform failed: {m}"),
            TsError::Arena(m) => write!(f, "shared-memory arena: {m}"),
            TsError::Handshake(e) => write!(f, "handshake failed: {e}"),
            TsError::Endpoint(e) => write!(f, "{e}"),
        }
    }
}

impl From<HandshakeError> for TsError {
    fn from(e: HandshakeError) -> Self {
        TsError::Handshake(e)
    }
}

impl std::error::Error for TsError {}

impl From<ts_tensor::TensorError> for TsError {
    fn from(e: ts_tensor::TensorError) -> Self {
        TsError::Tensor(e)
    }
}

impl From<ts_socket::EndpointError> for TsError {
    fn from(e: ts_socket::EndpointError) -> Self {
        TsError::Endpoint(e)
    }
}

/// Lets `impl TryInto<Endpoint>` APIs accept an already-parsed
/// [`Endpoint`] (whose reflexive conversion is infallible).
impl From<std::convert::Infallible> for TsError {
    fn from(e: std::convert::Infallible) -> Self {
        match e {}
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, TsError>;
