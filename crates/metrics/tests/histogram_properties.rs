//! Property tests for the lock-free log-bucketed histogram.

use proptest::prelude::*;
use ts_metrics::Histogram;

/// Exact quantile with the same rank rule the histogram uses: the value
/// at rank `ceil(q * n)` (1-based) of the sorted data.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    /// Estimated quantiles land within the bucketing error of the exact
    /// rank-based quantile (one sub-bucket, ~1.6%, plus a unit of slack
    /// for tiny values).
    #[test]
    fn quantile_within_bucket_error(
        values in prop::collection::vec(1u64..1_000_000_000_000, 1..400),
        q in 0.01f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = h.snapshot().quantile(q);
        let tolerance = exact / 16 + 1;
        prop_assert!(
            est.abs_diff(exact) <= tolerance,
            "q={q} est={est} exact={exact} tolerance={tolerance}"
        );
    }

    /// Quantiles are monotone in q, bounded by max, and count/sum/max are
    /// exact.
    #[test]
    fn quantiles_monotone_and_totals_exact(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        let p50 = s.p50();
        let p99 = s.p99();
        let p999 = s.p999();
        prop_assert!(p50 <= p99, "p50={p50} p99={p99}");
        prop_assert!(p99 <= p999, "p99={p99} p999={p999}");
        prop_assert!(p999 <= s.max, "p999={p999} max={}", s.max);
        prop_assert_eq!(s.quantile(1.0), s.max);
    }

    /// Merging the snapshots of two histograms is indistinguishable from
    /// recording both value sets into one histogram.
    #[test]
    fn merge_equals_combined_recording(
        a in prop::collection::vec(0u64..1_000_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let combined = Histogram::new();
        for &v in &a {
            ha.record(v);
            combined.record(v);
        }
        for &v in &b {
            hb.record(v);
            combined.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, combined.snapshot());
    }

    /// Snapshot bucket lists are sparse (non-empty counts only) and
    /// strictly ascending by index — the wire-format invariant.
    #[test]
    fn snapshot_buckets_sparse_and_sorted(
        values in prop::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert!(s.buckets.iter().all(|&(_, c)| c > 0));
        prop_assert!(s.buckets.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), s.count);
    }
}
