//! Property tests for the time-weighted integrator and time series.

use proptest::prelude::*;
use ts_metrics::{TimeSeries, TimeWeighted};

proptest! {
    /// The integral equals the sum of rectangle areas for any step signal.
    #[test]
    fn integral_matches_rectangles(steps in prop::collection::vec((1u64..1_000, 0.0f64..100.0), 1..50)) {
        let mut tw = TimeWeighted::new(0, 0.0);
        let mut expected = 0.0;
        let mut t = 0u64;
        let mut v = 0.0;
        for (dt, nv) in steps {
            expected += v * dt as f64;
            t += dt;
            tw.set(t, nv);
            v = nv;
        }
        let got = tw.integral_until(t);
        prop_assert!((got - expected).abs() < 1e-6 * expected.max(1.0), "{got} vs {expected}");
        // mean is integral / span
        let mean = tw.mean_until(t);
        prop_assert!((mean - expected / t as f64).abs() < 1e-9 * mean.abs().max(1.0));
        // peak is the max value ever set
        prop_assert!(tw.peak() >= v);
    }

    /// Windowed rates of a cumulative counter sum back to the total delta.
    #[test]
    fn windowed_rates_sum_to_total(points in prop::collection::vec((1u64..1_000, 0.0f64..50.0), 1..50)) {
        let mut s = TimeSeries::new();
        let mut t = 0u64;
        let mut total = 0.0;
        s.push(0, 0.0);
        for (dt, dv) in points {
            t += dt;
            total += dv;
            s.push(t, total);
        }
        let rates = s.windowed_rate(1.0);
        let reconstructed: f64 = s
            .points()
            .windows(2)
            .zip(&rates)
            .map(|(w, &(_, rate))| rate * (w[1].0 - w[0].0) as f64)
            .sum();
        prop_assert!((reconstructed - total).abs() < 1e-6 * total.max(1.0));
        // and the overall rate agrees with total/span
        prop_assert!((s.overall_rate(1.0) - total / t as f64).abs() < 1e-9);
    }
}
