//! The batch flight recorder: a lock-free, fixed-capacity ring of
//! per-batch trace records.
//!
//! Aggregate histograms ([`crate::Histogram`]) answer "*how slow* is this
//! stage", but the operational question in a shared-producer deployment
//! is "*which* stage starved *which* consumer for *which* batch" — and
//! data-loading stalls are bursty and stage-local, exactly what quantile
//! aggregates wash out. This module records a per-batch *timeline*: every
//! batch, keyed by `(epoch, shard, seq)`, accumulates one span per
//! pipeline stage (feeder fetch, staging copy-wait, H2D copy, publish,
//! announce, publish→ack round trip, and the consumer-side receive /
//! rebuild / release), each a `[start, end]` pair of nanosecond offsets
//! from the ring's base clock.
//!
//! The discipline matches `histogram.rs`: all slots are pre-allocated at
//! construction, and the record path is a short seqlock claim (one CAS),
//! a handful of relaxed stores, and a release commit — no mutex, no
//! allocation, safe inside the zero-allocation steady state. Readers
//! ([`TraceRing::last_n`], [`TraceRing::snapshot_key`]) retry on seqlock
//! movement and never block writers.
//!
//! Capacity is a power of two and records are slotted by key hash:
//! newest-wins, like any flight recorder — a collision evicts the older
//! batch's record (late writes for an evicted key are dropped and
//! counted, never misfiled). The ring also carries the stall watchdog's
//! last verdict string, so one shared handle (cloned through the runtime
//! context) links the producer's sweep to the stats snapshot and
//! `ts-top` header.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default slot count of a ring ([`TraceRing::new`]). At steady state a
/// pipeline keeps tens of batches in flight, so 1024 retains several
/// seconds of history at realistic publish rates.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Number of distinct span kinds a record can carry.
pub const NUM_SPAN_KINDS: usize = 9;

/// One stage of a batch's life, producer side then consumer side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Feeder: source fetch + producer map + collation.
    Fetch = 0,
    /// Staged batch waiting in the overlapped hand-off queue.
    CopyWait = 1,
    /// Slab lease + host-to-device copy + fence.
    H2d = 2,
    /// Publish loop: window admission through payload registration.
    Publish = 3,
    /// Announce encode + send on the broadcast channel.
    Announce = 4,
    /// Publish to last consumer acknowledgement (the retire span).
    Ack = 5,
    /// Consumer: wait on the data channel until this batch arrived.
    Recv = 6,
    /// Consumer: payload rebuild (arena attach or streamed decode).
    Rebuild = 7,
    /// Consumer: batch held by training until the deferred ack.
    Release = 8,
}

impl SpanKind {
    /// All kinds, index-aligned with their `u8` value.
    pub const ALL: [SpanKind; NUM_SPAN_KINDS] = [
        SpanKind::Fetch,
        SpanKind::CopyWait,
        SpanKind::H2d,
        SpanKind::Publish,
        SpanKind::Announce,
        SpanKind::Ack,
        SpanKind::Recv,
        SpanKind::Rebuild,
        SpanKind::Release,
    ];

    /// The stage-track name used by the chrome-trace exporter and docs.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Fetch => "fetch",
            SpanKind::CopyWait => "copy_wait",
            SpanKind::H2d => "h2d",
            SpanKind::Publish => "publish",
            SpanKind::Announce => "announce",
            SpanKind::Ack => "ack",
            SpanKind::Recv => "recv",
            SpanKind::Rebuild => "rebuild",
            SpanKind::Release => "release",
        }
    }

    /// Decodes a wire `u8` (unknown values map to `None`).
    pub fn from_u8(v: u8) -> Option<Self> {
        SpanKind::ALL.get(v as usize).copied()
    }
}

/// One pre-allocated record slot. The seqlock word is even when the slot
/// is stable and odd while a writer holds it; every writer bumps it
/// around the whole write, so readers can detect torn records and retry.
struct Slot {
    seqlock: AtomicU64,
    epoch: AtomicU64,
    shard: AtomicU64,
    seq: AtomicU64,
    /// 0 = live, 1 = fully acked (the record covers the whole life).
    complete: AtomicU64,
    /// Ring-clock nanosecond stamp of completion (recency sort key).
    done_ns: AtomicU64,
    /// `[start, end]` nanosecond offsets per [`SpanKind`]; 0 = unset.
    spans: [[AtomicU64; 2]; NUM_SPAN_KINDS],
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seqlock: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            shard: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            complete: AtomicU64::new(0),
            done_ns: AtomicU64::new(0),
            spans: std::array::from_fn(|_| [AtomicU64::new(0), AtomicU64::new(0)]),
        }
    }
}

/// A point-in-time copy of one batch record, read out through the
/// seqlock (never torn) — what the wire codec ships and the chrome-trace
/// exporter consumes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceRecordSnap {
    /// Epoch of the batch.
    pub epoch: u64,
    /// Shard that published it (0 for a plain producer).
    pub shard: u32,
    /// Publish sequence number (the interleave key within the shard).
    pub seq: u64,
    /// True once the batch was fully acknowledged.
    pub complete: bool,
    /// `(kind as u8, start_ns, end_ns)` for every recorded span, sorted
    /// by kind. Offsets are from the recording ring's base clock.
    pub spans: Vec<(u8, u64, u64)>,
}

impl TraceRecordSnap {
    /// The `[start, end]` of `kind`'s span, when recorded.
    pub fn span(&self, kind: SpanKind) -> Option<(u64, u64)> {
        self.spans
            .iter()
            .find(|(k, _, _)| *k == kind as u8)
            .map(|(_, s, e)| (*s, *e))
    }
}

/// The flight recorder: a fixed-capacity, lock-free ring of per-batch
/// trace records keyed by `(epoch, shard, seq)`.
///
/// One ring is shared per runtime context: every
/// producer shard, the staging stages and any in-process consumer all
/// stamp spans into the same ring, which is what lets one record cover a
/// batch's whole cross-stage life. Recording is lock-free and
/// allocation-free; reading is a retrying seqlock scan.
pub struct TraceRing {
    slots: Box<[Slot]>,
    mask: usize,
    base: Instant,
    /// Writes dropped because their batch's slot was already re-keyed to
    /// a newer batch (hash collision eviction).
    dropped: AtomicU64,
    /// The stall watchdog's last verdict (empty until the first stall).
    verdict: Mutex<String>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new()
    }
}

/// How many times a reader re-reads a slot whose seqlock keeps moving
/// before skipping it (a slot being rewritten that fast is being evicted
/// anyway).
const READ_RETRIES: usize = 16;

impl TraceRing {
    /// A ring of [`DEFAULT_TRACE_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A ring of `capacity` slots (rounded up to a power of two). All
    /// slots are allocated here; the record path never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::empty()).collect();
        TraceRing {
            slots: slots.into_boxed_slice(),
            mask: capacity - 1,
            base: Instant::now(),
            dropped: AtomicU64::new(0),
            verdict: Mutex::new(String::new()),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since this ring was created — the clock every span
    /// offset is expressed in.
    pub fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }

    /// Writes dropped because a newer batch had evicted their slot.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn index_of(epoch: u64, shard: u32, seq: u64) -> usize {
        // Fibonacci-style mixing of the three key words; quality only has
        // to spread adjacent (epoch, seq) pairs, which this does.
        let mut h = epoch
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(shard).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(seq.wrapping_mul(0x1656_67B1_9E37_79F9));
        h ^= h >> 32;
        h as usize
    }

    /// Claims the slot for `key`, giving the writer exclusive access.
    /// Returns `None` (and counts a drop) when the slot already belongs
    /// to a *newer* batch — late writes never clobber fresher records.
    /// On success the slot's seqlock is odd; the caller must invoke
    /// `commit`.
    fn claim(&self, epoch: u64, shard: u32, seq: u64) -> Option<(&Slot, u64)> {
        let slot = &self.slots[Self::index_of(epoch, shard, seq) & self.mask];
        loop {
            let v = slot.seqlock.load(Ordering::Acquire);
            if v & 1 == 1 {
                // Another writer mid-commit; writes are a few stores, so
                // spin rather than drop.
                std::hint::spin_loop();
                continue;
            }
            if slot
                .seqlock
                .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // Exclusive. Re-key if this is a different batch: newest wins
            // (v == 0 means the slot was never used and matches nothing).
            let held = (
                slot.epoch.load(Ordering::Relaxed),
                slot.shard.load(Ordering::Relaxed) as u32,
                slot.seq.load(Ordering::Relaxed),
            );
            if v == 0 || held != (epoch, shard, seq) {
                if v != 0 && (held.0, held.2) > (epoch, seq) {
                    // The slot holds a newer batch; this write is a late
                    // straggler for an evicted record.
                    slot.seqlock.store(v, Ordering::Release);
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                slot.epoch.store(epoch, Ordering::Relaxed);
                slot.shard.store(u64::from(shard), Ordering::Relaxed);
                slot.seq.store(seq, Ordering::Relaxed);
                slot.complete.store(0, Ordering::Relaxed);
                slot.done_ns.store(0, Ordering::Relaxed);
                for span in &slot.spans {
                    span[0].store(0, Ordering::Relaxed);
                    span[1].store(0, Ordering::Relaxed);
                }
            }
            return Some((slot, v + 1));
        }
    }

    fn commit(slot: &Slot, odd: u64) {
        slot.seqlock.store(odd + 1, Ordering::Release);
    }

    /// Records one span for the batch `(epoch, shard, seq)`. `start_ns`
    /// and `end_ns` are [`TraceRing::now_ns`] offsets; a zero `start_ns`
    /// is treated as "not measured" and ignored. Lock-free: one CAS, a
    /// few relaxed stores, no allocation.
    pub fn record(
        &self,
        epoch: u64,
        shard: u32,
        seq: u64,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
    ) {
        if start_ns == 0 {
            return;
        }
        if let Some((slot, odd)) = self.claim(epoch, shard, seq) {
            let span = &slot.spans[kind as usize];
            // Stamp `max(1)` so an offset that truly lands on tick 0 is
            // still distinguishable from "unset".
            span[0].store(start_ns.max(1), Ordering::Relaxed);
            span[1].store(end_ns.max(start_ns).max(1), Ordering::Relaxed);
            Self::commit(slot, odd);
        }
    }

    /// Marks the batch fully acknowledged — its record now covers the
    /// whole producer-side life and becomes eligible for
    /// [`TraceRing::last_n`].
    pub fn complete(&self, epoch: u64, shard: u32, seq: u64) {
        if let Some((slot, odd)) = self.claim(epoch, shard, seq) {
            slot.complete.store(1, Ordering::Relaxed);
            slot.done_ns.store(self.now_ns().max(1), Ordering::Relaxed);
            Self::commit(slot, odd);
        }
    }

    fn read_slot(&self, slot: &Slot) -> Option<(TraceRecordSnap, u64)> {
        for _ in 0..READ_RETRIES {
            let v1 = slot.seqlock.load(Ordering::Acquire);
            if v1 == 0 {
                return None; // never written
            }
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut snap = TraceRecordSnap {
                epoch: slot.epoch.load(Ordering::Relaxed),
                shard: slot.shard.load(Ordering::Relaxed) as u32,
                seq: slot.seq.load(Ordering::Relaxed),
                complete: slot.complete.load(Ordering::Relaxed) != 0,
                spans: Vec::new(),
            };
            let done = slot.done_ns.load(Ordering::Relaxed);
            for (kind, span) in slot.spans.iter().enumerate() {
                let start = span[0].load(Ordering::Relaxed);
                if start != 0 {
                    snap.spans
                        .push((kind as u8, start, span[1].load(Ordering::Relaxed)));
                }
            }
            let v2 = slot.seqlock.load(Ordering::Acquire);
            if v1 == v2 {
                return Some((snap, done));
            }
        }
        None
    }

    /// The most recently completed records, newest first, at most `n`.
    /// A retrying seqlock scan: never blocks writers, skips slots being
    /// rewritten.
    pub fn last_n(&self, n: usize) -> Vec<TraceRecordSnap> {
        let mut done: Vec<(u64, TraceRecordSnap)> = Vec::new();
        for slot in self.slots.iter() {
            if let Some((snap, done_ns)) = self.read_slot(slot) {
                if snap.complete {
                    done.push((done_ns, snap));
                }
            }
        }
        done.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| b.1.seq.cmp(&a.1.seq)));
        done.truncate(n);
        done.into_iter().map(|(_, snap)| snap).collect()
    }

    /// The record currently slotted for `(epoch, shard, seq)`, complete
    /// or not (tests and the watchdog).
    pub fn snapshot_key(&self, epoch: u64, shard: u32, seq: u64) -> Option<TraceRecordSnap> {
        let slot = &self.slots[Self::index_of(epoch, shard, seq) & self.mask];
        let (snap, _) = self.read_slot(slot)?;
        (snap.epoch == epoch && snap.shard == shard && snap.seq == seq).then_some(snap)
    }

    /// Replaces the stall watchdog's verdict shown in stats snapshots and
    /// the `ts-top` header (not on any hot path).
    pub fn set_verdict(&self, verdict: &str) {
        let mut cell = self.verdict.lock();
        cell.clear();
        cell.push_str(verdict);
    }

    /// The last watchdog verdict (empty string until the first stall).
    pub fn verdict(&self) -> String {
        self.verdict.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_round_trip_through_a_record() {
        let ring = TraceRing::with_capacity(64);
        ring.record(1, 0, 7, SpanKind::Fetch, 100, 200);
        ring.record(1, 0, 7, SpanKind::Publish, 250, 300);
        ring.record(1, 0, 7, SpanKind::Ack, 300, 900);
        let snap = ring.snapshot_key(1, 0, 7).expect("record exists");
        assert_eq!(snap.span(SpanKind::Fetch), Some((100, 200)));
        assert_eq!(snap.span(SpanKind::Publish), Some((250, 300)));
        assert_eq!(snap.span(SpanKind::Ack), Some((300, 900)));
        assert_eq!(snap.span(SpanKind::H2d), None);
        assert!(!snap.complete);
        ring.complete(1, 0, 7);
        assert!(ring.snapshot_key(1, 0, 7).unwrap().complete);
    }

    #[test]
    fn zero_start_is_ignored_and_end_clamps_to_start() {
        let ring = TraceRing::with_capacity(8);
        ring.record(0, 0, 1, SpanKind::Fetch, 0, 500);
        assert!(ring.snapshot_key(0, 0, 1).is_none());
        ring.record(0, 0, 1, SpanKind::Fetch, 500, 400);
        let snap = ring.snapshot_key(0, 0, 1).unwrap();
        assert_eq!(snap.span(SpanKind::Fetch), Some((500, 500)));
    }

    #[test]
    fn last_n_returns_completed_newest_first() {
        let ring = TraceRing::with_capacity(64);
        for seq in 0..10u64 {
            ring.record(0, 0, seq, SpanKind::Publish, 10 + seq, 20 + seq);
            if seq % 2 == 0 {
                ring.complete(0, 0, seq);
            }
        }
        let recent = ring.last_n(3);
        assert!(!recent.is_empty() && recent.len() <= 3);
        assert!(recent.iter().all(|r| r.complete));
        // Newest first; only even seqs completed. (A hash collision may
        // legitimately have evicted some of the five — newest-wins.)
        let seqs: Vec<u64> = recent.iter().map(|r| r.seq).collect();
        assert!(
            seqs.windows(2).all(|w| w[0] > w[1]),
            "not newest-first: {seqs:?}"
        );
        assert!(
            seqs.iter().all(|s| s % 2 == 0),
            "incomplete record returned"
        );
        assert!(ring.last_n(100).len() <= 5, "only completed records");
    }

    #[test]
    fn collisions_evict_older_batches_and_drop_stragglers() {
        // Capacity 2: many keys share slots; the newest keeps the slot.
        let ring = TraceRing::with_capacity(2);
        for seq in 0..32u64 {
            ring.record(0, 0, seq, SpanKind::Publish, seq + 1, seq + 2);
            ring.complete(0, 0, seq);
        }
        assert!(ring.last_n(100).len() <= 2);
        let before = ring.dropped();
        // Late write for a long-evicted batch must be dropped, not
        // misfiled onto whoever owns the slot now.
        ring.record(0, 0, 0, SpanKind::Ack, 1000, 2000);
        assert!(ring.dropped() > before || ring.snapshot_key(0, 0, 0).is_some());
        for snap in ring.last_n(100) {
            if snap.seq != 0 {
                assert_eq!(snap.span(SpanKind::Ack), None, "misfiled straggler span");
            }
        }
    }

    #[test]
    fn verdict_cell_round_trips() {
        let ring = TraceRing::new();
        assert_eq!(ring.verdict(), "");
        ring.set_verdict("consumer-straggler consumer=7");
        assert_eq!(ring.verdict(), "consumer-straggler consumer=7");
    }

    #[test]
    fn span_kind_u8_round_trips() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(SpanKind::from_u8(NUM_SPAN_KINDS as u8), None);
    }

    #[test]
    fn concurrent_writers_and_readers_never_tear_records() {
        let ring = Arc::new(TraceRing::with_capacity(256));
        let mut handles = Vec::new();
        for shard in 0..4u32 {
            let ring = ring.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..2_000u64 {
                    let t = ring.now_ns();
                    ring.record(0, shard, seq, SpanKind::Publish, t.max(1), t + 10);
                    ring.record(0, shard, seq, SpanKind::Ack, t + 10, t + 50);
                    ring.complete(0, shard, seq);
                }
            }));
        }
        let reader = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for snap in ring.last_n(64) {
                        // A torn read would pair a span from one batch
                        // with another's key; every committed record has
                        // both spans with publish before ack.
                        let p = snap.span(SpanKind::Publish);
                        let a = snap.span(SpanKind::Ack);
                        if let (Some(p), Some(a)) = (p, a) {
                            assert!(p.0 <= a.1, "publish after ack end: torn record");
                        }
                    }
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
    }
}
