//! Lock-free log-bucketed latency histograms (HDR-style).
//!
//! The paper reports only aggregate rates; the ROADMAP's loadgen/SLO item
//! needs latency *distributions* (p50/p99/p999) recorded from hot paths —
//! the feeder loop, the staging copy stage, the publish loop and the
//! consumer iterator — without ever taking a lock or allocating.
//!
//! [`Histogram::record`] is three `fetch_add`s and one `fetch_max` on
//! pre-allocated atomics: wait-free on x86/aarch64, no mutex anywhere on
//! the record path. Values are bucketed log-linearly — each power-of-two
//! octave is split into `SUB` (32) equal sub-buckets — so any recorded
//! value is off by at most one part in `2 * SUB` (~1.6%) when read back
//! through a quantile, while the whole `u64` range fits in ~1900 buckets
//! (~15 KiB per histogram).
//!
//! Reading happens through [`Histogram::snapshot`], which captures a
//! sparse, order-stable [`HistogramSnapshot`] that can be merged with
//! other snapshots (e.g. across shards) and shipped over the wire by the
//! control-plane stats scrape.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the number of sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave: values within an octave are resolved to
/// `1/SUB` of the octave width.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: indices `0..SUB`
/// hold the exact values `0..SUB`, and each octave `2^e..2^(e+1)` for
/// `e in SUB_BITS..64` contributes `SUB` more.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Maps a value to its bucket index. Values below `SUB` are exact;
/// larger values share an octave-relative sub-bucket.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let mantissa = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (exp - SUB_BITS + 1) as usize * SUB + mantissa
    }
}

/// Lowest value that maps to bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let group = (idx / SUB) as u32;
        let exp = group - 1 + SUB_BITS;
        let mantissa = (idx % SUB) as u64;
        (1u64 << exp) + (mantissa << (exp - SUB_BITS))
    }
}

/// Width of bucket `idx` (1 for the exact low range).
fn bucket_width(idx: usize) -> u64 {
    if idx < SUB {
        1
    } else {
        let group = (idx / SUB) as u32;
        1u64 << (group - 1)
    }
}

/// A lock-free log-bucketed histogram of `u64` values (typically
/// nanoseconds).
///
/// Recording never blocks, never allocates, and never takes a mutex —
/// safe to call from the feeder, staging, publish and consumer hot
/// paths, including inside the zero-allocation steady state.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`, so build the fixed-size bucket array
        // through a Vec once at construction (never on the record path).
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = v.into_boxed_slice().try_into().unwrap();
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: three relaxed `fetch_add`s plus a
    /// relaxed `fetch_max`, no allocation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Captures a sparse snapshot of the current state.
    ///
    /// Concurrent recording keeps going while the snapshot is taken; the
    /// snapshot is internally consistent up to in-flight records.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((idx as u32, c));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Adds every value recorded in `snap` into this histogram
    /// (e.g. folding per-shard histograms into a combined one).
    pub fn merge(&self, snap: &HistogramSnapshot) {
        for &(idx, c) in &snap.buckets {
            if (idx as usize) < NUM_BUCKETS {
                self.buckets[idx as usize].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }
}

/// An immutable, mergeable capture of a [`Histogram`].
///
/// `buckets` holds only the non-empty `(bucket_index, count)` pairs in
/// ascending index order, so snapshots are compact on the wire and diff
/// cleanly between scrapes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Sparse `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, within the bucketing error of
    /// ~1.6%. `q >= 1.0` returns the exact maximum; an empty snapshot
    /// returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= target {
                let idx = idx as usize;
                let mid = bucket_lower(idx) + bucket_width(idx) / 2;
                return mid.min(self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Folds `other` into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged = std::collections::BTreeMap::new();
        for &(idx, c) in self.buckets.iter().chain(other.buckets.iter()) {
            *merged.entry(idx).or_insert(0u64) += c;
        }
        self.buckets = merged.into_iter().collect();
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = vec![0, u64::MAX];
        for shift in 0..64u32 {
            let base = 1u64 << shift;
            values.push(base);
            values.push(base + (base >> 1));
            values.push(base + (base - 1)); // top of the octave
        }
        values.sort_unstable();
        for w in values.windows(2) {
            let (a, b) = (bucket_index(w[0]), bucket_index(w[1]));
            assert!(a < NUM_BUCKETS && b < NUM_BUCKETS);
            assert!(a <= b, "index must not decrease ({} -> {})", w[0], w[1]);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_lower_round_trips() {
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_lower(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            let hi = lo + (bucket_width(idx) - 1);
            assert_eq!(bucket_index(hi), idx, "upper bound of {idx}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, SUB as u64);
        for v in 0..SUB as u64 {
            // Each small value sits alone in its own exact bucket.
            assert!(s.buckets.contains(&(v as u32, 1)));
        }
    }

    #[test]
    fn count_sum_max_are_exact() {
        let h = Histogram::new();
        for v in [3u64, 1_000, 123_456_789, 42] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 3 + 1_000 + 123_456_789 + 42);
        assert_eq!(s.max, 123_456_789);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in ns
        }
        let s = h.snapshot();
        let within = |est: u64, exact: u64| {
            let err = est.abs_diff(exact) as f64 / exact as f64;
            assert!(err < 0.04, "est={est} exact={exact} err={err}");
        };
        within(s.p50(), 500_000);
        within(s.p99(), 990_000);
        within(s.p999(), 999_000);
        assert_eq!(s.max, 1_000_000);
        assert!(s.p50() <= s.p99() && s.p99() <= s.p999() && s.p999() <= s.max);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn snapshot_merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [5u64, 900, 77_000, 5] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 2_000_000, 900] {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn live_merge_folds_snapshot_in() {
        let total = Histogram::new();
        let shard = Histogram::new();
        shard.record(10);
        shard.record(100_000);
        total.record(7);
        total.merge(&shard.snapshot());
        let s = total.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 100_000);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1_000 + i);
                }
            }));
        }
        for hdl in handles {
            hdl.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.max, 7 * 1_000 + 9_999);
    }
}
