//! Small statistics helpers used by the experiment harness.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; `0.0` for fewer than two values.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`; `0.0` for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[1.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.001, "got {s}");
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn percentile_clamps_range() {
        let xs = [5.0, 10.0];
        assert_eq!(percentile(&xs, -3.0), 5.0);
        assert_eq!(percentile(&xs, 250.0), 10.0);
    }
}
