#![warn(missing_docs)]

//! Metrics substrate for the TensorSocket reproduction.
//!
//! The paper reports training speed (samples/s), CPU utilization (`top`),
//! GPU utilization (`dcgm` SM activity), GPU memory (`nvidia-smi`), and data
//! movement rates for disk (`iostat`), PCIe and NVLink (`dcgm`). This crate
//! provides the corresponding primitives:
//!
//! * [`Counter`] — monotonically increasing event/byte counters,
//! * [`Gauge`] — instantaneous values (e.g. VRAM in use),
//! * [`Histogram`] — lock-free log-bucketed latency distributions with
//!   `p50/p99/p999/max`, mergeable snapshots, ~1.6% bucketing error,
//! * [`TimeWeighted`] — time-weighted integrals of piecewise-constant
//!   signals, used for utilization percentages exactly the way `top`/`dcgm`
//!   average a busy fraction over a window,
//! * [`TimeSeries`] — timestamped samples with windowed-rate helpers (used
//!   for the throughput-over-time series of Figure 13),
//! * [`TraceRing`] — the batch flight recorder: a lock-free fixed-capacity
//!   ring of per-batch span timelines keyed by `(epoch, shard, seq)`,
//! * [`Registry`] — a named collection of the above,
//! * [`table`] — plain-text table rendering used by the experiment harness
//!   to print paper-style rows.

pub mod histogram;
pub mod registry;
pub mod series;
pub mod stats;
pub mod table;
pub mod timeweighted;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Registry, RegistrySnapshot};
pub use series::TimeSeries;
pub use stats::{mean, percentile, stddev};
pub use table::Table;
pub use timeweighted::TimeWeighted;
pub use trace::{SpanKind, TraceRecordSnap, TraceRing};

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// Thread-safe; suitable both for the threaded runtime (incremented from
/// worker threads) and for the single-threaded simulator.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Atomically increments the counter by one and returns the
    /// **previous** value — a race-free ordinal allocator (e.g. for
    /// namespacing per-instance gauges).
    pub fn fetch_inc(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// An instantaneous value expressed as an `f64`.
///
/// Stored as bit-cast `u64` so updates are lock-free.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge initialized to `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Sets the gauge to `max(current, v)`; used for peak tracking.
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_get_reset() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
    }

    #[test]
    fn gauge_set_max_tracks_peak() {
        let g = Gauge::new();
        g.set_max(1.0);
        g.set_max(0.5);
        assert_eq!(g.get(), 1.0);
        g.set_max(2.0);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn counter_concurrent_increments() {
        let c = std::sync::Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
