//! Timestamped sample series with windowed-rate helpers.
//!
//! Figure 13 of the paper plots aggregate training throughput against
//! elapsed wall-clock time. The simulator records cumulative sample counts
//! at a fixed sampling interval; [`TimeSeries::windowed_rate`] converts those
//! into the per-interval rates the figure shows.

/// A series of `(time, value)` samples with non-decreasing time.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Panics if `t` is older than the last sample.
    pub fn push(&mut self, t: u64, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "TimeSeries::push out of order: {t} < {last}");
        }
        self.points.push((t, v));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }

    /// Interprets the series as a cumulative counter and returns per-window
    /// rates: `(window_end_time, delta_value / delta_time_in_ticks * scale)`.
    ///
    /// `scale` converts per-tick rates to the desired unit (e.g. with
    /// nanosecond ticks, `scale = 1e9` yields a per-second rate).
    pub fn windowed_rate(&self, scale: f64) -> Vec<(u64, f64)> {
        self.points
            .windows(2)
            .filter_map(|w| {
                let (t0, v0) = w[0];
                let (t1, v1) = w[1];
                if t1 == t0 {
                    None
                } else {
                    Some((t1, (v1 - v0) / (t1 - t0) as f64 * scale))
                }
            })
            .collect()
    }

    /// Mean of the windowed rate over the whole series (first to last point).
    pub fn overall_rate(&self, scale: f64) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(&(t0, v0)), Some(&(t1, v1))) if t1 > t0 => (v1 - v0) / (t1 - t0) as f64 * scale,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_rate_from_cumulative_counts() {
        let mut s = TimeSeries::new();
        s.push(0, 0.0);
        s.push(10, 50.0);
        s.push(20, 150.0);
        let rates = s.windowed_rate(1.0);
        assert_eq!(rates, vec![(10, 5.0), (20, 10.0)]);
    }

    #[test]
    fn overall_rate_spans_whole_series() {
        let mut s = TimeSeries::new();
        s.push(0, 0.0);
        s.push(5, 10.0);
        s.push(20, 40.0);
        assert_eq!(s.overall_rate(1.0), 2.0);
    }

    #[test]
    fn empty_and_singleton_series_rate_zero() {
        let s = TimeSeries::new();
        assert_eq!(s.overall_rate(1.0), 0.0);
        let mut s2 = TimeSeries::new();
        s2.push(3, 1.0);
        assert_eq!(s2.overall_rate(1.0), 0.0);
        assert!(s2.windowed_rate(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn push_rejects_time_travel() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn scale_converts_units() {
        let mut s = TimeSeries::new();
        s.push(0, 0.0);
        s.push(1_000_000_000, 100.0); // 100 samples in 1e9 ns
        let rates = s.windowed_rate(1e9);
        assert_eq!(rates[0].1, 100.0); // samples per second
    }
}
