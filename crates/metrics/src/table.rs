//! Plain-text table rendering for paper-style experiment output.
//!
//! Experiments print their rows in the same arrangement as the paper's
//! tables/figures; this module provides aligned ASCII and Markdown output
//! without any external dependency.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row is padded/truncated to the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for rows of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Returns the rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }

    /// Renders as an aligned ASCII table.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:width$}", c, width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as a Markdown table (used when generating EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let sep: Vec<&str> = self.headers.iter().map(|_| "---").collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for tables.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// Formats a byte rate as a human-readable `X MB/s` / `X KB/s` string,
/// mirroring the units used in Tables 3 and 4 of the paper.
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    let b = bytes_per_sec;
    if b >= 1e6 {
        format!("{:.0} MB/s", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.0} KB/s", b / 1e3)
    } else if b > 0.0 {
        format!("{b:.0} B/s")
    } else {
        "-".to_string()
    }
}

/// Formats bytes as GB with one decimal, as used for VRAM columns.
pub fn fmt_gb(bytes: f64) -> String {
    format!("{:.1} GB", bytes / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["Model", "Samples/s"]);
        t.row(&["ResNet18".to_string(), "1024".to_string()]);
        t.row(&["MobileNet".to_string(), "2".to_string()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| ResNet18  | 1024      |"));
        assert!(s.contains("| MobileNet | 2         |"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row(&["1".to_string()]);
        assert_eq!(t.rows()[0].len(), 3);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row_display(&[1, 2]);
        let md = t.render_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn num_formatting_bands() {
        assert_eq!(fmt_num(12345.6), "12346");
        assert_eq!(fmt_num(123.45), "123.5");
        assert_eq!(fmt_num(12.345), "12.35");
        assert_eq!(fmt_num(0.1234), "0.123");
        assert_eq!(fmt_num(0.0), "0");
    }

    #[test]
    fn rate_formatting_units() {
        assert_eq!(fmt_rate(613e6), "613 MB/s");
        assert_eq!(fmt_rate(152e3), "152 KB/s");
        assert_eq!(fmt_rate(12.0), "12 B/s");
        assert_eq!(fmt_rate(0.0), "-");
    }

    #[test]
    fn gb_formatting() {
        assert_eq!(fmt_gb(8.5e9), "8.5 GB");
    }
}
