//! A named registry of counters and gauges.
//!
//! The threaded runtime and data loader register their counters here so
//! tests and examples can inspect them by name without plumbing references
//! through every layer.

use crate::{Counter, Gauge};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, named collection of [`Counter`]s and [`Gauge`]s.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Snapshot of all counter values, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock();
        inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauge values, sorted by name.
    pub fn gauge_snapshot(&self) -> Vec<(String, f64)> {
        let inner = self.inner.lock();
        inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_by_name() {
        let r = Registry::new();
        r.counter("batches").add(3);
        r.counter("batches").add(4);
        assert_eq!(r.counter("batches").get(), 7);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        let snap = r.counter_snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "z");
    }

    #[test]
    fn clone_shares_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.gauge("vram").set(1.5);
        assert_eq!(r.gauge("vram").get(), 1.5);
    }
}
