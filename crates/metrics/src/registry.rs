//! A named registry of counters, gauges and histograms.
//!
//! The threaded runtime and data loader register their counters here so
//! tests and examples can inspect them by name without plumbing references
//! through every layer.
//!
//! All snapshot methods are **deterministically name-sorted** (backed by a
//! `BTreeMap`): two scrapes of the same registry list the same metrics in
//! the same order, so snapshots diff cleanly across scrapes and tests.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::{Counter, Gauge};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared, named collection of [`Counter`]s, [`Gauge`]s and
/// [`Histogram`]s.
///
/// The registry lock is taken only on registration and snapshotting; hot
/// paths hold pre-resolved `Arc` handles and never touch the registry.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A point-in-time capture of every metric in a [`Registry`], each list
/// sorted by name. This is the unit shipped over the wire by the
/// control-plane stats scrape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use. Hold the returned `Arc` and call [`Histogram::record`] on it
    /// directly from hot paths — recording is lock-free.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshot of all counter values, deterministically sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock();
        inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauge values, deterministically sorted by name.
    pub fn gauge_snapshot(&self) -> Vec<(String, f64)> {
        let inner = self.inner.lock();
        inner
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all histograms, deterministically sorted by name.
    pub fn histogram_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        let inner = self.inner.lock();
        inner
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Captures every metric at once, each list sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counter_snapshot(),
            gauges: self.gauge_snapshot(),
            histograms: self.histogram_snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_by_name() {
        let r = Registry::new();
        r.counter("batches").add(3);
        r.counter("batches").add(4);
        assert_eq!(r.counter("batches").get(), 7);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        let snap = r.counter_snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "z");
    }

    #[test]
    fn histogram_is_shared_by_name() {
        let r = Registry::new();
        r.histogram("lat").record(10);
        r.histogram("lat").record(20);
        assert_eq!(r.histogram("lat").snapshot().count, 2);
    }

    #[test]
    fn snapshots_deterministically_sorted_regardless_of_insertion_order() {
        let r = Registry::new();
        for name in ["m.z", "m.a", "m.k", "a.z"] {
            r.counter(name).inc();
            r.gauge(name).set(1.0);
            r.histogram(name).record(1);
        }
        let snap = r.snapshot();
        let names = |v: Vec<String>| v;
        let c: Vec<String> = snap.counters.iter().map(|(k, _)| k.clone()).collect();
        let g: Vec<String> = snap.gauges.iter().map(|(k, _)| k.clone()).collect();
        let h: Vec<String> = snap.histograms.iter().map(|(k, _)| k.clone()).collect();
        let sorted = vec![
            "a.z".to_string(),
            "m.a".to_string(),
            "m.k".to_string(),
            "m.z".to_string(),
        ];
        assert_eq!(names(c), sorted);
        assert_eq!(names(g), sorted);
        assert_eq!(names(h), sorted);
        // Two scrapes of the same registry are identical.
        assert_eq!(r.snapshot(), snap);
    }

    #[test]
    fn clone_shares_state() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.gauge("vram").set(1.5);
        assert_eq!(r.gauge("vram").get(), 1.5);
    }
}
