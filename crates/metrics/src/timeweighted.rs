//! Time-weighted integration of piecewise-constant signals.
//!
//! Utilization metrics in the paper (`top` CPU%, `dcgm` SM activity) are
//! averages of a busy fraction over a measurement window. The simulator
//! produces exact piecewise-constant signals (e.g. "3.5 cores busy from
//! t=10ms to t=14ms"), so the faithful reproduction is an exact integral
//! rather than sampling.

/// Integrates a piecewise-constant `f64` signal over time.
///
/// Time is a `u64` in arbitrary ticks (the simulator uses nanoseconds; the
/// threaded runtime uses `Instant` deltas converted to nanoseconds).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: u64,
    last_t: u64,
    last_v: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates an integrator starting at time `t0` with initial value `v0`.
    pub fn new(t0: u64, v0: f64) -> Self {
        Self {
            start: t0,
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            peak: v0,
        }
    }

    /// Records that the signal changed to `v` at time `t`.
    ///
    /// `t` must be monotonically non-decreasing; out-of-order updates are
    /// clamped to the last seen time (they contribute zero width).
    pub fn set(&mut self, t: u64, v: f64) {
        let t = t.max(self.last_t);
        self.integral += self.last_v * (t - self.last_t) as f64;
        self.last_t = t;
        self.last_v = v;
        if v > self.peak {
            self.peak = v;
        }
    }

    /// Adds `dv` to the current value at time `t`.
    pub fn add(&mut self, t: u64, dv: f64) {
        let v = self.last_v + dv;
        self.set(t, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Peak value observed so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The integral of the signal from the start time up to `t`.
    pub fn integral_until(&self, t: u64) -> f64 {
        let t = t.max(self.last_t);
        self.integral + self.last_v * (t - self.last_t) as f64
    }

    /// The time-weighted mean of the signal between the start time and `t`.
    ///
    /// Returns the current value if no time has elapsed.
    pub fn mean_until(&self, t: u64) -> f64 {
        let span = t.saturating_sub(self.start);
        if span == 0 {
            return self.last_v;
        }
        self.integral_until(t) / span as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_means_itself() {
        let tw = TimeWeighted::new(0, 2.0);
        assert_eq!(tw.mean_until(100), 2.0);
        assert_eq!(tw.integral_until(100), 200.0);
    }

    #[test]
    fn step_signal_integrates_exactly() {
        let mut tw = TimeWeighted::new(0, 0.0);
        tw.set(10, 4.0); // 0 for [0,10)
        tw.set(30, 1.0); // 4 for [10,30)
                         // 1 for [30,40)
        assert_eq!(tw.integral_until(40), 0.0 * 10.0 + 4.0 * 20.0 + 1.0 * 10.0);
        assert_eq!(tw.mean_until(40), 90.0 / 40.0);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn add_is_relative() {
        let mut tw = TimeWeighted::new(0, 1.0);
        tw.add(10, 2.0);
        assert_eq!(tw.current(), 3.0);
        tw.add(20, -1.5);
        assert_eq!(tw.current(), 1.5);
        // integral: 1*10 + 3*10 = 40
        assert_eq!(tw.integral_until(20), 40.0);
    }

    #[test]
    fn out_of_order_updates_clamped() {
        let mut tw = TimeWeighted::new(0, 1.0);
        tw.set(20, 5.0);
        tw.set(10, 2.0); // clamped to t=20, zero width
        assert_eq!(tw.integral_until(20), 20.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn zero_span_mean_is_current() {
        let tw = TimeWeighted::new(5, 7.0);
        assert_eq!(tw.mean_until(5), 7.0);
    }
}
