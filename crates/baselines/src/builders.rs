//! Calibrated strategy constructors.
//!
//! The cost constants here are the *only* knobs distinguishing the four
//! disciplines in the simulator; they are derived from the systems'
//! published designs (see module docs of [`crate::coordl`] and
//! [`crate::dependent`]) and calibrated once against the paper's baseline
//! numbers (see `EXPERIMENTS.md`). The TensorSocket path carries no hidden
//! advantage: its only parameters are the paper's buffer size and a small
//! ack-handling overhead.

use ts_sim::Strategy;

/// The conventional per-process loading baseline.
pub fn nonshared_strategy() -> Strategy {
    Strategy::NonShared
}

/// TensorSocket with the paper's defaults: buffer N = 2, producer on
/// `producer_gpu`, no producer-side GPU stage.
pub fn tensorsocket_strategy(producer_gpu: usize) -> Strategy {
    Strategy::TensorSocket {
        buffer: 2,
        producer_gpu,
        producer_gpu_ms_per_sample: 0.0,
        // ZeroMQ ack handling + payload packing per batch per consumer —
        // microseconds, but real (Figure 14a's slight slope).
        producer_cpu_ms_per_batch_per_consumer: 0.05,
        // payload packing + socket hop + transfer issue per batch; hidden
        // by the N=2 buffer in steady state (§3.2.5)
        publish_latency_ms: 1.0,
    }
}

/// CoorDL-like coordination.
///
/// The distribution constant covers the per-consumer host-memory copy and
/// DALI pipeline hand-off per sample; 1.5 ms/sample/consumer reproduces the
/// ~1.6× CPU scaling at 4-way collocation in Figure 14a.
pub fn coordl_strategy() -> Strategy {
    Strategy::CoorDL {
        dist_cpu_ms_per_sample_per_consumer: 1.5,
    }
}

/// Joader-like shared server.
///
/// `per_job` covers dependent-sampling intersections plus per-job NumPy
/// delivery (both scale with the number of jobs — see
/// [`crate::dependent::DependentSampler::ops`]); `convert` is the
/// consumer-side array→tensor conversion the paper works around in §4.7.
/// Calibrated to Figure 15: 2.6 ms/sample/job server-side, 0.4 ms/sample
/// conversion.
pub fn joader_strategy() -> Strategy {
    Strategy::Joader {
        server_cpu_ms_per_sample_per_job: 2.6,
        convert_cpu_ms_per_sample: 0.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_sim::{ClusterSpec, GpuConfig, GpuSharing, LoaderSpec, SimConfig, WorkloadSpec};

    fn h100_like() -> ClusterSpec {
        ClusterSpec {
            name: "h100".into(),
            vcpus: 24.0,
            gpus: vec![GpuConfig {
                relative_throughput: 2.0,
                vram_bytes: 80_000_000_000,
            }],
            gpu_sharing: GpuSharing::Mps,
            disk_read_bps: 3.5e9,
            nvlink: false,
        }
    }

    fn imagenet_loader(workers: usize) -> LoaderSpec {
        LoaderSpec {
            cpu_ms_per_sample: 7.0,
            disk_bytes_per_sample: 85_000,
            h2d_bytes_per_sample: 150_528,
            num_workers: workers,
            prefetch_batches: 2,
        }
    }

    fn run(n: usize, strategy: Strategy) -> ts_sim::SimResult {
        let trainers: Vec<WorkloadSpec> = (0..n)
            .map(|i| WorkloadSpec::new(&format!("mobilenet-s-{i}"), 0, 128, 0.26))
            .collect();
        let mut cfg = SimConfig::new(h100_like(), imagenet_loader(8), trainers, strategy);
        cfg.samples_per_trainer = 60_000;
        run_cfg(cfg)
    }

    fn run_cfg(cfg: SimConfig) -> ts_sim::SimResult {
        ts_sim::cluster::run(cfg)
    }

    #[test]
    fn fig15_ordering_holds_at_4way() {
        // per-model throughput: TensorSocket > Joader > baseline
        let ns = run(4, nonshared_strategy());
        let ts = run(4, tensorsocket_strategy(0));
        let jd = run(4, joader_strategy());
        let ns_rate = ns.mean_samples_per_s();
        let ts_rate = ts.mean_samples_per_s();
        let jd_rate = jd.mean_samples_per_s();
        assert!(
            ts_rate > jd_rate && jd_rate > ns_rate,
            "TS {ts_rate} vs Joader {jd_rate} vs baseline {ns_rate}"
        );
        // baseline splits 8 workers 4 ways: ~2 workers/model → ~286/s
        assert!((ns_rate - 286.0).abs() < 30.0, "{ns_rate}");
        // TensorSocket keeps close to the full-pipeline ~1143/s
        assert!(ts_rate > 1000.0, "{ts_rate}");
    }

    #[test]
    fn joader_degrades_smoothly_between_the_two() {
        let j1 = run(1, joader_strategy()).mean_samples_per_s();
        let j8 = run(8, joader_strategy()).mean_samples_per_s();
        assert!(j1 > 750.0 && j1 < 900.0, "{j1}"); // ~8/(7+2.6+0.4 interplay)
        assert!(j8 > 230.0 && j8 < 350.0, "{j8}");
    }
}
