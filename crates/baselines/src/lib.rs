#![warn(missing_docs)]

//! Baseline shared-data-loading systems the paper compares against (§4.7).
//!
//! Three pieces:
//!
//! * [`dependent`] — a working implementation of Joader's *dependent
//!   sampling* algorithm: per-job pending sets, per-iteration intersection,
//!   and operation counters that expose why it costs CPU per iteration per
//!   job (the paper's §2 critique);
//! * [`coordl`] — validation and cost model for CoorDL-style rigid
//!   coordination (one batch outstanding, per-consumer CPU distribution,
//!   per-consumer PCIe delivery, no single-GPU collocation);
//! * [`builders`] — convenience constructors producing calibrated
//!   [`ts_sim::SimConfig`] strategies for all four disciplines so the
//!   experiment harness compares like against like.

pub mod builders;
pub mod coordl;
pub mod dependent;

pub use builders::{coordl_strategy, joader_strategy, nonshared_strategy, tensorsocket_strategy};
pub use coordl::validate_coordl_placement;
pub use dependent::DependentSampler;
